//! Quickstart: the paper's Example 3.6/3.8, end to end, from text.
//!
//! Builds the OBDM system `Σ = ⟨⟨O, S, M⟩, D⟩` from the four text
//! artefacts (schema, data, ontology, mapping), labels the five students,
//! scores the paper's three candidate explanations under both `Z`
//! instantiations, and finally lets the beam search find its own best
//! explanation.
//!
//! Run with: `cargo run --example quickstart`

use obx_core::explain::{ExplainTask, SearchLimits, Strategy};
use obx_core::labels::Labels;
use obx_core::score::Scoring;
use obx_core::strategies::BeamSearch;
use obx_mapping::parse_mapping;
use obx_obdm::{ObdmSpec, ObdmSystem};
use obx_ontology::parse_tbox;
use obx_srcdb::{parse_database, parse_schema};

fn main() {
    // ---- the source schema S and database D (Example 3.6) ----
    let schema = parse_schema("STUD/1 LOC/2 ENR/3").expect("schema");
    let mut db = parse_database(
        schema,
        r#"
        STUD(A10). STUD(B80).
        STUD(C12). STUD(D50).
        STUD(E25).
        LOC(Sap, Rome).
        LOC(TV, Rome).
        LOC(Pol, Milan).
        ENR(A10, Math, TV).
        ENR(B80, Math, Sap).
        ENR(C12, Science, Norm).
        ENR(D50, Science, TV).
        ENR(E25, Math, Pol).
        "#
        .replace(". ", ".\n")
        .as_str(),
    )
    .expect("database");

    // ---- the ontology O ----
    let tbox = parse_tbox(
        "role studies likes taughtIn locatedIn\n\
         studies < likes",
    )
    .expect("tbox");

    // ---- the mapping M (the paper's ⇝ is spelled ~>) ----
    let (schema_ref, consts) = db.schema_and_consts_mut();
    let mapping = parse_mapping(
        schema_ref,
        tbox.vocab(),
        consts,
        "ENR(x, y, z) ~> studies(x, y)\n\
         ENR(x, y, z) ~> taughtIn(y, z)\n\
         LOC(x, y) ~> locatedIn(x, y)",
    )
    .expect("mapping");

    let mut system = ObdmSystem::new(ObdmSpec::new(tbox, mapping), db);

    // ---- the classifier λ ----
    let labels =
        Labels::parse(system.db_mut(), "+ A10\n+ B80\n+ C12\n+ D50\n- E25").expect("labels");
    println!("λ:\n{}", labels.render(system.db().consts()));

    // ---- the paper's three candidate explanations ----
    // (parsing interns query constants, so it happens before tasks borrow
    // the system immutably)
    let parsed: Vec<(&str, obx_query::OntoUcq)> = [
        (
            "q1",
            r#"q(x) :- studies(x, y), taughtIn(y, z), locatedIn(z, "Rome")"#,
        ),
        ("q2", r#"q(x) :- studies(x, "Math")"#),
        ("q3", r#"q(x) :- likes(x, "Science")"#),
    ]
    .into_iter()
    .map(|(name, text)| (name, system.parse_query(text).expect("query")))
    .collect();

    for (z_name, scoring) in [
        ("Z1 (α=β=γ=1)", Scoring::paper_weighted(1.0, 1.0, 1.0)),
        ("Z2 (α=3,β=γ=1)", Scoring::paper_weighted(3.0, 1.0, 1.0)),
    ] {
        println!("== scores under {z_name} ==");
        let task =
            ExplainTask::new(&system, &labels, 1, &scoring, SearchLimits::default()).expect("task");
        for (name, ucq) in &parsed {
            let e = task.score_ucq(ucq).expect("score");
            println!(
                "  {name}: Z = {:.3}   (matches {}/{} of λ⁺, {}/{} of λ⁻)",
                e.score,
                e.stats.pos_matched,
                e.stats.pos_total,
                e.stats.neg_matched,
                e.stats.neg_total
            );
        }
    }

    // ---- let the framework search for its own best explanation ----
    let scoring = Scoring::paper_weighted(1.0, 1.0, 1.0);
    let task =
        ExplainTask::new(&system, &labels, 1, &scoring, SearchLimits::default()).expect("task");
    let found = BeamSearch.explain(&task).expect("search");
    println!("== beam search (top {}) ==", found.len());
    for e in &found {
        println!("  Z = {:.3}   {}", e.score, e.render(&system));
    }
}

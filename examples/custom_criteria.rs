//! Customizing Δ, F, and Z — the framework's "flexibility" claim (§1).
//!
//! The paper stresses that different criteria sets and expressions yield
//! "completely different solutions". This example demonstrates three
//! instantiations over the same labels:
//!
//! 1. the paper's Z1 (parsimony matters) — the 1-atom `q3` wins;
//! 2. the paper's Z2 (coverage weighted 3×) — the 3-atom `q1` wins;
//! 3. a *hard-constraint* product Z (any false positive zeroes the score)
//!    with a custom "perfect separation bonus" criterion.
//!
//! Run with: `cargo run --example custom_criteria`

use obx_core::criteria::Criterion;
use obx_core::explain::{ExplainTask, SearchLimits};
use obx_core::paper_example::{PaperExample, PAPER_RADIUS};
use obx_core::score::{ScoreExpr, Scoring};
use std::sync::Arc;

fn main() {
    let ex = PaperExample::new();

    // The paper's two weighted averages.
    for (name, scoring) in [("Z1", ex.z1()), ("Z2", ex.z2())] {
        println!("== {name} ==");
        let mut rows = ex.scores(&scoring);
        rows.sort_by(|a, b| b.1.score.partial_cmp(&a.1.score).unwrap());
        for (qname, e) in &rows {
            println!("  {qname}: {:.3}", e.score);
        }
        println!("  winner: {}", rows[0].0);
    }

    // A custom instantiation: Z = z_neg_penalty × (z_coverage + bonus)/2,
    // where bonus is a user-defined criterion rewarding perfect separation.
    let bonus = Criterion::Custom {
        name: "perfect-bonus",
        f: Arc::new(|ctx| if ctx.stats.perfect() { 1.0 } else { 0.0 }),
    };
    let scoring = Scoring::new(
        vec![Criterion::NegHitPenalty, Criterion::PosCoverage, bonus],
        ScoreExpr::Product(vec![
            ScoreExpr::Var(0),
            ScoreExpr::Scale(
                0.5,
                Box::new(ScoreExpr::Sum(vec![ScoreExpr::Var(1), ScoreExpr::Var(2)])),
            ),
        ]),
    );
    println!("== custom hard-constraint Z ==");
    let task = ExplainTask::new(
        &ex.system,
        &ex.labels,
        PAPER_RADIUS,
        &scoring,
        SearchLimits::default(),
    )
    .expect("task");
    for (qname, q) in ex.queries() {
        let e = task.score_ucq(q).expect("score");
        println!(
            "  {qname}: {:.3}   (criteria values: {:?})",
            e.score,
            e.criterion_values
                .iter()
                .map(|v| (v * 1000.0).round() / 1000.0)
                .collect::<Vec<_>>()
        );
    }
    println!("  q2 is zeroed: it matches the negative example E25.");
}

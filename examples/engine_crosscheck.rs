//! Cross-checking the two certain-answer engines on random OBDM systems.
//!
//! The rewriting engine (PerfectRef + unfold + evaluate) and the
//! materialization engine (virtual ABox + bounded chase + evaluate) are
//! independent implementations of the same semantics. This example runs
//! both on random DL-Lite scenarios and random queries, reporting
//! agreement and relative timing — the same check the property-test suite
//! runs, here made observable.
//!
//! Run with: `cargo run --release --example engine_crosscheck`

use obx_datagen::random_scenario::{random_query, random_system};
use obx_datagen::RandomParams;
use obx_obdm::ChaseConfig;
use obx_srcdb::View;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let mut checked = 0usize;
    let mut rewrite_time = std::time::Duration::ZERO;
    let mut chase_time = std::time::Duration::ZERO;
    for seed in 0..10u64 {
        let params = RandomParams {
            seed,
            n_individuals: 40,
            n_concept_facts: 60,
            n_role_facts: 90,
            ..RandomParams::default()
        };
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9));
        let system = random_system(params, &mut rng);
        for qi in 0..8 {
            let q = random_query(&system, &mut rng, 1 + qi % 3);
            let t0 = Instant::now();
            let rewriting = match system.certain_answers(&q) {
                Ok(ans) => ans,
                Err(e) => {
                    println!("seed {seed}, query {qi}: skipped ({e})");
                    continue;
                }
            };
            rewrite_time += t0.elapsed();
            let t1 = Instant::now();
            let materialized = system.certain_answers_materialized(
                &q,
                View::full(system.db()),
                ChaseConfig::for_ucq(&q),
            );
            chase_time += t1.elapsed();
            assert_eq!(
                rewriting, materialized,
                "ENGINES DISAGREE on seed {seed}, query {qi}"
            );
            checked += 1;
        }
    }
    println!("checked {checked} (system, query) pairs: engines agree on all");
    println!("total rewriting-engine time:       {rewrite_time:.2?}");
    println!("total materialization-engine time: {chase_time:.2?}");
}

//! Scaled university scenario: recover a planted classifier.
//!
//! A hidden rule labels 100 synthetic students ("enrolled at a campus in
//! city0"); the framework sees only the labels and must find an ontology
//! query describing them. We run two strategies, report the best
//! explanation of each, and measure *fidelity* — how closely the
//! recovered query's certain answers agree with the hidden rule's.
//!
//! Run with: `cargo run --example university_bias`

use obx_core::explain::{ExplainTask, SearchLimits, Strategy};
use obx_core::score::Scoring;
use obx_core::strategies::{BeamSearch, BottomUpGeneralize};
use obx_datagen::{fidelity, university_scenario, UniversityParams};
use std::time::Instant;

fn main() {
    let scenario = university_scenario(UniversityParams {
        n_students: 100,
        label_noise: 0.0,
        ..UniversityParams::default()
    });
    println!(
        "scenario: {} atoms, λ⁺ = {}, λ⁻ = {}",
        scenario.system.db().len(),
        scenario.labels.pos().len(),
        scenario.labels.neg().len()
    );
    let truth = scenario.ground_truth.as_ref().expect("planted");
    println!(
        "hidden rule: {}",
        truth.disjuncts()[0].render(
            scenario.system.spec().tbox().vocab(),
            scenario.system.db().consts()
        )
    );

    let scoring = Scoring::accuracy();
    let limits = SearchLimits {
        max_rounds: 5,
        ..SearchLimits::default()
    };
    let task =
        ExplainTask::new(&scenario.system, &scenario.labels, 1, &scoring, limits).expect("task");

    let strategies: Vec<Box<dyn Strategy>> = vec![
        Box::new(BeamSearch),
        Box::new(BottomUpGeneralize::default()),
    ];
    for strategy in strategies {
        let t0 = Instant::now();
        let result = strategy.explain(&task).expect("search");
        let elapsed = t0.elapsed();
        let best = &result[0];
        let fid = fidelity(&scenario.system, &best.query, truth).expect("fidelity");
        println!("== {} ({elapsed:.2?}) ==", strategy.name());
        println!("  best: {}", best.render(&scenario.system));
        println!(
            "  Z = {:.3}, coverage {}/{}, false positives {}/{}",
            best.score,
            best.stats.pos_matched,
            best.stats.pos_total,
            best.stats.neg_matched,
            best.stats.neg_total
        );
        println!(
            "  fidelity vs hidden rule: precision {:.3}, recall {:.3}, F1 {:.3}",
            fid.precision, fid.recall, fid.f1
        );
    }
}

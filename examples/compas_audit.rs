//! Bias audit of a COMPAS-like risk classifier (the paper's §1 motivation).
//!
//! Two synthetic "risk classifiers" label 120 defendants: one uses a
//! protected attribute (`belongsToGroup(x, "groupA") ∧ high priors`), the
//! other a legitimate signal (`felony charge ∧ high priors`). The auditor
//! only sees labels. Explaining both classifiers over the ontology makes
//! the difference explicit: the biased model's best explanation *names the
//! protected attribute*.
//!
//! Run with: `cargo run --example compas_audit`

use obx_core::explain::{ExplainTask, SearchLimits, Strategy};
use obx_core::score::Scoring;
use obx_core::strategies::BeamSearch;
use obx_datagen::{recidivism_scenario, RecidivismParams};

fn audit(biased: bool) {
    let scenario = recidivism_scenario(RecidivismParams {
        biased,
        ..RecidivismParams::default()
    });
    let kind = if biased { "BIASED" } else { "neutral" };
    println!(
        "== auditing the {kind} classifier ({} high-risk of {}) ==",
        scenario.labels.pos().len(),
        scenario.labels.len()
    );
    let scoring = Scoring::accuracy();
    let limits = SearchLimits {
        max_rounds: 4,
        ..SearchLimits::default()
    };
    let task =
        ExplainTask::new(&scenario.system, &scenario.labels, 1, &scoring, limits).expect("task");
    let result = BeamSearch.explain(&task).expect("search");
    let best = &result[0];
    let rendered = best.render(&scenario.system);
    println!("  best explanation: {rendered}");
    println!(
        "  Z = {:.3} (coverage {}/{}, false positives {})",
        best.score, best.stats.pos_matched, best.stats.pos_total, best.stats.neg_matched
    );
    if rendered.contains("belongsToGroup") {
        println!("  ⚠ the explanation references a protected attribute — bias surfaced");
    } else {
        println!("  ✓ no protected attribute in the explanation");
    }
    println!();
}

fn main() {
    audit(true);
    audit(false);
}

//! Property test: the rewriting and materialization certain-answer engines
//! agree on random DL-Lite OBDM systems and random UCQs.
//!
//! This is the strongest correctness guard on the PerfectRef + unfolding
//! pipeline: any soundness or completeness bug in either engine shows up
//! as a divergence on some random instance.

use obx_datagen::random_scenario::{random_query, random_system};
use obx_datagen::RandomParams;
use obx_obdm::ChaseConfig;
use obx_srcdb::View;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, // each case runs several queries over a fresh system
    })]

    #[test]
    fn engines_agree(seed in 0u64..5000, incl in 0.0f64..0.9, atoms in 1usize..4) {
        let params = RandomParams {
            seed,
            incl_prob: incl,
            n_individuals: 18,
            n_concept_facts: 25,
            n_role_facts: 30,
            n_concepts: 5,
            n_roles: 3,
            ..RandomParams::default()
        };
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        let system = random_system(params, &mut rng);
        for _ in 0..3 {
            let q = random_query(&system, &mut rng, atoms);
            let Ok(rewriting) = system.certain_answers(&q) else {
                continue; // budget exhaustion is not a disagreement
            };
            let materialized = system.certain_answers_materialized(
                &q,
                View::full(system.db()),
                ChaseConfig::for_ucq(&q),
            );
            prop_assert_eq!(
                &rewriting,
                &materialized,
                "engines disagree on seed {} query {:?}",
                seed,
                q
            );
        }
    }

    /// Certain answers are monotone in the data (the key property behind
    /// Proposition 3.5): a query's answers over a masked view are a subset
    /// of its answers over the full database.
    #[test]
    fn certain_answers_monotone_in_view(seed in 0u64..5000) {
        let params = RandomParams {
            seed,
            n_individuals: 15,
            n_concept_facts: 20,
            n_role_facts: 25,
            ..RandomParams::default()
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let system = random_system(params, &mut rng);
        let q = random_query(&system, &mut rng, 2);
        let Ok(compiled) = system.spec().compile(&q) else {
            return Ok(());
        };
        // Mask = the border of some individual.
        let ind = system.db().consts().get("ind0").expect("individual");
        let border = obx_srcdb::Border::compute(system.db(), &[ind], 1);
        let restricted = compiled.answers(border.view(system.db()));
        let full = compiled.answers(View::full(system.db()));
        prop_assert!(restricted.is_subset(&full));
    }
}

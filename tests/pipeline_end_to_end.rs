//! End-to-end pipelines over the synthetic scenarios.

use obx_core::baseline::DataLevelBeam;
use obx_core::explain::{ExplainTask, SearchLimits, Strategy};
use obx_core::score::Scoring;
use obx_core::strategies::{BeamSearch, BottomUpGeneralize, ExhaustiveSearch, GreedyUcq};
use obx_datagen::{
    fidelity, recidivism_scenario, university_scenario, RecidivismParams, UniversityParams,
};

fn small_university() -> obx_datagen::Scenario {
    university_scenario(UniversityParams {
        n_students: 40,
        ..UniversityParams::default()
    })
}

#[test]
fn beam_recovers_the_planted_university_rule_perfectly() {
    let s = small_university();
    let scoring = Scoring::accuracy();
    let limits = SearchLimits {
        max_rounds: 5,
        ..SearchLimits::default()
    };
    let task = ExplainTask::new(&s.system, &s.labels, 1, &scoring, limits).unwrap();
    let best = &BeamSearch.explain(&task).unwrap()[0];
    assert!(
        best.stats.perfect(),
        "planted rule should be learnable: {} (Z={})",
        best.render(&s.system),
        best.score
    );
    let fid = fidelity(&s.system, &best.query, s.ground_truth.as_ref().unwrap()).unwrap();
    assert!(fid.f1 > 0.999, "fidelity {fid:?}");
}

#[test]
fn all_strategies_agree_on_an_easy_instance() {
    let s = small_university();
    let scoring = Scoring::accuracy();
    let limits = SearchLimits {
        max_atoms: 2,
        max_rounds: 5,
        ..SearchLimits::default()
    };
    let task = ExplainTask::new(&s.system, &s.labels, 1, &scoring, limits).unwrap();
    let strategies: Vec<Box<dyn Strategy>> = vec![
        Box::new(BeamSearch),
        Box::new(BottomUpGeneralize::default()),
        Box::new(ExhaustiveSearch::default()),
        Box::new(GreedyUcq::default()),
    ];
    let mut best_scores = Vec::new();
    for strat in &strategies {
        let result = strat.explain(&task).unwrap();
        assert!(!result.is_empty(), "{} returned nothing", strat.name());
        best_scores.push((strat.name(), result[0].score));
    }
    // Exhaustive is complete for this size: nothing may beat it.
    let exhaustive = best_scores
        .iter()
        .find(|(n, _)| *n == "exhaustive")
        .unwrap()
        .1;
    for (name, score) in &best_scores {
        assert!(
            *score <= exhaustive + 1e-9,
            "{name} ({score}) beat exhaustive ({exhaustive})?"
        );
    }
    // And beam should tie it here (the rule is 2 atoms).
    let beam = best_scores.iter().find(|(n, _)| *n == "beam").unwrap().1;
    assert!(
        (beam - exhaustive).abs() < 1e-9,
        "beam {beam} vs exhaustive {exhaustive}"
    );
}

#[test]
fn noise_degrades_but_does_not_destroy_recovery() {
    let clean = university_scenario(UniversityParams {
        n_students: 60,
        label_noise: 0.0,
        ..UniversityParams::default()
    });
    let noisy = university_scenario(UniversityParams {
        n_students: 60,
        label_noise: 0.15,
        ..UniversityParams::default()
    });
    let scoring = Scoring::accuracy();
    let limits = SearchLimits {
        max_rounds: 5,
        ..SearchLimits::default()
    };
    let run = |s: &obx_datagen::Scenario| {
        let task = ExplainTask::new(&s.system, &s.labels, 1, &scoring, limits).unwrap();
        let best = BeamSearch.explain(&task).unwrap().remove(0);
        fidelity(&s.system, &best.query, s.ground_truth.as_ref().unwrap())
            .unwrap()
            .f1
    };
    let f_clean = run(&clean);
    let f_noisy = run(&noisy);
    assert!(f_clean > 0.999, "clean fidelity {f_clean}");
    // With 15% label noise the *true* rule is still the best scorer in
    // expectation; fidelity should stay high even if not perfect.
    assert!(f_noisy > 0.7, "noisy fidelity collapsed: {f_noisy}");
}

#[test]
fn ontology_explanation_names_domain_vocabulary_baseline_names_tables() {
    let s = recidivism_scenario(RecidivismParams {
        n_defendants: 60,
        ..RecidivismParams::default()
    });
    let scoring = Scoring::accuracy();
    let limits = SearchLimits {
        max_rounds: 4,
        ..SearchLimits::default()
    };
    let task = ExplainTask::new(&s.system, &s.labels, 1, &scoring, limits).unwrap();

    let onto_best = &BeamSearch.explain(&task).unwrap()[0];
    let onto_rendered = onto_best.render(&s.system);
    assert!(onto_rendered.contains("belongsToGroup") || onto_rendered.contains("hasPriorsLevel"));

    let src_best = &DataLevelBeam.explain(&task).unwrap()[0];
    let src_rendered = src_best.render(&task);
    assert!(
        src_rendered.contains("DEF") || src_rendered.contains("PRIORS"),
        "baseline speaks in tables: {src_rendered}"
    );
    // Both can separate this easy rule; the *vocabulary* differs (E9).
    assert!(onto_best.stats.perfect());
    assert!(src_best.stats.perfect());
}

#[test]
fn radius_zero_starves_structural_rules() {
    // The university rule needs locatedIn facts, which live one hop away
    // from the student: with r = 0 nothing structural is learnable, with
    // r = 1 it is. This is the framework's radius knob at work.
    let s = small_university();
    let scoring = Scoring::accuracy();
    let limits = SearchLimits {
        max_rounds: 5,
        ..SearchLimits::default()
    };
    let truth = s.ground_truth.as_ref().unwrap();
    let compiled = s.system.spec().compile(truth).unwrap();

    let stats_at = |r: usize| {
        let task = ExplainTask::new(&s.system, &s.labels, r, &scoring, limits).unwrap();
        task.prepared().stats(&compiled)
    };
    let s0 = stats_at(0);
    let s1 = stats_at(1);
    assert_eq!(s0.pos_matched, 0, "no LOC atom inside radius 0");
    assert_eq!(s1.pos_matched, s1.pos_total, "radius 1 sees the LOC atoms");
}

#[test]
fn explanations_expose_their_criterion_values() {
    let s = small_university();
    let scoring = Scoring::paper_weighted(1.0, 1.0, 1.0);
    let task =
        ExplainTask::new(&s.system, &s.labels, 1, &scoring, SearchLimits::default()).unwrap();
    let best = &BeamSearch.explain(&task).unwrap()[0];
    assert_eq!(best.criterion_values.len(), 3);
    for v in &best.criterion_values {
        assert!((0.0..=1.0).contains(v), "criterion out of range: {v}");
    }
}

//! Output equivalence of the constraint-guided evaluator with the legacy
//! backtracking evaluator.
//!
//! The guided join (`obx_query::eval::guided`) claims to be a pure
//! performance substitution: flipping the process-wide [`eval::set_mode`]
//! switch must not move a single byte of ranked output. Two layers pin
//! that claim:
//!
//! * **End-to-end**: every built-in strategy is run twice on the same
//!   task — once with the legacy evaluator, once with the guided one —
//!   over the paper's example, the university scenario, randomized
//!   scenarios, and the skewed (power-law) scenario the `guided` bench
//!   uses as its flagship. Ranked queries, Z-score bits, per-query stats,
//!   and criterion values must be identical.
//! * **Evaluator-level**: property tests compare the mode-independent
//!   entry points ([`guided::answers`] vs [`eval::answers_legacy`] and
//!   friends) on random databases and random CQs/UCQs, where query shapes
//!   (repeated variables, constant-only guards, cross products) are wilder
//!   than anything the refinement lattice emits.
//!
//! The mode switch is process-global, so the end-to-end tests serialize
//! their flips behind a mutex and always restore the previous mode.

use obx_core::explain::{ExplainReport, ExplainTask, SearchLimits, Strategy};
use obx_core::labels::Labels;
use obx_core::score::Scoring;
use obx_core::strategies::{BeamSearch, BottomUpGeneralize, ExhaustiveSearch, GreedyUcq};
use obx_datagen::{
    random_scenario, skewed_scenario, university_scenario, RandomParams, SkewedParams,
    UniversityParams,
};
use obx_obdm::example_3_6_system;
use obx_query::eval::{self, guided, EvalMode};
use obx_query::{SrcAtom, SrcCq, SrcUcq, Term, VarId};
use obx_srcdb::{Database, Schema, View};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Mutex;

/// The paper's five labelled students.
const PAPER_LABELS: &str = "+ A10\n+ B80\n+ C12\n+ D50\n- E25";

/// Serializes evaluator-mode flips: [`eval::set_mode`] is process-global,
/// and the test harness runs `#[test]` functions on multiple threads.
static MODE_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` with the evaluator forced to `m`, restoring the previous mode
/// afterwards (even across concurrent tests — the lock spans the call).
fn with_mode<T>(m: EvalMode, f: impl FnOnce() -> T) -> T {
    let _guard = MODE_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let prev = eval::mode();
    eval::set_mode(m);
    let out = f();
    eval::set_mode(prev);
    out
}

/// Every built-in strategy, with limits light enough that running each one
/// twice per scenario stays in test-suite time.
fn strategies() -> Vec<Box<dyn Strategy>> {
    vec![
        Box::new(BeamSearch),
        Box::new(BottomUpGeneralize {
            max_seeds: 2,
            max_seed_atoms: 6,
        }),
        Box::new(GreedyUcq {
            base: Box::new(BeamSearch),
            max_disjuncts: 3,
            base_pool: 8,
        }),
        Box::new(ExhaustiveSearch {
            max_candidates: 500,
        }),
    ]
}

/// Runs `strategy` once per evaluator mode on the same task.
fn run_both_modes(
    task: &ExplainTask<'_>,
    strategy: &dyn Strategy,
) -> (ExplainReport, ExplainReport) {
    let legacy = with_mode(EvalMode::Legacy, || {
        strategy
            .explain_with_status(task)
            .expect("legacy run succeeds")
    });
    let guided = with_mode(EvalMode::Guided, || {
        strategy
            .explain_with_status(task)
            .expect("guided run succeeds")
    });
    (legacy, guided)
}

/// Field-by-field identity of the two ranked reports: same queries in the
/// same order, bit-identical Z-scores and criterion values, equal stats.
fn assert_reports_identical(ctx: &str, legacy: &ExplainReport, guided: &ExplainReport) {
    assert_eq!(
        legacy.explanations.len(),
        guided.explanations.len(),
        "{ctx}: explanation counts diverge"
    );
    for (i, (a, b)) in legacy
        .explanations
        .iter()
        .zip(guided.explanations.iter())
        .enumerate()
    {
        assert_eq!(a.query, b.query, "{ctx}: rank {i} queries diverge");
        assert_eq!(
            a.score.to_bits(),
            b.score.to_bits(),
            "{ctx}: rank {i} Z-scores diverge ({} vs {})",
            a.score,
            b.score
        );
        assert_eq!(a.stats, b.stats, "{ctx}: rank {i} stats diverge");
        assert_eq!(
            a.criterion_values.len(),
            b.criterion_values.len(),
            "{ctx}: rank {i} criterion counts diverge"
        );
        for (j, (x, y)) in a
            .criterion_values
            .iter()
            .zip(b.criterion_values.iter())
            .enumerate()
        {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{ctx}: rank {i} criterion {j} diverges"
            );
        }
    }
}

#[test]
fn paper_example_identical_across_evaluators_for_every_strategy() {
    let mut sys = example_3_6_system();
    let labels = Labels::parse(sys.db_mut(), PAPER_LABELS).unwrap();
    let scoring = Scoring::accuracy();
    let task = ExplainTask::new(&sys, &labels, 1, &scoring, SearchLimits::default()).unwrap();
    for strategy in strategies() {
        let (legacy, guided) = run_both_modes(&task, strategy.as_ref());
        assert_reports_identical(&format!("paper / {}", strategy.name()), &legacy, &guided);
    }
}

#[test]
fn university_scenario_identical_across_evaluators() {
    let scenario = university_scenario(UniversityParams {
        n_students: 40,
        ..UniversityParams::default()
    });
    let scoring = Scoring::accuracy();
    let limits = SearchLimits {
        beam_width: 8,
        top_k: 5,
        ..SearchLimits::default()
    };
    let task = ExplainTask::new(&scenario.system, &scenario.labels, 1, &scoring, limits).unwrap();
    for strategy in strategies() {
        let (legacy, guided) = run_both_modes(&task, strategy.as_ref());
        assert_reports_identical(
            &format!("university / {}", strategy.name()),
            &legacy,
            &guided,
        );
    }
}

/// The skewed power-law scenario is the one where the two evaluators take
/// genuinely different paths (the guided bench's flagship), so identical
/// output here is the least vacuous of the deterministic checks.
#[test]
fn skewed_scenario_identical_across_evaluators() {
    let scenario = skewed_scenario(SkewedParams {
        n_students: 60,
        ..SkewedParams::default()
    });
    let scoring = Scoring::accuracy();
    let limits = SearchLimits {
        beam_width: 8,
        top_k: 5,
        ..SearchLimits::default()
    };
    let task = ExplainTask::new(&scenario.system, &scenario.labels, 1, &scoring, limits).unwrap();
    for strategy in strategies() {
        let (legacy, guided) = run_both_modes(&task, strategy.as_ref());
        assert_reports_identical(&format!("skewed / {}", strategy.name()), &legacy, &guided);
    }
}

/// The size-gated [`EvalMode::Auto`] dispatch (the default mode) is pure
/// routing: whichever side of the gate a view lands on, ranked output must
/// be byte-identical to both forced modes. Exercised with the gate pushed
/// to each extreme — everything-legacy and everything-guided — plus the
/// measured default, on the scenario where the evaluators' paths diverge
/// the most.
#[test]
fn auto_mode_matches_forced_modes_end_to_end() {
    let scenario = skewed_scenario(SkewedParams {
        n_students: 60,
        ..SkewedParams::default()
    });
    let scoring = Scoring::accuracy();
    let limits = SearchLimits {
        beam_width: 8,
        top_k: 5,
        ..SearchLimits::default()
    };
    let task = ExplainTask::new(&scenario.system, &scenario.labels, 1, &scoring, limits).unwrap();
    for strategy in light_strategies() {
        let (legacy, guided) = run_both_modes(&task, strategy.as_ref());
        assert_reports_identical(
            &format!("legacy vs guided / {}", strategy.name()),
            &legacy,
            &guided,
        );
        for gate in [0usize, eval::guided_min_view(), usize::MAX] {
            let auto = with_mode(EvalMode::Auto, || {
                let prev = eval::guided_min_view();
                eval::set_guided_min_view(gate);
                let report = strategy
                    .explain_with_status(&task)
                    .expect("auto run succeeds");
                eval::set_guided_min_view(prev);
                report
            });
            assert_reports_identical(
                &format!("auto(gate={gate}) vs legacy / {}", strategy.name()),
                &legacy,
                &auto,
            );
        }
    }
}

/// Lighter strategy set for the randomized end-to-end sweep (random
/// borders are dense; each case runs every strategy twice).
fn light_strategies() -> Vec<Box<dyn Strategy>> {
    vec![
        Box::new(BeamSearch),
        Box::new(BottomUpGeneralize {
            max_seeds: 2,
            max_seed_atoms: 6,
        }),
        Box::new(GreedyUcq {
            base: Box::new(BeamSearch),
            max_disjuncts: 3,
            base_pool: 8,
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6 })]

    /// Randomized scenarios: every lattice strategy returns byte-identical
    /// ranked output under both evaluators.
    #[test]
    fn randomized_scenarios_identical_across_evaluators(seed in 0u64..500) {
        let s = random_scenario(RandomParams {
            seed,
            n_individuals: 16,
            n_concept_facts: 22,
            n_role_facts: 26,
            n_concepts: 4,
            n_roles: 3,
            ..RandomParams::default()
        });
        let scoring = Scoring::accuracy();
        let limits = SearchLimits {
            max_atoms: 2,
            max_vars: 3,
            beam_width: 4,
            max_rounds: 3,
            top_k: 4,
            ..SearchLimits::default()
        };
        let task = ExplainTask::new(&s.system, &s.labels, 1, &scoring, limits).unwrap();
        for strategy in light_strategies() {
            let (legacy, guided) = run_both_modes(&task, strategy.as_ref());
            assert_reports_identical(
                &format!("random seed {seed} / {}", strategy.name()),
                &legacy,
                &guided,
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Evaluator-level property tests: guided vs legacy on random CQs/UCQs.
// These call the mode-independent entry points directly, so they need no
// mode flips and run concurrently with everything else.
// ---------------------------------------------------------------------------

fn prop_schema() -> Schema {
    let mut s = Schema::new();
    s.declare("R", 2).unwrap();
    s.declare("S", 2).unwrap();
    s.declare("A", 1).unwrap();
    s
}

fn random_db(seed: u64, n_consts: usize, n_atoms: usize) -> Database {
    let mut db = Database::new(prop_schema());
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..n_atoms {
        let c = |rng: &mut StdRng| format!("c{}", rng.gen_range(0..n_consts));
        match rng.gen_range(0..3) {
            0 => {
                let (a, b) = (c(&mut rng), c(&mut rng));
                db.insert_named("R", &[&a, &b]).unwrap();
            }
            1 => {
                let (a, b) = (c(&mut rng), c(&mut rng));
                db.insert_named("S", &[&a, &b]).unwrap();
            }
            _ => {
                let a = c(&mut rng);
                db.insert_named("A", &[&a]).unwrap();
            }
        }
    }
    db
}

/// A random CQ over the fixed schema, with repeated variables and
/// constants drawn from the database's pool so they can actually match.
fn random_cq(db: &mut Database, seed: u64, n_atoms: usize) -> SrcCq {
    let mut rng = StdRng::seed_from_u64(seed);
    let rels = [
        (db.schema().rel("R").unwrap(), 2usize),
        (db.schema().rel("S").unwrap(), 2),
        (db.schema().rel("A").unwrap(), 1),
    ];
    let mut body = Vec::with_capacity(n_atoms);
    for _ in 0..n_atoms.max(1) {
        let (rel, arity) = rels[rng.gen_range(0..rels.len())];
        let args: Vec<Term> = (0..arity)
            .map(|_| {
                if rng.gen_bool(0.75) {
                    Term::Var(VarId(rng.gen_range(0..4u32)))
                } else {
                    Term::Const(db.constant(&format!("c{}", rng.gen_range(0..6))))
                }
            })
            .collect();
        body.push(SrcAtom::new(rel, args));
    }
    let head_var = body
        .iter()
        .flat_map(|a| a.args.iter())
        .find_map(|t| t.as_var());
    let head_var = match head_var {
        Some(v) => v,
        None => {
            let (rel, _) = rels[2];
            body.push(SrcAtom::new(rel, [Term::Var(VarId(0))]));
            VarId(0)
        }
    };
    SrcCq::new(vec![head_var], body).expect("head var occurs in body")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64 })]

    /// `guided::answers` agrees with the legacy evaluator on random
    /// databases and random queries, on the full view and on a masked one
    /// (masks are where the guided access-path choice actually differs).
    #[test]
    fn guided_answers_agree_with_legacy(
        db_seed in 0u64..100_000,
        q_seed in 0u64..100_000,
        n_consts in 1usize..8,
        n_atoms_db in 0usize..25,
        n_atoms_q in 1usize..4,
    ) {
        let mut db = random_db(db_seed, n_consts, n_atoms_db);
        let cq = random_cq(&mut db, q_seed, n_atoms_q);
        let view = View::full(&db);
        prop_assert_eq!(
            guided::answers(view, &cq),
            eval::answers_legacy(view, &cq),
            "full view: query {:?} over db of {} atoms", &cq, db.len()
        );
        // Mask down to every other atom — the shape the matcher's border
        // views have (sparse, index slices mostly invisible).
        let mask: obx_util::FxHashSet<obx_srcdb::AtomId> =
            db.atom_ids().filter(|id| id.index() % 2 == 0).collect();
        let masked = View::masked(&db, &mask);
        prop_assert_eq!(
            guided::answers(masked, &cq),
            eval::answers_legacy(masked, &cq),
            "masked view: query {:?}", &cq
        );
    }

    /// Goal-directed membership agrees tuple-by-tuple, and witnesses exist
    /// on exactly the same tuples. The two evaluators may ground a body
    /// with *different* witnesses, so the guided witness is checked for
    /// validity (right relations, visible atoms) rather than equality.
    #[test]
    fn guided_satisfies_and_witness_agree_with_legacy(
        db_seed in 0u64..100_000,
        q_seed in 0u64..100_000,
    ) {
        let mut db = random_db(db_seed, 5, 20);
        let cq = random_cq(&mut db, q_seed, 2);
        let view = View::full(&db);
        let answers = eval::answers_legacy(view, &cq);
        for t in &answers {
            prop_assert!(guided::satisfies(view, &cq, t), "answer rejected: {:?}", t);
            let w = guided::witness(view, &cq, t);
            prop_assert!(w.is_some(), "answer without guided witness");
            let w = w.unwrap();
            prop_assert_eq!(w.len(), cq.body().len());
            for (atom, id) in cq.body().iter().zip(&w) {
                prop_assert_eq!(db.atom(*id).rel, atom.rel);
                prop_assert!(view.visible(*id), "witness atom outside the view");
            }
        }
        // Probe some non-answers: every unary constant tuple not in the
        // answer set must be rejected by both (only checkable for arity 1).
        if cq.arity() == 1 {
            for k in 0..6 {
                if let Some(c) = db.consts().get(&format!("c{k}")) {
                    let t = [c];
                    let is_answer = answers.contains(&t.to_vec().into_boxed_slice());
                    prop_assert_eq!(guided::satisfies(view, &cq, &t), is_answer);
                    prop_assert_eq!(guided::witness(view, &cq, &t).is_some(), is_answer);
                }
            }
        }
    }

    /// UCQ entry points agree disjunct-for-disjunct under both modes.
    #[test]
    fn ucq_answers_agree_across_modes(
        db_seed in 0u64..100_000,
        q1_seed in 0u64..100_000,
        q2_seed in 0u64..100_000,
    ) {
        let mut db = random_db(db_seed, 6, 20);
        let q1 = random_cq(&mut db, q1_seed, 2);
        let q2 = random_cq(&mut db, q2_seed, 2);
        // UCQ disjuncts must share one arity; pad with a fresh unary CQ
        // only when the draws happen to agree — otherwise test q1 alone.
        let disjuncts = if q1.arity() == q2.arity() {
            vec![q1, q2]
        } else {
            vec![q1]
        };
        let ucq: SrcUcq = disjuncts.into_iter().collect();
        let view = View::full(&db);
        let legacy = with_mode(EvalMode::Legacy, || eval::answers_ucq(view, &ucq));
        let guided = with_mode(EvalMode::Guided, || eval::answers_ucq(view, &ucq));
        prop_assert_eq!(&legacy, &guided);
        for t in &legacy {
            let sat = with_mode(EvalMode::Guided, || eval::satisfies_ucq(view, &ucq, t));
            prop_assert!(sat);
            let w = with_mode(EvalMode::Guided, || eval::witness_ucq(view, &ucq, t));
            prop_assert!(w.is_some(), "UCQ answer without witness");
        }
    }
}

//! Refinement monotonicity: the lattice invariant behind delta evaluation.
//!
//! `crate::prune`'s whole argument rests on one structural fact about the
//! refinement operators of Definition 3.7 search: on a fixed set of
//! borders, every one-step *specialization* child J-matches a **subset**
//! of its parent's labelled tuples, and every one-step *generalization*
//! child a **superset**. These tests check that invariant directly on the
//! operators the strategies actually use
//! (`obx_core::strategies::refinement`), on the paper's example and on
//! randomized scenarios — and that the restricted (parent-delta) match
//! evaluation returns bit-identical results to full evaluation while
//! invoking the evaluator strictly fewer times whenever the parent's
//! bitset is not degenerate.

use obx_core::explain::{ExplainTask, SearchLimits};
use obx_core::labels::Labels;
use obx_core::prune::RefineDir;
use obx_core::score::Scoring;
use obx_core::ScoringEngine;
use obx_datagen::random_scenario::random_query;
use obx_datagen::{random_scenario, RandomParams};
use obx_obdm::example_3_6_system;
use obx_query::OntoCq;
use proptest::prelude::*;
use rand::SeedableRng;

/// The paper's five labelled students.
const PAPER_LABELS: &str = "+ A10\n+ B80\n+ C12\n+ D50\n- E25";

/// For every one-step child of `cq` in direction `dir`: the subset (or
/// superset) invariant holds, and restricted evaluation against the
/// parent's bits equals full evaluation bit for bit. Returns how many
/// children were checked.
fn check_lattice_step(task: &ExplainTask<'_>, cq: &OntoCq, dir: RefineDir) -> usize {
    let engine = ScoringEngine::with_config(1, true);
    let prepared = task.prepared();
    let parent = match engine.disjunct(prepared, cq) {
        Ok(entry) => entry,
        // A parent the mapping cannot compile has no children to check.
        Err(_) => return 0,
    };
    let consts = prepared.relevant_constants(task.limits().max_constants);
    let children = match dir {
        RefineDir::Specialize => {
            obx_core::strategies::refinement::specializations(task, cq, &consts)
        }
        RefineDir::Generalize => obx_core::strategies::refinement::generalizations(task, cq),
    };
    let mut checked = 0;
    for child in &children {
        let full = match engine.disjunct(prepared, child) {
            Ok(entry) => entry,
            Err(_) => continue,
        };
        match dir {
            RefineDir::Specialize => assert!(
                full.bits.is_subset_of(&parent.bits),
                "specialization child matched a tuple its parent missed: {child:?} ⊄ {cq:?}"
            ),
            RefineDir::Generalize => assert!(
                parent.bits.is_subset_of(&full.bits),
                "generalization child missed a tuple its parent matched: {child:?} ⊅ {cq:?}"
            ),
        }
        // Delta evaluation must reproduce the full bitset exactly, and
        // only ever touch the tuples the direction says are undecided.
        let (restricted, evaluated) =
            prepared.match_bits_restricted(&full.compiled, &parent.bits, dir);
        assert_eq!(
            restricted, full.bits,
            "restricted evaluation diverges from full on {child:?}"
        );
        let undecided = match dir {
            RefineDir::Specialize => {
                parent.bits.stats().pos_matched + parent.bits.stats().neg_matched
            }
            RefineDir::Generalize => {
                let s = parent.bits.stats();
                (s.pos_total - s.pos_matched) + (s.neg_total - s.neg_matched)
            }
        };
        assert_eq!(
            evaluated, undecided,
            "restricted evaluation touched a decided tuple on {child:?}"
        );
        checked += 1;
    }
    checked
}

#[test]
fn paper_example_children_respect_monotonicity() {
    let mut sys = example_3_6_system();
    let labels = Labels::parse(sys.db_mut(), PAPER_LABELS).unwrap();
    let seed = sys.parse_cq("q(x) :- likes(x, y)").unwrap();
    let scoring = Scoring::accuracy();
    let task = ExplainTask::new(&sys, &labels, 1, &scoring, SearchLimits::default()).unwrap();

    // Walk two levels of the specialization lattice from the most general
    // start the beam strategy uses, checking each parent→child edge; then
    // generalize the deepest children back up and check the dual.
    let consts = task
        .prepared()
        .relevant_constants(task.limits().max_constants);
    let mut frontier: Vec<OntoCq> = vec![seed];
    let mut spec_edges = 0;
    for _ in 0..2 {
        let mut next = Vec::new();
        for cq in &frontier {
            spec_edges += check_lattice_step(&task, cq, RefineDir::Specialize);
            next.extend(obx_core::strategies::refinement::specializations(
                &task, cq, &consts,
            ));
        }
        next.truncate(12);
        frontier = next;
    }
    assert!(spec_edges > 0, "no specialization edges were checked");

    let mut gen_edges = 0;
    for cq in frontier.iter().take(8) {
        gen_edges += check_lattice_step(&task, cq, RefineDir::Generalize);
    }
    assert!(gen_edges > 0, "no generalization edges were checked");
}

fn scenario_params(seed: u64) -> RandomParams {
    RandomParams {
        seed,
        n_individuals: 14,
        n_concept_facts: 20,
        n_role_facts: 22,
        n_concepts: 4,
        n_roles: 3,
        ..RandomParams::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8 })]

    /// On randomized scenarios and randomized starting queries, every
    /// one-step specialization stays a subset and every one-step
    /// generalization a superset, with restricted == full evaluation.
    #[test]
    fn randomized_children_respect_monotonicity(seed in 0u64..500, atoms in 1usize..3) {
        let s = random_scenario(scenario_params(seed));
        let scoring = Scoring::accuracy();
        let task = ExplainTask::new(
            &s.system, &s.labels, 1, &scoring, SearchLimits::default(),
        ).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xbeef);
        for _ in 0..3 {
            let q = random_query(&s.system, &mut rng, atoms);
            for cq in q.disjuncts() {
                check_lattice_step(&task, cq, RefineDir::Specialize);
                check_lattice_step(&task, cq, RefineDir::Generalize);
            }
        }
    }
}

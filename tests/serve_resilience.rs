//! Resilience proof for the always-on explanation service.
//!
//! These tests run a real `obx-serve` server over real sockets and throw
//! chaos at it — injected panics, pre-fired cancellations, slow-loris
//! clients, reload storms, overload — and assert the three service
//! invariants:
//!
//! 1. the process never crashes or deadlocks: after every storm the
//!    server still answers a plain request correctly;
//! 2. shed/failed requests get *structured* responses (stable `OBX32x`
//!    codes, degraded-termination-shaped bodies), never a dropped
//!    connection with work half-done;
//! 3. every completed `/explain` body is **byte-identical** to the
//!    one-shot CLI/service output for the epoch snapshot named in its
//!    `x-obx-epoch` header, no matter how many reloads raced it.
//!
//! The fault hooks (`x-obx-fault: panic | cancel | sleep:<ms>`) are
//! compiled via the serve crate's `fault-injection` feature, which this
//! test crate enables.

use obx_core::budget::CancelToken;
use obx_core::scenario::write_paper_example;
use obx_core::service::{run_explain, ExplainRequest};
use obx_serve::{start, ServeConfig, ServerHandle};
use proptest::prelude::*;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------- helpers

fn scratch_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("obx-serve-resilience-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Two valid scenario variants over the paper example: variant 0 is the
/// paper labelling, variant 1 flips D50 to negative — different borders,
/// different scores, so serving the wrong epoch's answer is caught.
fn write_variant(dir: &Path, variant: usize) {
    write_paper_example(dir).unwrap();
    if variant == 1 {
        std::fs::write(
            dir.join("labels.obx"),
            "+ A10\n+ B80\n+ C12\n- D50\n- E25\n",
        )
        .unwrap();
    }
}

/// The canonical request the chaos workers send.
fn chaos_request() -> ExplainRequest {
    ExplainRequest {
        top: 3,
        ..ExplainRequest::default()
    }
}

/// The one-shot service output (== CLI stdout) for a variant: the oracle
/// every served body is compared against, recomputed from a private copy
/// of the variant's files.
fn expected_output(variant: usize) -> String {
    let dir = scratch_dir(&format!("oracle-{variant}"));
    write_variant(&dir, variant);
    let scenario = obx_core::scenario::load_dir(&dir).unwrap();
    let req = chaos_request();
    let out = run_explain(
        &scenario.system,
        &scenario.labels,
        &req,
        req.budget(&CancelToken::new()),
    )
    .unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    out.stdout
}

/// One-shot HTTP client: returns `(status, lowercased headers, body)`.
fn http(
    addr: SocketAddr,
    method: &str,
    path: &str,
    extra: &[(&str, &str)],
    body: &str,
) -> (u16, HashMap<String, String>, String) {
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut stream = stream;
    let mut req = format!(
        "{method} {path} HTTP/1.1\r\nhost: t\r\nconnection: close\r\ncontent-length: {}\r\n",
        body.len()
    );
    for (name, value) in extra {
        req.push_str(&format!("{name}: {value}\r\n"));
    }
    req.push_str("\r\n");
    req.push_str(body);
    stream.write_all(req.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let (head, payload) = raw
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("no header/body split in {raw:?}"));
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparsable status line in {head:?}"));
    let mut headers = HashMap::new();
    for line in head.lines().skip(1) {
        if let Some((name, value)) = line.split_once(':') {
            headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_owned());
        }
    }
    (status, headers, payload.to_owned())
}

fn epoch_of(headers: &HashMap<String, String>) -> u64 {
    headers
        .get("x-obx-epoch")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("response missing x-obx-epoch: {headers:?}"))
}

/// Shared epoch→variant journal. Epoch 1 (boot) is always variant 0; the
/// reloader records each reload's resulting epoch. Lookups spin briefly:
/// a worker can observe a fresh epoch in a response header moments before
/// the reloader's own `/reload` response returns.
#[derive(Clone)]
struct EpochJournal(Arc<Mutex<HashMap<u64, usize>>>);

impl EpochJournal {
    fn new() -> Self {
        let mut map = HashMap::new();
        map.insert(1u64, 0usize);
        Self(Arc::new(Mutex::new(map)))
    }

    fn record(&self, epoch: u64, variant: usize) {
        self.0.lock().unwrap().insert(epoch, variant);
    }

    fn variant_of(&self, epoch: u64) -> usize {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if let Some(v) = self.0.lock().unwrap().get(&epoch) {
                return *v;
            }
            assert!(
                Instant::now() < deadline,
                "epoch {epoch} never appeared in the reload journal"
            );
            thread::sleep(Duration::from_millis(2));
        }
    }
}

fn chaos_config() -> ServeConfig {
    ServeConfig {
        max_inflight: 4,
        queue_depth: 32,
        queue_wait_ms: 10_000,
        read_timeout_ms: 400,
        write_timeout_ms: 2_000,
        grace_ms: 5_000,
        ..ServeConfig::default()
    }
}

/// Asserts a served 200 body matches the one-shot oracle for the epoch
/// the response says it ran on.
fn assert_byte_identical(
    body: &str,
    headers: &HashMap<String, String>,
    journal: &EpochJournal,
    oracles: &[String; 2],
) {
    let epoch = epoch_of(headers);
    let variant = journal.variant_of(epoch);
    assert_eq!(
        body, oracles[variant],
        "epoch {epoch} (variant {variant}): served body diverged from one-shot output"
    );
}

// ------------------------------------------------------------------ chaos

#[test]
fn server_survives_chaos_and_stays_byte_identical_per_epoch() {
    let oracles = [expected_output(0), expected_output(1)];
    let dir = scratch_dir("chaos");
    write_variant(&dir, 0);
    let server = start(&dir, chaos_config()).unwrap();
    let addr = server.addr();
    let journal = EpochJournal::new();
    let stop = Arc::new(AtomicBool::new(false));
    let mut threads = Vec::new();

    // Reload storm: alternate the scenario variants under live traffic.
    {
        let dir = dir.clone();
        let journal = journal.clone();
        threads.push(thread::spawn(move || {
            for i in 1..=6usize {
                let variant = i % 2;
                write_variant(&dir, variant);
                let (status, headers, body) = http(addr, "POST", "/reload", &[], "");
                assert_eq!(status, 200, "reload {i}: {body}");
                journal.record(epoch_of(&headers), variant);
                thread::sleep(Duration::from_millis(25));
            }
        }));
    }

    // Honest workers: concurrent explains, each checked byte-for-byte
    // against the oracle of the epoch it actually ran on.
    for w in 0..3 {
        let journal = journal.clone();
        let oracles = oracles.clone();
        let stop = Arc::clone(&stop);
        threads.push(thread::spawn(move || {
            let body_json = format!("{{\"top\": 3, \"client\": \"worker-{w}\"}}");
            let mut served = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let (status, headers, body) = http(addr, "POST", "/explain", &[], &body_json);
                match status {
                    200 => {
                        assert_byte_identical(&body, &headers, &journal, &oracles);
                        served += 1;
                    }
                    429 | 503 => {
                        assert!(body.contains("OBX32"), "shed body unstructured: {body}")
                    }
                    other => panic!("worker-{w}: unexpected status {other}: {body}"),
                }
            }
            assert!(served > 0, "worker-{w} never got a single response through");
        }));
    }

    // Saboteur: injected panics must be quarantined, never fatal.
    threads.push(thread::spawn(move || {
        for _ in 0..8 {
            let (status, _, body) =
                http(addr, "POST", "/explain", &[("x-obx-fault", "panic")], "{}");
            assert_eq!(status, 500, "{body}");
            assert!(body.contains("OBX323"), "{body}");
        }
    }));

    // Mid-request cancellation: the pre-fired token degrades the run to
    // best-so-far with the CLI's exact footer, exit 2 in the header.
    threads.push(thread::spawn(move || {
        for _ in 0..8 {
            let (status, headers, body) =
                http(addr, "POST", "/explain", &[("x-obx-fault", "cancel")], "{}");
            assert_eq!(status, 200, "{body}");
            assert_eq!(headers.get("x-obx-exit").map(String::as_str), Some("2"));
            assert!(body.contains("search stopped early: cancelled"), "{body}");
        }
    }));

    // Slow loris: dribble half a request and stall. The read timeout must
    // cut each one off; the connection dies with a structured 408 (or a
    // plain close), and the server never wedges a handler thread on it.
    threads.push(thread::spawn(move || {
        for _ in 0..4 {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream
                .set_read_timeout(Some(Duration::from_secs(10)))
                .unwrap();
            stream.write_all(b"POST /explain HTT").unwrap();
            thread::sleep(Duration::from_millis(600)); // > read_timeout_ms
            let mut out = String::new();
            let _ = stream.read_to_string(&mut out);
            if !out.is_empty() {
                assert!(out.contains("OBX305"), "loris got: {out}");
            }
        }
    }));

    // Let the chaos overlap, then stop the workers and join everything.
    thread::sleep(Duration::from_millis(700));
    stop.store(true, Ordering::Relaxed);
    for t in threads {
        t.join().unwrap();
    }

    // Invariant 1: after the storm the server still answers, correctly.
    let (status, headers, body) = http(addr, "POST", "/explain", &[], "{\"top\": 3}");
    assert_eq!(status, 200, "{body}");
    assert_byte_identical(&body, &headers, &journal, &oracles);

    // And the damage is visible in the metrics.
    let (_, _, metrics) = http(addr, "GET", "/metrics", &[], "");
    assert!(metrics.contains("serve/quarantined"), "{metrics}");
    assert!(metrics.contains("serve/reloads"), "{metrics}");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

// --------------------------------------------------------------- overload

#[test]
fn overload_sheds_with_structured_codes_and_recovers() {
    let dir = scratch_dir("overload");
    write_variant(&dir, 0);
    let config = ServeConfig {
        max_inflight: 1,
        queue_depth: 1,
        queue_wait_ms: 150,
        read_timeout_ms: 3_000,
        grace_ms: 3_000,
        ..ServeConfig::default()
    };
    let server = start(&dir, config).unwrap();
    let addr = server.addr();

    // t1 occupies the single execution slot for 900ms.
    let t1 = thread::spawn(move || {
        http(
            addr,
            "POST",
            "/explain",
            &[("x-obx-fault", "sleep:900")],
            "{}",
        )
    });
    thread::sleep(Duration::from_millis(150));

    // t2 fills the single queue slot; its 150ms patience expires long
    // before t1 finishes → shed as a queue-wait timeout.
    let t2 = thread::spawn(move || http(addr, "POST", "/explain", &[], "{}"));
    thread::sleep(Duration::from_millis(50));

    // t3 finds the queue full → shed immediately.
    let (status, headers, body) = http(addr, "POST", "/explain", &[], "{}");
    assert_eq!(status, 429, "{body}");
    assert!(body.contains("OBX320"), "{body}");
    assert!(
        body.contains("\"termination\":\"degraded"),
        "shed body must be degraded-termination shaped: {body}"
    );
    assert!(headers.contains_key("retry-after"), "{headers:?}");

    let (status, _, body) = t2.join().unwrap();
    assert_eq!(status, 429, "{body}");
    assert!(body.contains("OBX321"), "{body}");

    // The occupant itself completes fine, and capacity comes back.
    let (status, _, body) = t1.join().unwrap();
    assert_eq!(status, 200, "{body}");
    let (status, _, body) = http(addr, "POST", "/explain", &[], "{}");
    assert_eq!(status, 200, "{body}");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

// ------------------------------------------------------------------ drain

#[test]
fn drain_finishes_inflight_work_then_refuses_new_requests() {
    let dir = scratch_dir("drain");
    write_variant(&dir, 0);
    let config = ServeConfig {
        max_inflight: 2,
        read_timeout_ms: 400,
        grace_ms: 5_000,
        ..ServeConfig::default()
    };
    let server = start(&dir, config).unwrap();
    let addr = server.addr();

    // An in-flight request started before the drain...
    let inflight = thread::spawn(move || {
        http(
            addr,
            "POST",
            "/explain",
            &[("x-obx-fault", "sleep:500")],
            "{}",
        )
    });
    thread::sleep(Duration::from_millis(150));

    // ...survives the drain (grace window) and completes normally.
    server.drain();
    let (status, _, body) = inflight.join().unwrap();
    assert_eq!(
        status, 200,
        "in-flight request must finish through drain: {body}"
    );

    // New work is refused: connection refused outright, or a structured
    // draining shed if a racing connection slipped in.
    if let Ok(mut stream) = TcpStream::connect(addr) {
        let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
        let _ = stream.write_all(
            b"POST /explain HTTP/1.1\r\nconnection: close\r\ncontent-length: 2\r\n\r\n{}",
        );
        let mut out = String::new();
        let _ = stream.read_to_string(&mut out);
        if !out.is_empty() {
            assert!(
                out.contains("503") || out.contains("OBX322"),
                "post-drain response not a structured refusal: {out}"
            );
        }
    }
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

// ----------------------------------------- epoch-consistency property

proptest! {
    // Each case boots a real server; keep the count modest.
    #![proptest_config(ProptestConfig { cases: 3 })]

    /// Satellite invariant: under interleaved `reload` and N concurrent
    /// `explain`s, every response reflects exactly one epoch — the body
    /// equals the one-shot output recomputed for the scenario variant of
    /// the epoch named in the response header. No torn snapshots, no
    /// cross-epoch mixing.
    #[test]
    fn interleaved_reloads_give_every_response_one_consistent_epoch(
        workers in 2usize..5,
        reloads in 2usize..6,
        requests_per_worker in 2usize..5,
    ) {
        let oracles = [expected_output(0), expected_output(1)];
        let dir = scratch_dir("prop");
        write_variant(&dir, 0);
        let server = start(&dir, chaos_config()).unwrap();
        let addr = server.addr();
        let journal = EpochJournal::new();
        let mut threads = Vec::new();

        {
            let dir = dir.clone();
            let journal = journal.clone();
            threads.push(thread::spawn(move || {
                for i in 1..=reloads {
                    let variant = i % 2;
                    write_variant(&dir, variant);
                    let (status, headers, body) = http(addr, "POST", "/reload", &[], "");
                    assert_eq!(status, 200, "{body}");
                    journal.record(epoch_of(&headers), variant);
                    thread::sleep(Duration::from_millis(10));
                }
            }));
        }
        for w in 0..workers {
            let journal = journal.clone();
            let oracles = oracles.clone();
            threads.push(thread::spawn(move || {
                let body_json = format!("{{\"top\": 3, \"client\": \"prop-{w}\"}}");
                for _ in 0..requests_per_worker {
                    let (status, headers, body) =
                        http(addr, "POST", "/explain", &[], &body_json);
                    assert_eq!(status, 200, "{body}");
                    assert_byte_identical(&body, &headers, &journal, &oracles);
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

// ------------------------------------------------- handle housekeeping

#[test]
fn dropping_the_handle_without_shutdown_still_cleans_up() {
    let dir = scratch_dir("drop");
    write_variant(&dir, 0);
    let addr;
    {
        let server: ServerHandle = start(&dir, chaos_config()).unwrap();
        addr = server.addr();
        let (status, _, _) = http(addr, "GET", "/healthz", &[], "");
        assert_eq!(status, 200);
        // No shutdown(): Drop must drain and join.
    }
    // The listener is gone: connecting now fails (or is reset instantly).
    let after = TcpStream::connect(addr);
    if let Ok(mut stream) = after {
        let mut out = String::new();
        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
        let n = stream.read_to_string(&mut out);
        assert!(n.unwrap_or(0) == 0, "stale listener answered: {out}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

//! Exact reproduction of every number and claim in the paper's examples.
//!
//! * Example 3.3 — border layers (experiment E1);
//! * Example 3.6 — the J-match matrix of q1/q2/q3 (E2);
//! * Example 3.8 — the Z-scores under both instantiations and the two
//!   winners (E3), including the documented erratum on Z1(q2);
//! * Proposition 3.5 — radius monotonicity (E4).

use obx_core::explain::{ExplainTask, SearchLimits};
use obx_core::matcher::PreparedLabels;
use obx_core::paper_example::{PaperExample, PAPER_RADIUS};
use obx_srcdb::{parse_database, parse_schema, AtomId, Border};

/// Example 3.3: D = {R(a,b), S(a,c), Z(c,d), W(d,e), W(e,h), R(f,g)},
/// t = ⟨a⟩: W0 = {R(a,b), S(a,c)}, W1 = {Z(c,d)}, W2 = {W(d,e)}.
#[test]
fn e1_example_3_3_border_layers() {
    let schema = parse_schema("R/2 S/2 Z/2 W/2").unwrap();
    let db = parse_database(
        schema,
        "R(a, b)\nS(a, c)\nZ(c, d)\nW(d, e)\nW(e, h)\nR(f, g)",
    )
    .unwrap();
    let a = db.consts().get("a").unwrap();
    let border = Border::compute(&db, &[a], 2);
    let layer = |j: usize| -> Vec<String> {
        let mut v: Vec<String> = border
            .layer(j)
            .unwrap()
            .iter()
            .map(|&id| db.atom(id).render(db.schema(), db.consts()))
            .collect();
        v.sort();
        v
    };
    assert_eq!(layer(0), vec!["R(a, b)", "S(a, c)"]);
    assert_eq!(layer(1), vec!["Z(c, d)"]);
    assert_eq!(layer(2), vec!["W(d, e)"]);
    assert_eq!(border.len(), 4, "B_{{t,2}} has the paper's four atoms");
    assert!(!border.atoms().contains(&AtomId(5)), "R(f,g) stays outside");
}

/// Example 3.6: q1 matches {A10, B80, D50}; q2 matches {A10, B80, E25};
/// q3 matches {C12, D50}. (The borders we compute follow Definition 3.2
/// literally and are supersets of the ones *listed* in the example — the
/// listing omits sibling enrolments reachable through shared subject
/// constants — but every match claim is unchanged; see EXPERIMENTS.md.)
#[test]
fn e2_example_3_6_match_matrix() {
    let ex = PaperExample::new();
    let matrix = ex.match_matrix();
    let row = |name: &str| -> Vec<String> {
        matrix
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, m)| m.clone())
            .unwrap()
    };
    assert_eq!(row("q1"), vec!["A10", "B80", "D50"]);
    assert_eq!(row("q2"), vec!["A10", "B80", "E25"]);
    assert_eq!(row("q3"), vec!["C12", "D50"]);
}

/// Example 3.6 (continued): the fractions quoted in prose — q1 matches 3/4
/// of λ⁺ and none of λ⁻; q2 matches 2/4 and all of λ⁻; q3 matches 2/4 and
/// none of λ⁻ — and "there is no CQ that perfectly separates".
#[test]
fn e2_example_3_6_fractions() {
    let ex = PaperExample::new();
    let prepared = ex.prepared();
    let stats = |q| prepared.stats_of(q).unwrap();
    let s1 = stats(&ex.q1);
    assert_eq!((s1.pos_matched, s1.pos_total, s1.neg_matched), (3, 4, 0));
    let s2 = stats(&ex.q2);
    assert_eq!((s2.pos_matched, s2.pos_total, s2.neg_matched), (2, 4, 1));
    let s3 = stats(&ex.q3);
    assert_eq!((s3.pos_matched, s3.pos_total, s3.neg_matched), (2, 4, 0));
    assert!(!s1.perfect() && !s2.perfect() && !s3.perfect());
}

/// Example 3.8: the printed Z-scores. Paper values: Z1(q1)=0.693,
/// Z1(q3)=0.833, Z2(q1)=0.716, Z2(q2)=0.5, Z2(q3)=0.7; winners q3 under Z1
/// and q1 under Z2. Erratum: the paper prints Z1(q2)=0.333, but its own
/// F gives (1·0.5 + 1·0 + 1·1)/3 = 0.5 (consistent with the printed
/// Z2(q2)=0.5, which confirms f_{δ5}(q2)=1); the winner is unaffected.
#[test]
fn e3_example_3_8_scores_and_winners() {
    let ex = PaperExample::new();
    let get = |rows: &[(&str, obx_core::explain::Explanation)], n: &str| {
        rows.iter().find(|(name, _)| *name == n).unwrap().1.score
    };
    let z1 = ex.scores(&ex.z1());
    assert!(
        (get(&z1, "q1") - 0.694).abs() < 1e-3,
        "paper: 0.693 (rounding)"
    );
    assert!(
        (get(&z1, "q2") - 0.5).abs() < 1e-12,
        "paper prints 0.333 — erratum"
    );
    assert!((get(&z1, "q3") - 0.833).abs() < 1e-3);
    let w1 = z1
        .iter()
        .max_by(|a, b| a.1.score.partial_cmp(&b.1.score).unwrap())
        .unwrap()
        .0;
    assert_eq!(w1, "q3", "Z1 winner");

    let z2 = ex.scores(&ex.z2());
    assert!((get(&z2, "q1") - 0.71666).abs() < 1e-4);
    assert!((get(&z2, "q2") - 0.5).abs() < 1e-12);
    assert!((get(&z2, "q3") - 0.7).abs() < 1e-12);
    let w2 = z2
        .iter()
        .max_by(|a, b| a.1.score.partial_cmp(&b.1.score).unwrap())
        .unwrap()
        .0;
    assert_eq!(w2, "q1", "Z2 winner");
}

/// Proposition 3.5: if q J-matches B_{t,r}, it J-matches B_{t,r+1} —
/// checked for every paper query, every labelled tuple, radii 0..=4.
#[test]
fn e4_proposition_3_5_monotonicity() {
    let ex = PaperExample::new();
    for (name, q) in ex.queries() {
        let compiled = ex.system.spec().compile(q).unwrap();
        let tuples: Vec<_> = ex
            .labels
            .pos()
            .iter()
            .chain(ex.labels.neg().iter())
            .cloned()
            .collect();
        for t in &tuples {
            let mut prev = false;
            for r in 0..=4usize {
                let border = Border::compute(ex.system.db(), t, r);
                let now = compiled.member(border.view(ex.system.db()), t);
                assert!(
                    !prev || now,
                    "{name} lost a match when growing r to {r} for {:?}",
                    t
                );
                prev = now;
            }
        }
    }
}

/// The framework's Definition 3.7 search, run on the paper's instance,
/// must do at least as well as the best of the paper's own candidates.
#[test]
fn definition_3_7_search_beats_or_ties_the_papers_candidates() {
    use obx_core::explain::Strategy;
    let ex = PaperExample::new();
    let z1 = ex.z1();
    let task = ExplainTask::new(
        &ex.system,
        &ex.labels,
        PAPER_RADIUS,
        &z1,
        SearchLimits::default(),
    )
    .unwrap();
    let found = obx_core::strategies::BeamSearch.explain(&task).unwrap();
    assert!(
        found[0].score >= 0.833 - 1e-9,
        "beam below q3: {}",
        found[0].score
    );
}

/// The borders of Example 3.6 at radius 1 are supersets of the listed ones
/// — this pins down the documented difference explicitly so a future
/// semantics change is caught.
#[test]
fn example_3_6_borders_follow_definition_3_2_literally() {
    let ex = PaperExample::new();
    let prepared = PreparedLabels::new(&ex.system, &ex.labels, PAPER_RADIUS);
    let a10 = ex.system.db().consts().get("A10").unwrap();
    let (_, b_a10) = prepared
        .pos()
        .iter()
        .find(|(t, _)| t[0] == a10)
        .expect("A10 labelled");
    let rendered: Vec<String> = {
        let mut v: Vec<String> = b_a10
            .iter()
            .map(|&id| {
                ex.system
                    .db()
                    .atom(id)
                    .render(ex.system.db().schema(), ex.system.db().consts())
            })
            .collect();
        v.sort();
        v
    };
    // The paper lists these three…
    for listed in ["STUD(A10)", "ENR(A10, Math, TV)", "LOC(TV, Rome)"] {
        assert!(rendered.iter().any(|s| s == listed), "{listed} missing");
    }
    // …and Definition 3.2 additionally reaches the sibling Math enrolments.
    assert!(rendered.iter().any(|s| s == "ENR(B80, Math, Sap)"));
    assert!(rendered.iter().any(|s| s == "ENR(E25, Math, Pol)"));
}

//! Observability-core invariants.
//!
//! The recorder must (a) aggregate spans by path with parents listed
//! before children, (b) merge counters additively and `count_max`
//! counters by maximum, (c) estimate histogram quantiles within the
//! documented 25% envelope of a sorted-vector oracle, (d) be fully
//! inert when disabled, and (e) — the load-bearing one — never change
//! ranked explanations: a profiled run and an unprofiled run of the
//! same task return byte-identical queries and scores.

use obx_core::criteria::Criterion;
use obx_core::explain::{ExplainReport, ExplainTask, SearchLimits, Strategy};
use obx_core::labels::Labels;
use obx_core::score::{ScoreExpr, Scoring};
use obx_core::strategies::{BeamSearch, BottomUpGeneralize, ExhaustiveSearch, GreedyUcq};
use obx_core::ScoringEngine;
use obx_util::obs::{histogram, Recorder};
use proptest::prelude::*;
use std::sync::Arc;

#[test]
fn spans_aggregate_by_path_in_entry_order() {
    let rec = Recorder::new();
    if !rec.is_enabled() {
        return; // compiled without the `obs` feature or OBX_OBS=0
    }
    {
        let _root = rec.enter("explain");
        let _phase = rec.enter_phase("explain/search");
        for i in 0..3 {
            let mut k = rec.kernel("rewrite");
            k.count("disjuncts", 10 + i);
            k.count_max("frontier", 5 * (i + 1));
        }
        let _k2 = rec.kernel("chase");
    }
    let profile = rec.profile();
    let paths: Vec<&str> = profile.spans.iter().map(|s| s.path.as_str()).collect();
    // Entry order, parents before children, one aggregate per path.
    assert_eq!(
        paths,
        [
            "explain",
            "explain/search",
            "explain/search/rewrite",
            "explain/search/chase"
        ]
    );
    let rw = profile
        .span("explain/search/rewrite")
        .expect("rewrite span");
    assert_eq!(
        rw.count, 3,
        "three kernel invocations aggregate into one span"
    );
    assert_eq!(
        rw.counter("disjuncts"),
        10 + 11 + 12,
        "counters merge additively"
    );
    assert_eq!(rw.counter("frontier"), 15, "count_max merges by maximum");
    assert_eq!(rw.depth(), 2);
    assert_eq!(rw.name(), "rewrite");
    // Children iteration sees exactly the two kernels under the phase.
    let kids: Vec<&str> = profile
        .children_of("explain/search")
        .map(|s| s.name())
        .collect();
    assert_eq!(kids, ["rewrite", "chase"]);
    // Exporters stay in sync with the span list.
    let json = profile.to_json();
    assert!(json.contains("\"explain/search/rewrite\""));
    assert!(profile.render_tree().contains("rewrite"));
    assert!(profile.to_flamegraph().contains("explain;search;rewrite"));
}

#[test]
fn disabled_recorder_is_inert() {
    let rec = Recorder::disabled();
    assert!(!rec.is_enabled());
    {
        let mut s = rec.enter("explain");
        assert!(!s.is_live());
        s.count("x", 1);
        let _k = rec.kernel("rewrite");
        rec.count("explain", "y", 2);
        rec.gauge("engine", "z", 3);
        rec.gauge_in_phase("engine", "z", 3);
    }
    assert!(
        rec.profile().is_empty(),
        "disabled recorder records nothing"
    );
    assert_eq!(rec.profile().to_json(), "{\"spans\":[]}");
}

proptest! {
    /// Histogram quantiles vs a sorted-vector oracle: the estimate is
    /// the upper bound of the oracle's bucket, so `oracle ≤ est ≤
    /// oracle + oracle/4` (exact below 4).
    #[test]
    fn histogram_quantile_tracks_oracle(
        seed in 0u64..1_000,
        n in 1usize..400,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        // Registry histograms are process-wide and dedupe by name, so a
        // reused name would accumulate across cases; lease a unique name
        // per case instead (the handle intentionally leaks, like any
        // registry metric).
        let name: &'static str = Box::leak(format!("test.obs.q{seed}.{n}").into_boxed_str());
        let h = histogram(name);
        let mut oracle: Vec<u64> = Vec::with_capacity(n);
        for _ in 0..n {
            // Span several octaves including the exact small-value range.
            let v = match rng.gen_range(0..3u32) {
                0 => rng.gen_range(0..4u64),
                1 => rng.gen_range(0..1_000u64),
                _ => rng.gen_range(0..1_000_000u64),
            };
            h.record(v);
            oracle.push(v);
        }
        if h.count() > 0 {
            // (Zero means observability is disabled in this build.)
            oracle.sort_unstable();
            for &q in &[0.0, 0.5, 0.95, 0.99, 1.0] {
                let rank = ((q * n as f64).ceil() as usize).max(1);
                let want = oracle[rank - 1];
                let got = h.quantile(q);
                prop_assert!(got >= want, "q={}: estimate {} below oracle {}", q, got, want);
                prop_assert!(
                    got - want <= want / 4,
                    "q={}: estimate {} beyond 25% envelope of oracle {}", q, got, want
                );
            }
            prop_assert_eq!(h.sum(), oracle.iter().sum::<u64>());
        }
    }
}

fn explain_all(with_recorder: bool) -> Vec<ExplainReport> {
    let mut sys = obx_obdm::example_3_6_system();
    let labels = Labels::parse(sys.db_mut(), "+ A10\n+ B80\n+ C12\n+ D50\n- E25").expect("labels");
    let scoring = Scoring::new(
        vec![Criterion::PosCoverage, Criterion::NegAvoidance],
        ScoreExpr::weighted_average(&[1.0, 1.0]),
    );
    let limits = SearchLimits {
        max_atoms: 2,
        max_vars: 3,
        max_constants: 4,
        beam_width: 6,
        max_rounds: 4,
        top_k: 5,
    };
    let strategies: Vec<Box<dyn Strategy>> = vec![
        Box::new(BeamSearch),
        Box::new(BottomUpGeneralize::default()),
        Box::new(ExhaustiveSearch::default()),
        Box::new(GreedyUcq::default()),
    ];
    strategies
        .iter()
        .map(|s| {
            let mut task = ExplainTask::new(&sys, &labels, 1, &scoring, limits)
                .expect("task")
                .with_engine(Arc::new(ScoringEngine::with_incremental(true)));
            if with_recorder {
                task = task.with_budget(
                    obx_core::budget::SearchBudget::unlimited().with_recorder(Recorder::new()),
                );
            }
            s.explain_with_status(&task).expect("search")
        })
        .collect()
}

/// The acceptance bar for instrumentation: profiling on vs off yields
/// byte-identical ranked explanations for every strategy.
#[test]
fn profiling_does_not_change_explanations() {
    let profiled = explain_all(true);
    let plain = explain_all(false);
    assert_eq!(profiled.len(), plain.len());
    for (a, b) in profiled.iter().zip(plain.iter()) {
        assert_eq!(a.explanations.len(), b.explanations.len());
        for (x, y) in a.explanations.iter().zip(b.explanations.iter()) {
            assert_eq!(x.query, y.query);
            assert_eq!(
                x.score.to_bits(),
                y.score.to_bits(),
                "scores must be bit-identical"
            );
        }
        assert_eq!(a.pruned, b.pruned);
        assert_eq!(a.quarantined, b.quarantined);
        // Only the profiled run carries a profile (when obs is enabled).
        if obx_util::obs::enabled() {
            assert!(!a.profile.is_empty());
        }
        assert!(b.profile.is_empty());
    }
}

/// `OBX_OBS=0` must make a fresh recorder inert process-wide. The switch
/// is latched on first use, so probe it in a child process.
#[test]
fn obx_obs_env_disables_recorder() {
    if std::env::var("OBX_OBS_CHILD").is_ok() {
        let rec = Recorder::new();
        drop(rec.enter("explain"));
        assert!(!rec.is_enabled());
        assert!(rec.profile().is_empty());
        return;
    }
    let exe = std::env::current_exe().expect("test exe");
    let out = std::process::Command::new(exe)
        .args(["obx_obs_env_disables_recorder", "--exact", "--nocapture"])
        .env("OBX_OBS", "0")
        .env("OBX_OBS_CHILD", "1")
        .output()
        .expect("spawn child test");
    assert!(
        out.status.success(),
        "child run with OBX_OBS=0 failed:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

//! Equivalence of the shared scoring engine with the uncached matcher.
//!
//! The [`ScoringEngine`] memoizes compiled disjuncts keyed by canonical
//! form and derives UCQ stats by OR-ing per-disjunct match bitsets. These
//! tests pin the contract that makes those shortcuts sound: on Example 3.6
//! and on randomized generated scenarios, the engine's `MatchStats` are
//! bit-identical to the uncached [`PreparedLabels`] path — including
//! unions assembled purely from cached bitsets — and Proposition 3.5's
//! radius monotonicity survives the caching layer.

use obx_core::matcher::PreparedLabels;
use obx_core::paper_example::PaperExample;
use obx_core::ScoringEngine;
use obx_datagen::random_scenario::random_query;
use obx_datagen::{random_scenario, RandomParams};
use obx_query::OntoUcq;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Engine stats equal uncached stats on the paper's three queries, and on
/// every pairwise union of them (exercising bitset OR-composition).
#[test]
fn example_3_6_engine_matches_uncached() {
    let ex = PaperExample::new();
    let prepared = ex.prepared();
    let engine = ScoringEngine::new();

    for (name, q) in ex.queries() {
        let cached = engine.stats_ucq(&prepared, q).unwrap();
        let plain = prepared.stats_of(q).unwrap();
        assert_eq!(cached, plain, "stats diverge on {name}");
    }
    for (na, qa) in ex.queries() {
        for (nb, qb) in ex.queries() {
            let mut union = qa.clone();
            for d in qb.disjuncts() {
                union.push(d.clone());
            }
            let cached = engine.stats_ucq(&prepared, &union).unwrap();
            let plain = prepared.stats_of(&union).unwrap();
            assert_eq!(cached, plain, "union stats diverge on {na} ∪ {nb}");
        }
    }
    // Every disjunct was already cached by the singleton passes, so the
    // union passes above ran entirely on bitset ORs: no new evaluations.
    let evals_after_unions = engine.eval_calls();
    for (_, q) in ex.queries() {
        engine.stats_ucq(&prepared, q).unwrap();
    }
    assert_eq!(
        engine.eval_calls(),
        evals_after_unions,
        "re-scoring cached queries must not re-evaluate"
    );
    assert!(engine.cache_hits() > 0);
}

fn scenario_params(seed: u64) -> RandomParams {
    RandomParams {
        seed,
        n_individuals: 16,
        n_concept_facts: 22,
        n_role_facts: 26,
        n_concepts: 4,
        n_roles: 3,
        ..RandomParams::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8 })]

    /// On randomized scenarios (well past the ≥3 required), engine stats —
    /// singleton and OR-composed — are identical to the uncached path.
    #[test]
    fn randomized_scenarios_engine_matches_uncached(seed in 0u64..500, atoms in 1usize..4) {
        let s = random_scenario(scenario_params(seed));
        let prepared = PreparedLabels::new(&s.system, &s.labels, 1);
        let engine = ScoringEngine::new();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xeeee);
        let mut queries: Vec<OntoUcq> = Vec::new();
        for _ in 0..4 {
            queries.push(random_query(&s.system, &mut rng, atoms));
        }
        if let Some(truth) = &s.ground_truth {
            queries.push(truth.clone());
        }

        for q in &queries {
            let (Ok(cached), Ok(plain)) =
                (engine.stats_ucq(&prepared, q), prepared.stats_of(q))
            else {
                // Rewrite-budget failures must agree between the paths.
                prop_assert!(
                    engine.stats_ucq(&prepared, q).is_err()
                        && prepared.stats_of(q).is_err()
                );
                continue;
            };
            prop_assert_eq!(cached, plain, "seed {} query {:?}", seed, q);
        }
        // OR-composition over the whole pool: the union's stats must come
        // out identical whether derived from cached bitsets or recomputed.
        let mut union = OntoUcq::default();
        for q in &queries {
            for d in q.disjuncts() {
                union.push(d.clone());
            }
        }
        if let (Ok(cached), Ok(plain)) =
            (engine.stats_ucq(&prepared, &union), prepared.stats_of(&union))
        {
            prop_assert_eq!(cached, plain, "union diverges on seed {}", seed);
        }

        // Second pass over the pool is pure cache: zero new evaluations.
        let evals = engine.eval_calls();
        for q in &queries {
            let _ = engine.stats_ucq(&prepared, q);
        }
        prop_assert_eq!(engine.eval_calls(), evals);
    }
}

/// Proposition 3.5 through the engine: growing the border radius never
/// loses a J-match, so matched counts are monotone non-decreasing in `r` —
/// and at every radius the engine agrees with the uncached matcher.
#[test]
fn radius_monotonicity_survives_the_engine() {
    let s = random_scenario(scenario_params(7));
    let truth = s.ground_truth.as_ref().expect("scenario plants a query");
    let mut prev_pos = 0;
    let mut prev_neg = 0;
    for r in 0..=4 {
        let prepared = PreparedLabels::new(&s.system, &s.labels, r);
        let engine = ScoringEngine::new();
        let cached = engine.stats_ucq(&prepared, truth).unwrap();
        let plain = prepared.stats_of(truth).unwrap();
        assert_eq!(cached, plain, "engine diverges at radius {r}");
        assert!(
            cached.pos_matched >= prev_pos && cached.neg_matched >= prev_neg,
            "match counts shrank from radius {} to {r}",
            r.max(1) - 1,
        );
        prev_pos = cached.pos_matched;
        prev_neg = cached.neg_matched;
    }
}

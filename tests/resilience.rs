//! Resilience suite: deadlines, cancellation, eval budgets, and panic
//! isolation across the whole request path.
//!
//! The contract under test (see `DESIGN.md`, "Resilient search runtime"):
//! every built-in strategy is **anytime** — when its [`SearchBudget`]
//! fires, or a candidate's scoring panics or fails permanently, the run
//! returns the best explanations found so far tagged with a
//! [`Termination`] status instead of erroring or crashing. The
//! fault-injection hook (`obx-core`'s `fault-injection` feature) arms a
//! per-engine trap that makes the Nth fresh scoring call fail or panic.

use obx_core::budget::{SearchBudget, Termination};
use obx_core::engine::fault::FaultMode;
use obx_core::explain::{ExplainTask, SearchLimits, Strategy};
use obx_core::labels::Labels;
use obx_core::score::Scoring;
use obx_core::strategies::{BeamSearch, BottomUpGeneralize, ExhaustiveSearch, GreedyUcq};
use obx_datagen::{university_scenario, UniversityParams};
use obx_obdm::example_3_6_system;
use proptest::prelude::*;
use std::time::{Duration, Instant};

/// The paper's five labelled students.
const PAPER_LABELS: &str = "+ A10\n+ B80\n+ C12\n+ D50\n- E25";

/// Every built-in strategy, with limits small enough that the exhaustive
/// enumeration stays in test-suite time.
fn all_strategies() -> Vec<Box<dyn Strategy>> {
    vec![
        Box::new(BeamSearch),
        Box::new(BottomUpGeneralize::default()),
        Box::new(ExhaustiveSearch {
            max_candidates: 500,
        }),
        Box::new(GreedyUcq::default()),
    ]
}

#[test]
fn every_strategy_survives_a_panicking_scoring_call() {
    for strategy in all_strategies() {
        let mut sys = example_3_6_system();
        let labels = Labels::parse(sys.db_mut(), PAPER_LABELS).unwrap();
        let scoring = Scoring::paper_weighted(1.0, 1.0, 1.0);
        let task = ExplainTask::new(&sys, &labels, 1, &scoring, SearchLimits::default()).unwrap();
        // The 3rd fresh (cache-missing) scoring call panics.
        task.engine().arm_fault(3, FaultMode::Panic);
        let report = strategy
            .explain_with_status(&task)
            .unwrap_or_else(|e| panic!("{} aborted on a panic: {e}", strategy.name()));
        assert!(
            !report.explanations.is_empty(),
            "{}: no best-so-far results",
            strategy.name()
        );
        assert_eq!(
            report.termination,
            Termination::Degraded { quarantined: 1 },
            "{}",
            strategy.name()
        );
        assert_eq!(report.quarantined, 1, "{}", strategy.name());
        // Ranked descending even in degraded mode.
        for w in report.explanations.windows(2) {
            assert!(w[0].score >= w[1].score, "{}", strategy.name());
        }
        // The engine and its worker pool stay usable: the fault is spent,
        // a panic is never memoized, so a re-run on the same task covers
        // the quarantined candidate too and completes cleanly.
        let rerun = strategy.explain_with_status(&task).unwrap();
        assert!(
            rerun.termination.is_complete(),
            "{}: rerun ended {}",
            strategy.name(),
            rerun.termination
        );
        assert!(rerun.explanations[0].score >= report.explanations[0].score);
    }
}

#[test]
fn permanent_scoring_failures_are_quarantined_not_fatal() {
    let mut sys = example_3_6_system();
    let labels = Labels::parse(sys.db_mut(), PAPER_LABELS).unwrap();
    let scoring = Scoring::paper_weighted(1.0, 1.0, 1.0);
    let task = ExplainTask::new(&sys, &labels, 1, &scoring, SearchLimits::default()).unwrap();
    // The 2nd fresh scoring call fails with a permanent ObdmError.
    task.engine().arm_fault(2, FaultMode::Fail);
    let report = BeamSearch.explain_with_status(&task).unwrap();
    assert!(!report.explanations.is_empty());
    assert_eq!(report.termination, Termination::Degraded { quarantined: 1 });
    // `explain` (the report-less entry point) degrades identically instead
    // of erroring: same engine, fault already spent, so it completes.
    let plain = BeamSearch.explain(&task).unwrap();
    assert!(!plain.is_empty());
}

#[test]
fn eval_budget_exhaustion_returns_best_so_far() {
    let mut sys = example_3_6_system();
    let labels = Labels::parse(sys.db_mut(), PAPER_LABELS).unwrap();
    let scoring = Scoring::paper_weighted(1.0, 1.0, 1.0);
    // Each fresh candidate costs |λ⁺| + |λ⁻| = 5 evaluator calls here, so
    // a cap of 12 stops the search inside the very first batch.
    let budget = SearchBudget::unlimited().with_max_evals(12);
    let task =
        ExplainTask::new_with_budget(&sys, &labels, 1, &scoring, SearchLimits::default(), budget)
            .unwrap();
    let report = BeamSearch.explain_with_status(&task).unwrap();
    assert_eq!(report.termination, Termination::EvalBudgetExhausted);
    assert!(!report.explanations.is_empty());
    // The stop is checked at candidate granularity: overshoot is bounded
    // by one candidate's worth of evals.
    assert!(
        task.engine().eval_calls() <= 12 + 5,
        "eval overshoot: {}",
        task.engine().eval_calls()
    );
}

#[test]
fn pre_cancelled_token_yields_graceful_empty_ish_run() {
    let mut sys = example_3_6_system();
    let labels = Labels::parse(sys.db_mut(), PAPER_LABELS).unwrap();
    let scoring = Scoring::paper_weighted(1.0, 1.0, 1.0);
    let budget = SearchBudget::unlimited();
    budget.cancel_token().cancel();
    // Border preparation, rewriting, and every batch all see the trigger:
    // the run must return (fast) with Cancelled, never error or hang.
    let task =
        ExplainTask::new_with_budget(&sys, &labels, 1, &scoring, SearchLimits::default(), budget)
            .unwrap();
    for strategy in all_strategies() {
        match strategy.explain_with_status(&task) {
            Ok(report) => assert_eq!(
                report.termination,
                Termination::Cancelled,
                "{}",
                strategy.name()
            ),
            // Bottom-up may find no seeds at all in the truncated borders;
            // that surfaces as NoLabels, which is also acceptable here.
            Err(e) => assert!(
                e.to_string().contains("labels no tuple"),
                "{}: {e}",
                strategy.name()
            ),
        }
    }
}

#[test]
fn mid_run_cancellation_from_another_thread_stops_the_search() {
    let scenario = university_scenario(UniversityParams {
        n_students: 60,
        ..UniversityParams::default()
    });
    let scoring = Scoring::accuracy();
    let budget = SearchBudget::unlimited();
    let token = budget.cancel_token().clone();
    let task = ExplainTask::new_with_budget(
        &scenario.system,
        &scenario.labels,
        1,
        &scoring,
        SearchLimits::default(),
        budget,
    )
    .unwrap();
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(30));
        token.cancel();
    });
    let report = BeamSearch.explain_with_status(&task).unwrap();
    canceller.join().unwrap();
    // Either the search was quick enough to finish first, or it stopped
    // with Cancelled; it must never error.
    assert!(
        report.termination == Termination::Cancelled || report.termination.is_complete(),
        "unexpected termination: {}",
        report.termination
    );
}

#[test]
fn timeout_is_respected_within_2x_on_the_e6_scenario() {
    // The E6 strategy-benchmark scenario (scaled university). An
    // unbudgeted beam run takes far longer than the timeout here; the
    // deadline must cut it short close to the requested wall-clock.
    let scenario = university_scenario(UniversityParams {
        n_students: 40,
        ..UniversityParams::default()
    });
    let scoring = Scoring::accuracy();
    let timeout = Duration::from_millis(250);
    let budget = SearchBudget::unlimited().with_timeout(timeout);
    let limits = SearchLimits {
        max_rounds: 40,
        ..SearchLimits::default()
    };
    let started = Instant::now();
    let task = ExplainTask::new_with_budget(
        &scenario.system,
        &scenario.labels,
        1,
        &scoring,
        limits,
        budget,
    )
    .unwrap();
    let report = BeamSearch.explain_with_status(&task).unwrap();
    let elapsed = started.elapsed();
    assert!(
        elapsed <= timeout * 2,
        "deadline overrun: {elapsed:?} for a {timeout:?} budget"
    );
    assert!(
        !report.explanations.is_empty(),
        "anytime contract: best-so-far must not be empty"
    );
    if report.termination.is_complete() {
        // The machine was fast enough to finish inside the budget — the
        // timing bound above still held, which is what this test pins.
        eprintln!("note: E6 beam completed inside the timeout on this machine");
    } else {
        assert_eq!(report.termination, Termination::DeadlineExpired);
    }
}

#[test]
fn transient_budget_failures_are_not_memoized() {
    // A deadline firing mid-compile must not poison the engine's memo
    // cache: re-running with a fresh budget on the same engine must
    // succeed and reach the paper's optimum.
    let mut sys = example_3_6_system();
    let labels = Labels::parse(sys.db_mut(), PAPER_LABELS).unwrap();
    let scoring = Scoring::paper_weighted(1.0, 1.0, 1.0);
    let task = ExplainTask::new(&sys, &labels, 1, &scoring, SearchLimits::default()).unwrap();
    let expired = task.with_budget(
        SearchBudget::unlimited().with_deadline(Instant::now() - Duration::from_millis(1)),
    );
    let stopped = BeamSearch.explain_with_status(&expired).unwrap();
    assert_eq!(stopped.termination, Termination::DeadlineExpired);
    assert_eq!(stopped.quarantined, 0, "budget stops are not quarantine");
    // Same engine, unlimited budget: everything compiles fresh.
    let report = BeamSearch.explain_with_status(&task).unwrap();
    assert!(report.termination.is_complete());
    assert!(report.explanations[0].score >= 0.8333 - 1e-3);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]

    /// Cancelling (via an eval cap standing in for "cancel after k evals" —
    /// on the sequential scoring path the two stop identically, at the
    /// next candidate boundary) at an arbitrary point never panics, and
    /// every reported explanation is *sound*: re-scoring its query on an
    /// unbudgeted task reproduces the reported Z-score exactly. This is
    /// why `finalize` must not minimize under a fired budget — the
    /// reported queries are exactly the scored ones.
    #[test]
    fn budget_stopped_runs_report_sound_scores(cap in 1u64..200) {
        let mut sys = example_3_6_system();
        let labels = Labels::parse(sys.db_mut(), PAPER_LABELS).unwrap();
        let scoring = Scoring::paper_weighted(1.0, 1.0, 1.0);
        let budget = SearchBudget::unlimited().with_max_evals(cap);
        let limits = SearchLimits::default();
        let budgeted =
            ExplainTask::new_with_budget(&sys, &labels, 1, &scoring, limits, budget).unwrap();
        let report = BeamSearch.explain_with_status(&budgeted).unwrap();
        prop_assert!(matches!(
            report.termination,
            Termination::EvalBudgetExhausted | Termination::Complete
        ));
        // Reference task: fresh engine, no budget.
        let reference =
            ExplainTask::new(&sys, &labels, 1, &scoring, limits).unwrap();
        for e in &report.explanations {
            let fresh = reference.score_ucq(&e.query).unwrap();
            prop_assert!(
                (fresh.score - e.score).abs() < 1e-12,
                "anytime result mis-scored: reported {} vs fresh {}",
                e.score,
                fresh.score
            );
            prop_assert_eq!(fresh.stats.pos_matched, e.stats.pos_matched);
            prop_assert_eq!(fresh.stats.neg_matched, e.stats.neg_matched);
        }
        // Monotonicity of the anytime prefix: a larger budget can only
        // improve (or match) the best reported score, never regress it,
        // because the ranked pool grows monotonically with evals.
        if let (Some(first), Termination::EvalBudgetExhausted) =
            (report.explanations.first(), report.termination)
        {
            let full = BeamSearch.explain_with_status(&reference).unwrap();
            prop_assert!(full.explanations[0].score >= first.score - 1e-12);
        }
    }
}

//! Output equivalence of the incremental search path with the baseline.
//!
//! The monotone accelerations (`obx-core`'s `prune` module) — parent-delta
//! evaluation and admissible bound pruning — claim to be *exact*: the
//! incremental engine must return byte-identical ranked explanations and
//! Z-scores to a baseline engine that compiles and fully evaluates every
//! candidate. These tests pin that claim on the paper's example, on a
//! deterministic university scenario, and on randomized scenarios across
//! every built-in strategy, and separately check that budget-stopped
//! incremental runs still return only correctly-scored explanations
//! (anytime soundness under pruning).

use obx_core::budget::SearchBudget;
use obx_core::explain::{ExplainReport, ExplainTask, SearchLimits, Strategy};
use obx_core::labels::Labels;
use obx_core::score::Scoring;
use obx_core::strategies::{BeamSearch, BottomUpGeneralize, ExhaustiveSearch, GreedyUcq};
use obx_core::ScoringEngine;
use obx_datagen::{random_scenario, university_scenario, RandomParams, UniversityParams};
use obx_obdm::example_3_6_system;
use proptest::prelude::*;
use std::sync::Arc;

/// The paper's five labelled students.
const PAPER_LABELS: &str = "+ A10\n+ B80\n+ C12\n+ D50\n- E25";

/// The round-loop strategies (exhaustive is exercised separately with a
/// tighter atom limit to stay in test-suite time).
fn lattice_strategies() -> Vec<Box<dyn Strategy>> {
    vec![
        Box::new(BeamSearch),
        Box::new(BottomUpGeneralize::default()),
        Box::new(GreedyUcq::default()),
    ]
}

/// Runs `strategy` twice on the same task — once on a baseline engine
/// (incremental off) and once on an incremental engine — and returns both
/// reports plus the incremental engine's saved-evaluation counter.
fn run_both(
    task: &ExplainTask<'_>,
    strategy: &dyn Strategy,
) -> (ExplainReport, ExplainReport, u64) {
    let base = Arc::new(ScoringEngine::with_config(2, false));
    let incr = Arc::new(ScoringEngine::with_config(2, true));
    let off = strategy
        .explain_with_status(&task.with_engine(Arc::clone(&base)))
        .expect("baseline run succeeds");
    let on = strategy
        .explain_with_status(&task.with_engine(Arc::clone(&incr)))
        .expect("incremental run succeeds");
    (off, on, incr.evals_saved())
}

/// Field-by-field identity of the two ranked reports: same queries in the
/// same order, bit-identical Z-scores and criterion values, equal stats.
/// Quarantine counts are deliberately *not* compared — a pruned candidate
/// is never scored, so fault/budget bookkeeping may differ between modes.
fn assert_reports_identical(ctx: &str, off: &ExplainReport, on: &ExplainReport) {
    assert_eq!(
        off.explanations.len(),
        on.explanations.len(),
        "{ctx}: explanation counts diverge"
    );
    for (i, (a, b)) in off
        .explanations
        .iter()
        .zip(on.explanations.iter())
        .enumerate()
    {
        assert_eq!(a.query, b.query, "{ctx}: rank {i} queries diverge");
        assert_eq!(
            a.score.to_bits(),
            b.score.to_bits(),
            "{ctx}: rank {i} Z-scores diverge ({} vs {})",
            a.score,
            b.score
        );
        assert_eq!(a.stats, b.stats, "{ctx}: rank {i} stats diverge");
        assert_eq!(
            a.criterion_values.len(),
            b.criterion_values.len(),
            "{ctx}: rank {i} criterion counts diverge"
        );
        for (j, (x, y)) in a
            .criterion_values
            .iter()
            .zip(b.criterion_values.iter())
            .enumerate()
        {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{ctx}: rank {i} criterion {j} diverges"
            );
        }
    }
}

#[test]
fn paper_example_identical_across_modes_for_every_strategy() {
    let mut sys = example_3_6_system();
    let labels = Labels::parse(sys.db_mut(), PAPER_LABELS).unwrap();
    let scoring = Scoring::accuracy();
    let task = ExplainTask::new(&sys, &labels, 1, &scoring, SearchLimits::default()).unwrap();
    for strategy in lattice_strategies() {
        let (off, on, _) = run_both(&task, strategy.as_ref());
        assert_reports_identical(strategy.name(), &off, &on);
    }
    let exhaustive = ExhaustiveSearch {
        max_candidates: 500,
    };
    let (off, on, _) = run_both(&task, &exhaustive);
    assert_reports_identical("exhaustive", &off, &on);
}

/// Mid-size deterministic scenario: identical output *and* the delta path
/// actually fires (saved evaluations are strictly positive, otherwise the
/// equivalence above would be vacuous).
#[test]
fn university_scenario_identical_and_delta_path_fires() {
    let scenario = university_scenario(UniversityParams {
        n_students: 40,
        ..UniversityParams::default()
    });
    let scoring = Scoring::accuracy();
    let limits = SearchLimits {
        beam_width: 8,
        top_k: 5,
        ..SearchLimits::default()
    };
    let task = ExplainTask::new(&scenario.system, &scenario.labels, 1, &scoring, limits).unwrap();
    for strategy in lattice_strategies() {
        let (off, on, saved) = run_both(&task, strategy.as_ref());
        assert_reports_identical(strategy.name(), &off, &on);
        assert!(
            saved > 0,
            "{}: incremental engine saved no evaluations",
            strategy.name()
        );
    }
}

/// Lighter strategy settings for the randomized sweeps: random borders
/// are much denser than the curated scenarios', so bottom-up's default
/// 16-atom seeds and greedy's 16-candidate base pool blow the test-suite
/// time budget without exercising anything new.
fn light_strategies() -> Vec<Box<dyn Strategy>> {
    vec![
        Box::new(BeamSearch),
        Box::new(BottomUpGeneralize {
            max_seeds: 2,
            max_seed_atoms: 6,
        }),
        Box::new(GreedyUcq {
            base: Box::new(BeamSearch),
            max_disjuncts: 3,
            base_pool: 8,
        }),
    ]
}

fn scenario_params(seed: u64) -> RandomParams {
    RandomParams {
        seed,
        n_individuals: 16,
        n_concept_facts: 22,
        n_role_facts: 26,
        n_concepts: 4,
        n_roles: 3,
        ..RandomParams::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8 })]

    /// Randomized scenarios: every lattice strategy returns byte-identical
    /// ranked output on both engines. Limits are tight — random scenarios
    /// are denser than real ones, and each case runs three full searches
    /// twice; the deterministic tests above cover the default limits.
    #[test]
    fn randomized_scenarios_identical_across_modes(seed in 0u64..500) {
        let s = random_scenario(scenario_params(seed));
        let scoring = Scoring::accuracy();
        let limits = SearchLimits {
            max_atoms: 2,
            max_vars: 3,
            beam_width: 4,
            max_rounds: 3,
            top_k: 4,
            ..SearchLimits::default()
        };
        let task = ExplainTask::new(&s.system, &s.labels, 1, &scoring, limits).unwrap();
        for strategy in light_strategies() {
            let (off, on, _) = run_both(&task, strategy.as_ref());
            assert_reports_identical(&format!("seed {seed} / {}", strategy.name()), &off, &on);
        }
    }

    /// Exhaustive enumeration (small atom cap so the candidate space stays
    /// tractable) is floor-pruned in the incremental engine; the ranking
    /// must not move.
    #[test]
    fn randomized_exhaustive_identical_across_modes(seed in 0u64..500) {
        let s = random_scenario(scenario_params(seed));
        let scoring = Scoring::accuracy();
        let limits = SearchLimits { max_atoms: 2, top_k: 4, ..SearchLimits::default() };
        let task = ExplainTask::new(&s.system, &s.labels, 1, &scoring, limits).unwrap();
        let strategy = ExhaustiveSearch { max_candidates: 3000 };
        let (off, on, _) = run_both(&task, &strategy);
        assert_reports_identical(&format!("seed {seed} / exhaustive"), &off, &on);
    }

    /// Anytime soundness under pruning: a budget-stopped incremental run
    /// may return *fewer* explanations than the baseline (restricted
    /// evaluation charges fewer evals, so the cap fires elsewhere), but
    /// every explanation it does return must re-score identically on a
    /// fresh unlimited baseline task — pruning never fabricates or
    /// mis-scores a result.
    #[test]
    fn budget_stopped_incremental_results_rescore_identically(
        seed in 0u64..500,
        max_evals in 8u64..60,
    ) {
        let s = random_scenario(scenario_params(seed));
        let scoring = Scoring::accuracy();
        let limits = SearchLimits { beam_width: 8, top_k: 5, ..SearchLimits::default() };
        let budget = SearchBudget::unlimited().with_max_evals(max_evals);
        let capped = ExplainTask::new_with_budget(
            &s.system, &s.labels, 1, &scoring, limits, budget,
        ).unwrap();
        let reference = ExplainTask::new(&s.system, &s.labels, 1, &scoring, limits).unwrap();
        let ref_task = reference.with_engine(Arc::new(ScoringEngine::with_config(2, false)));
        for strategy in light_strategies() {
            let incr = Arc::new(ScoringEngine::with_config(2, true));
            let report = strategy
                .explain_with_status(&capped.with_engine(Arc::clone(&incr)))
                .expect("budget-stopped runs still return a report");
            for e in &report.explanations {
                let fresh = ref_task.score_ucq(&e.query).expect("re-scoring succeeds");
                prop_assert_eq!(
                    e.score.to_bits(), fresh.score.to_bits(),
                    "seed {} / {}: budget-stopped result mis-scored", seed, strategy.name()
                );
                prop_assert_eq!(&e.stats, &fresh.stats);
            }
        }
    }
}

//! Bound pruning fires on every strategy.
//!
//! The monotone accelerations report how many candidates they discarded
//! without scoring (`ExplainReport::pruned`). The paper-scenario benches
//! showed `beam_pruned = 0` while greedy pruned freely, which left open
//! whether beam's batch path had the bound guard wired at all. These
//! tests construct scenarios where each strategy *provably* prunes, so a
//! regression that silently disables the guard (or weakens the bound)
//! fails loudly.
//!
//! Why construction is needed: a batch candidate is pruned only when its
//! parent's optimistic bound is *strictly* below both the scored-window
//! guard and the result-pool floor. On flat scenarios every interesting
//! parent is itself in the pool, so its bound ties the floor and nothing
//! prunes. The scenarios below break the ties structurally:
//!
//! * **Beam** — a role hierarchy `r1..r5 < r` plus border constants.
//!   Constant-bound subrole atoms (`r1(x0, c1)`) are *fresh* candidates
//!   that never appeared among the two-variable starts, so the strong
//!   parent `r(x0, c1)` (coverage 1) fills the scored window with high
//!   scores while the weak parent `r(x0, c2)` (coverage 0.85) has a
//!   bound below both the window guard (0.95) and the pool floor
//!   (0.975, set by the subrole starts): all five of its Hasse-down
//!   children are pruned.
//! * **Bottom-up** — a concept chain `C0 < C1` with a toxic sibling
//!   super `C0 < T` where `T(n0)` holds directly. Generalizing the seed
//!   `D0 ∧ C0 ∧ M1 ∧ M2` funnels the beam to exactly `[C1, T]`; `C1`'s
//!   five fact-free supers fill the window at score 1.0 while `T`'s
//!   super `V` inherits `T`'s negative, capping its bound at 0.75 —
//!   strictly below the window guard (1.0) and pool floor (0.875).
//! * **Exhaustive** enumerates the same chain scenario breadth-first and
//!   prunes conjunction extensions of low-bound parents; **greedy**
//!   skips residual-bound-dominated refinements on both scenarios.

use obx_core::criteria::Criterion;
use obx_core::explain::{ExplainReport, ExplainTask, SearchLimits, Strategy};
use obx_core::labels::Labels;
use obx_core::score::{ScoreExpr, Scoring};
use obx_core::strategies::{BeamSearch, BottomUpGeneralize, ExhaustiveSearch, GreedyUcq};
use obx_core::ScoringEngine;
use obx_obdm::{ObdmSpec, ObdmSystem};
use std::sync::Arc;

fn build(schema: &str, facts: &str, tbox: &str, map: &str) -> ObdmSystem {
    let schema = obx_srcdb::parse_schema(schema).expect("schema");
    let mut db = obx_srcdb::parse_database(schema, facts).expect("facts");
    let tbox = obx_ontology::parse_tbox(tbox).expect("tbox");
    let (schema_ref, consts) = db.schema_and_consts_mut();
    let mapping =
        obx_mapping::parse_mapping(schema_ref, tbox.vocab(), consts, map).expect("mapping");
    ObdmSystem::new(ObdmSpec::new(tbox, mapping), db)
}

/// Twenty positives, one inert negative. Coverage under `r(x, c)` is
/// graded by constant (c1: 1.0 via the hierarchy plus one direct fact,
/// c2: 0.85, c3: 0.5) so the round-2 beam is `[r(x0,c1), r(x0,c2)]`.
fn beam_scenario() -> (ObdmSystem, String) {
    let mut facts = String::new();
    for i in 0..19 {
        facts.push_str(&format!("TA1(p{i})\nTA2(p{i})\nTA3(p{i})\n"));
    }
    for i in 0..18 {
        facts.push_str(&format!("TR1(p{i}, c1)\n"));
    }
    for i in 0..19 {
        for k in 2..=5 {
            facts.push_str(&format!("TR{k}(p{i}, c1)\n"));
        }
    }
    facts.push_str("TR(p19, c1)\n");
    for i in 0..17 {
        facts.push_str(&format!("TR(p{i}, c2)\n"));
    }
    for i in 0..10 {
        facts.push_str(&format!("TR(p{i}, c3)\n"));
    }
    facts.push_str("TDummy(n0)\n");
    let sys = build(
        "TA1/1 TA2/1 TA3/1 TR/2 TR1/2 TR2/2 TR3/2 TR4/2 TR5/2 TDummy/1",
        &facts,
        "concept A1 A2 A3 CDummy\nrole r r1 r2 r3 r4 r5\n\
         r1 < r\nr2 < r\nr3 < r\nr4 < r\nr5 < r\n",
        "TA1(x) ~> A1(x)\nTA2(x) ~> A2(x)\nTA3(x) ~> A3(x)\n\
         TR(x, y) ~> r(x, y)\nTR1(x, y) ~> r1(x, y)\nTR2(x, y) ~> r2(x, y)\n\
         TR3(x, y) ~> r3(x, y)\nTR4(x, y) ~> r4(x, y)\nTR5(x, y) ~> r5(x, y)\n\
         TDummy(x) ~> CDummy(x)\n",
    );
    let mut labels = String::new();
    for i in 0..20 {
        labels.push_str(&format!("+ p{i}\n"));
    }
    labels.push_str("- n0\n");
    (sys, labels)
}

fn beam_limits() -> SearchLimits {
    SearchLimits {
        max_atoms: 1,
        max_vars: 4,
        max_constants: 8,
        beam_width: 2,
        max_rounds: 3,
        top_k: 1,
    }
}

/// Four positives, two negatives. The seed `D0 ∧ C0 ∧ M1 ∧ M2` peels
/// down to `C0`, whose supers are the clean chain head `C1` and the
/// toxic `T` (holds for `n0`).
fn chain_scenario() -> (ObdmSystem, String) {
    let mut facts = String::from("TD0(p0)\n");
    for i in 0..4 {
        facts.push_str(&format!("TC0(p{i})\n"));
    }
    for i in 0..3 {
        facts.push_str(&format!("TM1(p{i})\nTM2(p{i})\n"));
    }
    facts.push_str("TT(n0)\nTD(n1)\n");
    let sys = build(
        "TD0/1 TC0/1 TM1/1 TM2/1 TT/1 TD/1",
        &facts,
        "concept D0 C0 M1 M2 T V C1 C2a C2b C2c C2d C2e CD\n\
         C0 < C1\nC0 < T\nT < V\n\
         C1 < C2a\nC1 < C2b\nC1 < C2c\nC1 < C2d\nC1 < C2e\n",
        "TD0(x) ~> D0(x)\nTC0(x) ~> C0(x)\nTM1(x) ~> M1(x)\n\
         TM2(x) ~> M2(x)\nTT(x) ~> T(x)\nTD(x) ~> CD(x)\n",
    );
    let labels = "+ p0\n+ p1\n+ p2\n+ p3\n- n0\n- n1\n".to_owned();
    (sys, labels)
}

fn chain_limits() -> SearchLimits {
    SearchLimits {
        max_atoms: 6,
        max_vars: 4,
        max_constants: 0,
        beam_width: 2,
        max_rounds: 8,
        top_k: 1,
    }
}

fn run(
    strategy: &dyn Strategy,
    sys: &mut ObdmSystem,
    labels_src: &str,
    limits: SearchLimits,
) -> ExplainReport {
    let labels = Labels::parse(sys.db_mut(), labels_src).expect("labels");
    let scoring = Scoring::new(
        vec![Criterion::PosCoverage, Criterion::NegAvoidance],
        ScoreExpr::weighted_average(&[1.0, 1.0]),
    );
    let task = ExplainTask::new(sys, &labels, 1, &scoring, limits)
        .expect("task")
        .with_engine(Arc::new(ScoringEngine::with_incremental(true)));
    strategy.explain_with_status(&task).expect("search")
}

#[test]
fn beam_prunes_weak_parent_children() {
    let (mut sys, labels) = beam_scenario();
    let report = run(&BeamSearch, &mut sys, &labels, beam_limits());
    // The five Hasse-down children of r(x0, c2) — r1..r5(x0, c2) — are
    // bound-pruned; the best explanation is still the full-coverage
    // r(x0, c1).
    assert_eq!(report.pruned, 5, "beam bound pruning regressed");
    let best = report.explanations.first().expect("one explanation");
    assert!(
        (best.score - 1.0).abs() < 1e-9,
        "expected perfect top score, got {}",
        best.score
    );
}

#[test]
fn bottom_up_prunes_toxic_generalization() {
    let (mut sys, labels) = chain_scenario();
    let strategy = BottomUpGeneralize {
        max_seeds: 1,
        max_seed_atoms: 8,
    };
    let report = run(&strategy, &mut sys, &labels, chain_limits());
    // T's only generalization V inherits T's matched negative, so its
    // bound (0.75) sits strictly below the window guard (1.0, C1's
    // supers) and the pool floor (0.875).
    assert!(report.pruned > 0, "bottom-up bound pruning regressed");
    let best = report.explanations.first().expect("one explanation");
    assert!(
        (best.score - 1.0).abs() < 1e-9,
        "expected perfect top score, got {}",
        best.score
    );
}

#[test]
fn exhaustive_prunes_low_bound_extensions() {
    let (mut sys, labels) = chain_scenario();
    let report = run(
        &ExhaustiveSearch::default(),
        &mut sys,
        &labels,
        chain_limits(),
    );
    assert!(report.pruned > 0, "exhaustive bound pruning regressed");
}

#[test]
fn greedy_prunes_bound_dominated_refinements() {
    let (mut sys, labels) = beam_scenario();
    let report = run(&GreedyUcq::default(), &mut sys, &labels, beam_limits());
    assert!(report.pruned > 0, "greedy bound pruning regressed");
}

/// Pruning must never change the answer: the pruned beam run returns the
/// same ranked explanations as a baseline run that scores everything.
#[test]
fn pruning_preserves_ranked_output() {
    let (mut sys, labels_src) = beam_scenario();
    let labels = Labels::parse(sys.db_mut(), &labels_src).expect("labels");
    let scoring = Scoring::new(
        vec![Criterion::PosCoverage, Criterion::NegAvoidance],
        ScoreExpr::weighted_average(&[1.0, 1.0]),
    );
    let incremental = {
        let task = ExplainTask::new(&sys, &labels, 1, &scoring, beam_limits())
            .expect("task")
            .with_engine(Arc::new(ScoringEngine::with_incremental(true)));
        BeamSearch.explain_with_status(&task).expect("search")
    };
    let baseline = {
        let task = ExplainTask::new(&sys, &labels, 1, &scoring, beam_limits())
            .expect("task")
            .with_engine(Arc::new(ScoringEngine::with_incremental(false)));
        BeamSearch.explain_with_status(&task).expect("search")
    };
    assert!(incremental.pruned > 0 && baseline.pruned == 0);
    assert_eq!(incremental.explanations.len(), baseline.explanations.len());
    for (a, b) in incremental
        .explanations
        .iter()
        .zip(baseline.explanations.iter())
    {
        assert_eq!(a.query, b.query);
        assert!((a.score - b.score).abs() < 1e-12);
    }
}

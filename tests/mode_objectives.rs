//! End-to-end properties of the sound / complete / fscore explanation
//! modes, driven through the service layer ([`run_explain`]) exactly as
//! the CLI and server drive it.
//!
//! Three guarantees are pinned here (DESIGN.md §15):
//!
//! * **mode bars are real, not reported** — winners are re-scored with
//!   the *exact* certain-answer engine (`ObdmSystem::certain_answers`),
//!   independent of the border matcher that scored the search: a
//!   sound-mode winner must have precision 1.0 (zero λ⁻ answers), a
//!   complete-mode winner recall 1.0 (every λ⁺ answered);
//! * **fscore mode is the identity** — `--mode fscore` output is
//!   byte-identical to the pre-mode pipeline (paper-weighted scoring fed
//!   straight to the strategy) for all four report-producing strategies;
//! * **the objectives genuinely differ** — on the audit scenario the
//!   three modes pick three distinct winners through the service layer,
//!   not just through the bench harness.

use obx_core::budget::SearchBudget;
use obx_core::explain::{ExplainTask, SearchLimits, Strategy};
use obx_core::scenario::write_scenario_dir;
use obx_core::score::ExplainMode;
use obx_core::service::{render_report_text, run_explain, ExplainRequest};
use obx_core::strategies::{BeamSearch, BottomUpGeneralize, ExhaustiveSearch, GreedyUcq};
use obx_datagen::{
    modes_scenario, random_scenario, skewed_scenario, ModesParams, RandomParams, Scenario,
    SkewedParams,
};
use obx_query::OntoUcq;
use proptest::prelude::*;

/// Exact confusion counts for a query over a scenario: certain answers
/// intersected with the label sets. This deliberately bypasses the
/// border matcher — it is the ground truth the search's reported stats
/// must answer to.
fn exact_confusion(s: &Scenario, q: &OntoUcq) -> (usize, usize, usize) {
    let answers = s
        .system
        .certain_answers(q)
        .expect("re-scoring a winner the search already evaluated");
    let pos_hits = s
        .labels
        .pos()
        .iter()
        .filter(|t| answers.contains(*t))
        .count();
    let neg_hits = s
        .labels
        .neg()
        .iter()
        .filter(|t| answers.contains(*t))
        .count();
    (pos_hits, neg_hits, s.labels.pos().len())
}

fn request(mode: ExplainMode, strategy: &str, radius: usize) -> ExplainRequest {
    ExplainRequest {
        radius,
        strategy: strategy.to_owned(),
        mode,
        top: 1,
        ..ExplainRequest::default()
    }
}

/// Runs one mode and returns (exit_code, top query) — the report is
/// dropped so the scenario can be re-borrowed for exact re-scoring.
fn top_of(s: &Scenario, req: &ExplainRequest) -> (i32, Option<OntoUcq>) {
    let outcome = run_explain(&s.system, &s.labels, req, SearchBudget::unlimited())
        .expect("service run on a generated scenario");
    let top = outcome
        .report
        .as_ref()
        .and_then(|r| r.explanations.first())
        .map(|e| e.query.clone());
    (outcome.exit_code, top)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8 })]

    /// On the audit family a sound candidate (`vetted`: zero λ⁻ by
    /// construction) and a complete candidate (`screened`: held by every
    /// λ⁺) always exist among the single-atom starts, so both modes must
    /// return exit 0 and their winners must survive exact re-scoring:
    /// precision 1.0 for sound, recall 1.0 for complete.
    #[test]
    fn mode_winners_meet_their_bars_on_the_audit_family(
        n_pos in 4usize..16,
        n_neg in 1usize..16,
        clean_pct in 20u32..95,
        mid_pct in 0u32..100,
        mid_neg_hits in 0usize..3,
        broad_neg_hits in 0usize..8,
        seed in 0u64..10_000,
    ) {
        let clean_recall = f64::from(clean_pct) / 100.0;
        let s = modes_scenario(ModesParams {
            n_pos,
            n_neg,
            clean_recall,
            // Interpolate above clean_recall: vetted implies reviewed.
            mid_recall: clean_recall + (1.0 - clean_recall) * f64::from(mid_pct) / 100.0,
            mid_neg_hits: mid_neg_hits.min(n_neg),
            broad_neg_hits: broad_neg_hits.min(n_neg),
            seed,
        });

        let (code, top) = top_of(&s, &request(ExplainMode::Sound, "beam", 2));
        prop_assert_eq!(code, 0, "sound mode degraded despite a planted sound candidate");
        let q = top.expect("exit 0 implies a winner");
        let (pos_hits, neg_hits, _) = exact_confusion(&s, &q);
        prop_assert_eq!(neg_hits, 0, "sound winner answers a λ⁻ tuple under exact re-scoring");
        prop_assert!(pos_hits > 0, "sound winner matches nothing — vetted was beatable by vacuum");

        let (code, top) = top_of(&s, &request(ExplainMode::Complete, "beam", 2));
        prop_assert_eq!(code, 0, "complete mode degraded despite a planted complete candidate");
        let q = top.expect("exit 0 implies a winner");
        let (pos_hits, _, pos_total) = exact_confusion(&s, &q);
        prop_assert_eq!(
            pos_hits, pos_total,
            "complete winner misses a λ⁺ tuple under exact re-scoring"
        );
    }

    /// On arbitrary random DL-Lite systems the bars may be unachievable,
    /// so the property is conditional on the service *claiming* success:
    /// whenever a sound/complete run exits 0, its winner must survive
    /// exact re-scoring. Radius 3 ≥ `max_atoms` keeps border evaluation
    /// exact for every candidate the search can emit, so a violation here
    /// is a real scoring bug, never a truncated-border artifact.
    #[test]
    fn claimed_mode_bars_are_exact_on_random_systems(seed in 0u64..5_000) {
        let s = random_scenario(RandomParams {
            seed,
            n_individuals: 30,
            n_concept_facts: 40,
            n_role_facts: 50,
            ..RandomParams::default()
        });
        for mode in [ExplainMode::Sound, ExplainMode::Complete] {
            let (code, top) = top_of(&s, &request(mode, "beam", 3));
            if code != 0 {
                continue; // degraded: the bar was unreachable, nothing claimed
            }
            let q = top.expect("exit 0 implies a winner");
            let (pos_hits, neg_hits, pos_total) = exact_confusion(&s, &q);
            match mode {
                ExplainMode::Sound => prop_assert_eq!(
                    neg_hits, 0,
                    "seed {}: sound exit 0 but the winner answers {} λ⁻ tuple(s)",
                    seed, neg_hits
                ),
                ExplainMode::Complete => prop_assert_eq!(
                    pos_hits, pos_total,
                    "seed {}: complete exit 0 but the winner misses {} λ⁺ tuple(s)",
                    seed, pos_total - pos_hits
                ),
                ExplainMode::Fscore => unreachable!("fscore has no bar"),
            }
        }
    }
}

/// `--mode fscore` must be byte-identical to the pre-mode pipeline: the
/// paper-weighted scoring handed straight to the strategy and rendered
/// by [`render_report_text`]. Any drift in the mode plumbing (scoring
/// dispatch, degradation marker, exit codes) shows up as a byte diff.
#[test]
fn fscore_mode_is_byte_identical_to_the_premode_pipeline() {
    let s = modes_scenario(ModesParams {
        n_pos: 8,
        n_neg: 8,
        ..ModesParams::default()
    });
    let strategies: [(&str, Box<dyn Strategy>); 4] = [
        ("beam", Box::new(BeamSearch)),
        ("bottom-up", Box::new(BottomUpGeneralize::default())),
        ("exhaustive", Box::new(ExhaustiveSearch::default())),
        ("greedy", Box::new(GreedyUcq::default())),
    ];
    for (name, strategy) in strategies {
        let req = request(ExplainMode::Fscore, name, 1);
        let outcome =
            run_explain(&s.system, &s.labels, &req, SearchBudget::unlimited()).expect("fscore run");

        // The pipeline exactly as it was before modes existed.
        let scoring = req.scoring();
        let limits = SearchLimits {
            top_k: req.top,
            ..SearchLimits::default()
        };
        let task = ExplainTask::new_with_budget(
            &s.system,
            &s.labels,
            req.radius,
            &scoring,
            limits,
            SearchBudget::unlimited(),
        )
        .expect("task");
        let report = strategy.explain_with_status(&task).expect("search");
        let (stdout, exit_code) = render_report_text(
            &report,
            &s.system,
            task.budget().guard_trip(),
            ExplainMode::Fscore,
        );

        assert_eq!(
            outcome.stdout, stdout,
            "{name}: --mode fscore output drifted from the pre-mode pipeline"
        );
        assert_eq!(outcome.exit_code, exit_code, "{name}: exit code drifted");
    }
}

/// The conflation canary at the service layer: the three modes pick
/// three distinct winners on the default audit scenario (the bench
/// asserts the same through the strategy API; this pins the full
/// request → scoring → render path).
#[test]
fn service_mode_winners_differ_on_the_audit_scenario() {
    let s = modes_scenario(ModesParams::default());
    let rendered: Vec<String> = ExplainMode::ALL
        .iter()
        .map(|&mode| {
            let outcome = run_explain(
                &s.system,
                &s.labels,
                &request(mode, "beam", 1),
                SearchBudget::unlimited(),
            )
            .expect("service run");
            assert_eq!(
                outcome.exit_code, 0,
                "{mode}: degraded on the audit scenario"
            );
            outcome
                .stdout
                .lines()
                .next()
                .expect("one ranked line")
                .to_owned()
        })
        .collect();
    assert!(
        rendered[0] != rendered[1] && rendered[0] != rendered[2] && rendered[1] != rendered[2],
        "mode winners conflated through the service layer:\n  fscore:   {}\n  sound:    {}\n  complete: {}",
        rendered[0],
        rendered[1],
        rendered[2]
    );
}

/// Sums every `"pruned":N` counter in a `--profile=json` tail.
fn pruned_total(out: &str) -> u64 {
    out.match_indices("\"pruned\":")
        .map(|(i, m)| {
            out[i + m.len()..]
                .chars()
                .take_while(char::is_ascii_digit)
                .collect::<String>()
                .parse::<u64>()
                .unwrap_or(0)
        })
        .sum()
}

/// The flagship acceptance run, end-to-end through the real CLI on the
/// skewed pruning scenario: `--mode sound` must return a zero-λ⁻ winner
/// and `--mode complete --strategy greedy` must cover every λ⁺ — and
/// both runs must report `pruned > 0` in the pipeline profile, proving
/// the mode scorings keep the optimistic interval bound live on the
/// workload built to exercise it.
#[test]
fn cli_modes_on_the_skewed_scenario_are_perfect_and_still_prune() {
    let s = skewed_scenario(SkewedParams {
        n_students: 300,
        n_registrar_kinds: 10,
        ..SkewedParams::default()
    });
    let dir = std::env::temp_dir().join(format!("obx-mode-accept-{}", std::process::id()));
    write_scenario_dir(&dir, &s.system, &s.labels).expect("write scenario dir");

    let run = |extra: &[&str]| {
        let mut args = vec!["explain".to_owned(), dir.display().to_string()];
        args.extend(extra.iter().map(|a| (*a).to_owned()));
        obx_cli::run_cancellable(&args, &obx_cli::CancelToken::new()).expect("cli run")
    };

    // The limits the `modes` bench proves pruning on (single-atom tier,
    // narrow beam): wide conjunctive tiers fill the guard window at the
    // bound's own baseline and pruning goes dark (DESIGN.md §9/§15).
    let limits = ["--max-atoms", "1", "--beam-width", "4", "--top", "1"];

    let mut sound_args = vec!["--mode", "sound", "--profile=json"];
    sound_args.extend_from_slice(&limits);
    let sound = run(&sound_args);
    assert_eq!(sound.exit_code, 0, "sound run degraded:\n{}", sound.stdout);
    let first = sound.stdout.lines().next().expect("ranked line");
    assert!(
        first.contains("  0-]"),
        "sound winner hits λ⁻ tuples: {first}"
    );
    assert!(
        pruned_total(&sound.stdout) > 0,
        "sound mode reported zero pruning on the pruning scenario:\n{}",
        sound.stdout
    );

    let mut complete_args = vec![
        "--mode",
        "complete",
        "--strategy",
        "greedy",
        "--profile=json",
    ];
    complete_args.extend_from_slice(&limits);
    let complete = run(&complete_args);
    assert_eq!(
        complete.exit_code, 0,
        "complete run degraded:\n{}",
        complete.stdout
    );
    let pos_total = s.labels.pos().len();
    let first = complete.stdout.lines().next().expect("ranked line");
    assert!(
        first.contains(&format!("[{pos_total}/{pos_total}+")),
        "complete winner misses λ⁺ tuples: {first}"
    );
    assert!(
        pruned_total(&complete.stdout) > 0,
        "complete mode reported zero pruning on the pruning scenario:\n{}",
        complete.stdout
    );

    std::fs::remove_dir_all(&dir).ok();
}

//! Ingestion hardening for the service boundary: malformed HTTP and
//! malformed request JSON must always produce a *structured* rejection —
//! a stable `OBX3xx` diagnostic code — and must never panic, hang, or
//! crash the server.
//!
//! Three layers of proof:
//! 1. a hand-curated corpus hits the wire parser directly and pins each
//!    pathology to its code (the code, not the message, is the contract);
//! 2. a property fuzzes both parsers with arbitrary bytes — any outcome
//!    is fine except a panic;
//! 3. the same corpus is replayed against a live server socket: every
//!    reply is either a structured error or a clean close, and the
//!    server still answers an honest request afterwards.

use obx_serve::http::{read_request, HttpLimits};
use obx_serve::json::{explain_body, parse as json_parse};
use obx_serve::{start, ServeConfig};
use proptest::prelude::*;
use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

fn parse_http(input: &[u8]) -> Result<Option<String>, &'static str> {
    read_request(&mut BufReader::new(input), &HttpLimits::default())
        .map(|r| r.map(|req| req.path))
        .map_err(|e| e.code)
}

/// `(raw request bytes, expected OBX code or "" for clean accept/EOF)`.
fn http_corpus() -> Vec<(Vec<u8>, &'static str)> {
    let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(100_000));
    let header_flood = {
        let mut s = String::from("GET /x HTTP/1.1\r\n");
        for i in 0..200 {
            s.push_str(&format!("h{i}: v\r\n"));
        }
        s.push_str("\r\n");
        s
    };
    let huge_header = format!("GET /x HTTP/1.1\r\nh: {}\r\n\r\n", "v".repeat(100_000));
    vec![
        (b"".to_vec(), ""),                              // clean EOF
        (b"GET /healthz HTTP/1.1\r\n\r\n".to_vec(), ""), // valid
        (b"GARBAGE\r\n\r\n".to_vec(), "OBX300"),
        (b"GET\r\n\r\n".to_vec(), "OBX300"),
        (b"GET /x HTTP/1.1 junk\r\n\r\n".to_vec(), "OBX300"),
        (b"GET relative HTTP/1.1\r\n\r\n".to_vec(), "OBX300"),
        (long_line.into_bytes(), "OBX300"),
        (b"\xff\xfe garbage\r\n\r\n".to_vec(), "OBX301"), // non-UTF-8 head
        (b"GET /x HTTP/1.1\r\nnocolonhere\r\n\r\n".to_vec(), "OBX301"),
        (b"GET /x HTTP/1.1\r\n: novalue\r\n\r\n".to_vec(), "OBX301"),
        (header_flood.into_bytes(), "OBX301"),
        (huge_header.into_bytes(), "OBX301"),
        (b"DELETE /x HTTP/1.1\r\n\r\n".to_vec(), "OBX302"),
        (b"BREW /coffee HTCPCP/1.0\r\n\r\n".to_vec(), "OBX302"),
        (b"GET /x HTTP/2\r\n\r\n".to_vec(), "OBX302"),
        (
            b"POST /x HTTP/1.1\r\ncontent-length: banana\r\n\r\n".to_vec(),
            "OBX303",
        ),
        (
            b"POST /x HTTP/1.1\r\ncontent-length: -5\r\n\r\n".to_vec(),
            "OBX303",
        ),
        (
            b"POST /x HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n".to_vec(),
            "OBX303",
        ),
        (
            b"POST /x HTTP/1.1\r\ncontent-length: 9999999999\r\n\r\n".to_vec(),
            "OBX304",
        ),
        (
            b"POST /x HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc".to_vec(),
            "OBX305",
        ),
        (b"GET /x HTTP/1.1\r\nhost".to_vec(), "OBX305"), // truncated header
    ]
}

/// `(body text, expected OBX31x code or "" for accepted)`.
fn json_corpus() -> Vec<(&'static str, &'static str)> {
    vec![
        ("", ""),
        ("{}", ""),
        (r#"{"top": 3, "client": "c"}"#, ""),
        ("{", "OBX310"),
        ("}", "OBX310"),
        ("[1,", "OBX310"),
        ("nul", "OBX310"),
        (r#"{"a": 1e999}"#, "OBX310"), // non-finite number
        (r#"{"a": "\q"}"#, "OBX310"),  // bad escape
        ("{} extra", "OBX310"),
        (r#"[1, 2]"#, "OBX311"), // body must be an object
        (r#"{"radius": "big"}"#, "OBX311"),
        (r#"{"weights": {"a": 1}}"#, "OBX311"),
        (r#"{"profile": 1}"#, "OBX311"),
        (r#"{"timout_ms": 10}"#, "OBX312"), // typo'd knob
        (r#"{"extra": null}"#, "OBX312"),
        (r#"{"strategy": "quantum"}"#, "OBX313"),
        (r#"{"top": 0}"#, "OBX313"),
        (r#"{"radius": 1.5}"#, "OBX313"),
        (r#"{"weights": [1, -2, 3]}"#, "OBX313"),
    ]
}

#[test]
fn http_corpus_maps_to_stable_codes() {
    for (raw, want) in http_corpus() {
        let got = parse_http(&raw);
        match (got, want) {
            (Ok(_), "") => {}
            (Err(code), want) if !want.is_empty() => {
                assert_eq!(code, want, "input {:?}", String::from_utf8_lossy(&raw));
            }
            (got, want) => panic!(
                "input {:?}: got {got:?}, wanted {want:?}",
                String::from_utf8_lossy(&raw)
            ),
        }
    }
}

#[test]
fn json_corpus_maps_to_stable_codes() {
    for (body, want) in json_corpus() {
        match (explain_body(body), want) {
            (Ok(_), "") => {}
            (Err(e), want) if !want.is_empty() => {
                assert_eq!(e.code, want, "input {body:?} ({e})");
            }
            (got, want) => panic!("input {body:?}: got {:?}, wanted {want:?}", got.err()),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256 })]

    /// Arbitrary bytes into the wire parser: any structured outcome is
    /// acceptable; a panic (or unbounded buffering) is not. The parser
    /// runs inside the per-request quarantine on the server, but the
    /// contract here is stronger: it must not rely on it.
    #[test]
    fn arbitrary_bytes_never_panic_the_http_parser(
        bytes in proptest::collection::vec(0u8..=255, 0..512),
    ) {
        let _ = parse_http(&bytes);
    }

    /// Arbitrary text into the JSON decoder: accepted or `OBX31x`,
    /// never a panic. Every error code must be from the reserved range.
    #[test]
    fn arbitrary_text_never_panics_the_json_decoder(
        bytes in proptest::collection::vec(0u8..=255, 0..256),
    ) {
        let text = String::from_utf8_lossy(&bytes);
        if let Err(e) = explain_body(&text) {
            prop_assert!(e.code.starts_with("OBX31"), "stray code {}", e.code);
        }
        let _ = json_parse(&text);
    }

    /// Structured-prefix fuzz: a valid-looking request line followed by
    /// random header garbage — closer to what confused clients send.
    #[test]
    fn fuzzed_headers_never_panic(
        garbage in proptest::collection::vec(0u8..=255, 0..256),
    ) {
        let mut raw = b"POST /explain HTTP/1.1\r\n".to_vec();
        raw.extend_from_slice(&garbage);
        raw.extend_from_slice(b"\r\n\r\n");
        let _ = parse_http(&raw);
    }
}

// ------------------------------------------------------------- live socket

fn send_raw(addr: SocketAddr, raw: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // The peer may reset mid-write on early rejection; that is a valid
    // structured outcome at the socket level.
    let _ = stream.write_all(raw);
    let mut out = String::new();
    let _ = stream.read_to_string(&mut out);
    out
}

#[test]
fn live_server_shrugs_off_the_whole_corpus() {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("obx-serve-ingestion-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    obx_core::scenario::write_paper_example(&dir).unwrap();
    let server = start(
        &dir,
        ServeConfig {
            read_timeout_ms: 300,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    for (raw, want) in http_corpus() {
        let reply = send_raw(addr, &raw);
        if !want.is_empty() && !reply.is_empty() {
            assert!(
                reply.contains(want),
                "corpus {:?}: reply lacked {want}: {reply}",
                String::from_utf8_lossy(&raw)
            );
        }
    }
    for (body, want) in json_corpus() {
        let raw = format!(
            "POST /explain HTTP/1.1\r\nconnection: close\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        );
        let reply = send_raw(addr, raw.as_bytes());
        if !want.is_empty() {
            assert!(
                reply.starts_with("HTTP/1.1 400"),
                "json corpus {body:?}: {reply}"
            );
            assert!(reply.contains(want), "json corpus {body:?}: {reply}");
        }
    }

    // After the entire corpus, the server still works — the proof that
    // nothing above crashed, wedged, or leaked a handler.
    let reply = send_raw(
        addr,
        b"POST /explain HTTP/1.1\r\nconnection: close\r\ncontent-length: 2\r\n\r\n{}",
    );
    assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
    assert!(reply.contains("Z ="), "{reply}");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

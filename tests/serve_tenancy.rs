//! Multi-tenant robustness proof for the explanation service.
//!
//! Two storms that `tests/serve_resilience.rs` cannot express with a
//! single scenario directory:
//!
//! 1. **Noisy neighbor** — a pathological tenant (injected panics, slow
//!    holds, breaker trips) shares a process with an honest tenant. The
//!    bulkhead + breaker layers must keep the honest tenant's responses
//!    byte-identical to the one-shot CLI oracle and its queueing bounded:
//!    the noisy tenant saturates *its own* bulkhead (`OBX324`) and trips
//!    *its own* breaker (`OBX325`), never the co-tenant's.
//!
//! 2. **`kill -9` crash recovery** — a real child server process is
//!    SIGKILLed (no destructor runs, no clean shutdown) after journaling
//!    a runtime mount. A fresh boot from the journal alone must replay
//!    every mount; a mount whose directory rotted while the server was
//!    dead comes back *quarantined* (`OBX327`, listed, reload-repairable)
//!    instead of failing the boot; corrupt journal lines are skipped, not
//!    fatal.
//!
//! The fault hooks (`x-obx-fault`) come from the serve crate's
//! `fault-injection` feature, which this test crate enables.

use obx_core::budget::CancelToken;
use obx_core::scenario::write_paper_example;
use obx_core::service::{run_explain, ExplainRequest};
use obx_serve::{start_multi, ServeConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------- helpers

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("obx-serve-tenancy-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The request every worker sends; small enough to finish in
/// milliseconds on the paper example.
fn tenancy_request() -> ExplainRequest {
    ExplainRequest {
        top: 3,
        ..ExplainRequest::default()
    }
}

/// The one-shot service output (== CLI stdout) for the paper example:
/// the oracle every honest served body is compared against.
fn expected_output() -> String {
    let dir = scratch_dir("oracle");
    write_paper_example(&dir).unwrap();
    let scenario = obx_core::scenario::load_dir(&dir).unwrap();
    let req = tenancy_request();
    let out = run_explain(
        &scenario.system,
        &scenario.labels,
        &req,
        req.budget(&CancelToken::new()),
    )
    .unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    out.stdout
}

/// One-shot HTTP client: `(status, lowercased header block, body)`.
fn http(
    addr: SocketAddr,
    method: &str,
    path: &str,
    extra: &[(&str, &str)],
    body: &str,
) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut req = format!(
        "{method} {path} HTTP/1.1\r\nhost: t\r\nconnection: close\r\ncontent-length: {}\r\n",
        body.len()
    );
    for (name, value) in extra {
        req.push_str(&format!("{name}: {value}\r\n"));
    }
    req.push_str("\r\n");
    req.push_str(body);
    stream.write_all(req.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let (head, payload) = raw
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("no header/body split in {raw:?}"));
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparsable status line in {head:?}"));
    (status, head.to_ascii_lowercase(), payload.to_owned())
}

fn wait_until(deadline_ms: u64, mut probe: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_millis(deadline_ms);
    while Instant::now() < deadline {
        if probe() {
            return true;
        }
        thread::sleep(Duration::from_millis(25));
    }
    false
}

// ------------------------------------------------------- noisy neighbor

/// A pathological tenant (panics, slow holds, request floods) beside an
/// honest one. Every honest response must be a 200 with the oracle body
/// — the noisy tenant's failures stay behind its bulkhead and breaker.
#[test]
fn noisy_neighbor_cannot_corrupt_or_starve_the_honest_tenant() {
    let honest_dir = scratch_dir("nn-honest");
    let noisy_dir = scratch_dir("nn-noisy");
    write_paper_example(&honest_dir).unwrap();
    write_paper_example(&noisy_dir).unwrap();

    let config = ServeConfig {
        max_inflight: 2,
        queue_depth: 8,
        // Bulkheads: the noisy tenant can hold at most 1 executing + 2
        // queued requests, leaving guaranteed capacity for `honest`.
        tenant_max_inflight: Some(1),
        tenant_queue_depth: Some(2),
        breaker_threshold: 3,
        breaker_open_ms: 300,
        queue_wait_ms: 5_000,
        read_timeout_ms: 10_000,
        write_timeout_ms: 10_000,
        grace_ms: 3_000,
        ..ServeConfig::default()
    };
    let server = start_multi(
        vec![
            ("honest".to_owned(), honest_dir.clone()),
            ("noisy".to_owned(), noisy_dir.clone()),
        ],
        None,
        config,
    )
    .unwrap();
    let addr = server.addr();
    let oracle = expected_output();

    let stop = Arc::new(AtomicBool::new(false));
    let noisy_bulkhead_sheds = Arc::new(AtomicUsize::new(0));

    // Five noisy workers flooding slow holds: with a bulkhead of 1
    // executing + 2 queued, at least two are shed with `OBX324` at any
    // instant — and none of them ever touches `honest`'s capacity.
    let mut workers = Vec::new();
    for w in 0..5usize {
        let stop = Arc::clone(&stop);
        let bulkhead_sheds = Arc::clone(&noisy_bulkhead_sheds);
        workers.push(thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let body = format!(r#"{{"top": 3, "scenario": "noisy", "client": "n{w}"}}"#);
                let (status, _, payload) = http(
                    addr,
                    "POST",
                    "/explain",
                    &[("x-obx-fault", "sleep:40")],
                    &body,
                );
                // Chaos responses must be *structured*: a stable OBX code
                // on every non-200, never a dropped connection.
                assert!(
                    status == 200 || payload.contains("OBX"),
                    "unstructured noisy response: {status} {payload}"
                );
                if payload.contains("OBX324") {
                    bulkhead_sheds.fetch_add(1, Ordering::Relaxed);
                }
            }
        }));
    }

    // A reload-churn worker: the noisy tenant also swaps its own epochs
    // as fast as it can. Honest requests must never notice (their
    // tenant's epoch chain is independent).
    {
        let stop = Arc::clone(&stop);
        workers.push(thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let (status, _, payload) =
                    http(addr, "POST", "/reload", &[], r#"{"scenario": "noisy"}"#);
                assert!(
                    status == 200 || payload.contains("OBX"),
                    "unstructured reload response: {status} {payload}"
                );
                thread::sleep(Duration::from_millis(10));
            }
        }));
    }

    // Two honest workers: 15 plain requests each, distinct client names.
    let honest_failures = Arc::new(AtomicUsize::new(0));
    let mut honest_workers = Vec::new();
    for w in 0..2usize {
        let oracle = oracle.clone();
        let failures = Arc::clone(&honest_failures);
        honest_workers.push(thread::spawn(move || {
            for _ in 0..15 {
                let body = format!(r#"{{"top": 3, "scenario": "honest", "client": "h{w}"}}"#);
                let (status, head, payload) = http(addr, "POST", "/explain", &[], &body);
                if status != 200 || payload != oracle {
                    eprintln!("honest divergence: {status} {head} {payload}");
                    failures.fetch_add(1, Ordering::Relaxed);
                }
            }
        }));
    }
    for w in honest_workers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().unwrap();
    }

    // The honest tenant never saw anything but byte-identical 200s,
    // while the noisy flood was bounded by its own bulkhead.
    assert_eq!(honest_failures.load(Ordering::Relaxed), 0);
    assert!(
        noisy_bulkhead_sheds.load(Ordering::Relaxed) > 0,
        "a 5-worker flood against a 1+2 bulkhead must shed with OBX324"
    );

    // Breaker arc, deterministic this time: three *consecutive* panics
    // (threshold 3, nothing interleaved) trip the noisy breaker...
    for _ in 0..3 {
        let (status, _, payload) = http(
            addr,
            "POST",
            "/explain",
            &[("x-obx-fault", "panic")],
            r#"{"scenario": "noisy"}"#,
        );
        assert_eq!(status, 500, "{payload}");
        assert!(payload.contains("OBX323"), "{payload}");
    }
    let (status, head, payload) = http(addr, "POST", "/explain", &[], r#"{"scenario": "noisy"}"#);
    assert_eq!(status, 503, "{payload}");
    assert!(payload.contains("OBX325"), "{payload}");
    assert!(head.contains("retry-after:"), "{head}");

    // ...the honest co-tenant is untouched by the trip...
    let (status, _, payload) = http(
        addr,
        "POST",
        "/explain",
        &[],
        r#"{"top": 3, "scenario": "honest", "client": "h0"}"#,
    );
    assert_eq!(status, 200);
    assert_eq!(payload, oracle);

    // ...and after the open window a half-open probe readmits the
    // tenant: one healthy request closes the breaker for good.
    thread::sleep(Duration::from_millis(500));
    let (status, _, payload) = http(addr, "POST", "/explain", &[], r#"{"scenario": "noisy"}"#);
    assert_eq!(status, 200, "probe should readmit: {payload}");
    let (status, _, _) = http(addr, "POST", "/explain", &[], r#"{"scenario": "noisy"}"#);
    assert_eq!(status, 200);

    // And the process is still healthy: registry lists both tenants,
    // readiness holds, per-tenant counters surfaced in /metrics.
    let (status, _, body) = http(addr, "GET", "/tenants", &[], "");
    assert_eq!(status, 200);
    assert!(body.contains("\"scenario\":\"honest\""), "{body}");
    assert!(body.contains("\"scenario\":\"noisy\""), "{body}");
    let (status, _, _) = http(addr, "GET", "/readyz", &[], "");
    assert_eq!(status, 200);
    let (_, _, metrics) = http(addr, "GET", "/metrics", &[], "");
    assert!(
        metrics.contains("serve/tenant/noisy/breaker_open"),
        "{metrics}"
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(&honest_dir);
    let _ = std::fs::remove_dir_all(&noisy_dir);
}

// --------------------------------------------------- kill -9 recovery

/// Not a test: the child server process for the crash-recovery tests.
/// Invoked by name from `killed_server_replays_its_journal` with
/// `OBX_TENANCY_CHILD_ROOT` set; a plain `cargo test` run sees the env
/// var absent and the "test" passes as a no-op.
#[test]
fn tenancy_child_server() {
    let Ok(root) = std::env::var("OBX_TENANCY_CHILD_ROOT") else {
        return;
    };
    let root = PathBuf::from(root);
    let config = ServeConfig {
        grace_ms: 500,
        ..ServeConfig::default()
    };
    let server = start_multi(
        vec![("alpha".to_owned(), root.join("alpha"))],
        Some(root.join("journal.tsv")),
        config,
    )
    .unwrap();
    // Publish the address atomically (write + rename) so the parent
    // never reads a half-written file.
    let tmp = root.join("addr.tmp");
    std::fs::write(&tmp, server.addr().to_string()).unwrap();
    std::fs::rename(&tmp, root.join("addr.txt")).unwrap();
    // Park forever; the parent SIGKILLs this process, so no drain and
    // no destructor ever runs — exactly the crash being simulated.
    loop {
        thread::sleep(Duration::from_secs(3600));
    }
}

fn spawn_child_server(root: &Path) -> std::process::Child {
    std::process::Command::new(std::env::current_exe().unwrap())
        .args(["tenancy_child_server", "--exact", "--nocapture"])
        .env("OBX_TENANCY_CHILD_ROOT", root.to_str().unwrap())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap()
}

/// Mount over the wire, `kill -9`, boot from the journal alone: every
/// mount replays; the one whose directory rotted while the server was
/// dead comes back quarantined (and is repairable by reload), not fatal.
#[test]
fn killed_server_replays_its_journal() {
    let root = scratch_dir("kill9");
    write_paper_example(&root.join("alpha")).unwrap();
    write_paper_example(&root.join("beta")).unwrap();

    // Boot the child with `alpha` mounted and a journal armed.
    let mut child = spawn_child_server(&root);
    assert!(
        wait_until(20_000, || root.join("addr.txt").exists()),
        "child server never came up"
    );
    let addr: SocketAddr = std::fs::read_to_string(root.join("addr.txt"))
        .unwrap()
        .trim()
        .parse()
        .unwrap();

    // Journal a second mount over the wire, prove it serves...
    let mount = format!(
        r#"{{"scenario": "beta", "dir": "{}"}}"#,
        root.join("beta").display()
    );
    let (status, _, body) = http(addr, "POST", "/tenants", &[], &mount);
    assert_eq!(status, 200, "{body}");
    let (status, _, _) = http(addr, "POST", "/explain", &[], r#"{"scenario": "beta"}"#);
    assert_eq!(status, 200);

    // ...then SIGKILL the process mid-flight. No drain, no Drop.
    child.kill().unwrap();
    child.wait().unwrap();

    // While the server is "dead", beta's directory rots.
    std::fs::write(root.join("beta").join("ontology.obx"), "concept \u{7f}!!").unwrap();

    // A fresh boot from the journal ALONE (no explicit mounts) replays
    // both tenants; rotten beta is quarantined, not a boot failure.
    let server = start_multi(
        vec![],
        Some(root.join("journal.tsv")),
        ServeConfig::default(),
    )
    .unwrap_or_else(|e| panic!("journal-only boot failed: {e}"));
    let addr = server.addr();
    let (status, _, body) = http(addr, "GET", "/tenants", &[], "");
    assert_eq!(status, 200);
    assert!(body.contains("\"scenario\":\"alpha\""), "{body}");
    assert!(body.contains("\"scenario\":\"beta\""), "{body}");
    assert!(body.contains("\"status\":\"quarantined\""), "{body}");

    // Alpha survived with full fidelity.
    let (status, _, payload) = http(
        addr,
        "POST",
        "/explain",
        &[],
        r#"{"top": 3, "scenario": "alpha"}"#,
    );
    assert_eq!(status, 200);
    assert_eq!(payload, expected_output());

    // Beta sheds with the quarantine code...
    let (status, _, payload) = http(addr, "POST", "/explain", &[], r#"{"scenario": "beta"}"#);
    assert_eq!(status, 503);
    assert!(payload.contains("OBX327"), "{payload}");

    // ...until its directory is repaired and reloaded.
    write_paper_example(&root.join("beta")).unwrap();
    let (status, _, payload) = http(addr, "POST", "/reload", &[], r#"{"scenario": "beta"}"#);
    assert_eq!(status, 200, "{payload}");
    let (status, _, _) = http(addr, "POST", "/explain", &[], r#"{"scenario": "beta"}"#);
    assert_eq!(status, 200);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

/// A journal that was torn mid-write (trailing garbage, flipped bits)
/// degrades to "skip the bad lines", never to a boot failure — as long
/// as one serveable mount remains.
#[test]
fn corrupt_journal_lines_are_skipped_not_fatal() {
    let root = scratch_dir("corrupt-journal");
    write_paper_example(&root.join("alpha")).unwrap();

    // A hand-crafted journal: one valid line (real checksum), one line
    // whose checksum lies, one torn line, one line of pure noise.
    let alpha_payload = format!("alpha\t{}", root.join("alpha").display());
    let torn_payload = b"torn\t/else/where";
    let journal = format!(
        "obx-tenants v1\n{:08x}\t{}\ndeadbeef\tghost\t/nowhere\n{:08x}\ttorn\n<<<garbage>>>\n",
        obx_util::hash::crc32(alpha_payload.as_bytes()),
        alpha_payload,
        // Torn line: a checksum that was computed over a longer payload
        // than what made it to disk.
        obx_util::hash::crc32(torn_payload),
    );
    std::fs::write(root.join("journal.tsv"), journal).unwrap();

    let server = start_multi(
        vec![],
        Some(root.join("journal.tsv")),
        ServeConfig::default(),
    )
    .unwrap_or_else(|e| panic!("boot over a corrupt journal failed: {e}"));
    let addr = server.addr();

    // Only the valid line survived, and it serves.
    let (status, _, body) = http(addr, "GET", "/tenants", &[], "");
    assert_eq!(status, 200);
    assert!(body.contains("\"scenario\":\"alpha\""), "{body}");
    assert!(!body.contains("ghost"), "{body}");
    assert!(!body.contains("torn"), "{body}");
    let (status, _, _) = http(addr, "POST", "/explain", &[], "{}");
    assert_eq!(status, 200);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

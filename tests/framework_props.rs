//! Property tests on the explanation framework's invariants.

use obx_core::criteria::CriterionCtx;
use obx_core::matcher::MatchStats;
use obx_core::score::{ScoreExpr, Scoring};
use obx_srcdb::{border, Border, Database, Schema};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a random small database over a fixed binary schema.
fn random_db(seed: u64, n_consts: usize, n_atoms: usize) -> Database {
    let mut schema = Schema::new();
    for name in ["R", "S", "T"] {
        schema.declare(name, 2).unwrap();
    }
    let mut db = Database::new(schema);
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..n_atoms {
        let rel = ["R", "S", "T"][rng.gen_range(0usize..3)];
        let a = format!("c{}", rng.gen_range(0..n_consts));
        let b = format!("c{}", rng.gen_range(0..n_consts));
        db.insert_named(rel, &[&a, &b]).unwrap();
    }
    db
}

proptest! {
    /// B_{t,r} ⊆ B_{t,r+1} (the containment behind Proposition 3.5), and
    /// layers are pairwise disjoint.
    #[test]
    fn border_monotone_and_layers_disjoint(
        seed in 0u64..10_000,
        n_consts in 2usize..20,
        n_atoms in 1usize..60,
        radius in 0usize..5,
    ) {
        let mut db = random_db(seed, n_consts, n_atoms);
        let t = db.constant("c0");
        let small = border(&db, &[t], radius);
        let large = border(&db, &[t], radius + 1);
        prop_assert!(small.is_subset(&large));

        let b = Border::compute(&db, &[t], radius + 1);
        let mut seen = obx_util::FxHashSet::default();
        for j in 0..b.num_layers() {
            for &id in b.layer(j).unwrap() {
                prop_assert!(seen.insert(id), "atom {id} in two layers");
            }
        }
        // The union of layers is the border.
        prop_assert_eq!(seen.len(), b.len());
    }

    /// Incremental extension equals direct computation.
    #[test]
    fn border_extension_is_path_independent(
        seed in 0u64..10_000,
        split in 0usize..4,
    ) {
        let mut db = random_db(seed, 12, 40);
        let t = db.constant("c1");
        let direct = Border::compute(&db, &[t], 4);
        let mut grown = Border::compute(&db, &[t], split);
        grown.extend(&db, 4);
        prop_assert_eq!(direct.atoms(), grown.atoms());
    }

    /// The weighted average Z lies in [0, 1] for criteria values in [0, 1]
    /// and is monotone in each criterion value.
    #[test]
    fn weighted_average_is_bounded_and_monotone(
        w in proptest::collection::vec(0.01f64..10.0, 1..5),
        vals in proptest::collection::vec(0.0f64..=1.0, 5),
        bump_idx in 0usize..5,
        bump in 0.0f64..0.5,
    ) {
        let expr = ScoreExpr::weighted_average(&w);
        let vals = &vals[..w.len().min(vals.len())];
        if vals.len() < w.len() { return Ok(()); }
        let z = expr.eval(vals);
        prop_assert!((-1e-9..=1.0 + 1e-9).contains(&z), "z = {z}");
        let idx = bump_idx % vals.len();
        let mut bumped = vals.to_vec();
        bumped[idx] = (bumped[idx] + bump).min(1.0);
        prop_assert!(expr.eval(&bumped) + 1e-12 >= z);
    }

    /// Definition 3.7's winner is invariant under positive affine
    /// transformations of Z: argmax(a·Z + b) = argmax(Z).
    #[test]
    fn winner_invariant_under_positive_affine_rescaling(
        stats in proptest::collection::vec((0usize..10, 0usize..10), 2..8),
        a in 0.1f64..5.0,
        b in -3.0f64..3.0,
    ) {
        let scoring = Scoring::paper_weighted(1.0, 1.0, 1.0);
        let scaled = Scoring::new(
            scoring.criteria().to_vec(),
            ScoreExpr::Sum(vec![
                ScoreExpr::Scale(a, Box::new(scoring.expr().clone())),
                ScoreExpr::Const(b),
            ]),
        );
        let mk = |pos: usize, neg: usize| MatchStats {
            pos_matched: pos,
            pos_total: 10,
            neg_matched: neg,
            neg_total: 10,
        };
        let score_all = |s: &Scoring| -> Vec<f64> {
            stats
                .iter()
                .map(|&(p, n)| {
                    let st = mk(p, n);
                    s.score(&CriterionCtx { stats: &st, num_atoms: 2, num_disjuncts: 1 })
                })
                .collect()
        };
        let argmax = |v: &[f64]| {
            v.iter()
                .enumerate()
                .max_by(|x, y| x.1.partial_cmp(y.1).unwrap())
                .unwrap()
                .0
        };
        let plain = score_all(&scoring);
        let transformed = score_all(&scaled);
        prop_assert_eq!(argmax(&plain), argmax(&transformed));
    }

    /// Adding a disjunct to a UCQ never decreases coverage counts (union
    /// semantics), checked through the paper-example matcher.
    #[test]
    fn ucq_coverage_monotone_in_disjuncts(pick in 0usize..3) {
        let ex = obx_core::paper_example::PaperExample::new();
        let prepared = ex.prepared();
        let queries = [&ex.q1, &ex.q2, &ex.q3];
        let single = queries[pick];
        let mut union = single.clone();
        for q in &queries {
            for d in q.disjuncts() {
                union.push(d.clone());
            }
        }
        let s_single = prepared.stats_of(single).unwrap();
        let s_union = prepared.stats_of(&union).unwrap();
        prop_assert!(s_union.pos_matched >= s_single.pos_matched);
        prop_assert!(s_union.neg_matched >= s_single.neg_matched);
    }
}

/// Criteria values of the built-ins always land in [0, 1] for arbitrary
/// stats (deterministic sweep, no proptest needed).
#[test]
fn criteria_codomain_is_unit_interval() {
    use obx_core::criteria::Criterion;
    let criteria = [
        Criterion::PosCoverage,
        Criterion::PosMissPenalty,
        Criterion::NegAvoidance,
        Criterion::NegHitPenalty,
        Criterion::AtomParsimony,
        Criterion::DisjunctParsimony,
    ];
    for pos_total in 0..4usize {
        for pos_matched in 0..=pos_total {
            for neg_total in 0..4usize {
                for neg_matched in 0..=neg_total {
                    let stats = MatchStats {
                        pos_matched,
                        pos_total,
                        neg_matched,
                        neg_total,
                    };
                    for atoms in 0..4 {
                        for disjuncts in 0..3 {
                            let ctx = CriterionCtx {
                                stats: &stats,
                                num_atoms: atoms,
                                num_disjuncts: disjuncts,
                            };
                            for c in &criteria {
                                let v = c.value(&ctx);
                                assert!((0.0..=1.0).contains(&v), "{} out of range: {v}", c.name());
                            }
                        }
                    }
                }
            }
        }
    }
}

//! Malformed-input fuzz harness: the committed corpus under
//! `tests/corpus/ingestion/` exercises every hand-written parser and the
//! best-effort scenario loader with truncated, mistyped, duplicated, and
//! non-UTF-8 input. The contract (see `DESIGN.md`, "Admission control &
//! resource guards"):
//!
//! * malformed input produces **structured diagnostics** — never a panic,
//!   and never a silent half-parse: every corpus file yields at least one
//!   diagnostic with the code family of its artifact kind;
//! * diagnostics carry usable positions (line ≥ 1 for in-file problems);
//! * well-formed artifacts round-trip: `parse → render → parse` is the
//!   identity on databases (property-tested);
//! * resource-guarded explanation runs degrade to ranked best-so-far
//!   results ([`Termination::Degraded`]) instead of aborting, and every
//!   reported result is sound against an unguarded reference.

use obx_cli::scenario_io::load_dir_checked;
use obx_core::budget::{SearchBudget, Termination};
use obx_core::explain::{ExplainTask, SearchLimits, Strategy};
use obx_core::labels::Labels;
use obx_core::score::Scoring;
use obx_core::strategies::BeamSearch;
use obx_core::validate_scenario;
use obx_obdm::example_3_6_system;
use obx_srcdb::{parse_database, parse_schema, Database, Schema};
use obx_util::{Diagnostics, GuardKind, GuardLimits};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;

/// The paper's five labelled students.
const PAPER_LABELS: &str = "+ A10\n+ B80\n+ C12\n+ D50\n- E25";

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus/ingestion")
}

fn paper_schema() -> Schema {
    parse_schema("STUD/1 LOC/2 ENR/3").unwrap()
}

/// Parses one flat corpus file with the diagnostic parser matching its
/// filename prefix, against the paper scenario's context where one is
/// needed (data needs a schema, mappings need schema + vocabulary, labels
/// need a constant pool).
fn diagnose(name: &str, text: &str) -> Diagnostics {
    let mut diags = Diagnostics::new();
    if name.starts_with("schema_") {
        obx_srcdb::parse_schema_diag(text, name, &mut diags);
    } else if name.starts_with("data_") {
        obx_srcdb::parse_database_diag(paper_schema(), text, name, &mut diags);
    } else if name.starts_with("onto_") {
        obx_ontology::parse_tbox_diag(text, name, &mut diags);
    } else if name.starts_with("map_") {
        let mut db = Database::new(paper_schema());
        let tbox =
            obx_ontology::parse_tbox("role studies likes taughtIn locatedIn\nstudies < likes")
                .unwrap();
        let (schema_ref, consts) = db.schema_and_consts_mut();
        obx_mapping::parse_mapping_diag(schema_ref, tbox.vocab(), consts, text, name, &mut diags);
    } else if name.starts_with("labels_") {
        let mut sys = example_3_6_system();
        Labels::parse_diag(sys.db_mut(), text, name, &mut diags);
    } else {
        panic!("corpus file {name} has no parser prefix");
    }
    diags
}

/// The diagnostic each corpus file is *named after* — the specific code
/// its defect must surface (other codes may accompany it).
fn expected_code(stem: &str) -> &'static str {
    match stem {
        "schema_missing_slash" => "OBX101",
        "schema_empty_name" => "OBX102",
        "schema_bad_arity" => "OBX103",
        "schema_duplicate" => "OBX104",
        "schema_zero_arity" => "OBX105",
        "schema_pathological_10k" => "OBX101",
        "data_bad_syntax" => "OBX111",
        "data_empty_arg" => "OBX112",
        "data_unknown_relation" => "OBX113",
        "data_wrong_arity" => "OBX114",
        "data_truncated" => "OBX111",
        "onto_undeclared" => "OBX121",
        "onto_redeclared" => "OBX122",
        "onto_bad_axiom" => "OBX123",
        "onto_mixed_kinds" => "OBX124",
        "map_no_arrow" => "OBX131",
        "map_bad_body" => "OBX132",
        "map_bad_head" => "OBX133",
        "map_unbound_head_var" => "OBX134",
        "labels_bad_sign" => "OBX151",
        "labels_mixed_arity" => "OBX152",
        "labels_conflict" => "OBX153",
        "labels_duplicate" => "OBX155",
        other => panic!("corpus file {other} missing from the expectation table"),
    }
}

#[test]
fn every_corpus_file_yields_structured_diagnostics() {
    let mut seen = 0usize;
    for entry in std::fs::read_dir(corpus_dir()).unwrap() {
        let path = entry.unwrap().path();
        if !path.is_file() {
            continue; // scenario directories have their own tests below
        }
        let name = path.file_name().unwrap().to_str().unwrap().to_owned();
        let stem = name.trim_end_matches(".obx");
        let text = std::fs::read_to_string(&path).unwrap();
        let diags = diagnose(&name, &text);
        seen += 1;
        assert!(
            !diags.is_empty(),
            "{name}: malformed input produced no diagnostics"
        );
        let codes: Vec<&str> = diags.iter().map(|d| d.code).collect();
        assert!(
            codes.contains(&expected_code(stem)),
            "{name}: expected {} among {codes:?}",
            expected_code(stem)
        );
        // Every parser-level diagnostic is positioned inside the file.
        for d in diags.iter() {
            assert!(d.line >= 1, "{name}: unpositioned diagnostic {d:?}");
            assert_eq!(d.file, name);
        }
    }
    assert!(seen >= 20, "corpus shrank to {seen} flat files");
}

#[test]
fn pathological_10k_line_file_is_fully_reported() {
    let path = corpus_dir().join("schema_pathological_10k.obx");
    let text = std::fs::read_to_string(path).unwrap();
    let diags = diagnose("schema_pathological_10k.obx", &text);
    // One diagnostic per broken declaration: nothing dropped, no panic,
    // no quadratic blow-up (this test times out if accumulation is not
    // linear).
    assert_eq!(diags.len(), 10_000);
    assert!(diags.iter().all(|d| d.code == "OBX101"));
}

#[test]
fn missing_scenario_files_are_reported_per_file() {
    let checked = load_dir_checked(&corpus_dir().join("scenario_missing_files"));
    assert!(checked.scenario.is_none());
    let codes: Vec<&str> = checked.diagnostics.iter().map(|d| d.code).collect();
    assert_eq!(
        codes.iter().filter(|c| **c == "OBX001").count(),
        4,
        "{codes:?}"
    );
}

#[test]
fn non_utf8_garbage_is_a_diagnostic_not_a_crash() {
    let checked = load_dir_checked(&corpus_dir().join("scenario_non_utf8"));
    assert!(checked.scenario.is_none());
    let bad: Vec<_> = checked
        .diagnostics
        .iter()
        .filter(|d| d.code == "OBX002")
        .collect();
    assert_eq!(bad.len(), 1, "{:?}", checked.diagnostics);
    assert_eq!(bad[0].file, "data.obx");
    assert_eq!(bad[0].line, 3, "line = valid prefix's newline count + 1");
}

#[test]
fn multi_error_scenario_reports_problems_in_every_file() {
    let checked = load_dir_checked(&corpus_dir().join("scenario_multi_error"));
    // All five files are readable, so a best-effort scenario assembles —
    // but the diagnostics make clear it is not admissible.
    assert!(checked.scenario.is_some());
    assert!(checked.diagnostics.has_errors());
    for file in obx_cli::scenario_io::SCENARIO_FILES {
        assert!(
            checked.diagnostics.iter().any(|d| d.file == file),
            "no diagnostic for {file}: {:?}",
            checked.diagnostics
        );
    }
}

#[test]
fn semantic_validation_runs_on_syntactically_clean_scenarios() {
    let mut checked = load_dir_checked(&corpus_dir().join("scenario_semantic"));
    assert!(
        !checked.diagnostics.has_errors(),
        "corpus dir should be syntactically clean: {:?}",
        checked.diagnostics
    );
    let scenario = checked.scenario.as_ref().unwrap();
    validate_scenario(&scenario.system, &scenario.labels, &mut checked.diagnostics);
    let codes: Vec<&str> = checked.diagnostics.iter().map(|d| d.code).collect();
    assert!(codes.contains(&"OBX201"), "Ghost ∉ dom(D): {codes:?}");
    assert!(codes.contains(&"OBX202"), "Orphan unreachable: {codes:?}");
    assert!(codes.contains(&"OBX203"), "SPARE unused: {codes:?}");
}

// ---------------------------------------------------------------------------
// Resource-guarded explanation runs: degrade, never abort.
// ---------------------------------------------------------------------------

fn guarded_report(
    limits: GuardLimits,
) -> (
    obx_core::explain::ExplainReport,
    Option<obx_util::GuardTrip>,
) {
    let mut sys = example_3_6_system();
    let labels = Labels::parse(sys.db_mut(), PAPER_LABELS).unwrap();
    let scoring = Scoring::paper_weighted(1.0, 1.0, 1.0);
    let task = ExplainTask::new_with_budget(
        &sys,
        &labels,
        1,
        &scoring,
        SearchLimits::default(),
        SearchBudget::unlimited().with_guard_limits(limits),
    )
    .unwrap();
    let report = BeamSearch.explain_with_status(&task).unwrap();
    let trip = task.budget().guard_trip();
    (report, trip)
}

#[test]
fn each_guard_degrades_to_ranked_best_so_far() {
    // The rewriting engine and border BFS are the explain path's two
    // blow-up kernels; the chase guard is exercised below through the
    // materialization cross-check engine, where the chase actually runs.
    let cases = [
        (
            GuardLimits::unlimited().with_max_rewrite_disjuncts(6),
            GuardKind::RewriteDisjuncts,
        ),
        (
            GuardLimits::unlimited().with_max_border_atoms(4),
            GuardKind::BorderAtoms,
        ),
    ];
    for (limits, kind) in cases {
        let (report, trip) = guarded_report(limits);
        let trip = trip.unwrap_or_else(|| panic!("{kind:?}: guard never tripped"));
        assert_eq!(trip.kind, kind);
        assert!(
            matches!(report.termination, Termination::Degraded { .. }),
            "{kind:?}: {:?}",
            report.termination
        );
        assert!(
            !report.explanations.is_empty(),
            "{kind:?}: degraded run lost its best-so-far results"
        );
        // The ranking is still a ranking.
        for w in report.explanations.windows(2) {
            assert!(w[0].score >= w[1].score - 1e-12, "{kind:?}: unsorted");
        }
    }
}

#[test]
fn chase_guard_flows_from_budget_to_kernel_and_back() {
    // The chase runs in the materialization cross-check engine, not the
    // rewriting-based explain path — so its guard is exercised through the
    // budget → interrupt → kernel plumbing on an infinite-model fixture.
    let schema = obx_srcdb::parse_schema("P/1").unwrap();
    let mut db = obx_srcdb::parse_database(schema, "P(eve)").unwrap();
    let tbox = obx_ontology::parse_tbox(
        "concept Person\nrole hasParent\n\
         Person < exists(hasParent)\nexists(inv(hasParent)) < Person",
    )
    .unwrap();
    let (schema_ref, consts) = db.schema_and_consts_mut();
    let mapping =
        obx_mapping::parse_mapping(schema_ref, tbox.vocab(), consts, "P(x) ~> Person(x)").unwrap();
    let reasoner = obx_ontology::Reasoner::build(&tbox);
    let abox = obx_mapping::virtual_abox(&mapping, obx_srcdb::View::full(&db));
    let budget = SearchBudget::unlimited()
        .with_guard_limits(GuardLimits::unlimited().with_max_chase_facts(3));
    let chased = obx_obdm::chase_abox_interruptible(
        &tbox,
        &reasoner,
        &abox,
        obx_obdm::ChaseConfig {
            max_null_depth: 50,
            max_facts: 1_000_000,
        },
        &budget.interrupt(),
    );
    assert!(chased.len() <= 4, "chase kept growing: {}", chased.len());
    let trip = budget.guard_trip().expect("guard tripped");
    assert_eq!(trip.kind, GuardKind::ChaseFacts);
    // The loop keeps running, but the run's final report is degraded.
    assert_eq!(budget.stop_reason(0), None);
    assert_eq!(
        Termination::from_run(budget.final_stop(0), 0),
        Termination::Degraded { quarantined: 0 }
    );
}

#[test]
fn zero_limits_still_terminate_gracefully() {
    // The most hostile configuration: every kernel degrades immediately.
    // The run may find nothing, but it must neither panic nor error.
    let limits = GuardLimits::unlimited()
        .with_max_rewrite_disjuncts(0)
        .with_max_chase_facts(0)
        .with_max_border_atoms(0);
    let (report, trip) = guarded_report(limits);
    assert!(trip.is_some());
    assert!(matches!(report.termination, Termination::Degraded { .. }));
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16 })]

    /// parse → render → parse is the identity on databases: rendering a
    /// parsed database and re-parsing it reproduces the same atoms in the
    /// same order (and the same schema).
    #[test]
    fn database_render_parse_roundtrip(
        seed in 0u64..10_000,
        n_consts in 1usize..15,
        n_atoms in 0usize..40,
    ) {
        let mut schema = Schema::new();
        for (name, arity) in [("R", 2), ("S", 1), ("T", 3)] {
            schema.declare(name, arity).unwrap();
        }
        let mut db = Database::new(schema);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..n_atoms {
            let (rel, arity) = [("R", 2), ("S", 1), ("T", 3)][rng.gen_range(0usize..3)];
            let args: Vec<String> =
                (0..arity).map(|_| format!("c{}", rng.gen_range(0..n_consts))).collect();
            let refs: Vec<&str> = args.iter().map(String::as_str).collect();
            db.insert_named(rel, &refs).unwrap();
        }
        let schema_text: Vec<String> = db
            .schema()
            .rel_ids()
            .map(|id| format!("{}/{}", db.schema().name(id), db.schema().arity(id)))
            .collect();
        let rendered = db.render();
        let schema2 = parse_schema(&schema_text.join(" ")).unwrap();
        let db2 = parse_database(schema2, &rendered).unwrap();
        prop_assert_eq!(db2.len(), db.len());
        prop_assert_eq!(db2.render(), rendered);
    }

    /// Rewrite-guarded runs are *exactly* sound: the trip makes later
    /// candidates transiently unreachable but never truncates a reported
    /// one, so re-scoring every reported explanation on a fresh unguarded
    /// task reproduces its Z-score to machine precision.
    #[test]
    fn rewrite_guarded_results_rescore_exactly(cap in 1usize..30) {
        let (report, _) =
            guarded_report(GuardLimits::unlimited().with_max_rewrite_disjuncts(cap));
        let mut sys = example_3_6_system();
        let labels = Labels::parse(sys.db_mut(), PAPER_LABELS).unwrap();
        let scoring = Scoring::paper_weighted(1.0, 1.0, 1.0);
        let reference =
            ExplainTask::new(&sys, &labels, 1, &scoring, SearchLimits::default()).unwrap();
        for e in &report.explanations {
            let fresh = reference.score_ucq(&e.query).unwrap();
            prop_assert!(
                (fresh.score - e.score).abs() < 1e-12,
                "guarded result mis-scored: reported {} vs fresh {}",
                e.score,
                fresh.score
            );
        }
    }

    /// Border-truncation-guarded runs are sound in the subset sense:
    /// truncated borders can only *lose* matches, so every reported match
    /// count is a lower bound on the unguarded one.
    #[test]
    fn truncation_guarded_results_are_lower_bounds(cap in 1usize..30) {
        let (report, _) =
            guarded_report(GuardLimits::unlimited().with_max_border_atoms(cap));
        let mut sys = example_3_6_system();
        let labels = Labels::parse(sys.db_mut(), PAPER_LABELS).unwrap();
        let scoring = Scoring::paper_weighted(1.0, 1.0, 1.0);
        let reference =
            ExplainTask::new(&sys, &labels, 1, &scoring, SearchLimits::default()).unwrap();
        for e in &report.explanations {
            let fresh = reference.score_ucq(&e.query).unwrap();
            prop_assert!(
                e.stats.pos_matched <= fresh.stats.pos_matched,
                "truncation invented a positive match: {} > {}",
                e.stats.pos_matched,
                fresh.stats.pos_matched
            );
            prop_assert!(
                e.stats.neg_matched <= fresh.stats.neg_matched,
                "truncation invented a negative match: {} > {}",
                e.stats.neg_matched,
                fresh.stats.neg_matched
            );
        }
    }
}

//! E10 — certain-answer engines: rewriting vs materialization.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use obx_datagen::{random_scenario, RandomParams};
use obx_obdm::ChaseConfig;
use obx_srcdb::View;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_engines");
    for (label, n_ind, n_facts) in [("small", 30usize, 80usize), ("medium", 100, 300)] {
        let s = random_scenario(RandomParams {
            seed: 5,
            n_individuals: n_ind,
            n_concept_facts: n_facts / 2,
            n_role_facts: n_facts,
            ..RandomParams::default()
        });
        let truth = s.ground_truth.clone().unwrap();
        group.bench_function(format!("rewrite_{label}"), |b| {
            b.iter(|| black_box(s.system.certain_answers(&truth).unwrap().len()))
        });
        group.bench_function(format!("materialize_{label}"), |b| {
            b.iter(|| {
                black_box(
                    s.system
                        .certain_answers_materialized(
                            &truth,
                            View::full(s.system.db()),
                            ChaseConfig::for_ucq(&truth),
                        )
                        .len(),
                )
            })
        });
        // The compile-once/evaluate-many split that the matcher exploits.
        let compiled = s.system.spec().compile(&truth).unwrap();
        group.bench_function(format!("evaluate_precompiled_{label}"), |b| {
            b.iter(|| black_box(compiled.answers(View::full(s.system.db())).len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E6 — the four search strategies on the same instance.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use obx_core::explain::{ExplainTask, SearchLimits, Strategy};
use obx_core::score::Scoring;
use obx_core::strategies::{BeamSearch, BottomUpGeneralize, ExhaustiveSearch, GreedyUcq};
use obx_datagen::{university_scenario, UniversityParams};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e06_strategies");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(10));
    let s = university_scenario(UniversityParams {
        n_students: 30,
        ..UniversityParams::default()
    });
    let scoring = Scoring::accuracy();
    let limits = SearchLimits {
        max_atoms: 2,
        max_rounds: 4,
        ..SearchLimits::default()
    };
    let strategies: Vec<Box<dyn Strategy>> = vec![
        Box::new(ExhaustiveSearch::default()),
        Box::new(BeamSearch),
        Box::new(BottomUpGeneralize::default()),
        Box::new(GreedyUcq::default()),
    ];
    for strat in strategies {
        group.bench_function(strat.name(), |b| {
            b.iter(|| {
                let task = ExplainTask::new(&s.system, &s.labels, 1, &scoring, limits).unwrap();
                black_box(strat.explain(&task).unwrap()[0].score)
            })
        });
        // Warm variant: the task (and its scoring engine's memo cache)
        // persists across iterations, so repeat searches hit the cache.
        let task = ExplainTask::new(&s.system, &s.labels, 1, &scoring, limits).unwrap();
        strat.explain(&task).unwrap();
        group.bench_function(format!("{}_warm", strat.name()), |b| {
            b.iter(|| black_box(strat.explain(&task).unwrap()[0].score))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

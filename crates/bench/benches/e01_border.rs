//! E1 — border computation (Definition 3.2) on the paper's Example 3.3
//! database and on a medium random database.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use obx_bench::experiments::{example_3_3_db, random_border_db};
use obx_srcdb::Border;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e01_border");

    let paper = example_3_3_db();
    let a = paper.consts().get("a").unwrap();
    group.bench_function("example_3_3_radius_2", |b| {
        b.iter(|| black_box(Border::compute(&paper, &[a], 2).len()))
    });

    let medium = random_border_db(11, 5_000, 5_000);
    let c0 = medium.consts().get("c0").unwrap();
    for r in [1usize, 2, 3] {
        group.bench_function(format!("random_5k_radius_{r}"), |b| {
            b.iter(|| black_box(Border::compute(&medium, &[c0], r).len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

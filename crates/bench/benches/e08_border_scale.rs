//! E8 — border computation on databases up to 10^5 atoms.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use obx_bench::experiments::random_border_db;
use obx_srcdb::Border;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e08_border_scale");
    for n_atoms in [1_000usize, 10_000, 100_000] {
        let db = random_border_db(17, n_atoms, n_atoms);
        let c0 = db.consts().get("c0").unwrap();
        group.throughput(Throughput::Elements(n_atoms as u64));
        for r in [1usize, 2] {
            group.bench_with_input(
                BenchmarkId::new(format!("radius_{r}"), n_atoms),
                &n_atoms,
                |b, _| b.iter(|| black_box(Border::compute(&db, &[c0], r).len())),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

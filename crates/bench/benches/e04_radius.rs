//! E4 — border preparation and matching as the radius grows
//! (the computational face of Proposition 3.5).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use obx_core::matcher::PreparedLabels;
use obx_datagen::{university_scenario, UniversityParams};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e04_radius");
    let s = university_scenario(UniversityParams {
        n_students: 100,
        ..UniversityParams::default()
    });
    let truth = s.ground_truth.as_ref().unwrap();
    let compiled = s.system.spec().compile(truth).unwrap();
    for r in [0usize, 1, 2, 3] {
        group.bench_function(format!("prepare_borders_r{r}"), |b| {
            b.iter(|| black_box(PreparedLabels::new(&s.system, &s.labels, r).num_pos()))
        });
        let prepared = PreparedLabels::new(&s.system, &s.labels, r);
        group.bench_function(format!("match_truth_r{r}"), |b| {
            b.iter(|| black_box(prepared.stats(&compiled)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

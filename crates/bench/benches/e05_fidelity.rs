//! E5 — the full explanation pipeline (beam search) under label noise.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use obx_core::explain::{ExplainTask, SearchLimits, Strategy};
use obx_core::score::Scoring;
use obx_core::strategies::BeamSearch;
use obx_datagen::{university_scenario, UniversityParams};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e05_fidelity");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    for noise in [0.0f64, 0.1, 0.3] {
        let s = university_scenario(UniversityParams {
            n_students: 40,
            label_noise: noise,
            ..UniversityParams::default()
        });
        let scoring = Scoring::accuracy();
        let limits = SearchLimits {
            max_rounds: 4,
            ..SearchLimits::default()
        };
        group.bench_function(format!("beam_explain_noise_{noise:.1}"), |b| {
            b.iter(|| {
                let task = ExplainTask::new(&s.system, &s.labels, 1, &scoring, limits).unwrap();
                black_box(BeamSearch.explain(&task).unwrap()[0].score)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E9 — ontology-level search vs the data-level baseline.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use obx_core::baseline::DataLevelBeam;
use obx_core::explain::{ExplainTask, SearchLimits, Strategy};
use obx_core::score::Scoring;
use obx_core::strategies::BeamSearch;
use obx_datagen::{recidivism_scenario, RecidivismParams};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e09_ablation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    let s = recidivism_scenario(RecidivismParams {
        n_defendants: 60,
        ..RecidivismParams::default()
    });
    let scoring = Scoring::accuracy();
    let limits = SearchLimits {
        max_rounds: 4,
        ..SearchLimits::default()
    };
    group.bench_function("ontology_beam", |b| {
        b.iter(|| {
            let task = ExplainTask::new(&s.system, &s.labels, 1, &scoring, limits).unwrap();
            black_box(BeamSearch.explain(&task).unwrap()[0].score)
        })
    });
    group.bench_function("data_level_beam", |b| {
        b.iter(|| {
            let task = ExplainTask::new(&s.system, &s.labels, 1, &scoring, limits).unwrap();
            black_box(DataLevelBeam.explain(&task).unwrap()[0].score)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E2 — J-matching (Definition 3.4): the cost of checking the paper's
//! three queries against all five borders, split into the compile-once
//! and match-per-tuple parts.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use obx_core::paper_example::PaperExample;
use obx_core::ScoringEngine;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e02_match");
    let ex = PaperExample::new();
    let prepared = ex.prepared();
    let engine = ScoringEngine::new();
    for (_, q) in ex.queries() {
        engine.stats_ucq(&prepared, q).unwrap(); // warm the memo cache
    }

    for (name, q) in ex.queries() {
        group.bench_function(format!("compile_{name}"), |b| {
            b.iter(|| black_box(ex.system.spec().compile(q).unwrap().src_disjuncts()))
        });
        let compiled = ex.system.spec().compile(q).unwrap();
        group.bench_function(format!("match_all_borders_{name}"), |b| {
            b.iter(|| black_box(prepared.stats(&compiled)))
        });
        group.bench_function(format!("engine_cached_{name}"), |b| {
            b.iter(|| black_box(engine.stats_ucq(&prepared, q).unwrap()))
        });
    }
    group.bench_function("full_match_matrix", |b| {
        b.iter(|| black_box(ex.match_matrix().len()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

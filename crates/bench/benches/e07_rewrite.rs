//! E7 — PerfectRef scaling with TBox hierarchy shape.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use obx_datagen::hierarchy::{concept_chain, concept_tree};
use obx_query::{perfect_ref, OntoAtom, OntoCq, OntoUcq, RewriteBudget, Term, VarId};

fn query_on(tbox: &obx_ontology::TBox, name: &str) -> OntoUcq {
    let c = tbox.vocab().get_concept(name).unwrap();
    OntoUcq::from_cq(
        OntoCq::new(
            vec![VarId(0)],
            vec![OntoAtom::Concept(c, Term::Var(VarId(0)))],
        )
        .unwrap(),
    )
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e07_rewrite");
    for depth in [4usize, 16, 64] {
        let tbox = concept_chain(depth);
        let q = query_on(&tbox, &format!("C{depth}"));
        group.bench_function(format!("chain_depth_{depth}"), |b| {
            b.iter(|| {
                black_box(
                    perfect_ref(&q, &tbox, RewriteBudget::default())
                        .unwrap()
                        .len(),
                )
            })
        });
    }
    for (depth, branching) in [(3usize, 2usize), (4, 2), (4, 3)] {
        let tbox = concept_tree(depth, branching);
        let q = query_on(&tbox, "C0");
        group.bench_function(format!("tree_d{depth}_b{branching}"), |b| {
            b.iter(|| {
                black_box(
                    perfect_ref(&q, &tbox, RewriteBudget::default())
                        .unwrap()
                        .len(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

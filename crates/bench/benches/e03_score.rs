//! E3 — Z-scoring (Example 3.8): scoring the paper's three candidates
//! under both Z instantiations, end to end.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use obx_core::explain::{ExplainTask, SearchLimits};
use obx_core::paper_example::{PaperExample, PAPER_RADIUS};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e03_score");
    let ex = PaperExample::new();
    for (zname, scoring) in [("z1", ex.z1()), ("z2", ex.z2())] {
        let task = ExplainTask::new(
            &ex.system,
            &ex.labels,
            PAPER_RADIUS,
            &scoring,
            SearchLimits::default(),
        )
        .unwrap();
        group.bench_function(format!("score_q1_q2_q3_{zname}"), |b| {
            b.iter(|| {
                for (_, q) in ex.queries() {
                    black_box(task.score_ucq(q).unwrap().score);
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Row computation for experiments E1–E10 (see DESIGN.md §3).

use obx_core::baseline::DataLevelBeam;
use obx_core::explain::{ExplainTask, SearchLimits, Strategy};
use obx_core::matcher::PreparedLabels;
use obx_core::paper_example::{PaperExample, PAPER_RADIUS};
use obx_core::score::Scoring;
use obx_core::strategies::{BeamSearch, BottomUpGeneralize, ExhaustiveSearch, GreedyUcq};
use obx_datagen::{
    fidelity, random_scenario, recidivism_scenario, university_scenario, RandomParams,
    RecidivismParams, UniversityParams,
};
use obx_obdm::ChaseConfig;
use obx_query::{perfect_ref, OntoAtom, OntoCq, OntoUcq, RewriteBudget, Term, VarId};
use obx_srcdb::{parse_database, parse_schema, Border, Database, View};
use obx_util::table::Table;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// E1 — Example 3.3: the border layers of t = ⟨a⟩.
pub fn e01_border_layers() -> Table {
    let db = example_3_3_db();
    let a = db.consts().get("a").unwrap();
    let border = Border::compute(&db, &[a], 2);
    let mut t = Table::new(["layer", "paper", "computed"]);
    let paper = ["R(a, b), S(a, c)", "Z(c, d)", "W(d, e)"];
    for (j, expected) in paper.iter().enumerate() {
        let mut atoms: Vec<String> = border
            .layer(j)
            .unwrap()
            .iter()
            .map(|&id| db.atom(id).render(db.schema(), db.consts()))
            .collect();
        atoms.sort();
        t.row([format!("W_t,{j}"), (*expected).to_owned(), atoms.join(", ")]);
    }
    t.row([
        "B_t,2 size".to_owned(),
        "4".to_owned(),
        border.len().to_string(),
    ]);
    t
}

/// The database of Example 3.3.
pub fn example_3_3_db() -> Database {
    let schema = parse_schema("R/2 S/2 Z/2 W/2").unwrap();
    parse_database(
        schema,
        "R(a, b)\nS(a, c)\nZ(c, d)\nW(d, e)\nW(e, h)\nR(f, g)",
    )
    .unwrap()
}

/// E2 — Example 3.6: the J-match matrix.
pub fn e02_match_matrix() -> Table {
    let ex = PaperExample::new();
    let matrix = ex.match_matrix();
    let prepared = ex.prepared();
    let mut t = Table::new([
        "query",
        "matches (paper)",
        "matches (computed)",
        "λ⁺ frac",
        "λ⁻ frac",
    ]);
    let paper = [
        ("q1", "A10, B80, D50"),
        ("q2", "A10, B80, E25"),
        ("q3", "C12, D50"),
    ];
    for ((name, q), (pname, pmatch)) in ex.queries().into_iter().zip(paper) {
        assert_eq!(name, pname);
        let stats = prepared.stats_of(q).unwrap();
        let row = matrix.iter().find(|(n, _)| *n == name).unwrap();
        t.row([
            name.to_owned(),
            pmatch.to_owned(),
            row.1.join(", "),
            format!("{}/{}", stats.pos_matched, stats.pos_total),
            format!("{}/{}", stats.neg_matched, stats.neg_total),
        ]);
    }
    t
}

/// E3 — Example 3.8: Z-scores under Z1 and Z2.
pub fn e03_scores() -> Table {
    let ex = PaperExample::new();
    let z1 = ex.scores(&ex.z1());
    let z2 = ex.scores(&ex.z2());
    let mut t = Table::new([
        "query",
        "Z1 (paper)",
        "Z1 (ours)",
        "Z2 (paper)",
        "Z2 (ours)",
    ]);
    let paper = [
        ("q1", "0.693", "0.716"),
        ("q2", "0.333*", "0.5"),
        ("q3", "0.833", "0.7"),
    ];
    for (name, p1, p2) in paper {
        let s1 = z1.iter().find(|(n, _)| *n == name).unwrap().1.score;
        let s2 = z2.iter().find(|(n, _)| *n == name).unwrap().1.score;
        t.row([
            name.to_owned(),
            p1.to_owned(),
            format!("{s1:.3}"),
            p2.to_owned(),
            format!("{s2:.3}"),
        ]);
    }
    t.row([
        "winner".to_owned(),
        "q3".to_owned(),
        best(&z1).to_owned(),
        "q1".to_owned(),
        best(&z2).to_owned(),
    ]);
    t
}

fn best(rows: &[(&'static str, obx_core::explain::Explanation)]) -> &'static str {
    rows.iter()
        .max_by(|a, b| a.1.score.partial_cmp(&b.1.score).unwrap())
        .unwrap()
        .0
}

/// E4 — Proposition 3.5: matched positives per radius (monotone columns).
pub fn e04_radius_curve() -> Table {
    let ex = PaperExample::new();
    let mut t = Table::new(["radius", "q1 λ⁺", "q2 λ⁺", "q3 λ⁺", "border atoms (A10)"]);
    let a10 = ex.system.db().consts().get("A10").unwrap();
    for r in 0..=3usize {
        let prepared = PreparedLabels::new(&ex.system, &ex.labels, r);
        let mut cells = vec![r.to_string()];
        for (_, q) in ex.queries() {
            let s = prepared.stats_of(q).unwrap();
            cells.push(format!("{}/{}", s.pos_matched, s.pos_total));
        }
        cells.push(Border::compute(ex.system.db(), &[a10], r).len().to_string());
        t.row(cells);
    }
    t
}

/// E5 — explanation fidelity vs label noise (university, beam search).
pub fn e05_fidelity_vs_noise() -> Table {
    let mut t = Table::new([
        "noise",
        "best Z",
        "coverage",
        "false pos",
        "fidelity F1",
        "time",
    ]);
    for noise in [0.0, 0.05, 0.1, 0.2, 0.3] {
        let s = university_scenario(UniversityParams {
            n_students: 60,
            label_noise: noise,
            ..UniversityParams::default()
        });
        let scoring = Scoring::accuracy();
        let limits = SearchLimits {
            max_rounds: 5,
            ..SearchLimits::default()
        };
        let task = ExplainTask::new(&s.system, &s.labels, 1, &scoring, limits).unwrap();
        let t0 = Instant::now();
        let best = BeamSearch.explain(&task).unwrap().remove(0);
        let elapsed = t0.elapsed();
        let fid = fidelity(&s.system, &best.query, s.ground_truth.as_ref().unwrap()).unwrap();
        t.row([
            format!("{noise:.2}"),
            format!("{:.3}", best.score),
            format!("{}/{}", best.stats.pos_matched, best.stats.pos_total),
            best.stats.neg_matched.to_string(),
            format!("{:.3}", fid.f1),
            format!("{elapsed:.2?}"),
        ]);
    }
    t
}

/// E6 — strategy comparison on the university scenario.
pub fn e06_strategies() -> Table {
    let s = university_scenario(UniversityParams {
        n_students: 40,
        ..UniversityParams::default()
    });
    let scoring = Scoring::accuracy();
    let limits = SearchLimits {
        max_atoms: 2,
        max_rounds: 5,
        ..SearchLimits::default()
    };
    let task = ExplainTask::new(&s.system, &s.labels, 1, &scoring, limits).unwrap();
    let strategies: Vec<Box<dyn Strategy>> = vec![
        Box::new(ExhaustiveSearch::default()),
        Box::new(BeamSearch),
        Box::new(BottomUpGeneralize::default()),
        Box::new(GreedyUcq::default()),
    ];
    let mut t = Table::new(["strategy", "best Z", "perfect?", "fidelity F1", "time"]);
    for strat in strategies {
        let t0 = Instant::now();
        let best = strat.explain(&task).unwrap().remove(0);
        let elapsed = t0.elapsed();
        let fid = fidelity(&s.system, &best.query, s.ground_truth.as_ref().unwrap()).unwrap();
        t.row([
            strat.name().to_owned(),
            format!("{:.3}", best.score),
            best.stats.perfect().to_string(),
            format!("{:.3}", fid.f1),
            format!("{elapsed:.2?}"),
        ]);
    }
    t
}

/// E7 — PerfectRef output size and time vs hierarchy shape.
pub fn e07_rewrite_scaling() -> Table {
    let mut t = Table::new(["TBox shape", "axioms", "disjuncts", "time"]);
    for depth in [2usize, 4, 8, 16, 32] {
        let tbox = obx_datagen::hierarchy::concept_chain(depth);
        let c = tbox.vocab().get_concept(&format!("C{depth}")).unwrap();
        let q = OntoCq::new(
            vec![VarId(0)],
            vec![OntoAtom::Concept(c, Term::Var(VarId(0)))],
        )
        .unwrap();
        let t0 = Instant::now();
        let rewritten = perfect_ref(&OntoUcq::from_cq(q), &tbox, RewriteBudget::default()).unwrap();
        let elapsed = t0.elapsed();
        t.row([
            format!("chain depth {depth}"),
            tbox.len().to_string(),
            rewritten.len().to_string(),
            format!("{elapsed:.2?}"),
        ]);
    }
    for (depth, branching) in [(2usize, 2usize), (3, 2), (4, 2), (3, 3), (4, 3)] {
        let tbox = obx_datagen::hierarchy::concept_tree(depth, branching);
        let c = tbox.vocab().get_concept("C0").unwrap();
        let q = OntoCq::new(
            vec![VarId(0)],
            vec![OntoAtom::Concept(c, Term::Var(VarId(0)))],
        )
        .unwrap();
        let t0 = Instant::now();
        let rewritten = perfect_ref(&OntoUcq::from_cq(q), &tbox, RewriteBudget::default()).unwrap();
        let elapsed = t0.elapsed();
        t.row([
            format!("tree d={depth} b={branching}"),
            tbox.len().to_string(),
            rewritten.len().to_string(),
            format!("{elapsed:.2?}"),
        ]);
    }
    t
}

/// A random database with `n_atoms` binary facts over `n_consts`
/// constants. The anchor constant `c0` is guaranteed to occur (benches
/// compute borders around it).
pub fn random_border_db(seed: u64, n_consts: usize, n_atoms: usize) -> Database {
    let schema = parse_schema("R/2 S/2 T/3").unwrap();
    let mut db = Database::new(schema);
    let mut rng = StdRng::seed_from_u64(seed);
    db.insert_named("R", &["c0", "c1"]).unwrap();
    for _ in 0..n_atoms {
        let c = |rng: &mut StdRng| format!("c{}", rng.gen_range(0..n_consts));
        if rng.gen_bool(0.7) {
            let rel = if rng.gen_bool(0.5) { "R" } else { "S" };
            let (a, b) = (c(&mut rng), c(&mut rng));
            db.insert_named(rel, &[&a, &b]).unwrap();
        } else {
            let (a, b, d) = (c(&mut rng), c(&mut rng), c(&mut rng));
            db.insert_named("T", &[&a, &b, &d]).unwrap();
        }
    }
    db
}

/// E8 — border computation cost vs |D| and radius.
pub fn e08_border_scaling() -> Table {
    let mut t = Table::new(["|D|", "radius", "border atoms", "time"]);
    for n_atoms in [1_000usize, 10_000, 50_000] {
        // Sparse graph: #constants ~ #atoms keeps borders local.
        let db = random_border_db(9, n_atoms, n_atoms);
        let c0 = db.consts().get("c0").unwrap();
        for r in [1usize, 2, 3] {
            let t0 = Instant::now();
            let border = Border::compute(&db, &[c0], r);
            let elapsed = t0.elapsed();
            t.row([
                n_atoms.to_string(),
                r.to_string(),
                border.len().to_string(),
                format!("{elapsed:.2?}"),
            ]);
        }
    }
    t
}

/// E9 — ontology-value ablation: ontology-level vs data-level search.
pub fn e09_ablation() -> Table {
    let mut t = Table::new([
        "scenario",
        "level",
        "best Z",
        "perfect?",
        "explanation (vocabulary)",
    ]);
    // (a) the paper's λ.
    let ex = PaperExample::new();
    let z1 = ex.z1();
    let task = ExplainTask::new(
        &ex.system,
        &ex.labels,
        PAPER_RADIUS,
        &z1,
        SearchLimits::default(),
    )
    .unwrap();
    let onto = BeamSearch.explain(&task).unwrap().remove(0);
    t.row([
        "paper λ".to_owned(),
        "ontology".to_owned(),
        format!("{:.3}", onto.score),
        onto.stats.perfect().to_string(),
        onto.render(&ex.system),
    ]);
    let data = DataLevelBeam.explain(&task).unwrap().remove(0);
    t.row([
        "paper λ".to_owned(),
        "data".to_owned(),
        format!("{:.3}", data.score),
        data.stats.perfect().to_string(),
        data.render(&task),
    ]);
    // (b) the recidivism audit.
    let s = recidivism_scenario(RecidivismParams {
        n_defendants: 60,
        ..RecidivismParams::default()
    });
    let accuracy = Scoring::accuracy();
    let limits = SearchLimits {
        max_rounds: 4,
        ..SearchLimits::default()
    };
    let task = ExplainTask::new(&s.system, &s.labels, 1, &accuracy, limits).unwrap();
    let onto = BeamSearch.explain(&task).unwrap().remove(0);
    t.row([
        "recidivism".to_owned(),
        "ontology".to_owned(),
        format!("{:.3}", onto.score),
        onto.stats.perfect().to_string(),
        onto.render(&s.system),
    ]);
    let data = DataLevelBeam.explain(&task).unwrap().remove(0);
    t.row([
        "recidivism".to_owned(),
        "data".to_owned(),
        format!("{:.3}", data.score),
        data.stats.perfect().to_string(),
        data.render(&task),
    ]);
    t
}

/// E10 — certain-answer engines: rewriting vs materialization.
pub fn e10_engines() -> Table {
    let mut t = Table::new([
        "scenario",
        "query atoms",
        "answers",
        "rewrite",
        "materialize",
        "agree",
    ]);
    for (label, n_ind, n_facts) in [
        ("small", 30usize, 80usize),
        ("medium", 100, 300),
        ("large", 250, 800),
    ] {
        let params = RandomParams {
            seed: 5,
            n_individuals: n_ind,
            n_concept_facts: n_facts / 2,
            n_role_facts: n_facts,
            ..RandomParams::default()
        };
        let s = random_scenario(params);
        let truth = s.ground_truth.as_ref().unwrap();
        let atoms: usize = truth.disjuncts().iter().map(OntoCq::num_atoms).sum();
        let t0 = Instant::now();
        let rewriting = s.system.certain_answers(truth).unwrap();
        let rewrite_t = t0.elapsed();
        let t1 = Instant::now();
        let materialized = s.system.certain_answers_materialized(
            truth,
            View::full(s.system.db()),
            ChaseConfig::for_ucq(truth),
        );
        let chase_t = t1.elapsed();
        t.row([
            label.to_owned(),
            atoms.to_string(),
            rewriting.len().to_string(),
            format!("{rewrite_t:.2?}"),
            format!("{chase_t:.2?}"),
            (rewriting == materialized).to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e01_matches_paper() {
        let t = e01_border_layers();
        let s = t.render();
        assert!(s.contains("R(a, b), S(a, c)"));
        assert!(s.contains("Z(c, d)"));
    }

    #[test]
    fn e02_and_e03_agree_with_paper() {
        let m = e02_match_matrix().render();
        assert!(m.contains("A10, B80, D50"));
        let s = e03_scores().render();
        assert!(s.contains("0.833"));
        assert!(s.contains("q3"));
    }

    #[test]
    fn e04_is_monotone() {
        let t = e04_radius_curve();
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn e07_rows_cover_chains_and_trees() {
        let t = e07_rewrite_scaling();
        let s = t.render();
        assert!(s.contains("chain depth 32"));
        assert!(s.contains("tree d=4 b=3"));
    }

    #[test]
    fn e10_engines_agree() {
        let t = e10_engines();
        let s = t.render();
        assert!(!s.contains("false"), "engine disagreement:\n{s}");
    }
}

//! `obx-bench` — the experiment harness.
//!
//! Each `eNN_*` module computes the *rows* of one experiment from
//! DESIGN.md's index (E1–E10): the `tables` binary renders them as text
//! tables (the source of EXPERIMENTS.md), and the Criterion benches in
//! `benches/` time the underlying kernels. Keeping row computation here,
//! as plain functions, means the printed numbers and the benchmarked code
//! paths cannot drift apart.

#![warn(missing_docs)]

pub mod experiments;

pub use experiments::*;

//! Service benchmark: closed-loop load against a live `obx serve`
//! instance, with a single-line JSON summary written to
//! `BENCH_serve.json` at the workspace root.
//!
//! Three phases, all against a 600-student generated university scenario
//! served from a scratch directory exactly as a user-authored one:
//!
//! 1. **Smoke** — `/healthz`, `/metrics`, and one `/explain` whose body
//!    must be byte-identical to [`obx_core::service::run_explain`] on the
//!    same scenario (the service contract: the wire adds headers, never
//!    bytes).
//! 2. **Closed-loop load** — `CLIENTS` worker threads each issue
//!    `REQS_PER_CLIENT` back-to-back explains (a new connection per
//!    request, next request only after the previous response). Repeated
//!    `PASSES` times; the best per-pass p50/p99/mean latency and
//!    throughput are kept, interleaving machine noise out the same way
//!    the other bench bins do. Every response must be `200` — the queue
//!    is sized so this phase never sheds.
//! 3. **Overload** — a second server with `max_inflight 1, queue_depth
//!    1` takes a simultaneous burst; the occupant holds the slot via a
//!    server-side timeout budget, so all but the queued request must be
//!    shed with structured `OBX32x` bodies while at least one request
//!    still completes. This pins the shed-rate numbers to an actual
//!    load-shedding event, not a lucky fast pass.
//! 4. **Multi-tenant closed loop** — three tenants in one process under
//!    skewed load (4 clients on the hot tenant, 1 on each cold one) with
//!    per-tenant bulkheads engaged; every request must still complete,
//!    and the cross-tenant p50/p99 land in `mt_p50_ms`/`mt_p99_ms`.
//! 5. **Breaker** — a tenant whose requests repeatedly burn the server's
//!    wall-clock ceiling trips its circuit breaker; the shed is pinned
//!    (`OBX325` observed, `serve/tenant/*/breaker_open` exported) while
//!    a co-tenant keeps completing.
//!
//! Hard gates (exit 1): smoke byte-identity, zero sheds under the sized
//! load, at least one shed *and* one completion under overload, every
//! shed body carrying an `OBX32x` code, zero failures in the tenant
//! phase, an actual breaker trip, and a clean drain at the end.
//!
//! Usage: `cargo run --release -p obx-bench --bin serve`

use obx_core::budget::CancelToken;
use obx_core::scenario::{load_dir, write_scenario_dir};
use obx_core::service::{run_explain, ExplainRequest};
use obx_datagen::{university_scenario, UniversityParams};
use obx_serve::{start, start_multi, ServeConfig, ServerHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::time::{Duration, Instant};

const N_STUDENTS: usize = 600;
const CLIENTS: usize = 6;
const REQS_PER_CLIENT: usize = 4;
const PASSES: usize = 3;
const BURST: usize = 8;

/// The benchmarked request: radius 1, beam, top 3, under a deterministic
/// evaluator-call budget — the interactive shape the service exists for.
/// The cap is on *evals*, not wall time, so the search stops at the same
/// point every run and the response stays byte-identical between the
/// wire and the in-process oracle.
const MAX_EVALS: u64 = 25_000;
const BODY: &str = r#"{"radius": 1, "top": 3, "max_evals": 25000}"#;

fn oracle_request() -> ExplainRequest {
    ExplainRequest {
        radius: 1,
        top: 3,
        max_evals: Some(MAX_EVALS),
        ..ExplainRequest::default()
    }
}

/// One full HTTP exchange on a fresh connection; returns
/// `(status, full head, body)`.
fn exchange(addr: SocketAddr, raw: &[u8]) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to bench server");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    stream
        .set_write_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    stream.write_all(raw).expect("write request");
    let mut reply = String::new();
    stream.read_to_string(&mut reply).expect("read response");
    let (head, body) = reply
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("malformed response: {reply:?}"));
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed status line: {head:?}"));
    (status, head.to_owned(), body.to_owned())
}

fn get(addr: SocketAddr, path: &str) -> (u16, String, String) {
    exchange(
        addr,
        format!("GET {path} HTTP/1.1\r\nconnection: close\r\n\r\n").as_bytes(),
    )
}

fn post_explain(addr: SocketAddr, body: &str, client: &str) -> (u16, String, String) {
    exchange(
        addr,
        format!(
            "POST /explain HTTP/1.1\r\nconnection: close\r\nx-obx-client: {client}\r\n\
             content-length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
}

struct PassStats {
    p50_ms: f64,
    p99_ms: f64,
    mean_ms: f64,
    throughput_rps: f64,
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

/// One closed-loop pass: every request must come back `200`.
fn load_pass(addr: SocketAddr) -> PassStats {
    let t0 = Instant::now();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                let client = format!("client{c}");
                let mut lat = Vec::with_capacity(REQS_PER_CLIENT);
                for _ in 0..REQS_PER_CLIENT {
                    let r0 = Instant::now();
                    let (status, _, body) = post_explain(addr, BODY, &client);
                    let ms = r0.elapsed().as_secs_f64() * 1e3;
                    assert_eq!(
                        status, 200,
                        "load pass must never shed (queue is sized for it): {body}"
                    );
                    lat.push(ms);
                }
                lat
            })
        })
        .collect();
    let mut lat: Vec<f64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("load client panicked"))
        .collect();
    let wall_s = t0.elapsed().as_secs_f64();
    lat.sort_by(|a, b| a.total_cmp(b));
    PassStats {
        p50_ms: percentile(&lat, 0.50),
        p99_ms: percentile(&lat, 0.99),
        mean_ms: lat.iter().sum::<f64>() / lat.len() as f64,
        throughput_rps: lat.len() as f64 / wall_s.max(1e-9),
    }
}

/// Smoke: health, metrics, and the byte-identity contract.
fn smoke(addr: SocketAddr, dir: &Path) {
    let (status, _, body) = get(addr, "/healthz");
    assert_eq!(status, 200, "healthz: {body}");
    let (status, _, body) = get(addr, "/metrics");
    assert_eq!(status, 200, "metrics: {body}");
    assert!(
        body.contains("serve/requests"),
        "metrics must export the serve counters: {body}"
    );
    let scenario = load_dir(dir).expect("bench scenario round-trips");
    let req = oracle_request();
    let expected = run_explain(
        &scenario.system,
        &scenario.labels,
        &req,
        req.budget(&CancelToken::new()),
    )
    .expect("oracle explain succeeds");
    let (status, head, body) = post_explain(addr, BODY, "smoke");
    assert_eq!(status, 200, "smoke explain: {body}");
    assert!(
        head.to_lowercase().contains("x-obx-epoch: 1"),
        "smoke response must carry its epoch: {head}"
    );
    if body != expected.stdout {
        eprintln!("FAIL: served explain is not byte-identical to the service oracle");
        eprintln!("-- served --\n{body}\n-- oracle --\n{}", expected.stdout);
        std::process::exit(1);
    }
    eprintln!(
        "smoke: healthz + metrics ok, explain byte-identical ({} bytes)",
        body.len()
    );
}

/// Phase 4: three tenants, one process, skewed closed-loop load. Four
/// clients hammer `hot`, one each drives `cold1`/`cold2`; the bulkhead
/// (tenant_max_inflight 2 of a global 4) keeps the cold tenants' slots
/// guaranteed. Everything must complete — the tenant queues are sized
/// for the offered load — and the latency distribution across all three
/// tenants is the reported number.
fn multi_tenant_pass(dir: &Path) -> PassStats {
    let server = start_multi(
        vec![
            ("hot".to_owned(), dir.to_path_buf()),
            ("cold1".to_owned(), dir.to_path_buf()),
            ("cold2".to_owned(), dir.to_path_buf()),
        ],
        None,
        ServeConfig {
            max_inflight: 4,
            queue_depth: 2 * CLIENTS,
            tenant_max_inflight: Some(2),
            tenant_queue_depth: Some(2 * CLIENTS),
            queue_wait_ms: 30_000,
            read_timeout_ms: 30_000,
            write_timeout_ms: 30_000,
            ..ServeConfig::default()
        },
    )
    .expect("multi-tenant bench server starts");
    let addr = server.addr();
    let assignments = ["hot", "hot", "hot", "hot", "cold1", "cold2"];
    let t0 = Instant::now();
    let handles: Vec<_> = assignments
        .iter()
        .enumerate()
        .map(|(c, tenant)| {
            let tenant = (*tenant).to_owned();
            std::thread::spawn(move || {
                let mut lat = Vec::with_capacity(REQS_PER_CLIENT);
                let body = format!(
                    r#"{{"radius": 1, "top": 3, "max_evals": {MAX_EVALS}, "scenario": "{tenant}", "client": "mt{c}"}}"#
                );
                for _ in 0..REQS_PER_CLIENT {
                    let r0 = Instant::now();
                    let (status, _, reply) = post_explain(addr, &body, &format!("mt{c}"));
                    let ms = r0.elapsed().as_secs_f64() * 1e3;
                    assert_eq!(
                        status, 200,
                        "tenant phase must never shed (queues are sized for it): {reply}"
                    );
                    lat.push(ms);
                }
                lat
            })
        })
        .collect();
    let mut lat: Vec<f64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("tenant client panicked"))
        .collect();
    let wall_s = t0.elapsed().as_secs_f64();
    server.shutdown();
    lat.sort_by(|a, b| a.total_cmp(b));
    PassStats {
        p50_ms: percentile(&lat, 0.50),
        p99_ms: percentile(&lat, 0.99),
        mean_ms: lat.iter().sum::<f64>() / lat.len() as f64,
        throughput_rps: lat.len() as f64 / wall_s.max(1e-9),
    }
}

/// Phase 5: trip a tenant's circuit breaker with requests that burn the
/// server's wall-clock ceiling, and pin the isolation: the brittle
/// tenant sheds `OBX325`, the steady co-tenant keeps completing.
/// Returns `(breaker_sheds_observed, co_tenant_completed)`.
fn breaker_phase(dir: &Path) -> (usize, bool) {
    let server = start_multi(
        vec![
            ("brittle".to_owned(), dir.to_path_buf()),
            ("steady".to_owned(), dir.to_path_buf()),
        ],
        None,
        ServeConfig {
            max_inflight: 2,
            queue_depth: 8,
            // Every request is ceilinged at 120 ms of wall clock; a
            // request that burns the whole ceiling counts as a tenant
            // failure, and two consecutive failures trip the breaker.
            request_timeout_ms: Some(120),
            breaker_threshold: 2,
            breaker_open_ms: 60_000,
            queue_wait_ms: 30_000,
            read_timeout_ms: 30_000,
            write_timeout_ms: 30_000,
            ..ServeConfig::default()
        },
    )
    .expect("breaker bench server starts");
    let addr = server.addr();
    // Exhaustive radius-2 with a fat budget cannot finish in 120 ms on a
    // 600-student corpus: each of these degrades at the ceiling (200,
    // exit 2) and feeds the breaker.
    let heavy =
        r#"{"radius": 2, "strategy": "exhaustive", "timeout_ms": 60000, "scenario": "brittle"}"#;
    for i in 0..2 {
        let (status, _, body) = post_explain(addr, heavy, &format!("heavy{i}"));
        assert_eq!(status, 200, "ceiling-burning request still answers: {body}");
    }
    let mut breaker_sheds = 0usize;
    let (status, _, body) = post_explain(addr, r#"{"scenario": "brittle"}"#, "after");
    if status == 503 && body.contains("OBX325") {
        breaker_sheds += 1;
    } else {
        eprintln!("breaker phase: expected OBX325 after two ceiling burns, got {status}: {body}");
    }
    let (status, _, _) = post_explain(
        addr,
        &format!(r#"{{"radius": 1, "top": 3, "max_evals": {MAX_EVALS}, "scenario": "steady"}}"#),
        "steady",
    );
    let co_tenant_ok = status == 200;
    let (_, _, metrics) = get(addr, "/metrics");
    if !metrics.contains("serve/tenant/brittle/breaker_open") {
        eprintln!("breaker phase: trip counter missing from /metrics");
        breaker_sheds = 0;
    }
    server.shutdown();
    (breaker_sheds, co_tenant_ok)
}

/// Overload: burst a tiny server; count structured sheds vs completions.
fn overload(server: &ServerHandle) -> (usize, usize) {
    // The occupant runs under a 1500 ms budget (anytime: it returns
    // best-so-far, exit 2), holding the single slot long enough that the
    // 150 ms queue patience and depth-1 queue must shed the rest.
    let heavy = r#"{"radius": 2, "strategy": "exhaustive", "timeout_ms": 1500}"#;
    let addr = server.addr();
    let handles: Vec<_> = (0..BURST)
        .map(|i| {
            std::thread::spawn(move || {
                let body = if i == 0 { heavy } else { BODY };
                post_explain(addr, body, &format!("burst{i}"))
            })
        })
        .collect();
    let mut shed = 0usize;
    let mut completed = 0usize;
    for h in handles {
        let (status, _, body) = h.join().expect("burst client panicked");
        match status {
            200 => completed += 1,
            429 => {
                assert!(
                    body.contains("OBX32"),
                    "shed body must carry a stable OBX32x code: {body}"
                );
                assert!(
                    body.contains("\"termination\":\"degraded"),
                    "shed body must be degraded-shaped: {body}"
                );
                shed += 1;
            }
            other => panic!("overload burst: unexpected status {other}: {body}"),
        }
    }
    (shed, completed)
}

fn main() {
    let scenario = university_scenario(UniversityParams {
        n_students: N_STUDENTS,
        ..UniversityParams::default()
    });
    let dir = std::env::temp_dir().join(format!("obx-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    write_scenario_dir(&dir, &scenario.system, &scenario.labels).expect("write bench scenario dir");

    // Sized for the load phase: queue deeper than the client count so
    // nothing sheds and the latency numbers measure work, not patience.
    let server = start(
        &dir,
        ServeConfig {
            max_inflight: 4,
            queue_depth: 2 * CLIENTS,
            queue_wait_ms: 30_000,
            read_timeout_ms: 30_000,
            write_timeout_ms: 30_000,
            ..ServeConfig::default()
        },
    )
    .expect("bench server starts");
    let addr = server.addr();
    eprintln!("serving {N_STUDENTS}-student scenario on http://{addr}");

    smoke(addr, &dir);

    let mut best = load_pass(addr);
    for pass in 1..PASSES {
        let s = load_pass(addr);
        eprintln!(
            "pass {pass}: p50 {:.1} ms, p99 {:.1} ms, {:.1} req/s",
            s.p50_ms, s.p99_ms, s.throughput_rps
        );
        if s.p50_ms < best.p50_ms {
            best.p50_ms = s.p50_ms;
        }
        if s.p99_ms < best.p99_ms {
            best.p99_ms = s.p99_ms;
        }
        if s.mean_ms < best.mean_ms {
            best.mean_ms = s.mean_ms;
        }
        if s.throughput_rps > best.throughput_rps {
            best.throughput_rps = s.throughput_rps;
        }
    }
    server.shutdown();

    // Overload runs on its own starved instance so its sheds cannot
    // pollute the latency numbers above.
    let tiny = start(
        &dir,
        ServeConfig {
            max_inflight: 1,
            queue_depth: 1,
            queue_wait_ms: 150,
            read_timeout_ms: 30_000,
            write_timeout_ms: 30_000,
            ..ServeConfig::default()
        },
    )
    .expect("overload server starts");
    let (shed, completed) = overload(&tiny);
    tiny.shutdown();
    let shed_rate = shed as f64 / BURST as f64;
    eprintln!(
        "overload: {shed}/{BURST} shed ({:.0}%), {completed} completed",
        shed_rate * 100.0
    );

    let mt = multi_tenant_pass(&dir);
    eprintln!(
        "multi-tenant: p50 {:.1} ms, p99 {:.1} ms, {:.1} req/s across 3 tenants",
        mt.p50_ms, mt.p99_ms, mt.throughput_rps
    );
    let (breaker_sheds, co_tenant_ok) = breaker_phase(&dir);
    eprintln!("breaker: {breaker_sheds} OBX325 shed(s) observed, co-tenant ok = {co_tenant_ok}");
    let _ = std::fs::remove_dir_all(&dir);

    let total = CLIENTS * REQS_PER_CLIENT;
    let json = format!(
        concat!(
            "{{\"bench\":\"serve\",\"n_students\":{},\"clients\":{},",
            "\"requests_per_pass\":{},\"passes\":{},",
            "\"p50_ms\":{:.3},\"p99_ms\":{:.3},\"mean_ms\":{:.3},",
            "\"throughput_rps\":{:.2},",
            "\"overload_burst\":{},\"overload_shed\":{},",
            "\"overload_completed\":{},\"shed_rate\":{:.3},",
            "\"mt_tenants\":3,\"mt_p50_ms\":{:.3},\"mt_p99_ms\":{:.3},",
            "\"mt_throughput_rps\":{:.2},",
            "\"breaker_sheds\":{},\"breaker_co_tenant_ok\":{},",
            "\"smoke_identical\":true}}"
        ),
        N_STUDENTS,
        CLIENTS,
        total,
        PASSES,
        best.p50_ms,
        best.p99_ms,
        best.mean_ms,
        best.throughput_rps,
        BURST,
        shed,
        completed,
        shed_rate,
        mt.p50_ms,
        mt.p99_ms,
        mt.throughput_rps,
        breaker_sheds,
        co_tenant_ok,
    );
    println!("{json}");

    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = std::path::Path::new(root).join("BENCH_serve.json");
    std::fs::write(&path, format!("{json}\n")).expect("write BENCH_serve.json");
    eprintln!(
        "wrote {}",
        std::fs::canonicalize(&path).unwrap_or(path).display()
    );

    // Hard gates beyond the asserts above: overload must actually have
    // shed and actually have served someone.
    let mut failed = false;
    if shed == 0 {
        eprintln!("FAIL: overload burst shed nothing — load-shedding did not engage");
        failed = true;
    }
    if completed == 0 {
        eprintln!("FAIL: overload burst completed nothing — shedding starved the slot");
        failed = true;
    }
    if breaker_sheds == 0 {
        eprintln!("FAIL: the breaker phase never tripped — tenant isolation did not engage");
        failed = true;
    }
    if !co_tenant_ok {
        eprintln!("FAIL: the steady co-tenant was dragged down by the brittle tenant's breaker");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}

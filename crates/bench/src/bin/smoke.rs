//! Scoring-engine smoke benchmark.
//!
//! Runs a repeated-candidate scoring workload — the access pattern of the
//! search strategies, which re-score the same CQs across rounds and union
//! assemblies — once through the uncached [`PreparedLabels`] path and once
//! through the shared [`ScoringEngine`], then writes a single-line JSON
//! summary to `BENCH_scoring.json` at the workspace root.
//!
//! Usage: `cargo run --release -p obx-bench --bin smoke`

use obx_core::explain::{ExplainTask, SearchLimits};
use obx_core::score::Scoring;
use obx_datagen::random_scenario::random_query;
use obx_datagen::{university_scenario, UniversityParams};
use obx_query::OntoUcq;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

/// Distinct candidate queries in the pool (the 1–3-atom query space over
/// the university vocabulary is small; 16 distinct shapes fill reliably).
const POOL: usize = 16;
/// How many times the workload cycles through the pool.
const ROUNDS: usize = 12;

fn main() {
    let scenario = university_scenario(UniversityParams {
        n_students: 60,
        ..UniversityParams::default()
    });
    let scoring = Scoring::accuracy();
    let task = ExplainTask::new(
        &scenario.system,
        &scenario.labels,
        1,
        &scoring,
        SearchLimits::default(),
    )
    .expect("university scenario yields a valid task");

    // A pool of distinct compilable candidates, then a workload that cycles
    // through it ROUNDS times (strategies re-visit candidates like this when
    // beam rounds overlap and GreedyUcq assembles unions).
    let mut rng = StdRng::seed_from_u64(0xb0b);
    let mut pool: Vec<OntoUcq> = Vec::new();
    let mut draws = 0usize;
    while pool.len() < POOL {
        draws += 1;
        assert!(draws < 10_000, "candidate pool failed to fill");
        let q = random_query(&scenario.system, &mut rng, 1 + draws % 3);
        if task.prepared().stats_of(&q).is_ok() && !pool.contains(&q) {
            pool.push(q);
        }
    }
    let workload: Vec<&OntoUcq> = (0..POOL * ROUNDS).map(|i| &pool[i % POOL]).collect();

    // Baseline: compile + evaluate every candidate from scratch.
    let t0 = Instant::now();
    let mut checksum_uncached = 0usize;
    for q in &workload {
        let stats = task.prepared().stats_of(q).expect("pool is compilable");
        checksum_uncached += stats.pos_matched + stats.neg_matched;
    }
    let uncached = t0.elapsed();

    // Engine: canonical-form memo cache + bitset OR for unions.
    let engine = task.engine();
    let t1 = Instant::now();
    let mut checksum_cached = 0usize;
    for q in &workload {
        let stats = engine
            .stats_ucq(task.prepared(), q)
            .expect("pool is compilable");
        checksum_cached += stats.pos_matched + stats.neg_matched;
    }
    let cached = t1.elapsed();

    assert_eq!(
        checksum_uncached, checksum_cached,
        "engine disagrees with the uncached scorer"
    );

    let n = workload.len() as f64;
    let hits = engine.cache_hits();
    let misses = engine.cache_misses();
    let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
    let speedup = uncached.as_secs_f64() / cached.as_secs_f64().max(1e-12);

    // One extra (untimed) profiled pass over the pool through a fresh
    // engine: the recorder rides the task's budget down into the compile
    // kernels, and the resulting pipeline profile is embedded in the
    // bench JSON.
    let recorder = obx_util::obs::Recorder::new();
    {
        let budget =
            obx_core::budget::SearchBudget::unlimited().with_recorder(Arc::clone(&recorder));
        let profiled = task
            .with_budget(budget)
            .with_engine(Arc::new(obx_core::ScoringEngine::new()));
        let _phase = recorder.enter_phase("scoring");
        for q in &pool {
            let _ = profiled.score_ucq(q);
        }
    }
    let profile = recorder.profile().to_json();

    let json = format!(
        concat!(
            "{{\"bench\":\"scoring_smoke\",\"candidates\":{},",
            "\"uncached_ms\":{:.3},\"cached_ms\":{:.3},",
            "\"uncached_cps\":{:.1},\"cached_cps\":{:.1},",
            "\"speedup\":{:.2},\"cache_hit_rate\":{:.4},",
            "\"eval_calls\":{},\"threads\":{},\"profile\":{}}}"
        ),
        workload.len(),
        uncached.as_secs_f64() * 1e3,
        cached.as_secs_f64() * 1e3,
        n / uncached.as_secs_f64(),
        n / cached.as_secs_f64().max(1e-12),
        speedup,
        hit_rate,
        engine.eval_calls(),
        engine.threads(),
        profile,
    );
    println!("{json}");

    // Resolve the workspace root from this crate's manifest dir so the
    // output lands in the same place regardless of the invocation cwd.
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = std::path::Path::new(root).join("BENCH_scoring.json");
    std::fs::write(&path, format!("{json}\n")).expect("write BENCH_scoring.json");
    eprintln!(
        "wrote {}",
        std::fs::canonicalize(&path).unwrap_or(path).display()
    );

    if speedup < 2.0 {
        eprintln!("WARNING: speedup {speedup:.2}x below the 2x acceptance target");
        std::process::exit(1);
    }
}

//! Guided-evaluator benchmark: legacy backtracking join vs
//! constraint-guided variable-at-a-time join.
//!
//! Two workloads, each run once per evaluator mode
//! ([`obx_query::eval::set_mode`]) over a uniform university scenario and
//! a power-law (skewed) one, with a single-line JSON summary written to
//! `BENCH_guided.json` at the workspace root:
//!
//! 1. **Search end-to-end** — the beam strategy over each scenario. The
//!    ranked explanations must be identical to the bit between modes, and
//!    the guided evaluator must not regress the node count. Search
//!    candidates are always anchored to the answer variable, so every
//!    atom the evaluator scans has a bound variable whose index slice
//!    lies *inside* the radius-`r` border; no evaluator can beat a
//!    mask-capped backtracker by much here, and this workload is gated
//!    only on parity.
//! 2. **Hot-path membership panel** — goal-directed `member` checks over
//!    each tuple's border for ontology queries whose constant-bearing
//!    atoms are existential guards *not* anchored to the answer variable
//!    (the shape ontology rewriting produces for concepts guarded by
//!    role assertions). Unfolding gives source atoms whose only resolved
//!    position is the constant: slice-order evaluation must scan the
//!    constant's full index slice per tuple — O(hub degree) on a skewed
//!    database — while the guided evaluator's access choice scans the
//!    border mask, O(border). This is the headline: on the skewed
//!    scenario the guided evaluator must inspect **≥2× fewer nodes**,
//!    with no regression on the uniform scenario. Both are hard gates
//!    (exit 1).
//!
//! **Nodes** are candidate database atoms inspected by the evaluator
//! (including mask-filtered and consistency-rejected ones) — the true
//! measure of join work, independent of machine noise.
//!
//! Usage: `cargo run --release -p obx-bench --bin guided`

use obx_core::explain::{ExplainReport, ExplainTask, SearchLimits, Strategy};
use obx_core::score::Scoring;
use obx_core::strategies::BeamSearch;
use obx_core::ScoringEngine;
use obx_datagen::{skewed_scenario, university_scenario, Scenario, SkewedParams, UniversityParams};
use obx_obdm::CompiledQuery;
use obx_query::eval::{self, EvalMode};
use obx_srcdb::{border, AtomId, Tuple, View};
use obx_util::FxHashSet;
use std::sync::Arc;
use std::time::Instant;

struct ModeRun {
    wall_ms: f64,
    nodes: u64,
    evals: u64,
    report: ExplainReport,
}

/// Repetitions per (scenario, mode); best wall time kept, modes
/// interleaved so machine noise taxes both sides equally. Node counts are
/// deterministic per run (fresh engine each rep ⇒ identical work), so
/// they are taken from the first rep and asserted stable.
const REPS: usize = 5;

fn run_once(task: &ExplainTask<'_>, mode: EvalMode) -> ModeRun {
    eval::set_mode(mode);
    let engine = Arc::new(ScoringEngine::with_incremental(true));
    let t = task.with_engine(Arc::clone(&engine));
    let before = eval::node_counts();
    let t0 = Instant::now();
    let report = BeamSearch
        .explain_with_status(&t)
        .expect("benchmark strategies succeed on generated scenarios");
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let after = eval::node_counts();
    let nodes = match mode {
        EvalMode::Legacy => after.0 - before.0,
        EvalMode::Guided => after.1 - before.1,
        // The bench compares the two pure modes; Auto is their dispatcher.
        EvalMode::Auto => unreachable!("bench runs pure modes only"),
    };
    ModeRun {
        wall_ms,
        nodes,
        evals: engine.eval_calls(),
        report,
    }
}

fn run(task: &ExplainTask<'_>) -> (ModeRun, ModeRun) {
    let mut best_legacy = run_once(task, EvalMode::Legacy);
    let mut best_guided = run_once(task, EvalMode::Guided);
    for _ in 1..REPS {
        let legacy = run_once(task, EvalMode::Legacy);
        assert_eq!(legacy.nodes, best_legacy.nodes, "legacy nodes drifted");
        if legacy.wall_ms < best_legacy.wall_ms {
            best_legacy = legacy;
        }
        let guided = run_once(task, EvalMode::Guided);
        assert_eq!(guided.nodes, best_guided.nodes, "guided nodes drifted");
        if guided.wall_ms < best_guided.wall_ms {
            best_guided = guided;
        }
    }
    (best_legacy, best_guided)
}

fn assert_identical(name: &str, sys: &obx_obdm::ObdmSystem, legacy: &ModeRun, guided: &ModeRun) {
    assert_eq!(
        legacy.report.explanations.len(),
        guided.report.explanations.len(),
        "{name}: explanation counts diverge between evaluators"
    );
    for (a, b) in legacy
        .report
        .explanations
        .iter()
        .zip(guided.report.explanations.iter())
    {
        assert_eq!(
            a.render(sys),
            b.render(sys),
            "{name}: ranked queries diverge between evaluators"
        );
        assert_eq!(
            a.score.to_bits(),
            b.score.to_bits(),
            "{name}: Z-scores diverge on {}",
            a.render(sys)
        );
        assert_eq!(a.stats, b.stats, "{name}: stats diverge between evaluators");
    }
}

fn bench_scenario(name: &str, scenario: &Scenario, fields: &mut String) -> f64 {
    let scoring = Scoring::accuracy();
    let limits = SearchLimits {
        beam_width: 12,
        top_k: 5,
        ..SearchLimits::default()
    };
    let task = ExplainTask::new(&scenario.system, &scenario.labels, 2, &scoring, limits)
        .expect("generated scenarios yield valid tasks");
    let (legacy, guided) = run(&task);
    assert_identical(name, &scenario.system, &legacy, &guided);
    let node_ratio = legacy.nodes as f64 / guided.nodes.max(1) as f64;
    let speedup = legacy.wall_ms / guided.wall_ms.max(1e-9);
    fields.push_str(&format!(
        concat!(
            "\"{k}_legacy_ms\":{:.3},\"{k}_guided_ms\":{:.3},",
            "\"{k}_speedup\":{:.2},",
            "\"{k}_legacy_nodes\":{},\"{k}_guided_nodes\":{},",
            "\"{k}_node_ratio\":{:.2},\"{k}_evals\":{},",
        ),
        legacy.wall_ms,
        guided.wall_ms,
        speedup,
        legacy.nodes,
        guided.nodes,
        node_ratio,
        guided.evals,
        k = name,
    ));
    eprintln!(
        "{name}: {:.1} ms legacy -> {:.1} ms guided ({speedup:.2}x wall), \
         nodes {} -> {} ({node_ratio:.2}x fewer), {} evals",
        legacy.wall_ms, guided.wall_ms, legacy.nodes, guided.nodes, guided.evals
    );
    node_ratio
}

/// The hot-path membership panel: ontology queries whose constant-bearing
/// atoms are existential guards not anchored to the answer variable.
/// Unfolding `taughtIn`/`enrolledAt`/`studies` against the `ENR` mapping
/// leaves the constant as the only resolved position of the guard's
/// source atom, so slice-order evaluation scans that constant's full
/// index slice per tuple while the guided evaluator scans the border.
/// Border radius for the membership panel (see the comment at its use).
const HOTPATH_RADIUS: usize = 1;

const PANEL: &[&str] = &[
    // "there is a course taught at uni0" — bare hub guard.
    r#"q(x) :- Student(x), taughtIn(y, "uni0")"#,
    // "some course is taught at a university of the target city" — the
    // guard direction of the planted ground truth.
    r#"q(x) :- Student(x), locatedIn(z, "city0"), taughtIn(y, z)"#,
    // "some student studies subj0 at uni0" — two hub constants joined on
    // an existential student.
    r#"q(x) :- Student(x), studies(z, "subj0"), enrolledAt(z, "uni0")"#,
];

struct PanelRun {
    wall_ms: f64,
    nodes: u64,
    bits: Vec<bool>,
}

fn run_panel_once(
    db: &obx_srcdb::Database,
    compiled: &[CompiledQuery],
    tuples: &[&Tuple],
    borders: &[FxHashSet<AtomId>],
    mode: EvalMode,
) -> PanelRun {
    eval::set_mode(mode);
    let before = eval::node_counts();
    let t0 = Instant::now();
    let mut bits = Vec::with_capacity(compiled.len() * tuples.len());
    for cq in compiled {
        for (t, b) in tuples.iter().zip(borders.iter()) {
            bits.push(cq.member(View::masked(db, b), t));
        }
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let after = eval::node_counts();
    let nodes = match mode {
        EvalMode::Legacy => after.0 - before.0,
        EvalMode::Guided => after.1 - before.1,
        // The bench compares the two pure modes; Auto is their dispatcher.
        EvalMode::Auto => unreachable!("bench runs pure modes only"),
    };
    PanelRun {
        wall_ms,
        nodes,
        bits,
    }
}

fn bench_hotpath(name: &str, scenario: &mut Scenario, fields: &mut String) -> f64 {
    let parsed: Vec<_> = PANEL
        .iter()
        .map(|q| {
            scenario
                .system
                .parse_query(q)
                .expect("panel queries parse against the university vocabulary")
        })
        .collect();
    let compiled: Vec<CompiledQuery> = parsed
        .iter()
        .map(|u| {
            scenario
                .system
                .spec()
                .compile(u)
                .expect("panel queries compile within default budgets")
        })
        .collect();
    let db = scenario.system.db();
    let tuples: Vec<&Tuple> = scenario
        .labels
        .pos()
        .iter()
        .chain(scenario.labels.neg().iter())
        .collect();
    // Radius 1: the tuple's own facts plus everything sharing a constant
    // with them. This is the compact-view regime the skew claim is about —
    // at radius 2 the atom-adjacency BFS already swallows most of the
    // connected component, so every index slice is inside every border
    // and no access choice can matter (the search workload above runs
    // there, gated on parity for exactly that reason).
    let borders: Vec<FxHashSet<AtomId>> = tuples
        .iter()
        .map(|t| border(db, t, HOTPATH_RADIUS))
        .collect();

    let mut best_legacy = run_panel_once(db, &compiled, &tuples, &borders, EvalMode::Legacy);
    let mut best_guided = run_panel_once(db, &compiled, &tuples, &borders, EvalMode::Guided);
    assert_eq!(
        best_legacy.bits, best_guided.bits,
        "{name}: hot-path membership diverges between evaluators"
    );
    for _ in 1..REPS {
        let legacy = run_panel_once(db, &compiled, &tuples, &borders, EvalMode::Legacy);
        assert_eq!(legacy.nodes, best_legacy.nodes, "legacy nodes drifted");
        if legacy.wall_ms < best_legacy.wall_ms {
            best_legacy = legacy;
        }
        let guided = run_panel_once(db, &compiled, &tuples, &borders, EvalMode::Guided);
        assert_eq!(guided.nodes, best_guided.nodes, "guided nodes drifted");
        if guided.wall_ms < best_guided.wall_ms {
            best_guided = guided;
        }
    }
    let node_ratio = best_legacy.nodes as f64 / best_guided.nodes.max(1) as f64;
    let speedup = best_legacy.wall_ms / best_guided.wall_ms.max(1e-9);
    fields.push_str(&format!(
        concat!(
            "\"{k}_hotpath_legacy_ms\":{:.3},\"{k}_hotpath_guided_ms\":{:.3},",
            "\"{k}_hotpath_speedup\":{:.2},",
            "\"{k}_hotpath_legacy_nodes\":{},\"{k}_hotpath_guided_nodes\":{},",
            "\"{k}_hotpath_node_ratio\":{:.2},",
        ),
        best_legacy.wall_ms,
        best_guided.wall_ms,
        speedup,
        best_legacy.nodes,
        best_guided.nodes,
        node_ratio,
        k = name,
    ));
    eprintln!(
        "{name} hot path: {:.1} ms legacy -> {:.1} ms guided ({speedup:.2}x wall), \
         nodes {} -> {} ({node_ratio:.2}x fewer) over {} member checks",
        best_legacy.wall_ms,
        best_guided.wall_ms,
        best_legacy.nodes,
        best_guided.nodes,
        best_legacy.bits.len()
    );
    node_ratio
}

fn main() {
    let mut uniform = university_scenario(UniversityParams {
        n_students: 300,
        ..UniversityParams::default()
    });
    let mut skewed = skewed_scenario(SkewedParams {
        n_students: 300,
        ..SkewedParams::default()
    });

    let mut fields = String::new();
    let uniform_ratio = bench_scenario("uniform", &uniform, &mut fields);
    let skewed_ratio = bench_scenario("skewed", &skewed, &mut fields);
    let uniform_hotpath = bench_hotpath("uniform", &mut uniform, &mut fields);
    let skewed_hotpath = bench_hotpath("skewed", &mut skewed, &mut fields);

    let json = format!(
        "{{\"bench\":\"guided\",\"radius\":2,\"hotpath_radius\":{HOTPATH_RADIUS},\"n_students\":300,\"beam_width\":12,{fields}\"identical_output\":true}}"
    );
    println!("{json}");

    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = std::path::Path::new(root).join("BENCH_guided.json");
    std::fs::write(&path, format!("{json}\n")).expect("write BENCH_guided.json");
    eprintln!(
        "wrote {}",
        std::fs::canonicalize(&path).unwrap_or(path).display()
    );

    // Hard gates (ISSUE 6 acceptance): ≥2× fewer nodes on the skewed hot
    // path, no node regression anywhere else (node counts are
    // deterministic; the 5% slack covers only future legitimate heuristic
    // tweaks).
    let mut failed = false;
    if skewed_hotpath < 2.0 {
        eprintln!(
            "FAIL: skewed hot-path node ratio {skewed_hotpath:.2}x below the 2x acceptance target"
        );
        failed = true;
    }
    for (what, ratio) in [
        ("uniform search", uniform_ratio),
        ("skewed search", skewed_ratio),
        ("uniform hot path", uniform_hotpath),
    ] {
        if ratio < 0.95 {
            eprintln!("FAIL: guided regresses node count on {what} ({ratio:.2}x)");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}

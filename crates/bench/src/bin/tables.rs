//! Regenerates every experiment table (E1–E10).
//!
//! ```text
//! cargo run --release -p obx-bench --bin tables           # all tables
//! cargo run --release -p obx-bench --bin tables e3 e7     # selected
//! ```
//!
//! The output of a full run is recorded in EXPERIMENTS.md.

use obx_bench::experiments as ex;
use obx_util::table::Table;

/// One experiment: id, title, row producer.
type Experiment = (&'static str, &'static str, fn() -> Table);

fn main() {
    let args: Vec<String> = std::env::args().skip(1).map(|a| a.to_lowercase()).collect();
    let want = |id: &str| args.is_empty() || args.iter().any(|a| a == id);

    let all: Vec<Experiment> = vec![
        (
            "e1",
            "E1 — Example 3.3: border of radius 2",
            ex::e01_border_layers,
        ),
        (
            "e2",
            "E2 — Example 3.6: J-match matrix (r = 1)",
            ex::e02_match_matrix,
        ),
        (
            "e3",
            "E3 — Example 3.8: Z-scores (* = paper erratum, see EXPERIMENTS.md)",
            ex::e03_scores,
        ),
        (
            "e4",
            "E4 — Proposition 3.5: matches vs radius",
            ex::e04_radius_curve,
        ),
        (
            "e5",
            "E5 — fidelity vs label noise (university, beam)",
            ex::e05_fidelity_vs_noise,
        ),
        (
            "e6",
            "E6 — strategy comparison (university, 40 students)",
            ex::e06_strategies,
        ),
        (
            "e7",
            "E7 — PerfectRef scaling vs TBox shape",
            ex::e07_rewrite_scaling,
        ),
        (
            "e8",
            "E8 — border computation scaling",
            ex::e08_border_scaling,
        ),
        ("e9", "E9 — ontology-value ablation", ex::e09_ablation),
        ("e10", "E10 — certain-answer engines", ex::e10_engines),
    ];

    for (id, title, f) in all {
        if !want(id) {
            continue;
        }
        println!("### {title}\n");
        println!("{}", f().render());
    }
}

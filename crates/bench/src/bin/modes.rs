//! Explanation-mode benchmark: sound / complete vs the paper's F-score.
//!
//! Runs the beam strategy under all three [`ExplainMode`] objectives on
//! two workloads — the 600-student university scenario (the paper's
//! running example at scale) and the skewed flagship pruning scenario —
//! and reports per-mode wall time and pruning rates to
//! `BENCH_modes.json` at the workspace root.
//!
//! Beyond timing, the run is a correctness gate for the mode objectives
//! themselves, with three families of hard asserts (exit 1 on any
//! violation):
//!
//! * **sound output is sound** — the top sound-mode explanation matches
//!   zero λ⁻ tuples on every scenario where a sound candidate exists;
//! * **complete output is complete** — the top complete-mode explanation
//!   covers every λ⁺ tuple;
//! * **the objectives are genuinely different** — on the audit scenario
//!   ([`modes_scenario`]), whose best sound / best complete / best
//!   F-score explanations provably differ, the three winners must be
//!   three distinct queries (`vetted`, `screened`, `reviewed`
//!   respectively); any conflation of the lexicographic encodings would
//!   collapse two of them.
//!
//! The skewed runs additionally assert `pruned > 0`: the mode scorings'
//! interval bounds (δS/δC pins + coverage/precision corners) must keep
//! the optimistic-bound pruning path live, not just the plain-criteria
//! bounds the `search` bench guards.
//!
//! Usage: `cargo run --release -p obx-bench --bin modes`

use obx_core::explain::{ExplainReport, ExplainTask, SearchLimits, Strategy};
use obx_core::score::{ExplainMode, Scoring};
use obx_core::strategies::{BeamSearch, GreedyUcq};
use obx_core::ScoringEngine;
use obx_datagen::{
    modes_scenario, skewed_scenario, university_scenario, ModesParams, Scenario, SkewedParams,
    UniversityParams,
};
use std::sync::Arc;
use std::time::Instant;

/// Repetitions per (scenario, mode); the best wall time is kept. The
/// three modes are interleaved (fscore, sound, complete, fscore, …) so a
/// slow phase of the machine taxes every mode equally.
const REPS: usize = 5;

struct ModeRun {
    wall_ms: f64,
    candidates: u64,
    pruned: usize,
    report: ExplainReport,
}

fn run_once<'a>(task: &ExplainTask<'a>, scoring: &'a Scoring, strategy: &dyn Strategy) -> ModeRun {
    let engine = Arc::new(ScoringEngine::with_incremental(true));
    let t = task.with_scoring(scoring).with_engine(Arc::clone(&engine));
    let t0 = Instant::now();
    let report = strategy
        .explain_with_status(&t)
        .expect("benchmark scenarios yield valid searches");
    ModeRun {
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
        candidates: engine.cache_hits() + engine.cache_misses(),
        pruned: report.pruned,
        report,
    }
}

/// Best-of-REPS interleaved over the three modes; returns runs in
/// [fscore, sound, complete] order.
fn run_modes<'a>(
    task: &ExplainTask<'a>,
    scorings: &'a [Scoring; 3],
    strategy: &dyn Strategy,
) -> [ModeRun; 3] {
    let mut best = scorings.each_ref().map(|s| run_once(task, s, strategy));
    for _ in 1..REPS {
        for (slot, scoring) in best.iter_mut().zip(scorings.iter()) {
            let fresh = run_once(task, scoring, strategy);
            if fresh.wall_ms < slot.wall_ms {
                *slot = fresh;
            }
        }
    }
    best
}

fn scorings_for(scenario: &Scenario, fscore: &Scoring) -> [Scoring; 3] {
    let (p, n) = (scenario.labels.pos().len(), scenario.labels.neg().len());
    [fscore.clone(), Scoring::sound(p), Scoring::complete(p, n)]
}

fn top<'r>(run: &'r ModeRun, what: &str) -> &'r obx_core::explain::Explanation {
    run.report
        .explanations
        .first()
        .unwrap_or_else(|| panic!("{what}: search returned no explanations"))
}

fn assert_sound(scenario_name: &str, run: &ModeRun) {
    let t = top(run, scenario_name);
    assert_eq!(
        t.stats.neg_matched, 0,
        "{scenario_name}: sound-mode winner hits {} λ⁻ tuple(s)",
        t.stats.neg_matched
    );
}

fn assert_complete(scenario_name: &str, run: &ModeRun) {
    let t = top(run, scenario_name);
    assert_eq!(
        t.stats.pos_matched,
        t.stats.pos_total,
        "{scenario_name}: complete-mode winner misses {} λ⁺ tuple(s)",
        t.stats.pos_total - t.stats.pos_matched
    );
}

/// Runs all three modes on one scenario and appends the JSON fields.
/// Returns the [fscore, sound, complete] runs for scenario-specific
/// asserts.
fn bench_scenario(
    key: &str,
    scenario: &Scenario,
    fscore: &Scoring,
    strategy: &dyn Strategy,
    radius: usize,
    limits: SearchLimits,
    fields: &mut String,
) -> [ModeRun; 3] {
    let scorings = scorings_for(scenario, fscore);
    let task = ExplainTask::new(
        &scenario.system,
        &scenario.labels,
        radius,
        &scorings[0],
        limits,
    )
    .expect("benchmark scenario yields a valid task");
    let runs = run_modes(&task, &scorings, strategy);
    for (mode, run) in ExplainMode::ALL.iter().zip(runs.iter()) {
        let prune_rate = run.pruned as f64 / (run.pruned as f64 + run.candidates as f64).max(1.0);
        fields.push_str(&format!(
            "\"{key}_{mode}_ms\":{:.3},\"{key}_{mode}_candidates\":{},\
             \"{key}_{mode}_pruned\":{},\"{key}_{mode}_prune_rate\":{:.4},",
            run.wall_ms, run.candidates, run.pruned, prune_rate,
        ));
        eprintln!(
            "{key}/{mode}: {:.1} ms, {} candidates, pruned {} (rate {prune_rate:.3})",
            run.wall_ms, run.candidates, run.pruned
        );
    }
    runs
}

fn main() {
    let mut fields = String::new();

    // Workload 1: the university scenario at 600 students, paper Z with
    // unit weights as the fscore reference (the service default).
    let uni = university_scenario(UniversityParams {
        n_students: 600,
        ..UniversityParams::default()
    });
    let fscore = Scoring::paper_weighted(1.0, 1.0, 1.0);
    let uni_runs = bench_scenario(
        "uni",
        &uni,
        &fscore,
        &BeamSearch,
        2,
        SearchLimits {
            beam_width: 12,
            top_k: 5,
            ..SearchLimits::default()
        },
        &mut fields,
    );
    assert_sound("university", &uni_runs[1]);
    assert_complete("university", &uni_runs[2]);

    // Workload 2: the skewed flagship pruning scenario (see the `search`
    // bench for why this shape makes the optimistic bound bite). Here it
    // guards that the *mode* scorings keep pruning live: the δS/δC
    // indicator pins and the precision corner bounds must discard the
    // dominated registrar branches exactly like the plain coverage
    // criteria do.
    let skewed = skewed_scenario(SkewedParams {
        n_students: 300,
        n_registrar_kinds: 10,
        ..SkewedParams::default()
    });
    let skewed_fscore = Scoring::accuracy();
    let skewed_runs = bench_scenario(
        "skewed",
        &skewed,
        &skewed_fscore,
        &BeamSearch,
        1,
        SearchLimits {
            max_atoms: 1,
            beam_width: 4,
            top_k: 1,
            ..SearchLimits::default()
        },
        &mut fields,
    );
    assert_sound("skewed", &skewed_runs[1]);
    assert_complete("skewed", &skewed_runs[2]);
    assert!(
        skewed_runs[1].pruned > 0,
        "skewed/sound: bound pruning went dark under the sound scoring"
    );

    // Workload 2b: the same skewed scenario under greedy-UCQ. Each
    // mode's prune lever is direction-specific. The beam (Specialize)
    // run above proves sound-mode pruning: an unsound parent's children
    // bound at δS's dead pin. Union assembly is the Generalize-flavoured
    // dual, and it is where complete mode prunes: adding a disjunct can
    // only add λ⁻ hits (`lo_n ≥ n_chosen`) and more atoms, so once the
    // chosen union is complete, the interval gate proves every further
    // trial non-improving — precision is capped at P/(P+lo_n) and δ5
    // strictly falls — and skips it unscored. Sound mode prunes here
    // too: a λ⁻-dirty disjunct pins the trial's δS to 0, killing it
    // before evaluation.
    let skewed_ucq_runs = bench_scenario(
        "skewed_ucq",
        &skewed,
        &skewed_fscore,
        &GreedyUcq::default(),
        1,
        SearchLimits {
            max_atoms: 1,
            beam_width: 4,
            top_k: 1,
            ..SearchLimits::default()
        },
        &mut fields,
    );
    assert_sound("skewed-ucq", &skewed_ucq_runs[1]);
    assert_complete("skewed-ucq", &skewed_ucq_runs[2]);
    for (mode, run) in ExplainMode::ALL.iter().zip(skewed_ucq_runs.iter()).skip(1) {
        assert!(
            run.pruned > 0,
            "skewed-ucq/{mode}: union bound pruning went dark under the {mode} scoring"
        );
    }

    // Workload 3 (untimed): the audit scenario engineered so the three
    // winners provably differ — the conflation canary.
    let audit = modes_scenario(ModesParams::default());
    let audit_scorings = scorings_for(&audit, &fscore);
    let audit_task = ExplainTask::new(
        &audit.system,
        &audit.labels,
        1,
        &audit_scorings[0],
        SearchLimits {
            max_atoms: 1,
            beam_width: 8,
            top_k: 1,
            ..SearchLimits::default()
        },
    )
    .expect("audit scenario yields a valid task");
    let audit_runs = audit_scorings
        .each_ref()
        .map(|s| run_once(&audit_task, s, &BeamSearch));
    assert_sound("audit", &audit_runs[1]);
    assert_complete("audit", &audit_runs[2]);
    let rendered: Vec<String> = audit_runs
        .iter()
        .map(|r| top(r, "audit").render(&audit.system))
        .collect();
    eprintln!(
        "audit winners: fscore={} sound={} complete={}",
        rendered[0], rendered[1], rendered[2]
    );
    assert!(
        rendered[0] != rendered[1] && rendered[0] != rendered[2] && rendered[1] != rendered[2],
        "audit: mode winners conflated — fscore={}, sound={}, complete={}",
        rendered[0],
        rendered[1],
        rendered[2]
    );

    let json = format!(
        "{{\"bench\":\"modes\",\"uni_students\":600,\"skewed_students\":300,{fields}\"mode_winners_differ\":true}}"
    );
    println!("{json}");

    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = std::path::Path::new(root).join("BENCH_modes.json");
    std::fs::write(&path, format!("{json}\n")).expect("write BENCH_modes.json");
    eprintln!(
        "wrote {}",
        std::fs::canonicalize(&path).unwrap_or(path).display()
    );
}

//! Million-atom data-layer benchmark: snapshot loading, parallel border
//! BFS, interner pre-sizing, and end-to-end explain parity at scale.
//!
//! Four phases over [`obx_datagen::scale`] scenarios, with a single-line
//! JSON summary written to `BENCH_scale.json` at the workspace root:
//!
//! 1. **Load** — a 10⁶-atom scenario is written to disk as text
//!    artifacts and loaded through [`load_dir`] twice: once from the
//!    `.obx` text (snapshot absent) and once through the binary
//!    `data.obxsnap` built by `obx snapshot build`. Both loads must
//!    produce byte-identical databases and labels, and the snapshot
//!    path must be **≥10× faster** — a hard gate (exit 1).
//! 2. **Border** — radius-1 borders around every labelled tuple,
//!    computed serially and through the worker pool. Layers must be
//!    byte-identical, and the parallel pass must beat the serial one
//!    (hard gate) whenever the pool has worker threads — hub frontiers
//!    at this scale are far past the engagement threshold. On a
//!    single-core host (0 workers) the gate degrades to a bounded
//!    dispatch-overhead check, and the JSON records `border_workers`
//!    so readers can tell which gate applied.
//! 3. **Interner** — the satellite micro-benchmark: bulk-interning the
//!    scenario's constant population into a cold [`Interner`] versus
//!    one pre-sized with [`Interner::with_capacity`], the fast path
//!    snapshot headers feed. Informational (pre-sizing saves the
//!    rehash-and-relocate churn; how much is machine-dependent).
//! 4. **Explain** — a 10⁵-atom scenario loaded both ways, each run
//!    through the beam strategy: the ranked explanations (rendered
//!    text and score bits) must be identical — loading through the
//!    snapshot may not change a single downstream byte.
//!
//! Usage: `cargo run --release -p obx-bench --bin scale`

use obx_core::explain::{ExplainReport, ExplainTask, SearchLimits, Strategy};
use obx_core::scenario::{build_snapshot, load_dir, write_scenario_dir, LoadedScenario};
use obx_core::score::Scoring;
use obx_core::strategies::BeamSearch;
use obx_datagen::scale::{scale_scenario, ScaleParams};
use obx_srcdb::{border_workers, Border, BorderMode, Const, Tuple};
use obx_util::{Interner, Interrupt, Symbol};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Atom target for the load/border phases (the data-layer stress size).
const BIG_ATOMS: usize = 1_000_000;
/// Labelled tuples in the big scenario — the border workload. Small on
/// purpose: scoring is linear in |λ|, borders are what we time here.
const BIG_LABELS: usize = 16;
/// Atom target for the explain-parity phase: big enough that the
/// snapshot fast path is exercised for real, small enough that a beam
/// search over hub borders stays in bench territory.
const MED_ATOMS: usize = 100_000;
/// Border radius for the border phase. Radius 1 keeps per-tuple borders
/// at hub-slice size (~10⁵ atoms) — large enough to engage the pool,
/// small enough that the phase times expansion, not set assembly.
const BORDER_RADIUS: usize = 1;
/// Repetitions per timed section; best wall time kept.
const REPS: usize = 3;

fn ms(t0: Instant) -> f64 {
    t0.elapsed().as_secs_f64() * 1e3
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("obx-bench-scale-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench scratch dir");
    dir
}

/// Best-of-[`REPS`] wall time for `f`, returning the last result.
fn best_of<T>(mut f: impl FnMut() -> T) -> (f64, T) {
    let t0 = Instant::now();
    let mut out = f();
    let mut best = ms(t0);
    for _ in 1..REPS {
        let t0 = Instant::now();
        out = f();
        best = best.min(ms(t0));
    }
    (best, out)
}

/// Phase 1: text vs snapshot load of the big scenario directory.
fn bench_load(dir: &Path, fields: &mut String) -> (f64, LoadedScenario) {
    let (text_load_ms, text_loaded) = best_of(|| load_dir(dir).expect("text load succeeds"));
    eprintln!("text load: {text_load_ms:.1} ms best of {REPS}");

    let t0 = Instant::now();
    let (atoms, consts, bytes) = build_snapshot(dir).expect("snapshot build succeeds");
    let snapshot_build_ms = ms(t0);
    eprintln!(
        "snapshot build: {snapshot_build_ms:.1} ms ({atoms} atoms, {consts} consts, {bytes} bytes)"
    );

    let (snapshot_load_ms, snap_loaded) =
        best_of(|| load_dir(dir).expect("snapshot load succeeds"));
    let load_speedup = text_load_ms / snapshot_load_ms.max(1e-9);
    eprintln!("snapshot load: {snapshot_load_ms:.1} ms best of {REPS} ({load_speedup:.1}x)");

    // Byte-identity: the snapshot fast path must reproduce the text
    // parse exactly — same atom order, same interned ids, same labels.
    assert_eq!(
        text_loaded.system.db().render(),
        snap_loaded.system.db().render(),
        "snapshot load diverges from text load"
    );
    assert_eq!(text_loaded.labels.pos(), snap_loaded.labels.pos());
    assert_eq!(text_loaded.labels.neg(), snap_loaded.labels.neg());

    fields.push_str(&format!(
        concat!(
            "\"text_load_ms\":{:.3},\"snapshot_build_ms\":{:.3},",
            "\"snapshot_load_ms\":{:.3},\"load_speedup\":{:.2},",
            "\"snapshot_bytes\":{},\"identical_load\":true,",
        ),
        text_load_ms, snapshot_build_ms, snapshot_load_ms, load_speedup, bytes,
    ));
    (load_speedup, snap_loaded)
}

/// Phase 2: serial vs pooled border BFS over every labelled tuple.
fn bench_border(loaded: &LoadedScenario, fields: &mut String) -> f64 {
    let db = loaded.system.db();
    let tuples: Vec<&Tuple> = loaded
        .labels
        .pos()
        .iter()
        .chain(loaded.labels.neg().iter())
        .collect();
    let interrupt = Interrupt::none();
    let run = |mode: BorderMode| -> Vec<Border> {
        tuples
            .iter()
            .map(|t| Border::compute_with_mode(db, t, BORDER_RADIUS, &interrupt, mode))
            .collect()
    };

    let (border_serial_ms, serial) = best_of(|| run(BorderMode::Serial));
    let (border_parallel_ms, parallel) = best_of(|| run(BorderMode::Parallel));
    let border_speedup = border_serial_ms / border_parallel_ms.max(1e-9);
    let atoms: usize = serial.iter().map(|b| b.atoms().len()).sum();
    for (s, p) in serial.iter().zip(parallel.iter()) {
        assert_eq!(s.num_layers(), p.num_layers(), "layer counts diverge");
        for j in 0..s.num_layers() {
            assert_eq!(s.layer(j), p.layer(j), "border layer {j} diverges");
        }
    }
    let workers = border_workers();
    eprintln!(
        "border r={BORDER_RADIUS}: {border_serial_ms:.1} ms serial -> \
         {border_parallel_ms:.1} ms parallel ({border_speedup:.2}x, \
         {workers} pool workers) over {} tuples, {atoms} border atoms total",
        tuples.len()
    );
    fields.push_str(&format!(
        concat!(
            "\"border_serial_ms\":{:.3},\"border_parallel_ms\":{:.3},",
            "\"border_speedup\":{:.2},\"border_workers\":{},",
            "\"border_tuples\":{},\"border_atoms\":{},",
            "\"identical_border\":true,",
        ),
        border_serial_ms,
        border_parallel_ms,
        border_speedup,
        workers,
        tuples.len(),
        atoms,
    ));
    border_speedup
}

/// Phase 3: the interner pre-sizing micro-benchmark (satellite). The
/// snapshot header feeds exact counts into `with_capacity`; this phase
/// measures what that buys over growing a cold table.
fn bench_intern(loaded: &LoadedScenario, fields: &mut String) {
    let pool = loaded.system.db().consts();
    let names: Vec<String> = (0..pool.len())
        .map(|i| pool.resolve(Const(Symbol(i as u32))).to_owned())
        .collect();
    let (intern_cold_ms, cold) = best_of(|| {
        let mut i = Interner::new();
        for n in &names {
            i.intern(n);
        }
        i.len()
    });
    let (intern_presized_ms, presized) = best_of(|| {
        let mut i = Interner::with_capacity(names.len());
        for n in &names {
            i.intern(n);
        }
        i.len()
    });
    assert_eq!(cold, presized);
    let intern_presize_speedup = intern_cold_ms / intern_presized_ms.max(1e-9);
    eprintln!(
        "intern {} consts: {intern_cold_ms:.1} ms cold -> \
         {intern_presized_ms:.1} ms pre-sized ({intern_presize_speedup:.2}x)",
        names.len()
    );
    fields.push_str(&format!(
        concat!(
            "\"intern_consts\":{},\"intern_cold_ms\":{:.3},",
            "\"intern_presized_ms\":{:.3},\"intern_presize_speedup\":{:.2},",
        ),
        names.len(),
        intern_cold_ms,
        intern_presized_ms,
        intern_presize_speedup,
    ));
}

fn explain(loaded: &LoadedScenario) -> (f64, ExplainReport) {
    let scoring = Scoring::accuracy();
    let limits = SearchLimits {
        beam_width: 6,
        top_k: 3,
        ..SearchLimits::default()
    };
    let task = ExplainTask::new(&loaded.system, &loaded.labels, 1, &scoring, limits)
        .expect("scale scenarios yield valid tasks");
    let t0 = Instant::now();
    let report = BeamSearch
        .explain_with_status(&task)
        .expect("beam search succeeds on the scale scenario");
    (ms(t0), report)
}

/// Phase 4: ranked-explain parity between the text and snapshot loads
/// of the medium scenario.
fn bench_explain(dir: &Path, fields: &mut String) {
    let text_loaded = load_dir(dir).expect("medium text load succeeds");
    build_snapshot(dir).expect("medium snapshot build succeeds");
    let snap_loaded = load_dir(dir).expect("medium snapshot load succeeds");

    let (_, text_report) = explain(&text_loaded);
    let (explain_ms, snap_report) = explain(&snap_loaded);
    assert_eq!(
        text_report.explanations.len(),
        snap_report.explanations.len(),
        "explanation counts diverge between load paths"
    );
    for (a, b) in text_report
        .explanations
        .iter()
        .zip(snap_report.explanations.iter())
    {
        assert_eq!(
            a.render(&text_loaded.system),
            b.render(&snap_loaded.system),
            "ranked queries diverge between load paths"
        );
        assert_eq!(
            a.score.to_bits(),
            b.score.to_bits(),
            "Z-scores diverge between load paths"
        );
        assert_eq!(a.stats, b.stats, "stats diverge between load paths");
    }
    eprintln!(
        "explain: {explain_ms:.1} ms, {} ranked explanations, identical across load paths",
        snap_report.explanations.len()
    );
    fields.push_str(&format!(
        "\"explain_ms\":{explain_ms:.3},\"explanations\":{},",
        snap_report.explanations.len()
    ));
}

fn main() {
    let mut fields = String::new();

    let t0 = Instant::now();
    let big = scale_scenario(ScaleParams {
        n_atoms: BIG_ATOMS,
        label_cap: BIG_LABELS,
        ..ScaleParams::default()
    });
    let gen_ms = ms(t0);
    let big_atoms = big.system.db().len();
    eprintln!("generated {big_atoms} atoms in {gen_ms:.1} ms");
    fields.push_str(&format!(
        "\"gen_ms\":{gen_ms:.3},\"big_atoms\":{big_atoms},"
    ));

    let big_dir = scratch_dir("big");
    write_scenario_dir(&big_dir, &big.system, &big.labels).expect("write big scenario dir");
    drop(big);

    let (load_speedup, snap_loaded) = bench_load(&big_dir, &mut fields);
    let border_speedup = bench_border(&snap_loaded, &mut fields);
    bench_intern(&snap_loaded, &mut fields);
    drop(snap_loaded);
    let _ = std::fs::remove_dir_all(&big_dir);

    let med = scale_scenario(ScaleParams {
        n_atoms: MED_ATOMS,
        label_cap: 40,
        ..ScaleParams::default()
    });
    let med_dir = scratch_dir("med");
    write_scenario_dir(&med_dir, &med.system, &med.labels).expect("write medium scenario dir");
    drop(med);
    bench_explain(&med_dir, &mut fields);
    let _ = std::fs::remove_dir_all(&med_dir);

    let json = format!(
        "{{\"bench\":\"scale\",\"big_atoms_target\":{BIG_ATOMS},\"med_atoms_target\":{MED_ATOMS},\
         \"border_radius\":{BORDER_RADIUS},{fields}\"identical_output\":true}}"
    );
    println!("{json}");

    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = std::path::Path::new(root).join("BENCH_scale.json");
    std::fs::write(&path, format!("{json}\n")).expect("write BENCH_scale.json");
    eprintln!(
        "wrote {}",
        std::fs::canonicalize(&path).unwrap_or(path).display()
    );

    // Hard gates (acceptance): the binary snapshot must load the
    // 10⁶-atom scenario ≥10× faster than the text artifacts, and the
    // pooled border BFS must beat the serial one at this scale. The
    // second gate is only meaningful when the pool actually has worker
    // threads: on a single-core host `BorderMode::Parallel` degenerates
    // to the caller expanding alone, so the honest assertion there is
    // bounded overhead (dispatch must cost <20%), not speedup.
    let mut failed = false;
    if load_speedup < 10.0 {
        eprintln!("FAIL: snapshot load speedup {load_speedup:.2}x below the 10x acceptance target");
        failed = true;
    }
    let workers = border_workers();
    if workers > 0 {
        if border_speedup < 1.0 {
            eprintln!(
                "FAIL: parallel border BFS ({border_speedup:.2}x, {workers} workers) \
                 does not beat serial"
            );
            failed = true;
        }
    } else if border_speedup < 0.8 {
        eprintln!(
            "FAIL: border pool dispatch overhead ({border_speedup:.2}x) exceeds 20% \
             on a single-core host"
        );
        failed = true;
    } else {
        eprintln!(
            "note: single-core host (0 pool workers) — border gate checks \
             dispatch overhead, not speedup"
        );
    }
    if failed {
        std::process::exit(1);
    }
}

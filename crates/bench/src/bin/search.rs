//! Search-acceleration benchmark: parent-delta scoring + bound pruning.
//!
//! Runs the beam and greedy-UCQ strategies over a mid-size university
//! scenario twice per strategy — once on a baseline engine (incremental
//! off: every candidate fully compiled and evaluated) and once on an
//! incremental engine (children delta-evaluated against their parent's
//! match bits, provably-dominated candidates bound-pruned) — asserts the
//! ranked explanations are identical to the bit, then writes a single-line
//! JSON summary to `BENCH_search.json` at the workspace root.
//!
//! Usage: `cargo run --release -p obx-bench --bin search`

use obx_core::explain::{ExplainReport, ExplainTask, SearchLimits, Strategy};
use obx_core::score::Scoring;
use obx_core::strategies::{BeamSearch, GreedyUcq};
use obx_core::ScoringEngine;
use obx_datagen::{university_scenario, UniversityParams};
use std::sync::Arc;
use std::time::Instant;

struct ModeRun {
    wall_ms: f64,
    candidates: u64,
    evals: u64,
    evals_saved: u64,
    pruned: usize,
    report: ExplainReport,
}

/// Repetitions per (strategy, mode); the best wall time is kept, the
/// standard defence against scheduler noise on a shared machine. Every
/// repetition uses a fresh (cold-cache) engine, so the work per rep is
/// identical and only timing varies. The two modes are *interleaved*
/// (full, incremental, full, …) so a slow phase of the machine taxes
/// both sides of the ratio equally.
const REPS: usize = 7;

fn run_once(task: &ExplainTask<'_>, strategy: &dyn Strategy, incremental: bool) -> ModeRun {
    let engine = Arc::new(ScoringEngine::with_incremental(incremental));
    let t = task.with_engine(Arc::clone(&engine));
    let t0 = Instant::now();
    let report = strategy
        .explain_with_status(&t)
        .expect("benchmark strategies succeed on the university scenario");
    ModeRun {
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
        candidates: engine.cache_hits() + engine.cache_misses(),
        evals: engine.eval_calls(),
        evals_saved: engine.evals_saved(),
        pruned: report.pruned,
        report,
    }
}

fn run(task: &ExplainTask<'_>, strategy: &dyn Strategy) -> (ModeRun, ModeRun) {
    let mut best_off = run_once(task, strategy, false);
    let mut best_on = run_once(task, strategy, true);
    for _ in 1..REPS {
        let off = run_once(task, strategy, false);
        if off.wall_ms < best_off.wall_ms {
            best_off = off;
        }
        let on = run_once(task, strategy, true);
        if on.wall_ms < best_on.wall_ms {
            best_on = on;
        }
    }
    (best_off, best_on)
}

fn assert_identical(strategy: &str, sys: &obx_obdm::ObdmSystem, off: &ModeRun, on: &ModeRun) {
    assert_eq!(
        off.report.explanations.len(),
        on.report.explanations.len(),
        "{strategy}: explanation counts diverge"
    );
    for (a, b) in off
        .report
        .explanations
        .iter()
        .zip(on.report.explanations.iter())
    {
        assert_eq!(
            a.render(sys),
            b.render(sys),
            "{strategy}: ranked queries diverge"
        );
        assert_eq!(
            a.score.to_bits(),
            b.score.to_bits(),
            "{strategy}: Z-scores diverge on {}",
            a.render(sys)
        );
        assert_eq!(a.stats, b.stats, "{strategy}: stats diverge");
    }
}

fn main() {
    let scenario = university_scenario(UniversityParams {
        n_students: 600,
        ..UniversityParams::default()
    });
    let scoring = Scoring::accuracy();
    let limits = SearchLimits {
        beam_width: 12,
        top_k: 5,
        ..SearchLimits::default()
    };
    let task = ExplainTask::new(&scenario.system, &scenario.labels, 2, &scoring, limits)
        .expect("university scenario yields a valid task");

    let beam = BeamSearch;
    let greedy = GreedyUcq::default();
    let strategies: [(&str, &dyn Strategy); 2] = [("beam", &beam), ("greedy-ucq", &greedy)];

    let mut fields = String::new();
    let mut beam_speedup = f64::NAN;
    for (name, strategy) in strategies {
        let (off, on) = run(&task, strategy);
        assert_identical(name, &scenario.system, &off, &on);
        let speedup = off.wall_ms / on.wall_ms.max(1e-9);
        if name == "beam" {
            beam_speedup = speedup;
        }
        let key = name.replace('-', "_");
        fields.push_str(&format!(
            concat!(
                "\"{k}_full_ms\":{:.3},\"{k}_incremental_ms\":{:.3},",
                "\"{k}_speedup\":{:.2},",
                "\"{k}_full_cps\":{:.1},\"{k}_incremental_cps\":{:.1},",
                "\"{k}_candidates\":{},",
                "\"{k}_full_evals\":{},\"{k}_incremental_evals\":{},",
                "\"{k}_evals_saved\":{},\"{k}_pruned\":{},",
            ),
            off.wall_ms,
            on.wall_ms,
            speedup,
            off.candidates as f64 / (off.wall_ms / 1e3).max(1e-12),
            on.candidates as f64 / (on.wall_ms / 1e3).max(1e-12),
            off.candidates,
            off.evals,
            on.evals,
            on.evals_saved,
            on.pruned,
            k = key,
        ));
        eprintln!(
            "{name}: {:.1} ms full -> {:.1} ms incremental ({speedup:.2}x), \
             {} candidates, evals {} -> {} (saved {}), pruned {}",
            off.wall_ms, on.wall_ms, off.candidates, off.evals, on.evals, on.evals_saved, on.pruned
        );
    }

    // One extra (untimed) profiled run: a recorder rides down the beam
    // search and the pipeline profile — per-round spans, engine batch
    // counters, kernel wall times — is embedded in the bench JSON so a
    // regression can be read down to the phase that caused it.
    let recorder = obx_util::obs::Recorder::new();
    {
        let budget =
            obx_core::budget::SearchBudget::unlimited().with_recorder(Arc::clone(&recorder));
        let profiled = task
            .with_budget(budget)
            .with_engine(Arc::new(ScoringEngine::with_incremental(true)));
        let _phase = recorder.enter_phase("search");
        let _ = BeamSearch.explain_with_status(&profiled);
    }
    let profile = recorder.profile().to_json();

    let json = format!(
        "{{\"bench\":\"search\",\"radius\":2,\"n_students\":600,\"beam_width\":12,{fields}\"identical_output\":true,\"profile\":{profile}}}"
    );
    println!("{json}");

    // Resolve the workspace root from this crate's manifest dir so the
    // output lands in the same place regardless of the invocation cwd.
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = std::path::Path::new(root).join("BENCH_search.json");
    std::fs::write(&path, format!("{json}\n")).expect("write BENCH_search.json");
    eprintln!(
        "wrote {}",
        std::fs::canonicalize(&path).unwrap_or(path).display()
    );

    if beam_speedup < 2.0 {
        eprintln!("WARNING: beam speedup {beam_speedup:.2}x below the 2x acceptance target");
        std::process::exit(1);
    }
}

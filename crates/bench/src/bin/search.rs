//! Search-acceleration benchmark: parent-delta scoring + bound pruning.
//!
//! Runs the beam and greedy-UCQ strategies over a mid-size university
//! scenario twice per strategy — once on a baseline engine (incremental
//! off: every candidate fully compiled and evaluated) and once on an
//! incremental engine (children delta-evaluated against their parent's
//! match bits, provably-dominated candidates bound-pruned) — asserts the
//! ranked explanations are identical to the bit, then writes a single-line
//! JSON summary to `BENCH_search.json` at the workspace root.
//!
//! The university run measures the *delta* path; under the plain accuracy
//! criterion its admissible bound is too loose to discard anyone, so its
//! `pruned` counter sits at zero and says nothing about the pruning path.
//! A second, flagship variant closes that blind spot: the skewed
//! (power-law) scenario with its registrar extension — a wide role
//! hierarchy whose constant-bound refinements grade sharply by coverage —
//! under a coverage + negative-avoidance score whose Specialize bound is
//! data-dependent. There the beam provably discards the dominated branch
//! of the hierarchy; the run asserts `pruned > 0` and the gate fails if
//! the pruning path ever goes dark again. Every strategy also reports a
//! `*_prune_rate`: the fraction of generated candidates discarded by the
//! bound before scoring.
//!
//! Usage: `cargo run --release -p obx-bench --bin search`

use obx_core::criteria::Criterion;
use obx_core::explain::{ExplainReport, ExplainTask, SearchLimits, Strategy};
use obx_core::score::{ScoreExpr, Scoring};
use obx_core::strategies::{BeamSearch, GreedyUcq};
use obx_core::ScoringEngine;
use obx_datagen::{skewed_scenario, university_scenario, SkewedParams, UniversityParams};
use std::sync::Arc;
use std::time::Instant;

struct ModeRun {
    wall_ms: f64,
    candidates: u64,
    evals: u64,
    evals_saved: u64,
    pruned: usize,
    report: ExplainReport,
}

/// Repetitions per (strategy, mode); the best wall time is kept, the
/// standard defence against scheduler noise on a shared machine. Every
/// repetition uses a fresh (cold-cache) engine, so the work per rep is
/// identical and only timing varies. The two modes are *interleaved*
/// (full, incremental, full, …) so a slow phase of the machine taxes
/// both sides of the ratio equally.
const REPS: usize = 7;

fn run_once(task: &ExplainTask<'_>, strategy: &dyn Strategy, incremental: bool) -> ModeRun {
    let engine = Arc::new(ScoringEngine::with_incremental(incremental));
    let t = task.with_engine(Arc::clone(&engine));
    let t0 = Instant::now();
    let report = strategy
        .explain_with_status(&t)
        .expect("benchmark strategies succeed on the university scenario");
    ModeRun {
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
        candidates: engine.cache_hits() + engine.cache_misses(),
        evals: engine.eval_calls(),
        evals_saved: engine.evals_saved(),
        pruned: report.pruned,
        report,
    }
}

fn run(task: &ExplainTask<'_>, strategy: &dyn Strategy) -> (ModeRun, ModeRun) {
    let mut best_off = run_once(task, strategy, false);
    let mut best_on = run_once(task, strategy, true);
    for _ in 1..REPS {
        let off = run_once(task, strategy, false);
        if off.wall_ms < best_off.wall_ms {
            best_off = off;
        }
        let on = run_once(task, strategy, true);
        if on.wall_ms < best_on.wall_ms {
            best_on = on;
        }
    }
    (best_off, best_on)
}

fn assert_identical(strategy: &str, sys: &obx_obdm::ObdmSystem, off: &ModeRun, on: &ModeRun) {
    assert_eq!(
        off.report.explanations.len(),
        on.report.explanations.len(),
        "{strategy}: explanation counts diverge"
    );
    for (a, b) in off
        .report
        .explanations
        .iter()
        .zip(on.report.explanations.iter())
    {
        assert_eq!(
            a.render(sys),
            b.render(sys),
            "{strategy}: ranked queries diverge"
        );
        assert_eq!(
            a.score.to_bits(),
            b.score.to_bits(),
            "{strategy}: Z-scores diverge on {}",
            a.render(sys)
        );
        assert_eq!(a.stats, b.stats, "{strategy}: stats diverge");
    }
}

fn main() {
    let scenario = university_scenario(UniversityParams {
        n_students: 600,
        ..UniversityParams::default()
    });
    let scoring = Scoring::accuracy();
    let limits = SearchLimits {
        beam_width: 12,
        top_k: 5,
        ..SearchLimits::default()
    };
    let task = ExplainTask::new(&scenario.system, &scenario.labels, 2, &scoring, limits)
        .expect("university scenario yields a valid task");

    let beam = BeamSearch;
    let greedy = GreedyUcq::default();
    let strategies: [(&str, &dyn Strategy); 2] = [("beam", &beam), ("greedy-ucq", &greedy)];

    let mut fields = String::new();
    let mut beam_speedup = f64::NAN;
    for (name, strategy) in strategies {
        let (off, on) = run(&task, strategy);
        assert_identical(name, &scenario.system, &off, &on);
        let speedup = off.wall_ms / on.wall_ms.max(1e-9);
        if name == "beam" {
            beam_speedup = speedup;
        }
        let key = name.replace('-', "_");
        // Pruned candidates never reach the engine, so the generated total
        // is the scored count plus the pruned count.
        let prune_rate = on.pruned as f64 / (on.pruned as f64 + on.candidates as f64).max(1.0);
        fields.push_str(&format!(
            concat!(
                "\"{k}_full_ms\":{:.3},\"{k}_incremental_ms\":{:.3},",
                "\"{k}_speedup\":{:.2},",
                "\"{k}_full_cps\":{:.1},\"{k}_incremental_cps\":{:.1},",
                "\"{k}_candidates\":{},",
                "\"{k}_full_evals\":{},\"{k}_incremental_evals\":{},",
                "\"{k}_evals_saved\":{},\"{k}_pruned\":{},\"{k}_prune_rate\":{:.4},",
            ),
            off.wall_ms,
            on.wall_ms,
            speedup,
            off.candidates as f64 / (off.wall_ms / 1e3).max(1e-12),
            on.candidates as f64 / (on.wall_ms / 1e3).max(1e-12),
            off.candidates,
            off.evals,
            on.evals,
            on.evals_saved,
            on.pruned,
            prune_rate,
            k = key,
        ));
        eprintln!(
            "{name}: {:.1} ms full -> {:.1} ms incremental ({speedup:.2}x), \
             {} candidates, evals {} -> {} (saved {}), pruned {} (rate {prune_rate:.3})",
            off.wall_ms, on.wall_ms, off.candidates, off.evals, on.evals, on.evals_saved, on.pruned
        );
    }

    // Flagship pruning variant: skewed scenario with the registrar
    // extension, under a coverage-style scoring. Under accuracy-family
    // scorings a high-coverage parent's Specialize bound sits near the
    // maximum and nothing is ever provably outside the floors (hence
    // `beam_pruned: 0` above — the guard is wired but toothless there).
    // Coverage + negative-avoidance makes the bound data-dependent: a
    // Specialize child can never exceed its parent's positive coverage.
    // The registrar extension (`n_registrar_kinds`) plants a wide role
    // hierarchy (`rk_i < registered`) whose constant-bound atoms grade
    // sharply by office: the beam reaches `registered(x, office0)`
    // (covers the hub) and `registered(x, office1)` (covers the thin
    // tail), the hub's kind refinements fill the scoring window at high
    // scores, and every `office1` kind refinement carries a bound
    // strictly below both the window guard and the pool floor — pruned
    // unscored. Radius 1 matters here: at radius 2 the shared subjects
    // make every border swallow the whole component, the discriminative
    // constant ranking degenerates to a tie, and the office constants
    // never enter the binding pool. This run exists to prove the pruning
    // path fires end-to-end: `pruned > 0` is asserted and gated below.
    let skewed = skewed_scenario(SkewedParams {
        n_students: 300,
        n_registrar_kinds: 10,
        ..SkewedParams::default()
    });
    let skewed_scoring = Scoring::new(
        vec![Criterion::PosCoverage, Criterion::NegAvoidance],
        ScoreExpr::weighted_average(&[1.0, 1.0]),
    );
    // Single-atom candidates isolate the role-hierarchy lattice the
    // extension plants; with more atoms the window fills with zero-
    // coverage conjunctive children whose scores sit at the bound's own
    // baseline, and the min-over-window guard never tightens.
    let skewed_limits = SearchLimits {
        max_atoms: 1,
        beam_width: 4,
        top_k: 1,
        ..SearchLimits::default()
    };
    let skewed_task = ExplainTask::new(
        &skewed.system,
        &skewed.labels,
        1,
        &skewed_scoring,
        skewed_limits,
    )
    .expect("skewed scenario yields a valid task");
    let (off, on) = run(&skewed_task, &beam);
    assert_identical("skewed-beam", &skewed.system, &off, &on);
    let skewed_pruned = on.pruned;
    assert!(
        skewed_pruned > 0,
        "skewed-beam: bound pruning went dark — the flagship pruning \
         variant exists to keep this path exercised"
    );
    let skewed_prune_rate = on.pruned as f64 / (on.pruned as f64 + on.candidates as f64).max(1.0);
    fields.push_str(&format!(
        concat!(
            "\"skewed_beam_radius\":1,\"skewed_beam_registrar_kinds\":10,",
            "\"skewed_beam_full_ms\":{:.3},\"skewed_beam_incremental_ms\":{:.3},",
            "\"skewed_beam_speedup\":{:.2},\"skewed_beam_candidates\":{},",
            "\"skewed_beam_evals_saved\":{},",
            "\"skewed_beam_pruned\":{},\"skewed_beam_prune_rate\":{:.4},",
        ),
        off.wall_ms,
        on.wall_ms,
        off.wall_ms / on.wall_ms.max(1e-9),
        off.candidates,
        on.evals_saved,
        skewed_pruned,
        skewed_prune_rate,
    ));
    eprintln!(
        "skewed-beam: {:.1} ms full -> {:.1} ms incremental, {} candidates, \
         pruned {skewed_pruned} (rate {skewed_prune_rate:.3})",
        off.wall_ms, on.wall_ms, off.candidates
    );

    // One extra (untimed) profiled run: a recorder rides down the beam
    // search and the pipeline profile — per-round spans, engine batch
    // counters, kernel wall times — is embedded in the bench JSON so a
    // regression can be read down to the phase that caused it.
    let recorder = obx_util::obs::Recorder::new();
    {
        let budget =
            obx_core::budget::SearchBudget::unlimited().with_recorder(Arc::clone(&recorder));
        let profiled = task
            .with_budget(budget)
            .with_engine(Arc::new(ScoringEngine::with_incremental(true)));
        let _phase = recorder.enter_phase("search");
        let _ = BeamSearch.explain_with_status(&profiled);
    }
    let profile = recorder.profile().to_json();

    let json = format!(
        "{{\"bench\":\"search\",\"radius\":2,\"n_students\":600,\"beam_width\":12,{fields}\"identical_output\":true,\"profile\":{profile}}}"
    );
    println!("{json}");

    // Resolve the workspace root from this crate's manifest dir so the
    // output lands in the same place regardless of the invocation cwd.
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = std::path::Path::new(root).join("BENCH_search.json");
    std::fs::write(&path, format!("{json}\n")).expect("write BENCH_search.json");
    eprintln!(
        "wrote {}",
        std::fs::canonicalize(&path).unwrap_or(path).display()
    );

    if beam_speedup < 2.0 {
        eprintln!("WARNING: beam speedup {beam_speedup:.2}x below the 2x acceptance target");
        std::process::exit(1);
    }
}

//! Text syntax for TBoxes.
//!
//! ```text
//! # declarations come first
//! concept Student Person Professor Course
//! role    studies likes teaches
//!
//! # axioms
//! Student < Person
//! exists(teaches) < Professor
//! Person < exists(inv(knows))     # error: knows undeclared
//! studies < likes
//! Student < not Course
//! studies < not hates             # role disjointness
//! funct teaches
//! funct inv(teaches)
//! ```
//!
//! Declarations are mandatory: every name must be introduced by a
//! `concept`/`role` line before use. This keeps concept/role namespaces
//! unambiguous and makes typos hard errors instead of silent new names.
//!
//! Two entry points: [`parse_tbox`] stops at the first problem, while
//! [`parse_tbox_diag`] records every problem as a positioned
//! [`Diagnostic`] (codes `OBX12x`), skips the offending line, and keeps
//! going.

// Parsers run on untrusted user input: they must never panic.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::expr::{BasicConcept, Role};
use crate::tbox::TBox;
use obx_util::diag::{col_of, Diagnostic, Diagnostics};
use std::fmt;

/// Errors from [`parse_tbox`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OntoParseError {
    /// 1-based line number.
    pub line: usize,
    /// 1-based character column; `0` means the whole line.
    pub col: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for OntoParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.col > 0 {
            write!(f, "line {}:{}: {}", self.line, self.col, self.msg)
        } else {
            write!(f, "line {}: {}", self.line, self.msg)
        }
    }
}

impl std::error::Error for OntoParseError {}

/// One line being parsed: its number and raw text, so errors about any
/// subslice of it can be positioned via [`col_of`].
#[derive(Clone, Copy)]
struct Ctx<'a> {
    line: usize,
    raw: &'a str,
}

impl Ctx<'_> {
    fn err(&self, sub: &str, msg: impl Into<String>) -> OntoParseError {
        OntoParseError {
            line: self.line,
            col: col_of(self.raw, sub),
            msg: msg.into(),
        }
    }
}

/// Either side of an inclusion, before kind resolution.
enum Side {
    Concept(BasicConcept),
    Role(Role),
}

fn parse_role(tbox: &TBox, ctx: Ctx<'_>, s: &str) -> Result<Role, OntoParseError> {
    let s = s.trim();
    if let Some(inner) = s.strip_prefix("inv(").and_then(|r| r.strip_suffix(')')) {
        let inner = inner.trim();
        let id = tbox
            .vocab()
            .get_role(inner)
            .ok_or_else(|| ctx.err(inner, format!("undeclared role `{inner}`")))?;
        Ok(Role::inv(id))
    } else {
        let id = tbox
            .vocab()
            .get_role(s)
            .ok_or_else(|| ctx.err(s, format!("undeclared role `{s}`")))?;
        Ok(Role::direct(id))
    }
}

fn parse_side(tbox: &TBox, ctx: Ctx<'_>, s: &str) -> Result<Side, OntoParseError> {
    let s = s.trim();
    if s.is_empty() {
        return Err(ctx.err(ctx.raw, "empty expression"));
    }
    if let Some(inner) = s.strip_prefix("exists(").and_then(|r| r.strip_suffix(')')) {
        return Ok(Side::Concept(BasicConcept::Exists(parse_role(
            tbox, ctx, inner,
        )?)));
    }
    if s.starts_with("inv(") {
        return Ok(Side::Role(parse_role(tbox, ctx, s)?));
    }
    if let Some(c) = tbox.vocab().get_concept(s) {
        return Ok(Side::Concept(BasicConcept::Atomic(c)));
    }
    if tbox.vocab().get_role(s).is_some() {
        return Ok(Side::Role(parse_role(tbox, ctx, s)?));
    }
    Err(ctx.err(s, format!("undeclared name `{s}`")))
}

/// How the driver reacts to one line's error: strict parsing propagates
/// it, diagnostic parsing records it and skips the line.
type Sink<'a> = dyn FnMut(OntoParseError) -> Result<(), OntoParseError> + 'a;

fn parse_line(tbox: &mut TBox, ctx: Ctx<'_>, line: &str) -> Result<(), OntoParseError> {
    if let Some(rest) = line.strip_prefix("concept ") {
        for name in rest.split_whitespace() {
            if tbox.vocab().get_role(name).is_some() {
                return Err(ctx.err(name, format!("`{name}` already declared as role")));
            }
            tbox.vocab_mut().concept(name);
        }
        return Ok(());
    }
    if let Some(rest) = line.strip_prefix("role ") {
        for name in rest.split_whitespace() {
            if tbox.vocab().get_concept(name).is_some() {
                return Err(ctx.err(name, format!("`{name}` already declared as concept")));
            }
            tbox.vocab_mut().role(name);
        }
        return Ok(());
    }
    if let Some(rest) = line.strip_prefix("funct ") {
        let role = parse_role(tbox, ctx, rest)?;
        tbox.funct(role);
        return Ok(());
    }
    let (lhs_s, rhs_s) = line
        .split_once('<')
        .ok_or_else(|| ctx.err(line, format!("expected `LHS < RHS`, got `{line}`")))?;
    let (negated, rhs_s) = match rhs_s.trim().strip_prefix("not ") {
        Some(rest) => (true, rest),
        None => (false, rhs_s.trim()),
    };
    let lhs = parse_side(tbox, ctx, lhs_s)?;
    let rhs = parse_side(tbox, ctx, rhs_s)?;
    match (lhs, rhs) {
        (Side::Concept(l), Side::Concept(r)) => {
            if negated {
                tbox.concept_disjoint(l, r);
            } else {
                tbox.concept_incl(l, r);
            }
            Ok(())
        }
        (Side::Role(l), Side::Role(r)) => {
            if negated {
                tbox.role_disjoint(l, r);
            } else {
                tbox.role_incl(l, r);
            }
            Ok(())
        }
        _ => Err(ctx.err(line, "inclusion mixes a concept with a role".to_string())),
    }
}

fn parse_tbox_with(text: &str, sink: &mut Sink<'_>) -> Result<TBox, OntoParseError> {
    let mut tbox = TBox::new();
    for (lineno, raw) in text.lines().enumerate() {
        let ctx = Ctx {
            line: lineno + 1,
            raw,
        };
        let line = match raw.find('#') {
            Some(i) => &raw[..i],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        if let Err(e) = parse_line(&mut tbox, ctx, line) {
            sink(e)?;
        }
    }
    Ok(tbox)
}

/// Parses the TBox text syntax described in the module docs, stopping at
/// the first error.
pub fn parse_tbox(text: &str) -> Result<TBox, OntoParseError> {
    parse_tbox_with(text, &mut Err)
}

/// Maps an [`OntoParseError`] to its diagnostic code and optional hint.
fn onto_code(e: &OntoParseError) -> (&'static str, Option<String>) {
    if e.msg.contains("undeclared") {
        (
            "OBX121",
            Some("introduce every name with a `concept`/`role` line before use".to_owned()),
        )
    } else if e.msg.contains("already declared") {
        ("OBX122", None)
    } else if e.msg.contains("expected `LHS < RHS`") {
        (
            "OBX123",
            Some("axioms are written `LHS < RHS` (add `not` for disjointness)".to_owned()),
        )
    } else if e.msg.contains("mixes") {
        ("OBX124", None)
    } else {
        ("OBX125", None)
    }
}

/// Best-effort TBox parse: every problem becomes a [`Diagnostic`]
/// (`OBX121`–`OBX125`) in `diags`, the offending line is skipped, and the
/// axioms that did parse are returned.
pub fn parse_tbox_diag(text: &str, file: &str, diags: &mut Diagnostics) -> TBox {
    let mut sink = |e: OntoParseError| -> Result<(), OntoParseError> {
        let (code, hint) = onto_code(&e);
        let mut d = Diagnostic::error(file, e.line, e.col, code, e.msg);
        if let Some(h) = hint {
            d = d.with_hint(h);
        }
        diags.push(d);
        Ok(())
    };
    // The sink never returns `Err`, so the driver cannot fail.
    parse_tbox_with(text, &mut sink).unwrap_or_default()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::expr::{ConceptRhs, RoleRhs};
    use crate::tbox::Axiom;

    const SAMPLE: &str = r#"
        # university ontology
        concept Student Person Professor Course
        role studies likes teaches

        Student < Person
        exists(teaches) < Professor
        Professor < exists(teaches)
        studies < likes
        Student < not Course
        studies < not teaches
        funct teaches
        funct inv(studies)
        Student < exists(inv(teaches))
    "#;

    #[test]
    fn parses_all_axiom_forms() {
        let tbox = parse_tbox(SAMPLE).unwrap();
        assert_eq!(tbox.len(), 9);
        let v = tbox.vocab();
        let student = BasicConcept::Atomic(v.get_concept("Student").unwrap());
        let person = BasicConcept::Atomic(v.get_concept("Person").unwrap());
        let teaches = Role::direct(v.get_role("teaches").unwrap());
        let studies = Role::direct(v.get_role("studies").unwrap());
        assert!(tbox
            .axioms()
            .contains(&Axiom::ConceptIncl(student, ConceptRhs::Basic(person))));
        assert!(tbox.axioms().contains(&Axiom::Funct(teaches)));
        assert!(tbox.axioms().contains(&Axiom::Funct(studies.inverted())));
        assert!(tbox.axioms().contains(&Axiom::ConceptIncl(
            student,
            ConceptRhs::Basic(BasicConcept::Exists(teaches.inverted()))
        )));
        assert!(tbox
            .axioms()
            .contains(&Axiom::RoleIncl(studies, RoleRhs::Neg(teaches))));
    }

    #[test]
    fn roundtrips_through_render() {
        let tbox = parse_tbox(SAMPLE).unwrap();
        let mut rendered = String::new();
        rendered.push_str("concept Student Person Professor Course\n");
        rendered.push_str("role studies likes teaches\n");
        rendered.push_str(&tbox.render());
        let reparsed = parse_tbox(&rendered).unwrap();
        assert_eq!(reparsed.len(), tbox.len());
        assert_eq!(reparsed.axioms(), tbox.axioms());
    }

    #[test]
    fn undeclared_names_are_errors() {
        let e = parse_tbox("Student < Person").unwrap_err();
        assert!(e.msg.contains("undeclared"));
        assert_eq!(e.line, 1);
        assert_eq!(e.col, 1, "points at the LHS name");
        let e = parse_tbox("role r\nr < s").unwrap_err();
        assert!(e.msg.contains("undeclared"));
        assert_eq!(e.line, 2);
        assert_eq!(e.col, 5, "points at `s`");
        let e = parse_tbox("concept A\nA < exists(r)").unwrap_err();
        assert!(e.msg.contains("undeclared role"));
        assert_eq!(e.col, 12, "points inside `exists(...)`");
    }

    #[test]
    fn kind_confusion_is_rejected() {
        let e = parse_tbox("concept A\nrole r\nA < r").unwrap_err();
        assert!(e.msg.contains("mixes"));
        let e = parse_tbox("concept A\nrole A").unwrap_err();
        assert!(e.msg.contains("already declared"));
        let e = parse_tbox("role r\nconcept r").unwrap_err();
        assert!(e.msg.contains("already declared"));
    }

    #[test]
    fn malformed_lines_are_errors() {
        assert!(parse_tbox("concept A\nA ⊑ A").is_err());
        assert!(parse_tbox("concept A\nA <").is_err());
        assert!(parse_tbox("funct ").is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let tbox = parse_tbox("# nothing\n\n   \nconcept A # trailing\n").unwrap();
        assert!(tbox.is_empty());
        assert!(tbox.vocab().get_concept("A").is_some());
    }

    #[test]
    fn diag_parse_collects_every_problem() {
        let mut diags = Diagnostics::new();
        let text = "concept A\nrole r\nA < B\nA ⊑ A\nA < r\nA < exists(r)";
        let tbox = parse_tbox_diag(text, "ontology.obx", &mut diags);
        // The one good axiom survives the three bad lines.
        assert_eq!(tbox.len(), 1);
        let codes: Vec<(&str, usize)> = diags.iter().map(|d| (d.code, d.line)).collect();
        assert_eq!(codes, vec![("OBX121", 3), ("OBX123", 4), ("OBX124", 5)]);
        assert!(diags.iter().all(|d| d.col > 0));
    }
}

//! Text syntax for TBoxes.
//!
//! ```text
//! # declarations come first
//! concept Student Person Professor Course
//! role    studies likes teaches
//!
//! # axioms
//! Student < Person
//! exists(teaches) < Professor
//! Person < exists(inv(knows))     # error: knows undeclared
//! studies < likes
//! Student < not Course
//! studies < not hates             # role disjointness
//! funct teaches
//! funct inv(teaches)
//! ```
//!
//! Declarations are mandatory: every name must be introduced by a
//! `concept`/`role` line before use. This keeps concept/role namespaces
//! unambiguous and makes typos hard errors instead of silent new names.

use crate::expr::{BasicConcept, Role};
use crate::tbox::TBox;
use std::fmt;

/// Errors from [`parse_tbox`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OntoParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for OntoParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for OntoParseError {}

fn err(line: usize, msg: impl Into<String>) -> OntoParseError {
    OntoParseError {
        line,
        msg: msg.into(),
    }
}

/// Either side of an inclusion, before kind resolution.
enum Side {
    Concept(BasicConcept),
    Role(Role),
}

fn parse_role(tbox: &TBox, line: usize, s: &str) -> Result<Role, OntoParseError> {
    let s = s.trim();
    if let Some(inner) = s.strip_prefix("inv(").and_then(|r| r.strip_suffix(')')) {
        let id = tbox
            .vocab()
            .get_role(inner.trim())
            .ok_or_else(|| err(line, format!("undeclared role `{}`", inner.trim())))?;
        Ok(Role::inv(id))
    } else {
        let id = tbox
            .vocab()
            .get_role(s)
            .ok_or_else(|| err(line, format!("undeclared role `{s}`")))?;
        Ok(Role::direct(id))
    }
}

fn parse_side(tbox: &TBox, line: usize, s: &str) -> Result<Side, OntoParseError> {
    let s = s.trim();
    if s.is_empty() {
        return Err(err(line, "empty expression"));
    }
    if let Some(inner) = s.strip_prefix("exists(").and_then(|r| r.strip_suffix(')')) {
        return Ok(Side::Concept(BasicConcept::Exists(parse_role(
            tbox, line, inner,
        )?)));
    }
    if s.starts_with("inv(") {
        return Ok(Side::Role(parse_role(tbox, line, s)?));
    }
    if let Some(c) = tbox.vocab().get_concept(s) {
        return Ok(Side::Concept(BasicConcept::Atomic(c)));
    }
    if tbox.vocab().get_role(s).is_some() {
        return Ok(Side::Role(parse_role(tbox, line, s)?));
    }
    Err(err(line, format!("undeclared name `{s}`")))
}

/// Parses the TBox text syntax described in the module docs.
pub fn parse_tbox(text: &str) -> Result<TBox, OntoParseError> {
    let mut tbox = TBox::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line_no = lineno + 1;
        let line = match raw.find('#') {
            Some(i) => &raw[..i],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("concept ") {
            for name in rest.split_whitespace() {
                if tbox.vocab().get_role(name).is_some() {
                    return Err(err(line_no, format!("`{name}` already declared as role")));
                }
                tbox.vocab_mut().concept(name);
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("role ") {
            for name in rest.split_whitespace() {
                if tbox.vocab().get_concept(name).is_some() {
                    return Err(err(line_no, format!("`{name}` already declared as concept")));
                }
                tbox.vocab_mut().role(name);
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("funct ") {
            let role = parse_role(&tbox, line_no, rest)?;
            tbox.funct(role);
            continue;
        }
        let (lhs_s, rhs_s) = line
            .split_once('<')
            .ok_or_else(|| err(line_no, format!("expected `LHS < RHS`, got `{line}`")))?;
        let (negated, rhs_s) = match rhs_s.trim().strip_prefix("not ") {
            Some(rest) => (true, rest),
            None => (false, rhs_s.trim()),
        };
        let lhs = parse_side(&tbox, line_no, lhs_s)?;
        let rhs = parse_side(&tbox, line_no, rhs_s)?;
        match (lhs, rhs) {
            (Side::Concept(l), Side::Concept(r)) => {
                if negated {
                    tbox.concept_disjoint(l, r);
                } else {
                    tbox.concept_incl(l, r);
                }
            }
            (Side::Role(l), Side::Role(r)) => {
                if negated {
                    tbox.role_disjoint(l, r);
                } else {
                    tbox.role_incl(l, r);
                }
            }
            _ => {
                return Err(err(
                    line_no,
                    "inclusion mixes a concept with a role".to_string(),
                ))
            }
        }
    }
    Ok(tbox)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{ConceptRhs, RoleRhs};
    use crate::tbox::Axiom;

    const SAMPLE: &str = r#"
        # university ontology
        concept Student Person Professor Course
        role studies likes teaches

        Student < Person
        exists(teaches) < Professor
        Professor < exists(teaches)
        studies < likes
        Student < not Course
        studies < not teaches
        funct teaches
        funct inv(studies)
        Student < exists(inv(teaches))
    "#;

    #[test]
    fn parses_all_axiom_forms() {
        let tbox = parse_tbox(SAMPLE).unwrap();
        assert_eq!(tbox.len(), 9);
        let v = tbox.vocab();
        let student = BasicConcept::Atomic(v.get_concept("Student").unwrap());
        let person = BasicConcept::Atomic(v.get_concept("Person").unwrap());
        let teaches = Role::direct(v.get_role("teaches").unwrap());
        let studies = Role::direct(v.get_role("studies").unwrap());
        assert!(tbox
            .axioms()
            .contains(&Axiom::ConceptIncl(student, ConceptRhs::Basic(person))));
        assert!(tbox.axioms().contains(&Axiom::Funct(teaches)));
        assert!(tbox.axioms().contains(&Axiom::Funct(studies.inverted())));
        assert!(tbox.axioms().contains(&Axiom::ConceptIncl(
            student,
            ConceptRhs::Basic(BasicConcept::Exists(teaches.inverted()))
        )));
        assert!(tbox
            .axioms()
            .contains(&Axiom::RoleIncl(studies, RoleRhs::Neg(teaches))));
    }

    #[test]
    fn roundtrips_through_render() {
        let tbox = parse_tbox(SAMPLE).unwrap();
        let mut rendered = String::new();
        rendered.push_str("concept Student Person Professor Course\n");
        rendered.push_str("role studies likes teaches\n");
        rendered.push_str(&tbox.render());
        let reparsed = parse_tbox(&rendered).unwrap();
        assert_eq!(reparsed.len(), tbox.len());
        assert_eq!(reparsed.axioms(), tbox.axioms());
    }

    #[test]
    fn undeclared_names_are_errors() {
        let e = parse_tbox("Student < Person").unwrap_err();
        assert!(e.msg.contains("undeclared"));
        assert_eq!(e.line, 1);
        let e = parse_tbox("role r\nr < s").unwrap_err();
        assert!(e.msg.contains("undeclared"));
        assert_eq!(e.line, 2);
        let e = parse_tbox("concept A\nA < exists(r)").unwrap_err();
        assert!(e.msg.contains("undeclared role"));
    }

    #[test]
    fn kind_confusion_is_rejected() {
        let e = parse_tbox("concept A\nrole r\nA < r").unwrap_err();
        assert!(e.msg.contains("mixes"));
        let e = parse_tbox("concept A\nrole A").unwrap_err();
        assert!(e.msg.contains("already declared"));
        let e = parse_tbox("role r\nconcept r").unwrap_err();
        assert!(e.msg.contains("already declared"));
    }

    #[test]
    fn malformed_lines_are_errors() {
        assert!(parse_tbox("concept A\nA ⊑ A").is_err());
        assert!(parse_tbox("concept A\nA <").is_err());
        assert!(parse_tbox("funct ").is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let tbox = parse_tbox("# nothing\n\n   \nconcept A # trailing\n").unwrap();
        assert!(tbox.is_empty());
        assert!(tbox.vocab().get_concept("A").is_some());
    }
}

//! ABoxes: extensional assertions over an ontology vocabulary.
//!
//! An ABox is generic over the individual type `I`:
//!
//! * in the *virtual ABox* retrieved through the mapping, individuals are
//!   source constants (`obx_srcdb::Const`);
//! * during the chase used by the materialization engine, individuals are
//!   constants-or-labelled-nulls.
//!
//! The crate only requires `I: Copy + Eq + Hash + Ord` so both fit.

use crate::expr::{BasicConcept, Role};
use crate::reasoner::Reasoner;
use crate::vocab::{ConceptId, OntoVocab, RoleId};
use obx_util::{FxHashMap, FxHashSet};
use std::hash::Hash;

/// A set of concept and role assertions.
#[derive(Debug, Clone)]
pub struct ABox<I> {
    concept_asserts: FxHashSet<(ConceptId, I)>,
    role_asserts: FxHashSet<(RoleId, I, I)>,
    /// Per-individual incident assertions, for instance checking.
    by_ind_concepts: FxHashMap<I, Vec<ConceptId>>,
    by_ind_roles_out: FxHashMap<I, Vec<(RoleId, I)>>,
    by_ind_roles_in: FxHashMap<I, Vec<(RoleId, I)>>,
}

impl<I> Default for ABox<I> {
    fn default() -> Self {
        Self {
            concept_asserts: FxHashSet::default(),
            role_asserts: FxHashSet::default(),
            by_ind_concepts: FxHashMap::default(),
            by_ind_roles_out: FxHashMap::default(),
            by_ind_roles_in: FxHashMap::default(),
        }
    }
}

/// A consistency violation found by [`ABox::check_consistency`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AboxViolation<I> {
    /// An individual is an instance of two disjoint basic concepts.
    DisjointConcepts {
        /// The individual.
        ind: I,
        /// First derived membership.
        left: BasicConcept,
        /// Second derived membership (disjoint with `left`).
        right: BasicConcept,
    },
    /// A pair of individuals is in two disjoint roles.
    DisjointRoles {
        /// The pair (subject, object).
        pair: (I, I),
        /// First derived role membership.
        left: Role,
        /// Second derived role membership (disjoint with `left`).
        right: Role,
    },
    /// A functional role with two distinct fillers.
    FunctViolation {
        /// The subject with multiple fillers.
        ind: I,
        /// The functional role.
        role: Role,
        /// Two distinct fillers.
        fillers: (I, I),
    },
}

impl<I: Copy + Eq + Hash + Ord> ABox<I> {
    /// Creates an empty ABox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Asserts `A(ind)`. Returns `true` if new.
    pub fn assert_concept(&mut self, concept: ConceptId, ind: I) -> bool {
        if self.concept_asserts.insert((concept, ind)) {
            self.by_ind_concepts.entry(ind).or_default().push(concept);
            true
        } else {
            false
        }
    }

    /// Asserts `P(subj, obj)`. Returns `true` if new.
    pub fn assert_role(&mut self, role: RoleId, subj: I, obj: I) -> bool {
        if self.role_asserts.insert((role, subj, obj)) {
            self.by_ind_roles_out
                .entry(subj)
                .or_default()
                .push((role, obj));
            self.by_ind_roles_in
                .entry(obj)
                .or_default()
                .push((role, subj));
            true
        } else {
            false
        }
    }

    /// Whether `A(ind)` is asserted (not derived).
    pub fn has_concept(&self, concept: ConceptId, ind: I) -> bool {
        self.concept_asserts.contains(&(concept, ind))
    }

    /// Whether `P(subj, obj)` is asserted (not derived).
    pub fn has_role(&self, role: RoleId, subj: I, obj: I) -> bool {
        self.role_asserts.contains(&(role, subj, obj))
    }

    /// All concept assertions.
    pub fn concept_assertions(&self) -> impl Iterator<Item = (ConceptId, I)> + '_ {
        self.concept_asserts.iter().copied()
    }

    /// All role assertions.
    pub fn role_assertions(&self) -> impl Iterator<Item = (RoleId, I, I)> + '_ {
        self.role_asserts.iter().copied()
    }

    /// Total number of assertions.
    pub fn len(&self) -> usize {
        self.concept_asserts.len() + self.role_asserts.len()
    }

    /// Whether there is no assertion.
    pub fn is_empty(&self) -> bool {
        self.concept_asserts.is_empty() && self.role_asserts.is_empty()
    }

    /// All individuals mentioned anywhere.
    pub fn individuals(&self) -> FxHashSet<I> {
        let mut out = FxHashSet::default();
        for &(_, i) in &self.concept_asserts {
            out.insert(i);
        }
        for &(_, s, o) in &self.role_asserts {
            out.insert(s);
            out.insert(o);
        }
        out
    }

    /// The basic concepts `ind` *syntactically* belongs to: asserted atomic
    /// concepts plus `∃P` / `∃P⁻` induced by incident role assertions
    /// (before any TBox closure).
    pub fn syntactic_memberships(&self, ind: I) -> Vec<BasicConcept> {
        let mut out: Vec<BasicConcept> = Vec::new();
        if let Some(cs) = self.by_ind_concepts.get(&ind) {
            out.extend(cs.iter().map(|&c| BasicConcept::Atomic(c)));
        }
        if let Some(rs) = self.by_ind_roles_out.get(&ind) {
            out.extend(rs.iter().map(|&(r, _)| BasicConcept::exists(r)));
        }
        if let Some(rs) = self.by_ind_roles_in.get(&ind) {
            out.extend(rs.iter().map(|&(r, _)| BasicConcept::exists_inv(r)));
        }
        out.sort();
        out.dedup();
        out
    }

    /// The basic concepts `ind` belongs to *after* TBox closure (instance
    /// checking for basic concepts).
    pub fn derived_memberships(&self, reasoner: &Reasoner, ind: I) -> FxHashSet<BasicConcept> {
        let mut out = FxHashSet::default();
        for b in self.syntactic_memberships(ind) {
            out.extend(reasoner.subsumers(b));
        }
        out
    }

    /// The role expressions holding for the ordered pair `(s, o)` after
    /// closure under role subsumption.
    pub fn derived_role_memberships(&self, reasoner: &Reasoner, s: I, o: I) -> FxHashSet<Role> {
        let mut out = FxHashSet::default();
        if let Some(rs) = self.by_ind_roles_out.get(&s) {
            for &(r, obj) in rs {
                if obj == o {
                    out.extend(reasoner.role_subsumers(Role::direct(r)));
                }
            }
        }
        if let Some(rs) = self.by_ind_roles_in.get(&s) {
            for &(r, subj) in rs {
                if subj == o {
                    out.extend(reasoner.role_subsumers(Role::inv(r)));
                }
            }
        }
        out
    }

    /// Checks the ABox against the TBox's negative inclusions and
    /// functionality assertions. Returns every violation found (empty =
    /// consistent). Sound and complete for DL-Lite_R + functionality:
    /// inconsistency can always be traced to a pair of derived memberships
    /// clashing with a (derived) negative axiom, or to a functionality
    /// violation.
    pub fn check_consistency(&self, reasoner: &Reasoner) -> Vec<AboxViolation<I>> {
        let mut out = Vec::new();
        // Concept clashes per individual.
        for ind in self.individuals() {
            let mems: Vec<BasicConcept> = {
                let mut v: Vec<BasicConcept> = self
                    .derived_memberships(reasoner, ind)
                    .into_iter()
                    .collect();
                v.sort();
                v
            };
            for (i, &l) in mems.iter().enumerate() {
                for &r in &mems[i..] {
                    if reasoner.disjoint(l, r) {
                        out.push(AboxViolation::DisjointConcepts {
                            ind,
                            left: l,
                            right: r,
                        });
                    }
                }
            }
        }
        // Role clashes per asserted pair.
        let mut seen_pairs: FxHashSet<(I, I)> = FxHashSet::default();
        for &(_, s, o) in &self.role_asserts {
            if !seen_pairs.insert((s, o)) {
                continue;
            }
            let mems: Vec<Role> = {
                let mut v: Vec<Role> = self
                    .derived_role_memberships(reasoner, s, o)
                    .into_iter()
                    .collect();
                v.sort();
                v
            };
            for (i, &l) in mems.iter().enumerate() {
                for &r in &mems[i..] {
                    if reasoner.roles_disjoint(l, r) {
                        out.push(AboxViolation::DisjointRoles {
                            pair: (s, o),
                            left: l,
                            right: r,
                        });
                    }
                }
            }
        }
        // Functionality.
        for role in reasoner.functional_roles() {
            let mut fillers: FxHashMap<I, I> = FxHashMap::default();
            for &(p, s, o) in &self.role_asserts {
                // Collect (subject, filler) pairs of every asserted role
                // whose closure includes `role`.
                for sup in reasoner.role_subsumers(Role::direct(p)) {
                    let (subj, obj) = if sup == role {
                        (s, o)
                    } else if sup == role.inverted() {
                        (o, s)
                    } else {
                        continue;
                    };
                    match fillers.get(&subj) {
                        None => {
                            fillers.insert(subj, obj);
                        }
                        Some(&prev) if prev != obj => {
                            out.push(AboxViolation::FunctViolation {
                                ind: subj,
                                role,
                                fillers: (prev.min(obj), prev.max(obj)),
                            });
                        }
                        Some(_) => {}
                    }
                }
            }
        }
        out
    }

    /// Renders the ABox for diagnostics.
    pub fn render(&self, vocab: &OntoVocab, mut ind: impl FnMut(I) -> String) -> String {
        let mut lines: Vec<String> = Vec::with_capacity(self.len());
        for &(c, i) in &self.concept_asserts {
            lines.push(format!("{}({})", vocab.concept_name(c), ind(i)));
        }
        for &(r, s, o) in &self.role_asserts {
            lines.push(format!("{}({}, {})", vocab.role_name(r), ind(s), ind(o)));
        }
        lines.sort();
        let mut out = lines.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tbox::TBox;
    use crate::vocab::OntoVocab;

    type Ind = u32;

    fn tbox() -> (TBox, BasicConcept, BasicConcept, Role, Role) {
        let mut vocab = OntoVocab::new();
        let student = BasicConcept::Atomic(vocab.concept("Student"));
        let course = BasicConcept::Atomic(vocab.concept("Course"));
        let studies = Role::direct(vocab.role("studies"));
        let likes = Role::direct(vocab.role("likes"));
        let mut tbox = TBox::with_vocab(vocab);
        tbox.role_incl(studies, likes);
        tbox.concept_disjoint(student, course);
        (tbox, student, course, studies, likes)
    }

    fn cid(b: BasicConcept) -> ConceptId {
        match b {
            BasicConcept::Atomic(c) => c,
            _ => panic!("atomic expected"),
        }
    }

    #[test]
    fn assertions_and_dedup() {
        let (tbox, student, ..) = tbox();
        let _ = &tbox;
        let mut abox: ABox<Ind> = ABox::new();
        assert!(abox.assert_concept(cid(student), 1));
        assert!(!abox.assert_concept(cid(student), 1));
        assert_eq!(abox.len(), 1);
        assert!(abox.has_concept(cid(student), 1));
        assert!(!abox.has_concept(cid(student), 2));
    }

    #[test]
    fn syntactic_memberships_include_exists() {
        let (tbox, student, _, studies, _) = tbox();
        let _ = &tbox;
        let mut abox: ABox<Ind> = ABox::new();
        abox.assert_concept(cid(student), 1);
        abox.assert_role(studies.id, 1, 2);
        let m1 = abox.syntactic_memberships(1);
        assert!(m1.contains(&student));
        assert!(m1.contains(&BasicConcept::exists(studies.id)));
        let m2 = abox.syntactic_memberships(2);
        assert!(m2.contains(&BasicConcept::exists_inv(studies.id)));
        assert!(abox.syntactic_memberships(99).is_empty());
    }

    #[test]
    fn derived_memberships_close_under_tbox() {
        let (tbox, _, _, studies, likes) = tbox();
        let reasoner = Reasoner::build(&tbox);
        let mut abox: ABox<Ind> = ABox::new();
        abox.assert_role(studies.id, 1, 2);
        let m = abox.derived_memberships(&reasoner, 1);
        // studies ⊑ likes lifts ∃studies to ∃likes.
        assert!(m.contains(&BasicConcept::Exists(likes)));
        let roles = abox.derived_role_memberships(&reasoner, 1, 2);
        assert!(roles.contains(&likes));
        // And the inverse direction for (2,1).
        let roles_inv = abox.derived_role_memberships(&reasoner, 2, 1);
        assert!(roles_inv.contains(&likes.inverted()));
    }

    #[test]
    fn consistent_abox_has_no_violations() {
        let (tbox, student, _, studies, _) = tbox();
        let reasoner = Reasoner::build(&tbox);
        let mut abox: ABox<Ind> = ABox::new();
        abox.assert_concept(cid(student), 1);
        abox.assert_role(studies.id, 1, 2);
        assert!(abox.check_consistency(&reasoner).is_empty());
    }

    #[test]
    fn disjointness_violation_detected() {
        let (tbox, student, course, ..) = tbox();
        let reasoner = Reasoner::build(&tbox);
        let mut abox: ABox<Ind> = ABox::new();
        abox.assert_concept(cid(student), 7);
        abox.assert_concept(cid(course), 7);
        let violations = abox.check_consistency(&reasoner);
        assert!(violations
            .iter()
            .any(|v| matches!(v, AboxViolation::DisjointConcepts { ind: 7, .. })));
    }

    #[test]
    fn role_disjointness_violation_detected() {
        let (mut tbox, _, _, studies, _) = tbox();
        let hates = Role::direct(tbox.vocab_mut().role("hates"));
        tbox.role_disjoint(studies, hates);
        let reasoner = Reasoner::build(&tbox);
        let mut abox: ABox<Ind> = ABox::new();
        abox.assert_role(studies.id, 1, 2);
        abox.assert_role(hates.id, 1, 2);
        let violations = abox.check_consistency(&reasoner);
        assert!(violations
            .iter()
            .any(|v| matches!(v, AboxViolation::DisjointRoles { pair: (1, 2), .. })));
    }

    #[test]
    fn functionality_violation_detected_including_through_subroles() {
        let (mut tbox, _, _, studies, likes) = tbox();
        tbox.funct(likes);
        let reasoner = Reasoner::build(&tbox);
        let mut abox: ABox<Ind> = ABox::new();
        // studies ⊑ likes and (funct likes): 1 likes 2 (via studies) and 3.
        abox.assert_role(studies.id, 1, 2);
        abox.assert_role(likes.id, 1, 3);
        let violations = abox.check_consistency(&reasoner);
        assert!(violations.iter().any(|v| matches!(
            v,
            AboxViolation::FunctViolation {
                ind: 1,
                fillers: (2, 3),
                ..
            }
        )));
        // A single filler asserted through both roles is fine.
        let mut ok: ABox<Ind> = ABox::new();
        ok.assert_role(studies.id, 1, 2);
        ok.assert_role(likes.id, 1, 2);
        assert!(ok.check_consistency(&reasoner).is_empty());
    }

    #[test]
    fn inverse_functionality() {
        let (mut tbox, _, _, studies, _) = tbox();
        tbox.funct(studies.inverted());
        let reasoner = Reasoner::build(&tbox);
        let mut abox: ABox<Ind> = ABox::new();
        // (funct studies⁻): no individual may be studied-by two subjects.
        abox.assert_role(studies.id, 1, 9);
        abox.assert_role(studies.id, 2, 9);
        let violations = abox.check_consistency(&reasoner);
        assert!(violations.iter().any(|v| matches!(
            v,
            AboxViolation::FunctViolation {
                ind: 9,
                fillers: (1, 2),
                ..
            }
        )));
    }

    #[test]
    fn individuals_and_render() {
        let (tbox, student, _, studies, _) = tbox();
        let mut abox: ABox<Ind> = ABox::new();
        abox.assert_concept(cid(student), 1);
        abox.assert_role(studies.id, 1, 2);
        let inds = abox.individuals();
        assert_eq!(inds.len(), 2);
        let rendered = abox.render(tbox.vocab(), |i| format!("i{i}"));
        assert!(rendered.contains("Student(i1)"));
        assert!(rendered.contains("studies(i1, i2)"));
    }
}

//! `obx-ontology` — the ontology layer `O` of an OBDM specification.
//!
//! The paper assumes `O` is "formulated in a Description Logic … so as to
//! take advantage of various reasoning capabilities" (§1) and, like all OBDM
//! work from the same group, the tractable *DL-Lite* family is the intended
//! instantiation (§2 cites DL-Lite_A). No mature DL reasoner exists as a
//! Rust crate, so this crate implements **DL-Lite_R with functionality
//! assertions** (i.e. the core of DL-Lite_A without value domains) from
//! scratch:
//!
//! * [`vocab`] — interned concept and role names;
//! * [`expr`] — role expressions (`R`, `R⁻`) and basic concepts
//!   (`A`, `∃R`, `∃R⁻`);
//! * [`tbox`] — TBox axioms: positive/negative concept and role inclusions
//!   and functionality assertions;
//! * [`reasoner`] — saturation-based TBox reasoning: subsumption closure,
//!   disjointness closure, unsatisfiable-concept detection, classification
//!   (direct subsumers, used by the explanation search to climb the
//!   hierarchy);
//! * [`abox`] — ABoxes generic over the individual type (source constants
//!   in the virtual ABox; constants-or-nulls during the chase), with
//!   consistency checking against a TBox;
//! * [`parse`] — a small text syntax (`studies < likes`,
//!   `exists(teaches) < Professor`, `Student < not Course`, `funct inv(r)`).

#![warn(missing_docs)]

pub mod abox;
pub mod expr;
pub mod parse;
pub mod reasoner;
pub mod tbox;
pub mod vocab;

pub use abox::{ABox, AboxViolation};
pub use expr::{BasicConcept, ConceptRhs, Role, RoleRhs};
pub use parse::{parse_tbox, parse_tbox_diag, OntoParseError};
pub use reasoner::Reasoner;
pub use tbox::{Axiom, TBox};
pub use vocab::{ConceptId, OntoVocab, RoleId};

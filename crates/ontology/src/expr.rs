//! DL-Lite concept and role expressions.
//!
//! DL-Lite_R grammar (as in Calvanese et al., "Tractable Reasoning and
//! Efficient Query Answering in Description Logics: The DL-Lite Family"):
//!
//! ```text
//! R ::= P | P⁻                  (role expressions)
//! B ::= A | ∃R                  (basic concepts)
//! C ::= B | ¬B                  (general concepts, RHS only)
//! E ::= R | ¬R                  (general roles, RHS only)
//! ```

use crate::vocab::ConceptId;
use crate::vocab::{OntoVocab, RoleId};

/// A role expression: an atomic role `P` or its inverse `P⁻`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Role {
    /// The atomic role name.
    pub id: RoleId,
    /// Whether this is the inverse `P⁻`.
    pub inverse: bool,
}

impl Role {
    /// The direct role `P`.
    pub fn direct(id: RoleId) -> Self {
        Self { id, inverse: false }
    }

    /// The inverse role `P⁻`.
    pub fn inv(id: RoleId) -> Self {
        Self { id, inverse: true }
    }

    /// The inverse of this expression (`(P⁻)⁻ = P`).
    pub fn inverted(self) -> Self {
        Self {
            id: self.id,
            inverse: !self.inverse,
        }
    }

    /// Renders like `studies` or `inv(studies)`.
    pub fn render(&self, vocab: &OntoVocab) -> String {
        if self.inverse {
            format!("inv({})", vocab.role_name(self.id))
        } else {
            vocab.role_name(self.id).to_owned()
        }
    }
}

/// A basic concept: atomic `A`, or an unqualified existential `∃R`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum BasicConcept {
    /// An atomic concept name.
    Atomic(ConceptId),
    /// `∃R` — things with at least one `R`-successor.
    Exists(Role),
}

impl BasicConcept {
    /// `∃P` for an atomic role.
    pub fn exists(id: RoleId) -> Self {
        BasicConcept::Exists(Role::direct(id))
    }

    /// `∃P⁻` for an atomic role.
    pub fn exists_inv(id: RoleId) -> Self {
        BasicConcept::Exists(Role::inv(id))
    }

    /// Renders like `Student`, `exists(studies)`, `exists(inv(studies))`.
    pub fn render(&self, vocab: &OntoVocab) -> String {
        match self {
            BasicConcept::Atomic(c) => vocab.concept_name(*c).to_owned(),
            BasicConcept::Exists(r) => format!("exists({})", r.render(vocab)),
        }
    }
}

/// The right-hand side of a concept inclusion: `B` or `¬B`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ConceptRhs {
    /// Positive inclusion RHS.
    Basic(BasicConcept),
    /// Negative inclusion RHS (disjointness).
    Neg(BasicConcept),
}

impl ConceptRhs {
    /// Renders like `Person` or `not Person`.
    pub fn render(&self, vocab: &OntoVocab) -> String {
        match self {
            ConceptRhs::Basic(b) => b.render(vocab),
            ConceptRhs::Neg(b) => format!("not {}", b.render(vocab)),
        }
    }
}

/// The right-hand side of a role inclusion: `R` or `¬R`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RoleRhs {
    /// Positive inclusion RHS.
    Role(Role),
    /// Negative inclusion RHS (role disjointness).
    Neg(Role),
}

impl RoleRhs {
    /// Renders like `likes` or `not likes`.
    pub fn render(&self, vocab: &OntoVocab) -> String {
        match self {
            RoleRhs::Role(r) => r.render(vocab),
            RoleRhs::Neg(r) => format!("not {}", r.render(vocab)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn role_inversion_is_involutive() {
        let mut v = OntoVocab::new();
        let s = v.role("studies");
        let r = Role::direct(s);
        assert_eq!(r.inverted().inverted(), r);
        assert_eq!(r.inverted(), Role::inv(s));
    }

    #[test]
    fn rendering() {
        let mut v = OntoVocab::new();
        let stu = v.concept("Student");
        let s = v.role("studies");
        assert_eq!(BasicConcept::Atomic(stu).render(&v), "Student");
        assert_eq!(BasicConcept::exists(s).render(&v), "exists(studies)");
        assert_eq!(
            BasicConcept::exists_inv(s).render(&v),
            "exists(inv(studies))"
        );
        assert_eq!(
            ConceptRhs::Neg(BasicConcept::Atomic(stu)).render(&v),
            "not Student"
        );
        assert_eq!(RoleRhs::Neg(Role::direct(s)).render(&v), "not studies");
    }
}

//! The ontology vocabulary (alphabet): atomic concept and role names.

use obx_util::{Interner, Symbol};
use std::fmt;

/// An atomic concept name (e.g. `Student`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConceptId(pub Symbol);

impl fmt::Debug for ConceptId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "concept#{}", self.0 .0)
    }
}

/// An atomic role name (e.g. `studies`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RoleId(pub Symbol);

impl fmt::Debug for RoleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "role#{}", self.0 .0)
    }
}

/// The alphabet of an ontology: two disjoint interned name spaces.
#[derive(Default, Debug)]
pub struct OntoVocab {
    concepts: Interner,
    roles: Interner,
}

impl OntoVocab {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares (or retrieves) a concept name.
    pub fn concept(&mut self, name: &str) -> ConceptId {
        ConceptId(self.concepts.intern(name))
    }

    /// Declares (or retrieves) a role name.
    pub fn role(&mut self, name: &str) -> RoleId {
        RoleId(self.roles.intern(name))
    }

    /// Looks up a concept without declaring it.
    pub fn get_concept(&self, name: &str) -> Option<ConceptId> {
        self.concepts.get(name).map(ConceptId)
    }

    /// Looks up a role without declaring it.
    pub fn get_role(&self, name: &str) -> Option<RoleId> {
        self.roles.get(name).map(RoleId)
    }

    /// The name of a concept.
    pub fn concept_name(&self, c: ConceptId) -> &str {
        self.concepts.resolve(c.0)
    }

    /// The name of a role.
    pub fn role_name(&self, r: RoleId) -> &str {
        self.roles.resolve(r.0)
    }

    /// Number of declared concepts.
    pub fn num_concepts(&self) -> usize {
        self.concepts.len()
    }

    /// Number of declared roles.
    pub fn num_roles(&self) -> usize {
        self.roles.len()
    }

    /// All declared concept ids.
    pub fn concept_ids(&self) -> impl Iterator<Item = ConceptId> + '_ {
        self.concepts.iter().map(|(s, _)| ConceptId(s))
    }

    /// All declared role ids.
    pub fn role_ids(&self) -> impl Iterator<Item = RoleId> + '_ {
        self.roles.iter().map(|(s, _)| RoleId(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concepts_and_roles_are_separate_namespaces() {
        let mut v = OntoVocab::new();
        let c = v.concept("thing");
        let r = v.role("thing");
        // Same string, different namespaces: both resolve independently.
        assert_eq!(v.concept_name(c), "thing");
        assert_eq!(v.role_name(r), "thing");
        assert_eq!(v.num_concepts(), 1);
        assert_eq!(v.num_roles(), 1);
    }

    #[test]
    fn get_does_not_declare() {
        let mut v = OntoVocab::new();
        assert!(v.get_concept("Student").is_none());
        let c = v.concept("Student");
        assert_eq!(v.get_concept("Student"), Some(c));
        assert!(v.get_role("Student").is_none());
    }

    #[test]
    fn id_iterators_enumerate_all() {
        let mut v = OntoVocab::new();
        let a = v.concept("A");
        let b = v.concept("B");
        let r = v.role("r");
        assert_eq!(v.concept_ids().collect::<Vec<_>>(), vec![a, b]);
        assert_eq!(v.role_ids().collect::<Vec<_>>(), vec![r]);
    }
}

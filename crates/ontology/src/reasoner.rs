//! Saturation-based TBox reasoning for DL-Lite_R.
//!
//! The reasoner precomputes, once per TBox:
//!
//! * the reflexive–transitive **subsumption closure** over role expressions
//!   (`R ⊑* S`, closed under inverses: `R ⊑ S ⟹ R⁻ ⊑ S⁻`);
//! * the reflexive–transitive subsumption closure over **basic concepts**,
//!   where role subsumption induces `∃R ⊑ ∃S`;
//! * the **disjointness closure** for concepts and roles (a negative
//!   inclusion `B ⊑ ¬B'` propagates down both subsumption cones);
//! * the set of **unsatisfiable** basic concepts (`B` disjoint from itself).
//!
//! These are the classical polynomial DL-Lite TBox services; every
//! downstream component (instance checking, ABox consistency, the chase,
//! the hierarchy-climbing generalization operator in the explanation
//! search) queries this structure.

use crate::expr::{BasicConcept, ConceptRhs, Role, RoleRhs};
use crate::tbox::{Axiom, TBox};
use obx_util::fixpoint::saturate;
use obx_util::{FxHashMap, FxHashSet};

/// Precomputed reasoning tables for one TBox.
#[derive(Debug)]
pub struct Reasoner {
    /// `concept_subs[B]` = all `S` with `B ⊑* S` (includes `B`).
    concept_subs: FxHashMap<BasicConcept, FxHashSet<BasicConcept>>,
    /// `role_subs[R]` = all `S` with `R ⊑* S` (includes `R`).
    role_subs: FxHashMap<Role, FxHashSet<Role>>,
    /// Symmetric concept disjointness (both orientations stored).
    concept_disj: FxHashSet<(BasicConcept, BasicConcept)>,
    /// Symmetric role disjointness (both orientations stored).
    role_disj: FxHashSet<(Role, Role)>,
    /// Basic concepts that can have no instance in any model.
    unsat: FxHashSet<BasicConcept>,
    /// Functional role expressions (as asserted).
    functional: FxHashSet<Role>,
}

fn transitive_closure<T: Copy + Eq + std::hash::Hash>(
    nodes: &[T],
    edges: &FxHashMap<T, Vec<T>>,
) -> FxHashMap<T, FxHashSet<T>> {
    // subs[x] = {y | x ->* y}, reflexive. Saturated by rounds; the node and
    // edge counts are both O(|TBox|), so this is at worst cubic on tiny
    // inputs and in practice converges in hierarchy-depth rounds.
    let mut subs: FxHashMap<T, FxHashSet<T>> = nodes
        .iter()
        .map(|&n| (n, std::iter::once(n).collect::<FxHashSet<T>>()))
        .collect();
    let budget = nodes.len() + 2;
    saturate("subsumption closure", budget, &mut subs, |subs| {
        let mut changed = false;
        for &n in nodes {
            // successors of everything currently reachable from n
            let reach: Vec<T> = subs[&n].iter().copied().collect();
            let mut add: Vec<T> = Vec::new();
            for m in reach {
                if let Some(next) = edges.get(&m) {
                    for &t in next {
                        if !subs[&n].contains(&t) {
                            add.push(t);
                        }
                    }
                }
            }
            if !add.is_empty() {
                let entry = subs.get_mut(&n).expect("node present");
                for t in add {
                    changed |= entry.insert(t);
                }
            }
        }
        changed
    })
    .expect("closure over a finite graph terminates");
    subs
}

impl Reasoner {
    /// Builds the reasoning tables for `tbox`.
    pub fn build(tbox: &TBox) -> Self {
        let roles = tbox.all_roles();
        let concepts = tbox.all_basic_concepts();

        // --- role subsumption ---
        let mut role_edges: FxHashMap<Role, Vec<Role>> = FxHashMap::default();
        for ax in tbox.axioms() {
            if let Axiom::RoleIncl(lhs, RoleRhs::Role(rhs)) = ax {
                role_edges.entry(*lhs).or_default().push(*rhs);
                role_edges
                    .entry(lhs.inverted())
                    .or_default()
                    .push(rhs.inverted());
            }
        }
        let role_subs = transitive_closure(&roles, &role_edges);

        // --- concept subsumption (role closure induces ∃R ⊑ ∃S) ---
        let mut concept_edges: FxHashMap<BasicConcept, Vec<BasicConcept>> = FxHashMap::default();
        for ax in tbox.axioms() {
            if let Axiom::ConceptIncl(lhs, ConceptRhs::Basic(rhs)) = ax {
                concept_edges.entry(*lhs).or_default().push(*rhs);
            }
        }
        for (r, sups) in &role_subs {
            for s in sups {
                if r != s {
                    concept_edges
                        .entry(BasicConcept::Exists(*r))
                        .or_default()
                        .push(BasicConcept::Exists(*s));
                }
            }
        }
        let concept_subs = transitive_closure(&concepts, &concept_edges);

        // --- disjointness closures ---
        // Asserted (symmetric) seeds.
        let mut concept_seeds: Vec<(BasicConcept, BasicConcept)> = Vec::new();
        let mut role_seeds: Vec<(Role, Role)> = Vec::new();
        for ax in tbox.axioms() {
            match ax {
                Axiom::ConceptIncl(lhs, ConceptRhs::Neg(rhs)) => {
                    concept_seeds.push((*lhs, *rhs));
                }
                Axiom::RoleIncl(lhs, RoleRhs::Neg(rhs)) => {
                    role_seeds.push((*lhs, *rhs));
                    role_seeds.push((lhs.inverted(), rhs.inverted()));
                }
                _ => {}
            }
        }
        // Propagate down the subsumption cones: if B1 ⊑* B and B2 ⊑* B' and
        // disj(B, B'), then disj(B1, B2).
        let mut concept_disj: FxHashSet<(BasicConcept, BasicConcept)> = FxHashSet::default();
        for &(b, bp) in &concept_seeds {
            for &c1 in &concepts {
                if !concept_subs[&c1].contains(&b) {
                    continue;
                }
                for &c2 in &concepts {
                    if concept_subs[&c2].contains(&bp) {
                        concept_disj.insert((c1, c2));
                        concept_disj.insert((c2, c1));
                    }
                }
            }
        }
        let mut role_disj: FxHashSet<(Role, Role)> = FxHashSet::default();
        for &(r, rp) in &role_seeds {
            for &s1 in &roles {
                if !role_subs[&s1].contains(&r) {
                    continue;
                }
                for &s2 in &roles {
                    if role_subs[&s2].contains(&rp) {
                        role_disj.insert((s1, s2));
                        role_disj.insert((s2, s1));
                    }
                }
            }
        }
        // Disjoint roles make their existentials disjoint.
        for &(r, s) in role_disj.iter().collect::<Vec<_>>() {
            concept_disj.insert((BasicConcept::Exists(r), BasicConcept::Exists(s)));
            concept_disj.insert((
                BasicConcept::Exists(r.inverted()),
                BasicConcept::Exists(s.inverted()),
            ));
        }

        let unsat: FxHashSet<BasicConcept> = concepts
            .iter()
            .copied()
            .filter(|&b| concept_disj.contains(&(b, b)))
            .collect();

        let functional: FxHashSet<Role> = tbox
            .axioms()
            .iter()
            .filter_map(|ax| match ax {
                Axiom::Funct(r) => Some(*r),
                _ => None,
            })
            .collect();

        Self {
            concept_subs,
            role_subs,
            concept_disj,
            role_disj,
            unsat,
            functional,
        }
    }

    /// `sub ⊑* sup` for basic concepts. Concepts not in the vocabulary only
    /// subsume themselves.
    pub fn subsumes(&self, sub: BasicConcept, sup: BasicConcept) -> bool {
        sub == sup
            || self
                .concept_subs
                .get(&sub)
                .is_some_and(|s| s.contains(&sup))
    }

    /// All subsumers of `b` (including `b`).
    pub fn subsumers(&self, b: BasicConcept) -> impl Iterator<Item = BasicConcept> + '_ {
        self.concept_subs
            .get(&b)
            .into_iter()
            .flat_map(|s| s.iter().copied())
    }

    /// All subsumees of `b` (including `b`). O(|vocabulary|).
    pub fn subsumees(&self, b: BasicConcept) -> Vec<BasicConcept> {
        self.concept_subs
            .iter()
            .filter(|(_, sups)| sups.contains(&b))
            .map(|(&c, _)| c)
            .collect()
    }

    /// `sub ⊑* sup` for role expressions.
    pub fn role_subsumes(&self, sub: Role, sup: Role) -> bool {
        sub == sup || self.role_subs.get(&sub).is_some_and(|s| s.contains(&sup))
    }

    /// All role subsumers of `r` (including `r`).
    pub fn role_subsumers(&self, r: Role) -> impl Iterator<Item = Role> + '_ {
        self.role_subs
            .get(&r)
            .into_iter()
            .flat_map(|s| s.iter().copied())
    }

    /// All role subsumees of `r` (including `r`).
    pub fn role_subsumees(&self, r: Role) -> Vec<Role> {
        self.role_subs
            .iter()
            .filter(|(_, sups)| sups.contains(&r))
            .map(|(&s, _)| s)
            .collect()
    }

    /// Whether two basic concepts are equivalent (mutual subsumption).
    pub fn equivalent(&self, a: BasicConcept, b: BasicConcept) -> bool {
        self.subsumes(a, b) && self.subsumes(b, a)
    }

    /// Whether `b1` and `b2` are derived disjoint.
    pub fn disjoint(&self, b1: BasicConcept, b2: BasicConcept) -> bool {
        self.concept_disj.contains(&(b1, b2))
    }

    /// Whether two role expressions are derived disjoint.
    pub fn roles_disjoint(&self, r1: Role, r2: Role) -> bool {
        self.role_disj.contains(&(r1, r2))
    }

    /// Whether `b` is unsatisfiable w.r.t. the TBox.
    pub fn is_unsat(&self, b: BasicConcept) -> bool {
        self.unsat.contains(&b)
    }

    /// Whether the TBox itself derives some unsatisfiable basic concept.
    pub fn has_unsat_concept(&self) -> bool {
        !self.unsat.is_empty()
    }

    /// Whether `r` is asserted functional.
    pub fn is_functional(&self, r: Role) -> bool {
        self.functional.contains(&r)
    }

    /// Asserted functional roles.
    pub fn functional_roles(&self) -> impl Iterator<Item = Role> + '_ {
        self.functional.iter().copied()
    }

    /// Direct (Hasse) subsumers of `b`: strict subsumers `S` with no strict
    /// intermediate `T` (`b ⊏ T ⊏ S`). Equivalent concepts are skipped.
    /// Used by the explanation search to generalize one step at a time.
    pub fn direct_subsumers(&self, b: BasicConcept) -> Vec<BasicConcept> {
        let strict: Vec<BasicConcept> = self
            .subsumers(b)
            .filter(|&s| !self.equivalent(s, b))
            .collect();
        strict
            .iter()
            .copied()
            .filter(|&s| {
                !strict
                    .iter()
                    .any(|&t| t != s && !self.equivalent(t, s) && self.subsumes(t, s))
            })
            .collect()
    }

    /// Direct (Hasse) role subsumers of `r`.
    pub fn direct_role_subsumers(&self, r: Role) -> Vec<Role> {
        let strict: Vec<Role> = self
            .role_subsumers(r)
            .filter(|&s| !(self.role_subsumes(s, r) && self.role_subsumes(r, s)))
            .collect();
        strict
            .iter()
            .copied()
            .filter(|&s| {
                !strict.iter().any(|&t| {
                    t != s
                        && !(self.role_subsumes(t, s) && self.role_subsumes(s, t))
                        && self.role_subsumes(t, s)
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::OntoVocab;

    /// TBox: Student ⊑ Person, Person ⊑ Agent, ∃teaches ⊑ Professor,
    /// Professor ⊑ Person, studies ⊑ likes, Student ⊑ ¬Course.
    fn sample() -> (TBox, ReasonerFixture) {
        let mut vocab = OntoVocab::new();
        let student = BasicConcept::Atomic(vocab.concept("Student"));
        let person = BasicConcept::Atomic(vocab.concept("Person"));
        let agent = BasicConcept::Atomic(vocab.concept("Agent"));
        let professor = BasicConcept::Atomic(vocab.concept("Professor"));
        let course = BasicConcept::Atomic(vocab.concept("Course"));
        let teaches = Role::direct(vocab.role("teaches"));
        let studies = Role::direct(vocab.role("studies"));
        let likes = Role::direct(vocab.role("likes"));
        let mut tbox = TBox::with_vocab(vocab);
        tbox.concept_incl(student, person);
        tbox.concept_incl(person, agent);
        tbox.concept_incl(BasicConcept::Exists(teaches), professor);
        tbox.concept_incl(professor, person);
        tbox.role_incl(studies, likes);
        tbox.concept_disjoint(student, course);
        let fixture = ReasonerFixture {
            student,
            person,
            agent,
            professor,
            course,
            teaches,
            studies,
            likes,
        };
        (tbox, fixture)
    }

    struct ReasonerFixture {
        student: BasicConcept,
        person: BasicConcept,
        agent: BasicConcept,
        professor: BasicConcept,
        course: BasicConcept,
        teaches: Role,
        studies: Role,
        likes: Role,
    }

    #[test]
    fn transitive_concept_subsumption() {
        let (tbox, f) = sample();
        let r = Reasoner::build(&tbox);
        assert!(r.subsumes(f.student, f.person));
        assert!(r.subsumes(f.student, f.agent));
        assert!(r.subsumes(f.student, f.student));
        assert!(!r.subsumes(f.person, f.student));
        // ∃teaches ⊑ Professor ⊑ Person ⊑ Agent
        assert!(r.subsumes(BasicConcept::Exists(f.teaches), f.agent));
    }

    #[test]
    fn role_inclusion_closes_under_inverse_and_induces_exists() {
        let (tbox, f) = sample();
        let r = Reasoner::build(&tbox);
        assert!(r.role_subsumes(f.studies, f.likes));
        assert!(r.role_subsumes(f.studies.inverted(), f.likes.inverted()));
        assert!(!r.role_subsumes(f.likes, f.studies));
        assert!(r.subsumes(
            BasicConcept::Exists(f.studies),
            BasicConcept::Exists(f.likes)
        ));
        assert!(r.subsumes(
            BasicConcept::Exists(f.studies.inverted()),
            BasicConcept::Exists(f.likes.inverted())
        ));
    }

    #[test]
    fn disjointness_propagates_down_subsumption() {
        let (mut tbox, f) = sample();
        // PhDStudent ⊑ Student; disjointness Student ⊑ ¬Course must reach it.
        let phd = BasicConcept::Atomic(tbox.vocab_mut().concept("PhDStudent"));
        tbox.concept_incl(phd, f.student);
        let r = Reasoner::build(&tbox);
        assert!(r.disjoint(f.student, f.course));
        assert!(r.disjoint(f.course, f.student));
        assert!(r.disjoint(phd, f.course));
        assert!(!r.disjoint(f.person, f.course));
        assert!(!r.has_unsat_concept());
    }

    #[test]
    fn unsatisfiable_concept_detected() {
        let (mut tbox, f) = sample();
        // Weird ⊑ Student and Weird ⊑ Course makes Weird unsatisfiable.
        let weird = BasicConcept::Atomic(tbox.vocab_mut().concept("Weird"));
        tbox.concept_incl(weird, f.student);
        tbox.concept_incl(weird, f.course);
        let r = Reasoner::build(&tbox);
        assert!(r.is_unsat(weird));
        assert!(!r.is_unsat(f.student));
        assert!(r.has_unsat_concept());
    }

    #[test]
    fn role_disjointness_and_exists_interaction() {
        let (mut tbox, f) = sample();
        tbox.role_disjoint(f.teaches, f.studies);
        let r = Reasoner::build(&tbox);
        assert!(r.roles_disjoint(f.teaches, f.studies));
        assert!(r.roles_disjoint(f.studies, f.teaches));
        assert!(r.roles_disjoint(f.teaches.inverted(), f.studies.inverted()));
        assert!(r.disjoint(
            BasicConcept::Exists(f.teaches),
            BasicConcept::Exists(f.studies)
        ));
        // studies ⊑ likes, so teaches is also disjoint from... nothing more:
        // disjointness propagates down, not up.
        assert!(!r.roles_disjoint(f.teaches, f.likes));
    }

    #[test]
    fn functionality_is_recorded() {
        let (mut tbox, f) = sample();
        tbox.funct(f.likes);
        let r = Reasoner::build(&tbox);
        assert!(r.is_functional(f.likes));
        assert!(!r.is_functional(f.studies));
        assert_eq!(r.functional_roles().count(), 1);
    }

    #[test]
    fn direct_subsumers_skip_transitive_hops() {
        let (tbox, f) = sample();
        let r = Reasoner::build(&tbox);
        let ds = r.direct_subsumers(f.student);
        assert!(ds.contains(&f.person));
        assert!(!ds.contains(&f.agent), "Agent is 2 hops up");
        // Top-level concept: no subsumers.
        assert!(r.direct_subsumers(f.agent).is_empty());
    }

    #[test]
    fn direct_role_subsumers() {
        let (mut tbox, f) = sample();
        let adores = Role::direct(tbox.vocab_mut().role("adores"));
        tbox.role_incl(f.studies, adores);
        tbox.role_incl(adores, f.likes);
        let r = Reasoner::build(&tbox);
        let ds = r.direct_role_subsumers(f.studies);
        assert!(ds.contains(&adores));
        assert!(!ds.contains(&f.likes));
    }

    #[test]
    fn subsumees_inverse_of_subsumers() {
        let (tbox, f) = sample();
        let r = Reasoner::build(&tbox);
        let subs = r.subsumees(f.person);
        assert!(subs.contains(&f.student));
        assert!(subs.contains(&f.professor));
        assert!(subs.contains(&BasicConcept::Exists(f.teaches)));
        assert!(!subs.contains(&f.agent));
    }

    #[test]
    fn equivalence_via_cycle() {
        let mut tbox = TBox::new();
        let a = BasicConcept::Atomic(tbox.vocab_mut().concept("A"));
        let b = BasicConcept::Atomic(tbox.vocab_mut().concept("B"));
        tbox.concept_incl(a, b);
        tbox.concept_incl(b, a);
        let r = Reasoner::build(&tbox);
        assert!(r.equivalent(a, b));
        // Hasse diagram of an equivalence cycle has no strict edges.
        assert!(r.direct_subsumers(a).is_empty());
    }

    #[test]
    fn empty_tbox_reasoner_is_trivial() {
        let tbox = TBox::new();
        let r = Reasoner::build(&tbox);
        assert!(!r.has_unsat_concept());
        let mut vocab = OntoVocab::new();
        let foreign = BasicConcept::Atomic(vocab.concept("X"));
        // Foreign concepts only subsume themselves and are never disjoint.
        assert!(r.subsumes(foreign, foreign));
        assert!(!r.disjoint(foreign, foreign));
    }
}

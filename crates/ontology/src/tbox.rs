//! TBox axioms and the TBox container.

use crate::expr::{BasicConcept, ConceptRhs, Role, RoleRhs};
use crate::vocab::OntoVocab;

/// A DL-Lite_R axiom (plus DL-Lite_A functionality).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Axiom {
    /// `B ⊑ C` — concept inclusion (positive when `C` is basic, negative
    /// when `C` is `¬B'`).
    ConceptIncl(BasicConcept, ConceptRhs),
    /// `R ⊑ E` — role inclusion (positive or negative).
    RoleIncl(Role, RoleRhs),
    /// `(funct R)` — role functionality (DL-Lite_A).
    Funct(Role),
}

impl Axiom {
    /// Whether this is a *positive inclusion* (the only kind PerfectRef and
    /// the chase use).
    pub fn is_positive(&self) -> bool {
        matches!(
            self,
            Axiom::ConceptIncl(_, ConceptRhs::Basic(_)) | Axiom::RoleIncl(_, RoleRhs::Role(_))
        )
    }

    /// Renders like `Student < Person` / `studies < not teaches` / `funct r`.
    pub fn render(&self, vocab: &OntoVocab) -> String {
        match self {
            Axiom::ConceptIncl(lhs, rhs) => {
                format!("{} < {}", lhs.render(vocab), rhs.render(vocab))
            }
            Axiom::RoleIncl(lhs, rhs) => format!("{} < {}", lhs.render(vocab), rhs.render(vocab)),
            Axiom::Funct(r) => format!("funct {}", r.render(vocab)),
        }
    }
}

/// The intensional level `O`: a vocabulary plus a set of axioms.
#[derive(Default, Debug)]
pub struct TBox {
    vocab: OntoVocab,
    axioms: Vec<Axiom>,
}

impl TBox {
    /// Creates an empty TBox with an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a TBox over an existing vocabulary.
    pub fn with_vocab(vocab: OntoVocab) -> Self {
        Self {
            vocab,
            axioms: Vec::new(),
        }
    }

    /// The vocabulary (read access).
    pub fn vocab(&self) -> &OntoVocab {
        &self.vocab
    }

    /// The vocabulary (declaration access).
    pub fn vocab_mut(&mut self) -> &mut OntoVocab {
        &mut self.vocab
    }

    /// Adds an axiom (duplicates are kept out).
    pub fn add(&mut self, axiom: Axiom) {
        if !self.axioms.contains(&axiom) {
            self.axioms.push(axiom);
        }
    }

    /// Convenience: positive concept inclusion `lhs ⊑ rhs`.
    pub fn concept_incl(&mut self, lhs: BasicConcept, rhs: BasicConcept) {
        self.add(Axiom::ConceptIncl(lhs, ConceptRhs::Basic(rhs)));
    }

    /// Convenience: disjointness `lhs ⊑ ¬rhs`.
    pub fn concept_disjoint(&mut self, lhs: BasicConcept, rhs: BasicConcept) {
        self.add(Axiom::ConceptIncl(lhs, ConceptRhs::Neg(rhs)));
    }

    /// Convenience: positive role inclusion `lhs ⊑ rhs`.
    pub fn role_incl(&mut self, lhs: Role, rhs: Role) {
        self.add(Axiom::RoleIncl(lhs, RoleRhs::Role(rhs)));
    }

    /// Convenience: role disjointness `lhs ⊑ ¬rhs`.
    pub fn role_disjoint(&mut self, lhs: Role, rhs: Role) {
        self.add(Axiom::RoleIncl(lhs, RoleRhs::Neg(rhs)));
    }

    /// Convenience: functionality assertion.
    pub fn funct(&mut self, r: Role) {
        self.add(Axiom::Funct(r));
    }

    /// All axioms, in insertion order.
    pub fn axioms(&self) -> &[Axiom] {
        &self.axioms
    }

    /// Only the positive inclusions (used by rewriting and the chase).
    pub fn positive_inclusions(&self) -> impl Iterator<Item = &Axiom> {
        self.axioms.iter().filter(|a| a.is_positive())
    }

    /// Number of axioms.
    pub fn len(&self) -> usize {
        self.axioms.len()
    }

    /// Whether the TBox has no axioms (a "flat schema", §2).
    pub fn is_empty(&self) -> bool {
        self.axioms.is_empty()
    }

    /// Renders all axioms, one per line.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for a in &self.axioms {
            s.push_str(&a.render(&self.vocab));
            s.push('\n');
        }
        s
    }

    /// All basic concepts over the declared vocabulary:
    /// every atomic concept plus `∃R`/`∃R⁻` for every role. This is the
    /// (finite) node set of the subsumption closure.
    pub fn all_basic_concepts(&self) -> Vec<BasicConcept> {
        let mut out: Vec<BasicConcept> =
            self.vocab.concept_ids().map(BasicConcept::Atomic).collect();
        for r in self.vocab.role_ids() {
            out.push(BasicConcept::exists(r));
            out.push(BasicConcept::exists_inv(r));
        }
        out
    }

    /// All role expressions over the declared vocabulary (`R` and `R⁻`).
    pub fn all_roles(&self) -> Vec<Role> {
        let mut out = Vec::with_capacity(self.vocab.num_roles() * 2);
        for r in self.vocab.role_ids() {
            out.push(Role::direct(r));
            out.push(Role::inv(r));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_deduplicates() {
        let mut t = TBox::new();
        let a = BasicConcept::Atomic(t.vocab_mut().concept("A"));
        let b = BasicConcept::Atomic(t.vocab_mut().concept("B"));
        t.concept_incl(a, b);
        t.concept_incl(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn positive_inclusion_filter() {
        let mut t = TBox::new();
        let a = BasicConcept::Atomic(t.vocab_mut().concept("A"));
        let b = BasicConcept::Atomic(t.vocab_mut().concept("B"));
        let r = Role::direct(t.vocab_mut().role("r"));
        t.concept_incl(a, b);
        t.concept_disjoint(a, b);
        t.funct(r);
        assert_eq!(t.positive_inclusions().count(), 1);
        assert!(Axiom::ConceptIncl(a, ConceptRhs::Basic(b)).is_positive());
        assert!(!Axiom::Funct(r).is_positive());
    }

    #[test]
    fn basic_concept_universe_counts() {
        let mut t = TBox::new();
        t.vocab_mut().concept("A");
        t.vocab_mut().concept("B");
        t.vocab_mut().role("r");
        assert_eq!(t.all_basic_concepts().len(), 2 + 2);
        assert_eq!(t.all_roles().len(), 2);
    }

    #[test]
    fn render_produces_parseable_lines() {
        let mut t = TBox::new();
        let stu = BasicConcept::Atomic(t.vocab_mut().concept("Student"));
        let r = Role::direct(t.vocab_mut().role("studies"));
        let likes = Role::direct(t.vocab_mut().role("likes"));
        t.concept_incl(stu, BasicConcept::Exists(r));
        t.role_incl(r, likes);
        t.funct(likes);
        let s = t.render();
        assert!(s.contains("Student < exists(studies)"));
        assert!(s.contains("studies < likes"));
        assert!(s.contains("funct likes"));
    }
}

//! `obx-integration` — cross-crate integration tests and the workspace's
//! runnable examples.
//!
//! The library itself only re-exports the sibling crates so that examples
//! and tests have one import root; all substance lives in the workspace
//! `tests/` and `examples/` directories, wired into this crate's targets.

#![warn(missing_docs)]

pub use obx_core as core;
pub use obx_datagen as datagen;
pub use obx_mapping as mapping;
pub use obx_obdm as obdm;
pub use obx_ontology as ontology;
pub use obx_query as query;
pub use obx_srcdb as srcdb;
pub use obx_util as util;

//! `obx-ci` — the workspace's CI runner.
//!
//! One binary, runnable locally and in CI with identical behaviour:
//!
//! ```text
//! cargo run --release -p obx-ci
//! ```
//!
//! Runs the gate steps in order — `fmt --check`, workspace clippy with
//! warnings denied, a release build, the test suite, and the bench
//! bins — then compares the fresh bench numbers against the committed
//! `BENCH_scoring.json` / `BENCH_search.json` / `BENCH_guided.json` /
//! `BENCH_serve.json` / `BENCH_scale.json` baselines and fails on a
//! wall-time regression above 20% that is also more than 5 ms absolute
//! (sub-millisecond benches jitter past 20% on a loaded machine; the
//! bench bins' own hard floors, e.g. the 2× search speedup, stay in
//! force because a bin exiting nonzero fails its step). A bench file
//! whose wall-time keys would fail gets its bin re-run once and is
//! gated on the better of the two runs — machine-load noise retries
//! away, a real regression fails twice. Every step is
//! timed on the observability recorder and the whole run is written to
//! `CI_REPORT.json` at the workspace root.
//!
//! The baseline files are snapshotted *before* the bench bins overwrite
//! them, so the gate always compares against the committed state of the
//! working tree.

use obx_util::obs::Recorder;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Instant;

/// Relative wall-time increase that fails the regression gate.
const REGRESSION_TOLERANCE: f64 = 0.20;

/// Absolute slack (ms) a gated delta must also exceed to fail. The
/// scoring smoke bench finishes in single-digit milliseconds, where
/// 20% is machine noise; a regression must be both relatively and
/// absolutely large to count.
const REGRESSION_MIN_ABS_MS: f64 = 5.0;

struct StepResult {
    name: &'static str,
    command: String,
    status: &'static str,
    wall_ms: f64,
}

fn workspace_root() -> PathBuf {
    // ci lives at <root>/crates/ci.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| Path::new(env!("CARGO_MANIFEST_DIR")).join("../.."))
}

/// Runs one cargo step, streaming its output, and records it.
fn run_step(
    rec: &Recorder,
    results: &mut Vec<StepResult>,
    name: &'static str,
    args: &[&str],
    root: &Path,
) -> bool {
    let command = format!("cargo {}", args.join(" "));
    eprintln!("== {name}: {command}");
    let mut span = rec.kernel(name);
    let start = Instant::now();
    let status = Command::new("cargo").args(args).current_dir(root).status();
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let ok = status.as_ref().map(|s| s.success()).unwrap_or(false);
    span.count("ok", u64::from(ok));
    drop(span);
    results.push(StepResult {
        name,
        command,
        status: if ok { "pass" } else { "fail" },
        wall_ms,
    });
    eprintln!(
        "== {name}: {} ({wall_ms:.0} ms)",
        if ok { "PASS" } else { "FAIL" }
    );
    ok
}

/// Extracts the top-level numeric fields of a flat-ish JSON object,
/// skipping nested objects/arrays (the embedded `"profile"`). Good
/// enough for the bench files this workspace writes; not a general
/// JSON parser.
fn top_level_numbers(json: &str) -> Vec<(String, f64)> {
    let bytes = json.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut depth = 0i32;
    while i < bytes.len() {
        match bytes[i] {
            b'{' | b'[' => depth += 1,
            b'}' | b']' => depth -= 1,
            b'"' if depth == 1 => {
                // Parse "key" : value at the top level.
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'"' {
                    j += if bytes[j] == b'\\' { 2 } else { 1 };
                }
                let key = &json[start..j.min(json.len())];
                i = j + 1;
                while i < bytes.len() && (bytes[i] as char).is_whitespace() {
                    i += 1;
                }
                if i < bytes.len() && bytes[i] == b':' {
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_whitespace() {
                        i += 1;
                    }
                    let vstart = i;
                    if i < bytes.len()
                        && (bytes[i].is_ascii_digit() || bytes[i] == b'-' || bytes[i] == b'+')
                    {
                        while i < bytes.len()
                            && (bytes[i].is_ascii_digit()
                                || matches!(bytes[i], b'.' | b'-' | b'+' | b'e' | b'E'))
                        {
                            i += 1;
                        }
                        if let Ok(v) = json[vstart..i].parse::<f64>() {
                            out.push((key.to_owned(), v));
                        }
                    }
                }
                continue;
            }
            _ => {}
        }
        i += 1;
    }
    out
}

struct Delta {
    file: &'static str,
    key: String,
    base: f64,
    fresh: f64,
    /// Relative change, sign-adjusted so positive = worse.
    worse_frac: f64,
    gated: bool,
}

/// Compares one fresh bench file against its pre-run baseline. Gated
/// keys are wall-times (`*_ms`: higher is worse); speedup keys are
/// reported but left to the bench bins' own hard floors.
fn bench_deltas(file: &'static str, baseline: &str, fresh: &str) -> Vec<Delta> {
    let base: Vec<(String, f64)> = top_level_numbers(baseline);
    let new: Vec<(String, f64)> = top_level_numbers(fresh);
    let mut deltas = Vec::new();
    for (key, b) in &base {
        let Some((_, f)) = new.iter().find(|(k, _)| k == key) else {
            continue;
        };
        let gated = key.ends_with("_ms");
        let worse_frac = if key.ends_with("_ms") {
            (f - b) / b.max(1e-9)
        } else if key.contains("speedup") || key.ends_with("_cps") {
            (b - f) / b.max(1e-9)
        } else {
            0.0
        };
        deltas.push(Delta {
            file,
            key: key.clone(),
            base: *b,
            fresh: *f,
            worse_frac,
            gated,
        });
    }
    deltas
}

fn fails_gate(d: &Delta) -> bool {
    d.gated && d.worse_frac > REGRESSION_TOLERANCE && (d.fresh - d.base) > REGRESSION_MIN_ABS_MS
}

fn print_delta_table(deltas: &[Delta]) {
    eprintln!(
        "{:<18} {:<28} {:>12} {:>12} {:>9}  gate",
        "file", "key", "baseline", "fresh", "delta"
    );
    for d in deltas {
        if d.worse_frac == 0.0 && !d.gated {
            continue; // ungated counters: noise in the table
        }
        let verdict = if !d.gated {
            "info"
        } else if fails_gate(d) {
            "FAIL"
        } else {
            "ok"
        };
        eprintln!(
            "{:<18} {:<28} {:>12.3} {:>12.3} {:>+8.1}%  {verdict}",
            d.file,
            d.key,
            d.base,
            d.fresh,
            d.worse_frac * 100.0
        );
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let root = workspace_root();
    let rec = Recorder::new();
    let run_span = rec.enter("ci");
    let started = Instant::now();
    let mut results: Vec<StepResult> = Vec::new();

    // Snapshot the committed bench baselines before anything overwrites
    // them.
    let bench_files: [&'static str; 5] = [
        "BENCH_scoring.json",
        "BENCH_search.json",
        "BENCH_guided.json",
        "BENCH_serve.json",
        "BENCH_scale.json",
    ];
    let baselines: Vec<Option<String>> = bench_files
        .iter()
        .map(|f| std::fs::read_to_string(root.join(f)).ok())
        .collect();

    let steps: [(&'static str, &[&str]); 9] = [
        ("fmt", &["fmt", "--all", "--", "--check"]),
        (
            "clippy",
            &[
                "clippy",
                "--workspace",
                "--all-targets",
                "--release",
                "--",
                "-D",
                "warnings",
            ],
        ),
        ("build", &["build", "--release", "--workspace"]),
        ("test", &["test", "-q", "--release"]),
        (
            "bench-scoring",
            &["run", "--release", "-p", "obx-bench", "--bin", "smoke"],
        ),
        (
            "bench-search",
            &["run", "--release", "-p", "obx-bench", "--bin", "search"],
        ),
        (
            "bench-guided",
            &["run", "--release", "-p", "obx-bench", "--bin", "guided"],
        ),
        (
            "bench-serve",
            &["run", "--release", "-p", "obx-bench", "--bin", "serve"],
        ),
        (
            "bench-scale",
            &["run", "--release", "-p", "obx-bench", "--bin", "scale"],
        ),
    ];

    let mut all_ok = true;
    for (name, args) in steps {
        let ok = run_step(&rec, &mut results, name, args, &root);
        all_ok &= ok;
        // A broken build makes every later step noise; stop early there.
        if !ok && matches!(name, "fmt" | "clippy" | "build") {
            eprintln!("== aborting after failed {name} step");
            break;
        }
    }

    // Bench regression gate: fresh numbers vs the committed baseline.
    let mut deltas: Vec<Delta> = Vec::new();
    let mut regressions: Vec<String> = Vec::new();
    if results.iter().any(|r| r.name.starts_with("bench-")) {
        let mut gate_span = rec.kernel("regression-gate");
        for (file, baseline) in bench_files.iter().zip(&baselines) {
            let Some(baseline) = baseline else {
                eprintln!("== regression gate: no committed {file}, skipping");
                continue;
            };
            let Ok(fresh) = std::fs::read_to_string(root.join(file)) else {
                continue;
            };
            deltas.extend(bench_deltas(file, baseline, &fresh));
        }
        // Wall-time keys on a loaded machine swing well past the
        // tolerance (the bins' internal best-of-N only de-noises within
        // one process). Before failing, re-run each offending bench bin
        // once and gate on the better of the two runs — one bounded
        // retry, not a loop, and only for files that would fail. The
        // bins' own deterministic hard gates (node ratios, speedup
        // floors, byte-identity) run again too and can still fail the
        // step outright.
        let retry_files: Vec<&'static str> = deltas
            .iter()
            .filter(|d| fails_gate(d))
            .map(|d| d.file)
            .collect();
        for (file, bin) in [
            ("BENCH_scoring.json", "smoke"),
            ("BENCH_search.json", "search"),
            ("BENCH_guided.json", "guided"),
            ("BENCH_serve.json", "serve"),
            ("BENCH_scale.json", "scale"),
        ] {
            if !retry_files.contains(&file) {
                continue;
            }
            eprintln!("== regression gate: {file} over tolerance, retrying its bench once");
            let name: &'static str = match bin {
                "smoke" => "bench-scoring-retry",
                "search" => "bench-search-retry",
                "guided" => "bench-guided-retry",
                "scale" => "bench-scale-retry",
                _ => "bench-serve-retry",
            };
            let ok = run_step(
                &rec,
                &mut results,
                name,
                &["run", "--release", "-p", "obx-bench", "--bin", bin],
                &root,
            );
            all_ok &= ok;
            let baseline = bench_files
                .iter()
                .position(|f| *f == file)
                .and_then(|i| baselines[i].as_deref());
            let (Some(baseline), Ok(second)) = (baseline, std::fs::read_to_string(root.join(file)))
            else {
                continue;
            };
            // Keep the better (smaller `_ms`, larger speedup) of the two
            // runs per key.
            for second_d in bench_deltas(file, baseline, &second) {
                if let Some(first_d) = deltas
                    .iter_mut()
                    .find(|d| d.file == file && d.key == second_d.key)
                {
                    if second_d.worse_frac < first_d.worse_frac {
                        *first_d = second_d;
                    }
                }
            }
        }
        for d in &deltas {
            if fails_gate(d) {
                regressions.push(format!(
                    "{}:{} {:.3} -> {:.3} (+{:.1}%)",
                    d.file,
                    d.key,
                    d.base,
                    d.fresh,
                    d.worse_frac * 100.0
                ));
            }
        }
        gate_span.count("compared", deltas.len() as u64);
        gate_span.count("regressions", regressions.len() as u64);
        drop(gate_span);
        eprintln!(
            "== regression gate (tolerance {:.0}%)",
            REGRESSION_TOLERANCE * 100.0
        );
        print_delta_table(&deltas);
        let gate_ok = regressions.is_empty();
        results.push(StepResult {
            name: "regression-gate",
            command: format!(
                "compare fresh benches vs committed baselines (>{:.0}% _ms fails)",
                REGRESSION_TOLERANCE * 100.0
            ),
            status: if gate_ok { "pass" } else { "fail" },
            wall_ms: 0.0,
        });
        if !gate_ok {
            all_ok = false;
            for r in &regressions {
                eprintln!("REGRESSION: {r}");
            }
        }
    }

    drop(run_span);
    let total_ms = started.elapsed().as_secs_f64() * 1e3;

    // CI_REPORT.json: per-step status/timings plus the recorder profile.
    let mut steps_json = String::new();
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            steps_json.push(',');
        }
        steps_json.push_str(&format!(
            "{{\"name\":\"{}\",\"command\":\"{}\",\"status\":\"{}\",\"wall_ms\":{:.1}}}",
            json_escape(r.name),
            json_escape(&r.command),
            r.status,
            r.wall_ms
        ));
    }
    let mut regressions_json = String::new();
    for (i, r) in regressions.iter().enumerate() {
        if i > 0 {
            regressions_json.push(',');
        }
        regressions_json.push_str(&format!("\"{}\"", json_escape(r)));
    }
    let report = format!(
        "{{\"ok\":{all_ok},\"total_ms\":{total_ms:.1},\"steps\":[{steps_json}],\
         \"regressions\":[{regressions_json}],\"profile\":{}}}\n",
        rec.profile().to_json()
    );
    let report_path = root.join("CI_REPORT.json");
    if let Err(e) = std::fs::write(&report_path, &report) {
        eprintln!("failed to write {}: {e}", report_path.display());
    } else {
        eprintln!("== wrote {}", report_path.display());
    }

    eprintln!(
        "== CI {} in {:.1}s",
        if all_ok { "PASSED" } else { "FAILED" },
        total_ms / 1e3
    );
    std::process::exit(i32::from(!all_ok));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_level_numbers_skips_nested_profile() {
        let json = r#"{"a_ms":12.5,"name":"x","profile":{"spans":[{"wall_ms":9.0}]},"b":3}"#;
        let got = top_level_numbers(json);
        assert_eq!(
            got,
            vec![("a_ms".to_owned(), 12.5), ("b".to_owned(), 3.0)],
            "nested profile numbers must not leak into the baseline set"
        );
    }

    #[test]
    fn gate_requires_relative_and_absolute_regression() {
        let d = |base: f64, fresh: f64, gated: bool| Delta {
            file: "BENCH_test.json",
            key: "x_ms".to_owned(),
            base,
            fresh,
            worse_frac: (fresh - base) / base,
            gated,
        };
        // 48% worse but only 0.85 ms absolute: machine noise, passes.
        assert!(!fails_gate(&d(1.772, 2.620, true)));
        // 25% worse and 100 ms absolute: real regression, fails.
        assert!(fails_gate(&d(400.0, 500.0, true)));
        // Huge absolute delta but within 20% relative: passes.
        assert!(!fails_gate(&d(1000.0, 1100.0, true)));
        // Ungated keys never fail regardless of magnitude.
        assert!(!fails_gate(&d(10.0, 1000.0, false)));
    }
}

//! `obx-ci` — the workspace's CI runner.
//!
//! One binary, runnable locally and in CI with identical behaviour:
//!
//! ```text
//! cargo run --release -p obx-ci
//! ```
//!
//! Runs the gate steps in order — `fmt --check`, workspace clippy with
//! warnings denied, a release build, the test suite, and the bench
//! bins — then compares the fresh bench numbers against the committed
//! `BENCH_*.json` baselines (scoring, search, guided, serve, scale,
//! modes) and fails on a wall-time regression above 20% that is also
//! more than 5 ms absolute (sub-millisecond benches jitter past 20% on
//! a loaded machine; the bench bins' own hard floors, e.g. the 2×
//! search speedup, stay in force because a bin exiting nonzero fails
//! its step). A bench step that runs *without* a committed baseline
//! fails the gate outright — an ungated bench is a silent hole, not a
//! soft skip. A bench file whose wall-time keys would fail gets its bin
//! re-run once and is gated on the better of the two runs —
//! machine-load noise retries away, a real regression fails twice.
//! Every step is timed on the observability recorder and the whole run
//! is written to `CI_REPORT.json` at the workspace root, including a
//! per-step wall-time table (`"timings"`).
//!
//! Steps can be filtered for local iteration:
//!
//! ```text
//! cargo run --release -p obx-ci -- --only bench-modes
//! cargo run --release -p obx-ci -- --skip bench-scale --skip test
//! ```
//!
//! `--only` keeps the named steps (repeatable), `--skip` drops them;
//! skipped steps appear in the report as `"skip"` and neither run nor
//! fail the gate. Unknown step names are a usage error.
//!
//! The baseline files are snapshotted *before* the bench bins overwrite
//! them, so the gate always compares against the committed state of the
//! working tree.

use obx_util::obs::Recorder;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Instant;

/// Relative wall-time increase that fails the regression gate.
const REGRESSION_TOLERANCE: f64 = 0.20;

/// Absolute slack (ms) a gated delta must also exceed to fail. The
/// scoring smoke bench finishes in single-digit milliseconds, where
/// 20% is machine noise; a regression must be both relatively and
/// absolutely large to count.
const REGRESSION_MIN_ABS_MS: f64 = 5.0;

/// One row per bench step: (step name, baseline file, bench bin, retry
/// step name). The regression gate, the missing-baseline check, and the
/// one-shot retry all key off this table, so registering a new bench is
/// one line here plus its entry in `steps`.
const BENCHES: [(&str, &str, &str, &str); 6] = [
    (
        "bench-scoring",
        "BENCH_scoring.json",
        "smoke",
        "bench-scoring-retry",
    ),
    (
        "bench-search",
        "BENCH_search.json",
        "search",
        "bench-search-retry",
    ),
    (
        "bench-guided",
        "BENCH_guided.json",
        "guided",
        "bench-guided-retry",
    ),
    (
        "bench-serve",
        "BENCH_serve.json",
        "serve",
        "bench-serve-retry",
    ),
    (
        "bench-scale",
        "BENCH_scale.json",
        "scale",
        "bench-scale-retry",
    ),
    (
        "bench-modes",
        "BENCH_modes.json",
        "modes",
        "bench-modes-retry",
    ),
];

struct StepResult {
    name: &'static str,
    command: String,
    status: &'static str,
    wall_ms: f64,
}

/// Which steps an invocation runs, from `--only` / `--skip` flags.
/// `only` empty means "everything"; `skip` always wins over `only`.
#[derive(Debug, Default, PartialEq)]
struct StepFilter {
    only: Vec<String>,
    skip: Vec<String>,
}

impl StepFilter {
    /// Parses `--only NAME` / `--skip NAME` pairs (repeatable), checking
    /// every name against `known`. Returns a usage-style error for
    /// unknown steps, missing values, or unrecognized flags.
    fn parse(args: &[String], known: &[&str]) -> Result<StepFilter, String> {
        let mut filter = StepFilter::default();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let dest = match arg.as_str() {
                "--only" => &mut filter.only,
                "--skip" => &mut filter.skip,
                other => return Err(format!("unknown flag `{other}` (expected --only/--skip)")),
            };
            let Some(name) = it.next() else {
                return Err(format!("{arg} requires a step name"));
            };
            if !known.contains(&name.as_str()) {
                return Err(format!(
                    "unknown step `{name}` (steps: {})",
                    known.join(", ")
                ));
            }
            dest.push(name.clone());
        }
        Ok(filter)
    }

    /// Whether `name` runs under this filter.
    fn selects(&self, name: &str) -> bool {
        (self.only.is_empty() || self.only.iter().any(|o| o == name))
            && !self.skip.iter().any(|s| s == name)
    }
}

fn workspace_root() -> PathBuf {
    // ci lives at <root>/crates/ci.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| Path::new(env!("CARGO_MANIFEST_DIR")).join("../.."))
}

/// Runs one cargo step, streaming its output, and records it.
fn run_step(
    rec: &Recorder,
    results: &mut Vec<StepResult>,
    name: &'static str,
    args: &[&str],
    root: &Path,
) -> bool {
    let command = format!("cargo {}", args.join(" "));
    eprintln!("== {name}: {command}");
    let mut span = rec.kernel(name);
    let start = Instant::now();
    let status = Command::new("cargo").args(args).current_dir(root).status();
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let ok = status.as_ref().map(|s| s.success()).unwrap_or(false);
    span.count("ok", u64::from(ok));
    drop(span);
    results.push(StepResult {
        name,
        command,
        status: if ok { "pass" } else { "fail" },
        wall_ms,
    });
    eprintln!(
        "== {name}: {} ({wall_ms:.0} ms)",
        if ok { "PASS" } else { "FAIL" }
    );
    ok
}

/// Extracts the top-level numeric fields of a flat-ish JSON object,
/// skipping nested objects/arrays (the embedded `"profile"`). Good
/// enough for the bench files this workspace writes; not a general
/// JSON parser.
fn top_level_numbers(json: &str) -> Vec<(String, f64)> {
    let bytes = json.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut depth = 0i32;
    while i < bytes.len() {
        match bytes[i] {
            b'{' | b'[' => depth += 1,
            b'}' | b']' => depth -= 1,
            b'"' if depth == 1 => {
                // Parse "key" : value at the top level.
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'"' {
                    j += if bytes[j] == b'\\' { 2 } else { 1 };
                }
                let key = &json[start..j.min(json.len())];
                i = j + 1;
                while i < bytes.len() && (bytes[i] as char).is_whitespace() {
                    i += 1;
                }
                if i < bytes.len() && bytes[i] == b':' {
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_whitespace() {
                        i += 1;
                    }
                    let vstart = i;
                    if i < bytes.len()
                        && (bytes[i].is_ascii_digit() || bytes[i] == b'-' || bytes[i] == b'+')
                    {
                        while i < bytes.len()
                            && (bytes[i].is_ascii_digit()
                                || matches!(bytes[i], b'.' | b'-' | b'+' | b'e' | b'E'))
                        {
                            i += 1;
                        }
                        if let Ok(v) = json[vstart..i].parse::<f64>() {
                            out.push((key.to_owned(), v));
                        }
                    }
                }
                continue;
            }
            _ => {}
        }
        i += 1;
    }
    out
}

struct Delta {
    file: &'static str,
    key: String,
    base: f64,
    fresh: f64,
    /// Relative change, sign-adjusted so positive = worse.
    worse_frac: f64,
    gated: bool,
}

/// Compares one fresh bench file against its pre-run baseline. Gated
/// keys are wall-times (`*_ms`: higher is worse); speedup keys are
/// reported but left to the bench bins' own hard floors.
fn bench_deltas(file: &'static str, baseline: &str, fresh: &str) -> Vec<Delta> {
    let base: Vec<(String, f64)> = top_level_numbers(baseline);
    let new: Vec<(String, f64)> = top_level_numbers(fresh);
    let mut deltas = Vec::new();
    for (key, b) in &base {
        let Some((_, f)) = new.iter().find(|(k, _)| k == key) else {
            continue;
        };
        let gated = key.ends_with("_ms");
        let worse_frac = if key.ends_with("_ms") {
            (f - b) / b.max(1e-9)
        } else if key.contains("speedup") || key.ends_with("_cps") {
            (b - f) / b.max(1e-9)
        } else {
            0.0
        };
        deltas.push(Delta {
            file,
            key: key.clone(),
            base: *b,
            fresh: *f,
            worse_frac,
            gated,
        });
    }
    deltas
}

fn fails_gate(d: &Delta) -> bool {
    d.gated && d.worse_frac > REGRESSION_TOLERANCE && (d.fresh - d.base) > REGRESSION_MIN_ABS_MS
}

fn print_delta_table(deltas: &[Delta]) {
    eprintln!(
        "{:<18} {:<28} {:>12} {:>12} {:>9}  gate",
        "file", "key", "baseline", "fresh", "delta"
    );
    for d in deltas {
        if d.worse_frac == 0.0 && !d.gated {
            continue; // ungated counters: noise in the table
        }
        let verdict = if !d.gated {
            "info"
        } else if fails_gate(d) {
            "FAIL"
        } else {
            "ok"
        };
        eprintln!(
            "{:<18} {:<28} {:>12.3} {:>12.3} {:>+8.1}%  {verdict}",
            d.file,
            d.key,
            d.base,
            d.fresh,
            d.worse_frac * 100.0
        );
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let root = workspace_root();
    let rec = Recorder::new();
    let run_span = rec.enter("ci");
    let started = Instant::now();
    let mut results: Vec<StepResult> = Vec::new();

    // Snapshot the committed bench baselines before anything overwrites
    // them.
    let bench_files: Vec<&'static str> = BENCHES.iter().map(|(_, file, _, _)| *file).collect();
    let baselines: Vec<Option<String>> = bench_files
        .iter()
        .map(|f| std::fs::read_to_string(root.join(f)).ok())
        .collect();

    let steps: [(&'static str, &[&str]); 10] = [
        ("fmt", &["fmt", "--all", "--", "--check"]),
        (
            "clippy",
            &[
                "clippy",
                "--workspace",
                "--all-targets",
                "--release",
                "--",
                "-D",
                "warnings",
            ],
        ),
        ("build", &["build", "--release", "--workspace"]),
        ("test", &["test", "-q", "--release"]),
        (
            "bench-scoring",
            &["run", "--release", "-p", "obx-bench", "--bin", "smoke"],
        ),
        (
            "bench-search",
            &["run", "--release", "-p", "obx-bench", "--bin", "search"],
        ),
        (
            "bench-guided",
            &["run", "--release", "-p", "obx-bench", "--bin", "guided"],
        ),
        (
            "bench-serve",
            &["run", "--release", "-p", "obx-bench", "--bin", "serve"],
        ),
        (
            "bench-scale",
            &["run", "--release", "-p", "obx-bench", "--bin", "scale"],
        ),
        (
            "bench-modes",
            &["run", "--release", "-p", "obx-bench", "--bin", "modes"],
        ),
    ];

    let step_names: Vec<&str> = steps.iter().map(|(n, _)| *n).collect();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let filter = match StepFilter::parse(&args, &step_names) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("obx-ci: {e}");
            eprintln!("usage: obx-ci [--only STEP]... [--skip STEP]...");
            std::process::exit(2);
        }
    };

    let mut all_ok = true;
    for (name, args) in steps {
        if !filter.selects(name) {
            eprintln!("== {name}: skipped by step filter");
            results.push(StepResult {
                name,
                command: format!("cargo {}", args.join(" ")),
                status: "skip",
                wall_ms: 0.0,
            });
            continue;
        }
        let ok = run_step(&rec, &mut results, name, args, &root);
        all_ok &= ok;
        // A broken build makes every later step noise; stop early there.
        if !ok && matches!(name, "fmt" | "clippy" | "build") {
            eprintln!("== aborting after failed {name} step");
            break;
        }
    }

    // Bench regression gate: fresh numbers vs the committed baseline.
    // Only benches that actually ran this invocation are gated — a step
    // dropped by `--only`/`--skip` neither compares nor demands a
    // baseline.
    let ran = |step: &str| results.iter().any(|r| r.name == step && r.status != "skip");
    let mut deltas: Vec<Delta> = Vec::new();
    let mut regressions: Vec<String> = Vec::new();
    if BENCHES.iter().any(|(step, _, _, _)| ran(step)) {
        let mut gate_span = rec.kernel("regression-gate");
        for ((step, file, _, _), baseline) in BENCHES.iter().zip(&baselines) {
            if !ran(step) {
                continue;
            }
            let Some(baseline) = baseline else {
                // A registered bench without a committed baseline is an
                // ungated bench: fail loudly instead of skipping, or the
                // gate silently rots as benches are added.
                regressions.push(format!(
                    "{file}: no committed baseline for registered bench step {step} \
                     (run the bench and commit the file)"
                ));
                continue;
            };
            let Ok(fresh) = std::fs::read_to_string(root.join(file)) else {
                continue;
            };
            deltas.extend(bench_deltas(file, baseline, &fresh));
        }
        // Wall-time keys on a loaded machine swing well past the
        // tolerance (the bins' internal best-of-N only de-noises within
        // one process). Before failing, re-run each offending bench bin
        // once and gate on the better of the two runs — one bounded
        // retry, not a loop, and only for files that would fail. The
        // bins' own deterministic hard gates (node ratios, speedup
        // floors, byte-identity) run again too and can still fail the
        // step outright.
        let retry_files: Vec<&'static str> = deltas
            .iter()
            .filter(|d| fails_gate(d))
            .map(|d| d.file)
            .collect();
        for (_, file, bin, name) in BENCHES {
            if !retry_files.contains(&file) {
                continue;
            }
            eprintln!("== regression gate: {file} over tolerance, retrying its bench once");
            let ok = run_step(
                &rec,
                &mut results,
                name,
                &["run", "--release", "-p", "obx-bench", "--bin", bin],
                &root,
            );
            all_ok &= ok;
            let baseline = bench_files
                .iter()
                .position(|f| *f == file)
                .and_then(|i| baselines[i].as_deref());
            let (Some(baseline), Ok(second)) = (baseline, std::fs::read_to_string(root.join(file)))
            else {
                continue;
            };
            // Keep the better (smaller `_ms`, larger speedup) of the two
            // runs per key.
            for second_d in bench_deltas(file, baseline, &second) {
                if let Some(first_d) = deltas
                    .iter_mut()
                    .find(|d| d.file == file && d.key == second_d.key)
                {
                    if second_d.worse_frac < first_d.worse_frac {
                        *first_d = second_d;
                    }
                }
            }
        }
        for d in &deltas {
            if fails_gate(d) {
                regressions.push(format!(
                    "{}:{} {:.3} -> {:.3} (+{:.1}%)",
                    d.file,
                    d.key,
                    d.base,
                    d.fresh,
                    d.worse_frac * 100.0
                ));
            }
        }
        gate_span.count("compared", deltas.len() as u64);
        gate_span.count("regressions", regressions.len() as u64);
        drop(gate_span);
        eprintln!(
            "== regression gate (tolerance {:.0}%)",
            REGRESSION_TOLERANCE * 100.0
        );
        print_delta_table(&deltas);
        let gate_ok = regressions.is_empty();
        results.push(StepResult {
            name: "regression-gate",
            command: format!(
                "compare fresh benches vs committed baselines (>{:.0}% _ms fails)",
                REGRESSION_TOLERANCE * 100.0
            ),
            status: if gate_ok { "pass" } else { "fail" },
            wall_ms: 0.0,
        });
        if !gate_ok {
            all_ok = false;
            for r in &regressions {
                eprintln!("REGRESSION: {r}");
            }
        }
    }

    drop(run_span);
    let total_ms = started.elapsed().as_secs_f64() * 1e3;

    // Per-step wall-time table: where the pipeline's minutes go, at a
    // glance, both on stderr and as the report's `"timings"` object.
    eprintln!("== step timings");
    let mut timings_json = String::new();
    for (i, r) in results.iter().enumerate() {
        eprintln!("{:<22} {:>9.0} ms  {}", r.name, r.wall_ms, r.status);
        if i > 0 {
            timings_json.push(',');
        }
        timings_json.push_str(&format!("\"{}\":{:.1}", json_escape(r.name), r.wall_ms));
    }

    // CI_REPORT.json: per-step status/timings plus the recorder profile.
    let mut steps_json = String::new();
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            steps_json.push(',');
        }
        steps_json.push_str(&format!(
            "{{\"name\":\"{}\",\"command\":\"{}\",\"status\":\"{}\",\"wall_ms\":{:.1}}}",
            json_escape(r.name),
            json_escape(&r.command),
            r.status,
            r.wall_ms
        ));
    }
    let mut regressions_json = String::new();
    for (i, r) in regressions.iter().enumerate() {
        if i > 0 {
            regressions_json.push(',');
        }
        regressions_json.push_str(&format!("\"{}\"", json_escape(r)));
    }
    let report = format!(
        "{{\"ok\":{all_ok},\"total_ms\":{total_ms:.1},\"steps\":[{steps_json}],\
         \"timings\":{{{timings_json}}},\
         \"regressions\":[{regressions_json}],\"profile\":{}}}\n",
        rec.profile().to_json()
    );
    let report_path = root.join("CI_REPORT.json");
    if let Err(e) = std::fs::write(&report_path, &report) {
        eprintln!("failed to write {}: {e}", report_path.display());
    } else {
        eprintln!("== wrote {}", report_path.display());
    }

    eprintln!(
        "== CI {} in {:.1}s",
        if all_ok { "PASSED" } else { "FAILED" },
        total_ms / 1e3
    );
    std::process::exit(i32::from(!all_ok));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_level_numbers_skips_nested_profile() {
        let json = r#"{"a_ms":12.5,"name":"x","profile":{"spans":[{"wall_ms":9.0}]},"b":3}"#;
        let got = top_level_numbers(json);
        assert_eq!(
            got,
            vec![("a_ms".to_owned(), 12.5), ("b".to_owned(), 3.0)],
            "nested profile numbers must not leak into the baseline set"
        );
    }

    const KNOWN: [&str; 4] = ["fmt", "clippy", "test", "bench-modes"];

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn empty_filter_selects_everything() {
        let f = StepFilter::parse(&[], &KNOWN).unwrap();
        for step in KNOWN {
            assert!(f.selects(step), "{step} must run by default");
        }
    }

    #[test]
    fn only_keeps_the_named_steps() {
        let f =
            StepFilter::parse(&strs(&["--only", "bench-modes", "--only", "fmt"]), &KNOWN).unwrap();
        assert!(f.selects("fmt"));
        assert!(f.selects("bench-modes"));
        assert!(!f.selects("clippy"));
        assert!(!f.selects("test"));
    }

    #[test]
    fn skip_drops_steps_and_wins_over_only() {
        let f = StepFilter::parse(&strs(&["--skip", "test"]), &KNOWN).unwrap();
        assert!(f.selects("fmt"));
        assert!(!f.selects("test"));
        // A step both kept and skipped does not run: skip wins.
        let f = StepFilter::parse(&strs(&["--only", "fmt", "--skip", "fmt"]), &KNOWN).unwrap();
        assert!(!f.selects("fmt"));
    }

    #[test]
    fn unknown_steps_flags_and_missing_values_are_errors() {
        let e = StepFilter::parse(&strs(&["--only", "bench-nope"]), &KNOWN).unwrap_err();
        assert!(e.contains("unknown step `bench-nope`"), "{e}");
        assert!(
            e.contains("bench-modes"),
            "error must list valid steps: {e}"
        );
        let e = StepFilter::parse(&strs(&["--fast"]), &KNOWN).unwrap_err();
        assert!(e.contains("unknown flag"), "{e}");
        let e = StepFilter::parse(&strs(&["--skip"]), &KNOWN).unwrap_err();
        assert!(e.contains("requires a step name"), "{e}");
    }

    #[test]
    fn every_registered_bench_is_a_known_step_with_distinct_files() {
        // The gate keys off BENCHES; a typo between the steps array and
        // this table would silently un-gate a bench. The steps array
        // lives in main(), so pin the invariants the table itself can
        // carry: unique step names, unique files, retry names derived
        // from step names.
        for (i, (step, file, _, retry)) in BENCHES.iter().enumerate() {
            assert_eq!(*retry, format!("{step}-retry"));
            assert!(file.starts_with("BENCH_") && file.ends_with(".json"));
            for (step2, file2, _, _) in &BENCHES[i + 1..] {
                assert_ne!(step, step2);
                assert_ne!(file, file2);
            }
        }
    }

    #[test]
    fn gate_requires_relative_and_absolute_regression() {
        let d = |base: f64, fresh: f64, gated: bool| Delta {
            file: "BENCH_test.json",
            key: "x_ms".to_owned(),
            base,
            fresh,
            worse_frac: (fresh - base) / base,
            gated,
        };
        // 48% worse but only 0.85 ms absolute: machine noise, passes.
        assert!(!fails_gate(&d(1.772, 2.620, true)));
        // 25% worse and 100 ms absolute: real regression, fails.
        assert!(fails_gate(&d(400.0, 500.0, true)));
        // Huge absolute delta but within 20% relative: passes.
        assert!(!fails_gate(&d(1000.0, 1100.0, true)));
        // Ungated keys never fail regardless of magnitude.
        assert!(!fails_gate(&d(10.0, 1000.0, false)));
    }
}

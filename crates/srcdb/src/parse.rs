//! Text formats for schemas and databases.
//!
//! Schema: whitespace-separated `NAME/ARITY` items, `#` line comments.
//!
//! ```text
//! # the paper's Example 3.6 source schema
//! STUD/1 LOC/2 ENR/3
//! ```
//!
//! Database: one fact per line, `NAME(arg, arg, ...)` with an optional
//! trailing `.`; arguments may be bare identifiers or quoted strings.
//!
//! ```text
//! ENR(A10, Math, TV).
//! LOC("TV", "Rome")
//! ```
//!
//! Two entry points per artifact: the strict parsers ([`parse_schema`],
//! [`parse_database`], [`add_facts`]) stop at the first problem, while the
//! `_diag` variants ([`parse_schema_diag`], [`parse_database_diag`],
//! [`add_facts_diag`]) record every problem as a positioned
//! [`Diagnostic`] (codes `OBX10x` / `OBX11x`), skip the offending item or
//! line, and keep going — the admission-control path the CLI builds on.

// Parsers run on untrusted user input: they must never panic.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::database::Database;
use crate::schema::{Schema, SchemaError};
use obx_util::diag::{col_of, Diagnostic, Diagnostics};
use std::fmt;

/// Errors from the schema/database text parsers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Malformed syntax, with a 1-based line/column and message.
    Syntax {
        /// Line where the problem was found.
        line: usize,
        /// 1-based character column; `0` means the whole line.
        col: usize,
        /// Description of the problem.
        msg: String,
    },
    /// A schema-level violation (unknown relation, arity mismatch, ...).
    Schema(SchemaError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Syntax { line, col: 0, msg } => write!(f, "line {line}: {msg}"),
            ParseError::Syntax { line, col, msg } => write!(f, "line {line}:{col}: {msg}"),
            ParseError::Schema(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<SchemaError> for ParseError {
    fn from(e: SchemaError) -> Self {
        ParseError::Schema(e)
    }
}

fn syntax(line: usize, col: usize, msg: impl Into<String>) -> ParseError {
    ParseError::Syntax {
        line,
        col,
        msg: msg.into(),
    }
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

/// How a parse driver reacts to one positioned error: strict parsers
/// propagate it (`Err` aborts the parse), diagnostic parsers record it and
/// return `Ok(())` so the driver skips the item and continues.
type Sink<'a> = dyn FnMut(usize, usize, ParseError) -> Result<(), ParseError> + 'a;

/// Maps a srcdb [`ParseError`] to its diagnostic code and optional hint.
fn schema_code(e: &ParseError) -> (&'static str, Option<String>) {
    match e {
        ParseError::Syntax { msg, .. } if msg.contains("expected NAME/ARITY") => (
            "OBX101",
            Some("declare relations as `NAME/ARITY`, e.g. `LOC/2`".to_owned()),
        ),
        ParseError::Syntax { msg, .. } if msg.contains("empty relation name") => ("OBX102", None),
        ParseError::Syntax { .. } => (
            "OBX103",
            Some("the arity must be a positive integer, e.g. `LOC/2`".to_owned()),
        ),
        ParseError::Schema(SchemaError::Duplicate(_)) => (
            "OBX104",
            Some("remove or rename one of the declarations".to_owned()),
        ),
        ParseError::Schema(_) => (
            "OBX105",
            Some("relations need at least one column".to_owned()),
        ),
    }
}

fn data_code(e: &ParseError) -> (&'static str, Option<String>) {
    match e {
        ParseError::Syntax { msg, .. } if msg.contains("empty argument") => ("OBX112", None),
        ParseError::Syntax { .. } => (
            "OBX111",
            Some("facts are written `NAME(arg, ...)` with an optional trailing `.`".to_owned()),
        ),
        ParseError::Schema(SchemaError::Unknown(_)) => (
            "OBX113",
            Some("declare the relation in schema.obx or fix the name".to_owned()),
        ),
        ParseError::Schema(SchemaError::ArityMismatch { rel, expected, .. }) => (
            "OBX114",
            Some(format!("`{rel}` is declared with {expected} column(s)")),
        ),
        ParseError::Schema(_) => ("OBX110", None),
    }
}

/// A sink that records every error as a [`Diagnostic`] and keeps parsing.
fn diag_sink<'a>(
    file: &'a str,
    code_of: fn(&ParseError) -> (&'static str, Option<String>),
    diags: &'a mut Diagnostics,
) -> impl FnMut(usize, usize, ParseError) -> Result<(), ParseError> + 'a {
    move |line, col, e| {
        let (code, hint) = code_of(&e);
        let msg = match &e {
            ParseError::Syntax { msg, .. } => msg.clone(),
            ParseError::Schema(se) => se.to_string(),
        };
        let mut d = Diagnostic::error(file, line, col, code, msg);
        if let Some(h) = hint {
            d = d.with_hint(h);
        }
        diags.push(d);
        Ok(())
    }
}

fn parse_schema_with(text: &str, sink: &mut Sink<'_>) -> Result<Schema, ParseError> {
    let mut schema = Schema::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim();
        for item in line.split_whitespace() {
            let col = col_of(raw, item);
            let result = (|| -> Result<(), ParseError> {
                let (name, arity) = item.split_once('/').ok_or_else(|| {
                    syntax(
                        lineno + 1,
                        col,
                        format!("expected NAME/ARITY, got `{item}`"),
                    )
                })?;
                if name.is_empty() {
                    return Err(syntax(lineno + 1, col, "empty relation name"));
                }
                let arity: usize = arity
                    .parse()
                    .map_err(|_| syntax(lineno + 1, col, format!("bad arity in `{item}`")))?;
                schema.declare(name, arity)?;
                Ok(())
            })();
            if let Err(e) = result {
                sink(lineno + 1, col, e)?;
            }
        }
    }
    Ok(schema)
}

/// Parses a schema from `NAME/ARITY` items, stopping at the first error.
pub fn parse_schema(text: &str) -> Result<Schema, ParseError> {
    parse_schema_with(text, &mut |_, _, e| Err(e))
}

/// Best-effort schema parse: every problem becomes a [`Diagnostic`]
/// (`OBX101`–`OBX105`) in `diags`, the offending item is skipped, and the
/// relations that did parse are returned.
pub fn parse_schema_diag(text: &str, file: &str, diags: &mut Diagnostics) -> Schema {
    let mut sink = diag_sink(file, schema_code, diags);
    // The sink never returns `Err`, so the driver cannot fail.
    parse_schema_with(text, &mut sink).unwrap_or_default()
}

/// Splits `NAME(a, b, c)` into its name and raw argument strings.
/// Also used by the query and mapping parsers in downstream crates.
pub fn split_atom(line: &str) -> Option<(&str, Vec<&str>)> {
    let open = line.find('(')?;
    let close = line.rfind(')')?;
    if close < open {
        return None;
    }
    let name = line[..open].trim();
    if name.is_empty() || !line[close + 1..].trim().is_empty() {
        return None;
    }
    let inner = &line[open + 1..close];
    let args: Vec<&str> = if inner.trim().is_empty() {
        Vec::new()
    } else {
        inner.split(',').map(str::trim).collect()
    };
    Some((name, args))
}

/// Removes surrounding single or double quotes, if present.
pub fn unquote(s: &str) -> &str {
    let b = s.as_bytes();
    if b.len() >= 2
        && (b[0] == b'"' && b[b.len() - 1] == b'"' || b[0] == b'\'' && b[b.len() - 1] == b'\'')
    {
        &s[1..s.len() - 1]
    } else {
        s
    }
}

fn add_facts_with(db: &mut Database, text: &str, sink: &mut Sink<'_>) -> Result<(), ParseError> {
    for (lineno, raw) in text.lines().enumerate() {
        let mut line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        line = line.strip_suffix('.').unwrap_or(line).trim_end();
        let col = col_of(raw, line);
        let result = (|| -> Result<(), ParseError> {
            let (name, args) = split_atom(line)
                .ok_or_else(|| syntax(lineno + 1, col, format!("bad fact `{line}`")))?;
            for a in &args {
                if a.is_empty() {
                    return Err(syntax(lineno + 1, col, "empty argument"));
                }
            }
            let args: Vec<&str> = args.iter().map(|a| unquote(a)).collect();
            db.insert_named(name, &args)?;
            Ok(())
        })();
        if let Err(e) = result {
            sink(lineno + 1, col, e)?;
        }
    }
    Ok(())
}

/// Parses database facts into a fresh [`Database`] over `schema`,
/// stopping at the first error.
pub fn parse_database(schema: Schema, text: &str) -> Result<Database, ParseError> {
    let mut db = Database::new(schema);
    add_facts(&mut db, text)?;
    Ok(db)
}

/// Parses facts and inserts them into an existing database, stopping at
/// the first error.
pub fn add_facts(db: &mut Database, text: &str) -> Result<(), ParseError> {
    add_facts_with(db, text, &mut |_, _, e| Err(e))
}

/// Best-effort database parse over `schema`: every bad line becomes a
/// [`Diagnostic`] (`OBX111`–`OBX114`) in `diags` and is skipped; the facts
/// that did parse are returned.
pub fn parse_database_diag(
    schema: Schema,
    text: &str,
    file: &str,
    diags: &mut Diagnostics,
) -> Database {
    let mut db = Database::new(schema);
    add_facts_diag(&mut db, text, file, diags);
    db
}

/// Best-effort [`add_facts`]: bad lines are recorded and skipped.
pub fn add_facts_diag(db: &mut Database, text: &str, file: &str, diags: &mut Diagnostics) {
    let mut sink = diag_sink(file, data_code, diags);
    // The sink never returns `Err`, so the driver cannot fail.
    let _ = add_facts_with(db, text, &mut sink);
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn schema_roundtrip() {
        let s = parse_schema("STUD/1 LOC/2\n# comment\nENR/3").unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.arity(s.rel("ENR").unwrap()), 3);
    }

    #[test]
    fn schema_errors() {
        assert!(matches!(parse_schema("R"), Err(ParseError::Syntax { .. })));
        assert!(matches!(
            parse_schema("R/x"),
            Err(ParseError::Syntax { .. })
        ));
        assert!(matches!(
            parse_schema("R/2 R/2"),
            Err(ParseError::Schema(SchemaError::Duplicate(_)))
        ));
        assert!(matches!(
            parse_schema("R/0"),
            Err(ParseError::Schema(SchemaError::ZeroArity(_)))
        ));
    }

    #[test]
    fn schema_errors_carry_positions() {
        let e = parse_schema("STUD/1 LOC/x").unwrap_err();
        assert!(
            matches!(
                e,
                ParseError::Syntax {
                    line: 1,
                    col: 8,
                    ..
                }
            ),
            "{e:?}"
        );
        assert_eq!(e.to_string(), "line 1:8: bad arity in `LOC/x`");
    }

    #[test]
    fn schema_diag_collects_every_problem_and_keeps_the_rest() {
        let mut diags = Diagnostics::new();
        let s = parse_schema_diag("STUD/1 LOC/x\nR/0 ENR/3\nSTUD/1", "schema.obx", &mut diags);
        // STUD and ENR parse; LOC/x, R/0 and the duplicate STUD do not.
        assert_eq!(s.len(), 2);
        assert!(s.rel("ENR").is_ok());
        let codes: Vec<&str> = diags.iter().map(|d| d.code).collect();
        assert_eq!(codes, vec!["OBX103", "OBX105", "OBX104"]);
        assert!(diags.iter().all(|d| d.line > 0 && d.col > 0));
        assert_eq!(diags.iter().next().unwrap().col, 8);
    }

    #[test]
    fn database_facts_with_comments_quotes_periods() {
        let schema = parse_schema("ENR/3 LOC/2").unwrap();
        let db = parse_database(
            schema,
            r#"
            # enrolment facts
            ENR(A10, Math, TV).
            LOC("TV", 'Rome')
            "#,
        )
        .unwrap();
        assert_eq!(db.len(), 2);
        assert!(db.consts().get("Rome").is_some());
        assert!(db.consts().get("'Rome'").is_none());
    }

    #[test]
    fn database_rejects_bad_facts() {
        let schema = parse_schema("R/2").unwrap();
        assert!(matches!(
            parse_database(parse_schema("R/2").unwrap(), "R(a b)"),
            Err(ParseError::Schema(SchemaError::ArityMismatch { .. }))
        ));
        assert!(matches!(
            parse_database(schema, "R a, b"),
            Err(ParseError::Syntax { .. })
        ));
        assert!(matches!(
            parse_database(parse_schema("R/2").unwrap(), "Q(a, b)"),
            Err(ParseError::Schema(SchemaError::Unknown(_)))
        ));
        assert!(matches!(
            parse_database(parse_schema("R/2").unwrap(), "R(a,)"),
            Err(ParseError::Syntax { .. })
        ));
    }

    #[test]
    fn database_diag_reports_all_bad_lines() {
        let schema = parse_schema("R/2").unwrap();
        let mut diags = Diagnostics::new();
        let db = parse_database_diag(
            schema,
            "R(a, b)\nQ(a, b)\nR(a, b, c)\nnot a fact\nR(x, y)",
            "data.obx",
            &mut diags,
        );
        assert_eq!(db.len(), 2, "the two good facts survive");
        let codes: Vec<(&str, usize)> = diags.iter().map(|d| (d.code, d.line)).collect();
        assert_eq!(codes, vec![("OBX113", 2), ("OBX114", 3), ("OBX111", 4)]);
    }

    #[test]
    fn split_atom_edge_cases() {
        assert_eq!(split_atom("R(a, b)"), Some(("R", vec!["a", "b"])));
        assert_eq!(split_atom("R()"), Some(("R", vec![])));
        assert_eq!(split_atom("R(a) trailing"), None);
        assert_eq!(split_atom("(a)"), None);
        assert_eq!(split_atom("Ra, b)"), None);
    }

    #[test]
    fn unquote_variants() {
        assert_eq!(unquote("\"Rome\""), "Rome");
        assert_eq!(unquote("'Rome'"), "Rome");
        assert_eq!(unquote("Rome"), "Rome");
        assert_eq!(unquote("\""), "\"");
        assert_eq!(unquote(""), "");
    }
}

//! Text formats for schemas and databases.
//!
//! Schema: whitespace-separated `NAME/ARITY` items, `#` line comments.
//!
//! ```text
//! # the paper's Example 3.6 source schema
//! STUD/1 LOC/2 ENR/3
//! ```
//!
//! Database: one fact per line, `NAME(arg, arg, ...)` with an optional
//! trailing `.`; arguments may be bare identifiers or quoted strings.
//!
//! ```text
//! ENR(A10, Math, TV).
//! LOC("TV", "Rome")
//! ```

use crate::database::Database;
use crate::schema::{Schema, SchemaError};
use std::fmt;

/// Errors from the schema/database text parsers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Malformed syntax, with a 1-based line number and message.
    Syntax {
        /// Line where the problem was found.
        line: usize,
        /// Description of the problem.
        msg: String,
    },
    /// A schema-level violation (unknown relation, arity mismatch, ...).
    Schema(SchemaError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Syntax { line, msg } => write!(f, "line {line}: {msg}"),
            ParseError::Schema(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<SchemaError> for ParseError {
    fn from(e: SchemaError) -> Self {
        ParseError::Schema(e)
    }
}

fn syntax(line: usize, msg: impl Into<String>) -> ParseError {
    ParseError::Syntax {
        line,
        msg: msg.into(),
    }
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Parses a schema from `NAME/ARITY` items.
pub fn parse_schema(text: &str) -> Result<Schema, ParseError> {
    let mut schema = Schema::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim();
        for item in line.split_whitespace() {
            let (name, arity) = item
                .split_once('/')
                .ok_or_else(|| syntax(lineno + 1, format!("expected NAME/ARITY, got `{item}`")))?;
            if name.is_empty() {
                return Err(syntax(lineno + 1, "empty relation name"));
            }
            let arity: usize = arity
                .parse()
                .map_err(|_| syntax(lineno + 1, format!("bad arity in `{item}`")))?;
            schema.declare(name, arity)?;
        }
    }
    Ok(schema)
}

/// Splits `NAME(a, b, c)` into its name and raw argument strings.
/// Also used by the query and mapping parsers in downstream crates.
pub fn split_atom(line: &str) -> Option<(&str, Vec<&str>)> {
    let open = line.find('(')?;
    let close = line.rfind(')')?;
    if close < open {
        return None;
    }
    let name = line[..open].trim();
    if name.is_empty() || !line[close + 1..].trim().is_empty() {
        return None;
    }
    let inner = &line[open + 1..close];
    let args: Vec<&str> = if inner.trim().is_empty() {
        Vec::new()
    } else {
        inner.split(',').map(str::trim).collect()
    };
    Some((name, args))
}

/// Removes surrounding single or double quotes, if present.
pub fn unquote(s: &str) -> &str {
    let b = s.as_bytes();
    if b.len() >= 2 && (b[0] == b'"' && b[b.len() - 1] == b'"' || b[0] == b'\'' && b[b.len() - 1] == b'\'')
    {
        &s[1..s.len() - 1]
    } else {
        s
    }
}

/// Parses database facts into a fresh [`Database`] over `schema`.
pub fn parse_database(schema: Schema, text: &str) -> Result<Database, ParseError> {
    let mut db = Database::new(schema);
    add_facts(&mut db, text)?;
    Ok(db)
}

/// Parses facts and inserts them into an existing database.
pub fn add_facts(db: &mut Database, text: &str) -> Result<(), ParseError> {
    for (lineno, raw) in text.lines().enumerate() {
        let mut line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        line = line.strip_suffix('.').unwrap_or(line).trim_end();
        let (name, args) =
            split_atom(line).ok_or_else(|| syntax(lineno + 1, format!("bad fact `{line}`")))?;
        for a in &args {
            if a.is_empty() {
                return Err(syntax(lineno + 1, "empty argument"));
            }
        }
        let args: Vec<&str> = args.iter().map(|a| unquote(a)).collect();
        db.insert_named(name, &args)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_roundtrip() {
        let s = parse_schema("STUD/1 LOC/2\n# comment\nENR/3").unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.arity(s.rel("ENR").unwrap()), 3);
    }

    #[test]
    fn schema_errors() {
        assert!(matches!(parse_schema("R"), Err(ParseError::Syntax { .. })));
        assert!(matches!(parse_schema("R/x"), Err(ParseError::Syntax { .. })));
        assert!(matches!(
            parse_schema("R/2 R/2"),
            Err(ParseError::Schema(SchemaError::Duplicate(_)))
        ));
        assert!(matches!(
            parse_schema("R/0"),
            Err(ParseError::Schema(SchemaError::ZeroArity(_)))
        ));
    }

    #[test]
    fn database_facts_with_comments_quotes_periods() {
        let schema = parse_schema("ENR/3 LOC/2").unwrap();
        let db = parse_database(
            schema,
            r#"
            # enrolment facts
            ENR(A10, Math, TV).
            LOC("TV", 'Rome')
            "#,
        )
        .unwrap();
        assert_eq!(db.len(), 2);
        assert!(db.consts().get("Rome").is_some());
        assert!(db.consts().get("'Rome'").is_none());
    }

    #[test]
    fn database_rejects_bad_facts() {
        let schema = parse_schema("R/2").unwrap();
        assert!(matches!(
            parse_database(parse_schema("R/2").unwrap(), "R(a b)"),
            Err(ParseError::Schema(SchemaError::ArityMismatch { .. }))
        ));
        assert!(matches!(
            parse_database(schema, "R a, b"),
            Err(ParseError::Syntax { .. })
        ));
        assert!(matches!(
            parse_database(parse_schema("R/2").unwrap(), "Q(a, b)"),
            Err(ParseError::Schema(SchemaError::Unknown(_)))
        ));
        assert!(matches!(
            parse_database(parse_schema("R/2").unwrap(), "R(a,)"),
            Err(ParseError::Syntax { .. })
        ));
    }

    #[test]
    fn split_atom_edge_cases() {
        assert_eq!(split_atom("R(a, b)"), Some(("R", vec!["a", "b"])));
        assert_eq!(split_atom("R()"), Some(("R", vec![])));
        assert_eq!(split_atom("R(a) trailing"), None);
        assert_eq!(split_atom("(a)"), None);
        assert_eq!(split_atom("Ra, b)"), None);
    }

    #[test]
    fn unquote_variants() {
        assert_eq!(unquote("\"Rome\""), "Rome");
        assert_eq!(unquote("'Rome'"), "Rome");
        assert_eq!(unquote("Rome"), "Rome");
        assert_eq!(unquote("\""), "\"");
        assert_eq!(unquote(""), "");
    }
}

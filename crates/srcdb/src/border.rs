//! Reachability and the border of radius `r` (Definitions 3.1 and 3.2).
//!
//! The border `B_{t,r}(D)` collects the atoms of `D` relevant to a
//! classified tuple `t`: layer `W_{t,0}` holds the atoms mentioning a
//! constant of `t`, and layer `W_{t,j+1}` holds the atoms *newly* reached
//! from layer `j` by sharing a constant.
//!
//! **Semantics note.** Read literally, Definition 3.2 would put *every*
//! atom reachable from `W_{t,j}` into `W_{t,j+1}`, re-including earlier
//! layers (an atom always shares a constant with itself). The paper's
//! Example 3.3 shows the intended reading — `W_{t,1}(D) = {Z(c,d)}` only,
//! i.e. BFS frontier layers. We implement the frontier semantics; the
//! *border* (the union of layers, which is what Definitions 3.4+ consume)
//! is identical under both readings, and a property test below checks that
//! union-equivalence.
//!
//! Complexity: one BFS over the bipartite constant–atom incidence graph
//! using [`Database::atoms_mentioning`], i.e. `O(Σ |incident atoms|)` —
//! near-linear in the size of the reached sub-database (experiment E8).

// BFS shards run on the shared worker pool; a panic in one shard would
// poison the pool for every later caller in the process.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::atom::AtomId;
use crate::consts::Const;
use crate::database::Database;
use crate::view::View;
use obx_util::pool::{configured_threads, WorkerPool};
use obx_util::FxHashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{LazyLock, OnceLock};

/// Process-wide count of materialised border atoms (per-run counts live on
/// the `border` span).
static BORDER_ATOMS: LazyLock<&'static obx_util::obs::Counter> =
    LazyLock::new(|| obx_util::obs::counter("obx.border.atoms"));

/// The process-wide pool sharding frontier expansion. Spawned lazily on
/// the first layer big enough to parallelise, sized like the scoring pool
/// (`OBX_THREADS`, else available parallelism; the caller participates,
/// so `n - 1` extra threads).
static BORDER_POOL: OnceLock<WorkerPool> = OnceLock::new();

fn border_pool() -> &'static WorkerPool {
    BORDER_POOL
        .get_or_init(|| WorkerPool::named(configured_threads().saturating_sub(1), "obx-border"))
}

/// Number of extra worker threads the border pool will engage (0 on a
/// single-core host, where `BorderMode::Auto` always expands serially).
/// Benchmarks consult this to know whether a parallel-beats-serial
/// expectation is even meaningful on the current machine.
pub fn border_workers() -> usize {
    border_pool().workers()
}

/// Incident-atom work below which a layer expands serially: sharding a
/// small frontier costs more in latch traffic than the scan itself.
const PARALLEL_WORK_THRESHOLD: usize = 1 << 13;

/// Frontier items per work chunk. Chunks are claimed off an atomic cursor
/// (dynamic distribution — a hub constant's huge posting delays only the
/// thread that drew it) and merged back **in chunk order**, which is what
/// keeps parallel discovery order byte-identical to the serial loop.
const CHUNK: usize = 256;

/// Forcing knob for the layer-expansion strategy, mostly for equivalence
/// tests and incident diagnosis. [`BorderMode::Auto`] (the default
/// everywhere) picks per layer based on the incident-atom work estimate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BorderMode {
    /// Parallelise a layer when its work estimate crosses the threshold.
    #[default]
    Auto,
    /// Always expand on the calling thread.
    Serial,
    /// Always shard across the border pool.
    Parallel,
}

impl BorderMode {
    #[inline]
    fn parallel(self, work: usize) -> bool {
        match self {
            BorderMode::Serial => false,
            BorderMode::Parallel => true,
            BorderMode::Auto => work >= PARALLEL_WORK_THRESHOLD && border_pool().workers() > 0,
        }
    }
}

/// Runs `f` over `items` in [`CHUNK`]-sized slices on the border pool and
/// returns each chunk's output **in chunk index order** — the merge side
/// then replays first-occurrence dedup exactly as the serial loop would.
/// `f` must only read shared state.
fn chunked_map<T, U, F>(items: &[T], f: F) -> Vec<Vec<U>>
where
    T: Sync,
    U: Send + Sync,
    F: Fn(&[T]) -> Vec<U> + Sync,
{
    let n_chunks = items.len().div_ceil(CHUNK);
    let slots: Vec<OnceLock<Vec<U>>> = (0..n_chunks).map(|_| OnceLock::new()).collect();
    let cursor = AtomicUsize::new(0);
    border_pool().run(&|| loop {
        let i = cursor.fetch_add(1, Ordering::Relaxed);
        if i >= n_chunks {
            break;
        }
        let start = i * CHUNK;
        let end = ((i + 1) * CHUNK).min(items.len());
        let _ = slots[i].set(f(&items[start..end]));
    });
    slots
        .into_iter()
        .map(|s| match s.into_inner() {
            Some(v) => v,
            // Only reachable if a pool job panicked mid-chunk; dropping
            // atoms silently would corrupt the border, so propagate.
            None => panic!("border expansion chunk lost to a worker panic"),
        })
        .collect()
}

/// The candidate stream for the next BFS layer: for every frontier
/// constant (in order), the incident atoms not already in the border.
/// Intra-layer duplicates are *not* removed here — the caller's in-order
/// `all.insert` merge does that, reproducing serial discovery order.
fn expand_candidates(
    db: &Database,
    frontier: &[Const],
    all: &FxHashSet<AtomId>,
) -> Vec<Vec<AtomId>> {
    chunked_map(frontier, |consts| {
        let mut out = Vec::new();
        for &c in consts {
            for &id in db.atoms_mentioning(c) {
                if !all.contains(&id) {
                    out.push(id);
                }
            }
        }
        out
    })
}

/// Collects the next frontier — constants first seen in `layer`'s atoms —
/// in serial discovery order, sharding the scan when the layer is large.
fn collect_frontier(
    db: &Database,
    layer: &[AtomId],
    seen_consts: &mut FxHashSet<Const>,
    mode: BorderMode,
) -> Vec<Const> {
    let mut next_frontier = Vec::new();
    if mode.parallel(layer.len()) {
        let chunks = chunked_map(layer, |ids| {
            let mut out = Vec::new();
            for &id in ids {
                for &c in db.atom(id).args.iter() {
                    if !seen_consts.contains(&c) {
                        out.push(c);
                    }
                }
            }
            out
        });
        for c in chunks.into_iter().flatten() {
            if seen_consts.insert(c) {
                next_frontier.push(c);
            }
        }
    } else {
        for &id in layer {
            for &c in db.atom(id).args.iter() {
                if seen_consts.insert(c) {
                    next_frontier.push(c);
                }
            }
        }
    }
    next_frontier
}

/// Charges one completed BFS layer (`atoms` new border atoms) to the
/// interrupt's resource guard, if any. Returns `false` when the guard has
/// tripped — callers stop extending the border, which stays valid at its
/// current (smaller) radius.
fn charge_layer(interrupt: &obx_util::Interrupt, atoms: usize) -> bool {
    match interrupt.guard() {
        Some(g) => g.charge(
            obx_util::GuardKind::BorderAtoms,
            atoms,
            atoms * std::mem::size_of::<AtomId>(),
        ),
        None => true,
    }
}

/// Definition 3.1: all atoms of `db` sharing a constant with some atom in
/// `from` (including the atoms of `from` themselves, which trivially share
/// their own constants). Exposed mostly for tests and documentation; the
/// border BFS below uses frontier bookkeeping instead of re-scanning.
pub fn reachable_from(db: &Database, from: &FxHashSet<AtomId>) -> FxHashSet<AtomId> {
    let mut out = FxHashSet::default();
    let mut seen_consts: FxHashSet<Const> = FxHashSet::default();
    for &id in from {
        for &c in db.atom(id).args.iter() {
            if seen_consts.insert(c) {
                out.extend(db.atoms_mentioning(c).iter().copied());
            }
        }
    }
    out
}

/// The border `B_{t,r}(D)` of a tuple, with its BFS layers `W_{t,j}`.
///
/// A `Border` can be [extended](Border::extend) to a larger radius without
/// recomputing earlier layers — the explanation engine grows borders lazily
/// when the radius parameter increases.
#[derive(Debug)]
pub struct Border {
    /// `layers[j]` = `W_{t,j}(D)`, in discovery order. Trailing layers may
    /// be empty when the BFS exhausted the connected component early.
    layers: Vec<Vec<AtomId>>,
    all: FxHashSet<AtomId>,
    /// Constants discovered in the most recent layer, not yet expanded.
    frontier: Vec<Const>,
    seen_consts: FxHashSet<Const>,
    /// Layer-expansion strategy, fixed at construction (extensions reuse it).
    mode: BorderMode,
}

impl Border {
    /// Computes `B_{t,radius}(D)` for the tuple `t` (given as its constants).
    pub fn compute(db: &Database, tuple: &[Const], radius: usize) -> Self {
        Self::compute_interruptible(db, tuple, radius, &obx_util::Interrupt::none())
    }

    /// [`Border::compute`] with a cooperative stop signal, polled once per
    /// BFS layer. If `interrupt` fires the border is returned *truncated*
    /// (fewer layers than requested) — still a valid border at its smaller
    /// radius, which is exactly what an anytime search wants.
    pub fn compute_interruptible(
        db: &Database,
        tuple: &[Const],
        radius: usize,
        interrupt: &obx_util::Interrupt,
    ) -> Self {
        Self::compute_with_mode(db, tuple, radius, interrupt, BorderMode::default())
    }

    /// [`Border::compute_interruptible`] with an explicit layer-expansion
    /// strategy. Every mode produces byte-identical layers — [`BorderMode`]
    /// only chooses *where* the incidence scans run.
    pub fn compute_with_mode(
        db: &Database,
        tuple: &[Const],
        radius: usize,
        interrupt: &obx_util::Interrupt,
        mode: BorderMode,
    ) -> Self {
        // Layer 0: atoms that mention a constant appearing in t. The tuple
        // has a handful of constants — always expanded on the caller.
        let mut seen_consts: FxHashSet<Const> = FxHashSet::default();
        let mut all: FxHashSet<AtomId> = FxHashSet::default();
        let mut layer0: Vec<AtomId> = Vec::new();
        for &c in tuple {
            if !seen_consts.insert(c) {
                continue;
            }
            for &id in db.atoms_mentioning(c) {
                if all.insert(id) {
                    layer0.push(id);
                }
            }
        }
        // Constants of t are expanded; constants first seen inside layer-0
        // atoms form the frontier for layer 1.
        let frontier = collect_frontier(db, &layer0, &mut seen_consts, mode);
        let layer0_len = layer0.len();
        let mut border = Self {
            layers: vec![layer0],
            all,
            frontier,
            seen_consts,
            mode,
        };
        let mut sp = obx_util::span!(interrupt.recorder(), "border");
        sp.count("atoms", layer0_len as u64);
        sp.count("layers", 1);
        sp.count_max("frontier_max", border.frontier.len() as u64);
        BORDER_ATOMS.add(layer0_len as u64);
        // Layer 0 is already materialized, so it is charged either way; a
        // trip just stops the border from growing past it.
        if charge_layer(interrupt, layer0_len) {
            border.extend_layers(db, radius, interrupt, &mut sp);
        }
        border
    }

    /// Grows the border so that at least `radius + 1` layers exist
    /// (`W_0 ..= W_radius`). No-op if already large enough.
    pub fn extend(&mut self, db: &Database, radius: usize) {
        self.extend_interruptible(db, radius, &obx_util::Interrupt::none());
    }

    /// [`Border::extend`] with a cooperative stop signal, polled once per
    /// layer. Returns `true` if the requested radius was reached, `false`
    /// if the interrupt fired first (the border stays valid at whatever
    /// radius it got to). An interrupt carrying a
    /// [`ResourceGuard`](obx_util::ResourceGuard) is charged per completed
    /// layer; a trip truncates the BFS the same way.
    pub fn extend_interruptible(
        &mut self,
        db: &Database,
        radius: usize,
        interrupt: &obx_util::Interrupt,
    ) -> bool {
        let mut sp = obx_util::span!(interrupt.recorder(), "border");
        self.extend_layers(db, radius, interrupt, &mut sp)
    }

    /// The BFS layer loop behind [`Border::compute_interruptible`] and
    /// [`Border::extend_interruptible`]; per-layer atom counts and the
    /// frontier high-water mark go on the caller's span so each public
    /// entry point records exactly one `border` span.
    fn extend_layers(
        &mut self,
        db: &Database,
        radius: usize,
        interrupt: &obx_util::Interrupt,
        sp: &mut obx_util::obs::Span<'_>,
    ) -> bool {
        while self.layers.len() <= radius {
            if interrupt.is_triggered() {
                return false;
            }
            // A border-atom budget exhausted earlier in the run blocks
            // further growth outright — no point materialising a layer
            // whose charge is guaranteed to fail.
            if interrupt
                .guard()
                .is_some_and(|g| g.is_exhausted(obx_util::GuardKind::BorderAtoms))
            {
                return false;
            }
            let mut layer: Vec<AtomId> = Vec::new();
            // Work estimate for the strategy choice: total incident atoms
            // across the frontier, an O(|frontier|) sum of index lengths.
            let work: usize = self.frontier.iter().map(|&c| db.count_mentioning(c)).sum();
            if self.mode.parallel(work) {
                // Shard the incidence scans (and the `all`-membership
                // filter) across the pool; the in-order merge below runs
                // first-occurrence dedup exactly like the serial loop, so
                // discovery order is byte-identical.
                let chunks = expand_candidates(db, &self.frontier, &self.all);
                for id in chunks.into_iter().flatten() {
                    if self.all.insert(id) {
                        layer.push(id);
                    }
                }
            } else {
                for &c in &self.frontier {
                    for &id in db.atoms_mentioning(c) {
                        if self.all.insert(id) {
                            layer.push(id);
                        }
                    }
                }
            }
            self.frontier = collect_frontier(db, &layer, &mut self.seen_consts, self.mode);
            let charged = charge_layer(interrupt, layer.len());
            sp.count("atoms", layer.len() as u64);
            sp.count("layers", 1);
            sp.count_max("frontier_max", self.frontier.len() as u64);
            BORDER_ATOMS.add(layer.len() as u64);
            self.layers.push(layer);
            if !charged {
                return false;
            }
        }
        true
    }

    /// Radius currently covered (`layers.len() - 1`).
    pub fn radius(&self) -> usize {
        self.layers.len() - 1
    }

    /// The layer `W_{t,j}(D)`, or `None` if `j` exceeds the computed radius.
    pub fn layer(&self, j: usize) -> Option<&[AtomId]> {
        self.layers.get(j).map(Vec::as_slice)
    }

    /// Number of layers computed (radius + 1).
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// The atoms of `B_{t,r}` for `r <= self.radius()`, as a fresh set.
    ///
    /// For `r == self.radius()` prefer [`Border::atoms`], which borrows.
    pub fn atoms_up_to(&self, r: usize) -> FxHashSet<AtomId> {
        assert!(r < self.layers.len(), "radius {r} not computed");
        let mut out = FxHashSet::default();
        for layer in &self.layers[..=r] {
            out.extend(layer.iter().copied());
        }
        out
    }

    /// All atoms of the border at its full computed radius.
    #[inline]
    pub fn atoms(&self) -> &FxHashSet<AtomId> {
        &self.all
    }

    /// Number of atoms in the full border.
    pub fn len(&self) -> usize {
        self.all.len()
    }

    /// Whether the border is empty (the tuple's constants occur in no atom).
    pub fn is_empty(&self) -> bool {
        self.all.is_empty()
    }

    /// Whether the BFS has exhausted the connected component (further
    /// extensions would only add empty layers).
    pub fn saturated(&self) -> bool {
        self.frontier.is_empty()
    }

    /// A [`View`] of the database restricted to this border (full radius).
    pub fn view<'a>(&'a self, db: &'a Database) -> View<'a> {
        View::masked(db, &self.all)
    }
}

/// Convenience wrapper: the atoms of `B_{t,r}(D)`.
pub fn border(db: &Database, tuple: &[Const], radius: usize) -> FxHashSet<AtomId> {
    Border::compute(db, tuple, radius).atoms().clone()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    /// The database of Example 3.3:
    /// D = {R(a,b), S(a,c), Z(c,d), W(d,e), W(e,h), R(f,g)}.
    fn example_3_3() -> Database {
        let mut schema = Schema::new();
        for (name, arity) in [("R", 2), ("S", 2), ("Z", 2), ("W", 2)] {
            schema.declare(name, arity).unwrap();
        }
        let mut db = Database::new(schema);
        db.insert_named("R", &["a", "b"]).unwrap(); // atom#0
        db.insert_named("S", &["a", "c"]).unwrap(); // atom#1
        db.insert_named("Z", &["c", "d"]).unwrap(); // atom#2
        db.insert_named("W", &["d", "e"]).unwrap(); // atom#3
        db.insert_named("W", &["e", "h"]).unwrap(); // atom#4
        db.insert_named("R", &["f", "g"]).unwrap(); // atom#5
        db
    }

    fn sorted(v: &[AtomId]) -> Vec<AtomId> {
        let mut v = v.to_vec();
        v.sort();
        v
    }

    #[test]
    fn example_3_3_layers_match_paper() {
        let db = example_3_3();
        let a = db.consts().get("a").unwrap();
        let b = Border::compute(&db, &[a], 2);
        // W0 = {R(a,b), S(a,c)}
        assert_eq!(sorted(b.layer(0).unwrap()), vec![AtomId(0), AtomId(1)]);
        // W1 = {Z(c,d)}
        assert_eq!(sorted(b.layer(1).unwrap()), vec![AtomId(2)]);
        // W2 = {W(d,e)}
        assert_eq!(sorted(b.layer(2).unwrap()), vec![AtomId(3)]);
        // B_{t,2} = union.
        let mut all: Vec<AtomId> = b.atoms().iter().copied().collect();
        all.sort();
        assert_eq!(all, vec![AtomId(0), AtomId(1), AtomId(2), AtomId(3)]);
        assert_eq!(b.len(), 4);
    }

    #[test]
    fn example_3_3_radius_3_reaches_w_e_h_but_never_r_f_g() {
        let db = example_3_3();
        let a = db.consts().get("a").unwrap();
        let b = Border::compute(&db, &[a], 3);
        assert_eq!(sorted(b.layer(3).unwrap()), vec![AtomId(4)]);
        // R(f,g) is in a different connected component: even a huge radius
        // never reaches it.
        let big = Border::compute(&db, &[a], 50);
        assert!(!big.atoms().contains(&AtomId(5)));
        assert!(big.saturated());
        // Extra layers beyond saturation are empty.
        assert!(big.layer(10).unwrap().is_empty());
    }

    #[test]
    fn extend_is_incremental() {
        let db = example_3_3();
        let a = db.consts().get("a").unwrap();
        let mut b = Border::compute(&db, &[a], 0);
        assert_eq!(b.radius(), 0);
        assert_eq!(b.len(), 2);
        b.extend(&db, 2);
        assert_eq!(b.radius(), 2);
        let reference = Border::compute(&db, &[a], 2);
        assert_eq!(b.atoms(), reference.atoms());
        assert_eq!(
            sorted(b.layer(1).unwrap()),
            sorted(reference.layer(1).unwrap())
        );
    }

    #[test]
    fn atoms_up_to_is_prefix_union() {
        let db = example_3_3();
        let a = db.consts().get("a").unwrap();
        let b = Border::compute(&db, &[a], 2);
        assert_eq!(b.atoms_up_to(0).len(), 2);
        assert_eq!(b.atoms_up_to(1).len(), 3);
        assert_eq!(&b.atoms_up_to(2), b.atoms());
    }

    #[test]
    fn border_monotone_in_radius() {
        let db = example_3_3();
        let a = db.consts().get("a").unwrap();
        for r in 0..4 {
            let small = border(&db, &[a], r);
            let large = border(&db, &[a], r + 1);
            assert!(small.is_subset(&large), "B_r ⊆ B_(r+1) failed at r={r}");
        }
    }

    #[test]
    fn empty_tuple_and_unknown_constant_give_empty_border() {
        let mut db = example_3_3();
        assert!(Border::compute(&db, &[], 3).is_empty());
        let ghost = db.constant("ghost");
        let b = Border::compute(&db, &[ghost], 3);
        assert!(b.is_empty());
        assert!(b.saturated());
    }

    #[test]
    fn multi_constant_tuple_unions_neighbourhoods() {
        let db = example_3_3();
        let a = db.consts().get("a").unwrap();
        let f = db.consts().get("f").unwrap();
        let b = Border::compute(&db, &[a, f], 0);
        let mut got: Vec<AtomId> = b.atoms().iter().copied().collect();
        got.sort();
        assert_eq!(got, vec![AtomId(0), AtomId(1), AtomId(5)]);
    }

    #[test]
    fn duplicate_constants_in_tuple_are_harmless() {
        let db = example_3_3();
        let a = db.consts().get("a").unwrap();
        let single = Border::compute(&db, &[a], 2);
        let dup = Border::compute(&db, &[a, a], 2);
        assert_eq!(single.atoms(), dup.atoms());
    }

    #[test]
    fn reachable_from_matches_definition_3_1() {
        let db = example_3_3();
        // From {S(a,c)}: atoms sharing a constant with it are R(a,b) (via a),
        // itself, and Z(c,d) (via c).
        let from: FxHashSet<AtomId> = [AtomId(1)].into_iter().collect();
        let mut got: Vec<AtomId> = reachable_from(&db, &from).into_iter().collect();
        got.sort();
        assert_eq!(got, vec![AtomId(0), AtomId(1), AtomId(2)]);
    }

    #[test]
    fn resource_guard_truncates_the_border() {
        use obx_util::{GuardKind, GuardLimits, Interrupt, ResourceGuard};
        use std::sync::Arc;
        let db = example_3_3();
        let a = db.consts().get("a").unwrap();
        // Layer 0 already holds 2 atoms, so a 2-atom guard trips before any
        // extension: the border truncates to radius 0 but stays valid.
        let guard = Arc::new(ResourceGuard::new(
            GuardLimits::unlimited().with_max_border_atoms(2),
        ));
        let interrupt = Interrupt::none().with_guard(Arc::clone(&guard));
        let b = Border::compute_interruptible(&db, &[a], 3, &interrupt);
        assert!(b.radius() < 3, "guarded border truncates");
        let reference = Border::compute(&db, &[a], b.radius());
        assert_eq!(
            b.atoms_up_to(b.radius()),
            reference.atoms_up_to(b.radius()),
            "truncated border is the exact border at its smaller radius"
        );
        // Once over the limit, even extend() stops immediately.
        let mut b2 = b;
        assert!(!b2.extend_interruptible(&db, 3, &interrupt));
        assert_eq!(guard.trip().unwrap().kind, GuardKind::BorderAtoms);
    }

    /// Builds a synthetic power-law-ish graph large enough to engage the
    /// chunked parallel path even with `BorderMode::Parallel` forced on
    /// small frontiers: `hubs` hub constants each incident to `spokes`
    /// atoms, spokes chained so the BFS has several non-trivial layers.
    fn hubbed_db(hubs: usize, spokes: usize) -> Database {
        let mut schema = Schema::new();
        schema.declare("E", 2).unwrap();
        let mut db = Database::new(schema);
        for h in 0..hubs {
            let hub = format!("hub{h}");
            for s in 0..spokes {
                let spoke = format!("n{h}_{s}");
                db.insert_named("E", &[&hub, &spoke]).unwrap();
                // Chain some spokes to the next hub for depth.
                if s % 7 == 0 {
                    let next = format!("hub{}", (h + 1) % hubs);
                    db.insert_named("E", &[&spoke, &next]).unwrap();
                }
            }
        }
        db
    }

    #[test]
    fn parallel_layers_are_byte_identical_to_serial() {
        let db = hubbed_db(8, 300);
        let interrupt = obx_util::Interrupt::none();
        for radius in [0, 1, 2, 3] {
            for tuple_consts in [vec!["hub0"], vec!["hub0", "n3_5"], vec!["n7_0"]] {
                let tuple: Vec<Const> = tuple_consts
                    .iter()
                    .map(|c| db.consts().get(c).unwrap())
                    .collect();
                let serial =
                    Border::compute_with_mode(&db, &tuple, radius, &interrupt, BorderMode::Serial);
                let parallel = Border::compute_with_mode(
                    &db,
                    &tuple,
                    radius,
                    &interrupt,
                    BorderMode::Parallel,
                );
                assert_eq!(serial.num_layers(), parallel.num_layers());
                for j in 0..serial.num_layers() {
                    // Exact Vec equality: same atoms in the same discovery
                    // order, not just the same set.
                    assert_eq!(
                        serial.layer(j).unwrap(),
                        parallel.layer(j).unwrap(),
                        "layer {j} diverged at radius {radius} for {tuple_consts:?}"
                    );
                }
                assert_eq!(
                    serial.frontier, parallel.frontier,
                    "frontier order diverged"
                );
                assert_eq!(serial.atoms(), parallel.atoms());
            }
        }
    }

    #[test]
    fn auto_mode_matches_serial_on_example_3_3() {
        let db = example_3_3();
        let a = db.consts().get("a").unwrap();
        let interrupt = obx_util::Interrupt::none();
        let auto = Border::compute(&db, &[a], 3);
        let serial = Border::compute_with_mode(&db, &[a], 3, &interrupt, BorderMode::Serial);
        for j in 0..serial.num_layers() {
            assert_eq!(auto.layer(j), serial.layer(j));
        }
    }

    #[test]
    fn parallel_extend_is_byte_identical_too() {
        let db = hubbed_db(6, 200);
        let hub = db.consts().get("hub0").unwrap();
        let interrupt = obx_util::Interrupt::none();
        let mut serial = Border::compute_with_mode(&db, &[hub], 0, &interrupt, BorderMode::Serial);
        let mut parallel =
            Border::compute_with_mode(&db, &[hub], 0, &interrupt, BorderMode::Parallel);
        serial.extend(&db, 3);
        parallel.extend(&db, 3);
        for j in 0..serial.num_layers() {
            assert_eq!(serial.layer(j).unwrap(), parallel.layer(j).unwrap());
        }
    }

    /// The union-of-layers border equals the "literal Definition 3.2"
    /// border computed by iterating `reachable_from` r times.
    #[test]
    fn frontier_semantics_union_equals_literal_definition() {
        let db = example_3_3();
        let a = db.consts().get("a").unwrap();
        for r in 0..5 {
            // Literal reading: W'_{j+1} = reachable(W'_j); B = union.
            let mut w: FxHashSet<AtomId> = db.atoms_mentioning(a).iter().copied().collect();
            let mut union = w.clone();
            for _ in 0..r {
                w = reachable_from(&db, &w);
                union.extend(w.iter().copied());
            }
            let ours = border(&db, &[a], r);
            assert_eq!(ours, union, "mismatch at radius {r}");
        }
    }
}

//! Ground atoms `s(c̄)`.

use crate::consts::{Const, ConstPool};
use crate::schema::{RelId, Schema};
use std::fmt;

/// Identifier of an atom within a [`crate::Database`] (dense, insertion
/// ordered). Borders and sub-database masks are sets of `AtomId`s.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AtomId(pub u32);

impl AtomId {
    /// Raw index of this atom in its database.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A ground atom: a relation applied to a tuple of constants.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Atom {
    /// The relation symbol `s`.
    pub rel: RelId,
    /// The argument tuple `c̄` (length = declared arity).
    pub args: Box<[Const]>,
}

impl Atom {
    /// Builds an atom. Arity is checked by [`crate::Database::insert`], not
    /// here, so that atoms can be constructed freely in tests.
    pub fn new(rel: RelId, args: impl IntoIterator<Item = Const>) -> Self {
        Self {
            rel,
            args: args.into_iter().collect(),
        }
    }

    /// Whether constant `c` occurs among the arguments.
    #[inline]
    pub fn mentions(&self, c: Const) -> bool {
        self.args.contains(&c)
    }

    /// Whether the two atoms share at least one constant — the paper's
    /// Definition 3.1 ("reachable from"), specialised to a pair.
    pub fn shares_constant_with(&self, other: &Atom) -> bool {
        self.args.iter().any(|c| other.args.contains(c))
    }

    /// Renders the atom like `ENR(A10, Math, TV)`.
    pub fn render(&self, schema: &Schema, consts: &ConstPool) -> String {
        let mut s = String::from(schema.name(self.rel));
        s.push('(');
        for (i, c) in self.args.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(consts.resolve(*c));
        }
        s.push(')');
        s
    }
}

/// A borrowed, zero-copy view of one stored atom: the relation id plus a
/// slice into the database's shared argument column. `Copy`, pointer-sized
/// — the working currency of borders, matchers, and evaluators, none of
/// which should clone a `Box<[Const]>` per visited atom.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AtomRef<'a> {
    /// The relation symbol `s`.
    pub rel: RelId,
    /// The argument tuple `c̄`, borrowed from the argument column.
    pub args: &'a [Const],
}

impl AtomRef<'_> {
    /// Whether constant `c` occurs among the arguments.
    #[inline]
    pub fn mentions(&self, c: Const) -> bool {
        self.args.contains(&c)
    }

    /// An owned copy — for callers that must outlive the database borrow.
    pub fn to_atom(&self) -> Atom {
        Atom::new(self.rel, self.args.iter().copied())
    }

    /// Renders the atom like `ENR(A10, Math, TV)`.
    pub fn render(&self, schema: &Schema, consts: &ConstPool) -> String {
        let mut s = String::from(schema.name(self.rel));
        s.push('(');
        for (i, c) in self.args.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(consts.resolve(*c));
        }
        s.push(')');
        s
    }
}

impl fmt::Display for AtomId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "atom#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    #[test]
    fn mentions_and_sharing() {
        let mut p = ConstPool::new();
        let (a, b, c) = (p.intern("a"), p.intern("b"), p.intern("c"));
        let r = RelId(0);
        let ab = Atom::new(r, [a, b]);
        let bc = Atom::new(r, [b, c]);
        let cc = Atom::new(r, [c, c]);
        assert!(ab.mentions(a));
        assert!(!ab.mentions(c));
        assert!(ab.shares_constant_with(&bc));
        assert!(!ab.shares_constant_with(&cc));
    }

    #[test]
    fn render_matches_paper_notation() {
        let mut schema = Schema::new();
        let enr = schema.declare("ENR", 3).unwrap();
        let mut p = ConstPool::new();
        let atom = Atom::new(enr, [p.intern("A10"), p.intern("Math"), p.intern("TV")]);
        assert_eq!(atom.render(&schema, &p), "ENR(A10, Math, TV)");
    }
}

//! Versioned, checksummed binary snapshot of the data layer.
//!
//! The text format (`schema.obx` + `data.obx`) is the authoring surface;
//! at 10⁶–10⁷ atoms its per-line parsing and per-occurrence string
//! interning dominate scenario load time. A snapshot replaces both files
//! with one binary image whose sections mirror the in-memory columnar
//! layout, so decoding is a handful of bulk reads instead of a
//! million-iteration insert loop:
//!
//! * the constant pool is stored as its three interner columns (arena
//!   blob, spans, hash-table slots — see
//!   [`Interner::as_parts`](obx_util::Interner::as_parts)), so *no
//!   string is hashed or even scanned* on load;
//! * atoms are stored as the database's two row columns (relation ids
//!   and the flat argument array), the authoritative state from which
//!   the database lazily materializes its indexes (see the
//!   [`database`](crate::database) module docs). Nothing derived is
//!   stored: on this side of the memory-bandwidth ledger, shipping an
//!   index costs more in read + checksum + copy than rebuilding it from
//!   the columns in one exact-size counting pass on first use.
//!
//! Wire layout, version 2 (all integers little-endian):
//!
//! ```text
//! magic      8  b"OBXSNAP\0"
//! version    4  u32, currently 2
//! crc32      4  IEEE CRC-32 of the payload
//! paylen     8  u64 payload byte length (truncation check)
//! payload:
//!   schema_src_len u64, data_src_len u64   # byte sizes of the .obx
//!                                          # sources at build time
//!   num_rels   u32; per rel: arity u32, name_len u32, name bytes
//!   arena_len  u64; arena bytes            # all constant names, packed
//!   num_consts u32; per const: start u32, len u32      # arena spans
//!   table_len  u32; per slot:  hash u64, symbol u32    # interner table
//!   num_atoms  u32; per atom:  rel u32                 # row column 1
//!   num_args   u64; per arg:   const u32               # row column 2
//! ```
//!
//! (Version 1 encoded atoms row-by-row and replayed them through the
//! incremental insert path; it decoded correctly but spent most of its
//! budget rebuilding hash indexes one atom at a time.)
//!
//! Every id column and structural invariant (bounds, counts, arity
//! totals) is validated on decode — a malformed payload is an `Err`,
//! never a panic or a hang. The *semantic* claims that survive
//! validation — that the interner slots sit on their probe chains, that
//! the rows are duplicate-free — are trusted under the checksum: a
//! forged-but-consistent payload can only mis-answer queries, it cannot
//! cause out-of-bounds access or non-termination.
//!
//! Decoding rebuilds the *identical* [`Database`]: the interner columns
//! reproduce every [`Const`] id and the row columns every
//! [`crate::AtomId`], so every downstream artifact — borders, match
//! bitsets, ranked explanations — is byte-identical to a text-path load
//! of the same sources. Structural damage (bad magic, checksum, counts)
//! fails closed as [`SnapshotError::Corrupt`]; a different format
//! version is reported as the distinct [`SnapshotError::Version`] so
//! loaders can fall back to the text sources instead of hard-failing on
//! caches written by an older build.

// Decoding handles attacker-shaped bytes: every malformed input must
// surface as a `SnapshotError`, never a panic.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::consts::{Const, ConstPool};
use crate::database::Database;
use crate::schema::{RelId, Schema};
use obx_util::hash::crc32;
use obx_util::Span;
use std::path::Path;

/// Current wire-format version.
pub const SNAPSHOT_VERSION: u32 = 2;

const MAGIC: &[u8; 8] = b"OBXSNAP\0";
const HEADER_LEN: usize = 8 + 4 + 4 + 8;

/// Errors reading a snapshot file.
#[derive(Debug)]
pub enum SnapshotError {
    /// The file could not be read at all.
    Io(std::io::Error),
    /// The file is a well-formed snapshot of a different format version.
    /// Not corruption: loaders should treat it like a stale snapshot and
    /// rebuild from the text sources.
    Version(u32),
    /// The file is not a valid snapshot: bad magic, checksum mismatch,
    /// truncation, or inconsistent payload. The message says which.
    Corrupt(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "{e}"),
            SnapshotError::Version(v) => {
                write!(
                    f,
                    "snapshot version {v} (this build reads {SNAPSHOT_VERSION})"
                )
            }
            SnapshotError::Corrupt(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// A decoded snapshot: the rebuilt database plus the source-file sizes
/// recorded at build time (the loader's staleness check).
#[derive(Debug)]
pub struct Snapshot {
    /// Byte length of `schema.obx` when the snapshot was built.
    pub schema_src_len: u64,
    /// Byte length of `data.obx` when the snapshot was built.
    pub data_src_len: u64,
    /// The rebuilt data layer.
    pub db: Database,
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Encodes `db` (schema, constants, atoms) into snapshot bytes.
/// `schema_src_len` / `data_src_len` are the byte sizes of the text
/// sources the snapshot mirrors, stored for the loader's staleness check.
pub fn encode_snapshot(db: &Database, schema_src_len: u64, data_src_len: u64) -> Vec<u8> {
    let schema = db.schema();
    let (arena, spans, slots) = db.consts().as_parts();
    let (rels, args) = db.columns();
    let fixed = 16
        + 4
        + schema.len() * 8
        + 8
        + arena.len()
        + 4
        + spans.len() * 8
        + 4
        + slots.len() * 12
        + 4
        + rels.len() * 4
        + 8
        + args.len() * 4;
    let mut payload = Vec::with_capacity(fixed + schema.len() * 8);
    put_u64(&mut payload, schema_src_len);
    put_u64(&mut payload, data_src_len);

    put_u32(&mut payload, schema.len() as u32);
    for rel in schema.rel_ids() {
        let name = schema.name(rel);
        put_u32(&mut payload, schema.arity(rel) as u32);
        put_u32(&mut payload, name.len() as u32);
        payload.extend_from_slice(name.as_bytes());
    }

    put_u64(&mut payload, arena.len() as u64);
    payload.extend_from_slice(arena.as_bytes());
    put_u32(&mut payload, spans.len() as u32);
    for &(start, len) in spans {
        put_u32(&mut payload, start);
        put_u32(&mut payload, len);
    }
    put_u32(&mut payload, slots.len() as u32);
    for &(hash, sym) in slots {
        put_u64(&mut payload, hash);
        put_u32(&mut payload, sym);
    }

    put_u32(&mut payload, rels.len() as u32);
    for &rel in rels {
        put_u32(&mut payload, rel.0);
    }
    put_u64(&mut payload, args.len() as u64);
    for &c in args {
        put_u32(&mut payload, c.0 .0);
    }

    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, SNAPSHOT_VERSION);
    put_u32(&mut out, crc32(&payload));
    put_u64(&mut out, payload.len() as u64);
    out.extend_from_slice(&payload);
    out
}

/// Encodes `db` and writes the snapshot to `path`.
pub fn write_snapshot(
    path: &Path,
    db: &Database,
    schema_src_len: u64,
    data_src_len: u64,
) -> std::io::Result<u64> {
    let bytes = encode_snapshot(db, schema_src_len, data_src_len);
    std::fs::write(path, &bytes)?;
    Ok(bytes.len() as u64)
}

/// Bounded little-endian reader over the payload.
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], SnapshotError> {
        let end = self.at.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.at..end];
                self.at = end;
                Ok(s)
            }
            None => Err(SnapshotError::Corrupt(format!(
                "truncated payload reading {what} at offset {}",
                self.at
            ))),
        }
    }

    fn u32(&mut self, what: &str) -> Result<u32, SnapshotError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64, SnapshotError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn str(&mut self, n: usize, what: &str) -> Result<&'a str, SnapshotError> {
        std::str::from_utf8(self.take(n, what)?)
            .map_err(|_| SnapshotError::Corrupt(format!("{what} is not valid UTF-8")))
    }

    /// Reads `n` little-endian `u32`s in one bounded take, mapping each
    /// through `f` — the bulk column reader.
    fn u32s<T>(
        &mut self,
        n: usize,
        what: &str,
        f: impl Fn(u32) -> T,
    ) -> Result<Vec<T>, SnapshotError> {
        let bytes = self.take(n * 4, what)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|b| f(u32::from_le_bytes([b[0], b[1], b[2], b[3]])))
            .collect())
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }
}

fn corrupt(msg: impl Into<String>) -> SnapshotError {
    SnapshotError::Corrupt(msg.into())
}

/// Decodes snapshot `bytes` back into a [`Snapshot`], verifying magic,
/// version, length, and checksum before touching the payload.
pub fn decode_snapshot(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
    if bytes.len() < HEADER_LEN {
        return Err(corrupt(format!(
            "file too short for a snapshot header ({} bytes)",
            bytes.len()
        )));
    }
    if &bytes[..8] != MAGIC {
        return Err(corrupt("bad magic: not an OBX snapshot"));
    }
    let version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::Version(version));
    }
    let want_crc = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]);
    let paylen = u64::from_le_bytes([
        bytes[16], bytes[17], bytes[18], bytes[19], bytes[20], bytes[21], bytes[22], bytes[23],
    ]) as usize;
    let payload = &bytes[HEADER_LEN..];
    if payload.len() != paylen {
        return Err(corrupt(format!(
            "truncated snapshot: header promises {paylen} payload bytes, file has {}",
            payload.len()
        )));
    }
    let got_crc = crc32(payload);
    if got_crc != want_crc {
        return Err(corrupt(format!(
            "checksum mismatch: header {want_crc:#010x}, payload {got_crc:#010x}"
        )));
    }

    let mut cur = Cursor {
        buf: payload,
        at: 0,
    };
    let schema_src_len = cur.u64("schema source length")?;
    let data_src_len = cur.u64("data source length")?;

    let num_rels = cur.u32("relation count")? as usize;
    let mut schema = Schema::new();
    for i in 0..num_rels {
        let arity = cur.u32("relation arity")? as usize;
        let name_len = cur.u32("relation name length")? as usize;
        let name = cur.str(name_len, "relation name")?;
        let rel = schema
            .declare(name, arity)
            .map_err(|e| corrupt(format!("invalid schema entry {i}: {e}")))?;
        if rel.index() != i {
            return Err(corrupt(format!("duplicate relation name {name:?}")));
        }
    }

    let arena_len = cur.u64("arena length")? as usize;
    let arena = cur.str(arena_len, "constant arena")?.to_owned();
    let num_consts = cur.u32("constant count")? as usize;
    if num_consts.saturating_mul(8) > cur.remaining() {
        return Err(corrupt("constant count exceeds payload size"));
    }
    let span_bytes = cur.take(num_consts * 8, "constant spans")?;
    let spans: Vec<Span> = span_bytes
        .chunks_exact(8)
        .map(|b| {
            (
                u32::from_le_bytes([b[0], b[1], b[2], b[3]]),
                u32::from_le_bytes([b[4], b[5], b[6], b[7]]),
            )
        })
        .collect();
    let table_len = cur.u32("interner table length")? as usize;
    if table_len.saturating_mul(12) > cur.remaining() {
        return Err(corrupt("interner table length exceeds payload size"));
    }
    let slot_bytes = cur.take(table_len * 12, "interner table")?;
    let slots: Vec<(u64, u32)> = slot_bytes
        .chunks_exact(12)
        .map(|b| {
            (
                u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]),
                u32::from_le_bytes([b[8], b[9], b[10], b[11]]),
            )
        })
        .collect();
    let pool = ConstPool::from_parts(arena, spans, slots)
        .ok_or_else(|| corrupt("inconsistent interner columns"))?;
    if pool.len() != num_consts {
        return Err(corrupt("interner columns disagree with constant count"));
    }

    let num_atoms = cur.u32("atom count")? as usize;
    if num_atoms.saturating_mul(4) > cur.remaining() {
        return Err(corrupt("atom count exceeds payload size"));
    }
    let rels = cur.u32s(num_atoms, "atom relations", RelId)?;
    let num_args = cur.u64("argument count")? as usize;
    if num_args.saturating_mul(4) > cur.remaining() {
        return Err(corrupt("argument count exceeds payload size"));
    }
    let args = cur.u32s(num_args, "atom arguments", |raw| {
        Const(obx_util::Symbol(raw))
    })?;
    if cur.remaining() != 0 {
        return Err(corrupt(format!(
            "{} trailing bytes after the argument column",
            cur.remaining()
        )));
    }

    let db = Database::from_columns(schema, pool, rels, args)
        .map_err(|e| corrupt(format!("inconsistent row columns: {e}")))?;
    Ok(Snapshot {
        schema_src_len,
        data_src_len,
        db,
    })
}

/// Reads and decodes the snapshot at `path`.
pub fn read_snapshot(path: &Path) -> Result<Snapshot, SnapshotError> {
    let bytes = std::fs::read(path).map_err(SnapshotError::Io)?;
    decode_snapshot(&bytes)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::parse::{parse_database, parse_schema};
    use obx_util::Symbol;

    fn paper_db() -> Database {
        let schema = parse_schema("STUD/1 LOC/2 ENR/3").unwrap();
        parse_database(
            schema,
            "STUD(A10).\nSTUD(B80).\nLOC(Sap, Rome).\nLOC(TV, Rome).\n\
             ENR(A10, Math, TV).\nENR(B80, Math, Sap).\n",
        )
        .unwrap()
    }

    #[test]
    fn snapshot_roundtrips_the_database_byte_identically() {
        let db = paper_db();
        let bytes = encode_snapshot(&db, 17, 4242);
        let snap = decode_snapshot(&bytes).unwrap();
        assert_eq!(snap.schema_src_len, 17);
        assert_eq!(snap.data_src_len, 4242);
        assert_eq!(snap.db.len(), db.len());
        assert_eq!(snap.db.consts().len(), db.consts().len());
        // Same render text ⇒ same atoms in the same order with the same
        // constant ids.
        assert_eq!(snap.db.render(), db.render());
        for i in 0..db.consts().len() {
            let c = Const(Symbol(i as u32));
            assert_eq!(snap.db.consts().resolve(c), db.consts().resolve(c));
        }
        // The interner table came over intact: lookups by name work.
        assert_eq!(snap.db.consts().get("Rome"), db.consts().get("Rome"));
        // Lazily materialized indexes agree: adjacency answers match.
        let rome = db.consts().get("Rome").unwrap();
        assert_eq!(snap.db.atoms_mentioning(rome), db.atoms_mentioning(rome));
        // So does dedup: probes by atom value resolve to the same ids.
        for id in db.atom_ids() {
            let atom = db.atom(id).to_atom();
            assert_eq!(snap.db.id_of(&atom), Some(id));
        }
    }

    #[test]
    fn bad_magic_version_and_checksum_are_rejected() {
        let db = paper_db();
        let good = encode_snapshot(&db, 0, 0);

        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            decode_snapshot(&bad),
            Err(SnapshotError::Corrupt(msg)) if msg.contains("magic")
        ));

        // A different version is reported as such (not corruption), so
        // loaders can silently rebuild from text.
        let mut bad = good.clone();
        bad[8] = 99;
        assert!(matches!(
            decode_snapshot(&bad),
            Err(SnapshotError::Version(99))
        ));

        // Flip one payload byte: the checksum must catch it.
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        assert!(matches!(
            decode_snapshot(&bad),
            Err(SnapshotError::Corrupt(msg)) if msg.contains("checksum")
        ));
    }

    #[test]
    fn truncated_snapshots_are_rejected_at_every_length() {
        let db = paper_db();
        let good = encode_snapshot(&db, 0, 0);
        // Every strict prefix must fail closed (header length check or
        // payload-length mismatch), never panic.
        for cut in 0..good.len() {
            assert!(
                decode_snapshot(&good[..cut]).is_err(),
                "prefix of {cut} bytes was accepted"
            );
        }
    }

    #[test]
    fn inconsistent_payloads_are_rejected() {
        let db = paper_db();
        // The last u32 of the payload is the last atom argument. Point it
        // at a constant id the interner doesn't hold: the column bounds
        // check must reject it.
        let mut bytes = encode_snapshot(&db, 0, 0);
        let n = bytes.len();
        bytes[n - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        // Fix the checksum so only the semantic check can reject it.
        let crc = crc32(&bytes[24..]);
        bytes[12..16].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            decode_snapshot(&bytes),
            Err(SnapshotError::Corrupt(msg)) if msg.contains("unknown constant")
        ));
    }

    #[test]
    fn write_and_read_through_a_file() {
        let dir = std::env::temp_dir().join(format!("obx-snap-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("data.obxsnap");
        let db = paper_db();
        let written = write_snapshot(&path, &db, 1, 2).unwrap();
        assert_eq!(written, std::fs::metadata(&path).unwrap().len());
        let snap = read_snapshot(&path).unwrap();
        assert_eq!(snap.db.render(), db.render());
        assert!(matches!(
            read_snapshot(&dir.join("absent.obxsnap")),
            Err(SnapshotError::Io(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

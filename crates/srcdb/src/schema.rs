//! Source schemas.
//!
//! A schema `S` is a set of relation (predicate) declarations, each with a
//! name and an arity. Relations are referred to by dense [`RelId`]s
//! everywhere else in the workspace.

use obx_util::FxHashMap;
use std::fmt;

/// Dense identifier of a relation within a [`Schema`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RelId(pub u32);

impl RelId {
    /// The raw index of this relation in its schema.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A single relation declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RelDecl {
    /// Relation name as written in the sources (e.g. `ENR`).
    pub name: String,
    /// Number of columns.
    pub arity: usize,
}

/// Errors raised while building or using a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// Two declarations with the same name.
    Duplicate(String),
    /// A relation name that is not declared.
    Unknown(String),
    /// An atom or tuple whose arity does not match the declaration.
    ArityMismatch {
        /// Relation involved.
        rel: String,
        /// Declared arity.
        expected: usize,
        /// Arity actually supplied.
        got: usize,
    },
    /// Relations must have at least one column.
    ZeroArity(String),
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::Duplicate(n) => write!(f, "relation `{n}` declared twice"),
            SchemaError::Unknown(n) => write!(f, "unknown relation `{n}`"),
            SchemaError::ArityMismatch { rel, expected, got } => {
                write!(
                    f,
                    "relation `{rel}` has arity {expected}, got {got} arguments"
                )
            }
            SchemaError::ZeroArity(n) => write!(f, "relation `{n}` must have arity >= 1"),
        }
    }
}

impl std::error::Error for SchemaError {}

/// The schema `S` of the data source.
#[derive(Default, Debug, Clone)]
pub struct Schema {
    rels: Vec<RelDecl>,
    by_name: FxHashMap<String, RelId>,
}

impl Schema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a relation, returning its id.
    pub fn declare(&mut self, name: &str, arity: usize) -> Result<RelId, SchemaError> {
        if arity == 0 {
            return Err(SchemaError::ZeroArity(name.to_owned()));
        }
        if self.by_name.contains_key(name) {
            return Err(SchemaError::Duplicate(name.to_owned()));
        }
        let id = RelId(self.rels.len() as u32);
        self.rels.push(RelDecl {
            name: name.to_owned(),
            arity,
        });
        self.by_name.insert(name.to_owned(), id);
        Ok(id)
    }

    /// Looks up a relation by name.
    pub fn rel(&self, name: &str) -> Result<RelId, SchemaError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| SchemaError::Unknown(name.to_owned()))
    }

    /// Returns the declaration for `id`.
    #[inline]
    pub fn decl(&self, id: RelId) -> &RelDecl {
        &self.rels[id.index()]
    }

    /// Arity of `id`.
    #[inline]
    pub fn arity(&self, id: RelId) -> usize {
        self.rels[id.index()].arity
    }

    /// Name of `id`.
    #[inline]
    pub fn name(&self, id: RelId) -> &str {
        &self.rels[id.index()].name
    }

    /// Number of declared relations.
    pub fn len(&self) -> usize {
        self.rels.len()
    }

    /// Whether no relation is declared.
    pub fn is_empty(&self) -> bool {
        self.rels.is_empty()
    }

    /// Iterates over all relation ids.
    pub fn rel_ids(&self) -> impl Iterator<Item = RelId> {
        (0..self.rels.len() as u32).map(RelId)
    }

    /// Checks that `got` matches the declared arity of `rel`.
    pub fn check_arity(&self, rel: RelId, got: usize) -> Result<(), SchemaError> {
        let expected = self.arity(rel);
        if expected == got {
            Ok(())
        } else {
            Err(SchemaError::ArityMismatch {
                rel: self.name(rel).to_owned(),
                expected,
                got,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_and_lookup() {
        let mut s = Schema::new();
        let enr = s.declare("ENR", 3).unwrap();
        let loc = s.declare("LOC", 2).unwrap();
        assert_eq!(s.rel("ENR").unwrap(), enr);
        assert_eq!(s.rel("LOC").unwrap(), loc);
        assert_eq!(s.arity(enr), 3);
        assert_eq!(s.name(loc), "LOC");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn duplicate_declaration_is_rejected() {
        let mut s = Schema::new();
        s.declare("R", 2).unwrap();
        assert_eq!(
            s.declare("R", 3).unwrap_err(),
            SchemaError::Duplicate("R".into())
        );
    }

    #[test]
    fn zero_arity_is_rejected() {
        let mut s = Schema::new();
        assert_eq!(
            s.declare("R", 0).unwrap_err(),
            SchemaError::ZeroArity("R".into())
        );
    }

    #[test]
    fn unknown_relation_lookup_fails() {
        let s = Schema::new();
        assert_eq!(
            s.rel("nope").unwrap_err(),
            SchemaError::Unknown("nope".into())
        );
    }

    #[test]
    fn arity_check() {
        let mut s = Schema::new();
        let r = s.declare("R", 2).unwrap();
        assert!(s.check_arity(r, 2).is_ok());
        let err = s.check_arity(r, 3).unwrap_err();
        assert!(matches!(
            err,
            SchemaError::ArityMismatch {
                expected: 2,
                got: 3,
                ..
            }
        ));
    }

    #[test]
    fn rel_ids_enumerates_all() {
        let mut s = Schema::new();
        s.declare("A", 1).unwrap();
        s.declare("B", 1).unwrap();
        let ids: Vec<RelId> = s.rel_ids().collect();
        assert_eq!(ids, vec![RelId(0), RelId(1)]);
    }
}

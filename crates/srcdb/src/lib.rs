//! `obx-srcdb` — the relational *source layer* of an OBDM system.
//!
//! In the paper's architecture (Fig. 1), the data layer is an `S`-database
//! `D`: a finite set of atoms `s(c̄)` over a source schema `S`. This crate
//! implements that layer:
//!
//! * [`schema`] — relation declarations (`RelId`, arity) for the schema `S`;
//! * [`consts`] — interned constants (`Const`) and tuples over `dom(D)`;
//! * [`atom`] — ground atoms `s(c̄)` and their ids;
//! * [`database`] — the atom store with three indexes: per-relation,
//!   per-(relation, position, constant), and a constant→atom adjacency index
//!   (the latter makes the border BFS of Definition 3.2 near-linear);
//! * [`view`] — a database or a masked sub-database (a border) presented
//!   uniformly to query evaluators;
//! * [`border`] — reachability (Def. 3.1) and the border of radius `r`
//!   `B_{t,r}(D)` (Def. 3.2), with the BFS-layer semantics fixed by the
//!   paper's Example 3.3;
//! * [`parse`] — a small text format for databases (`ENR(A10, Math, TV).`),
//!   used by examples and tests;
//! * [`snapshot`] — a versioned, checksummed binary image of the data
//!   layer for fast million-atom loads.

#![warn(missing_docs)]

pub mod atom;
pub mod border;
pub mod consts;
pub mod database;
pub mod parse;
pub mod schema;
pub mod snapshot;
pub mod view;

pub use atom::{Atom, AtomId, AtomRef};
pub use border::{border, border_workers, reachable_from, Border, BorderMode};
pub use consts::{Const, ConstPool, Tuple};
pub use database::Database;
pub use parse::{
    add_facts, add_facts_diag, parse_database, parse_database_diag, parse_schema,
    parse_schema_diag, split_atom, unquote, ParseError,
};
pub use schema::{RelDecl, RelId, Schema, SchemaError};
pub use snapshot::{read_snapshot, write_snapshot, Snapshot, SnapshotError};
pub use view::View;

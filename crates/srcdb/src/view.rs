//! Uniform read access to a database or a masked sub-database.
//!
//! Definition 3.4 evaluates queries over a *border* `B_{t,r}(D)` — a subset
//! of the atoms of `D`. Rather than copying atoms into a fresh database per
//! classified tuple (quadratic in practice), a [`View`] pairs the full
//! database with an optional atom-id mask; evaluators consult the database's
//! indexes and filter by the mask.

use crate::atom::{AtomId, AtomRef};
use crate::consts::Const;
use crate::database::Database;
use crate::schema::{RelId, Schema};
use obx_util::FxHashSet;

/// A database, or a sub-database selected by an atom-id mask.
#[derive(Clone, Copy)]
pub struct View<'a> {
    db: &'a Database,
    mask: Option<&'a FxHashSet<AtomId>>,
}

impl<'a> View<'a> {
    /// View of the full database.
    pub fn full(db: &'a Database) -> Self {
        Self { db, mask: None }
    }

    /// View restricted to the atoms in `mask`.
    pub fn masked(db: &'a Database, mask: &'a FxHashSet<AtomId>) -> Self {
        Self {
            db,
            mask: Some(mask),
        }
    }

    /// The underlying database.
    #[inline]
    pub fn db(&self) -> &'a Database {
        self.db
    }

    /// The schema.
    #[inline]
    pub fn schema(&self) -> &'a Schema {
        self.db.schema()
    }

    /// Whether `id` is visible through this view.
    #[inline]
    pub fn visible(&self, id: AtomId) -> bool {
        match self.mask {
            None => true,
            Some(m) => m.contains(&id),
        }
    }

    /// The atom for a (visible or not) id, as a zero-copy columnar view.
    #[inline]
    pub fn atom(&self, id: AtomId) -> AtomRef<'a> {
        self.db.atom(id)
    }

    /// Visible atoms of relation `rel`.
    pub fn atoms_of(&self, rel: RelId) -> impl Iterator<Item = AtomId> + '_ {
        self.db
            .atoms_of(rel)
            .iter()
            .copied()
            .filter(move |&id| self.visible(id))
    }

    /// Visible atoms of `rel` with constant `c` at position `pos`.
    pub fn atoms_with(
        &self,
        rel: RelId,
        pos: usize,
        c: Const,
    ) -> impl Iterator<Item = AtomId> + '_ {
        self.db
            .atoms_with(rel, pos, c)
            .iter()
            .copied()
            .filter(move |&id| self.visible(id))
    }

    /// Upper bound on the number of visible atoms of `rel` (used by the
    /// evaluator to order joins; exact when unmasked).
    pub fn size_hint_of(&self, rel: RelId) -> usize {
        let full = self.db.count_of(rel);
        match self.mask {
            None => full,
            Some(m) => full.min(m.len()),
        }
    }

    /// Upper bound on the number of visible atoms of `rel` with constant
    /// `c` at position `pos` — O(1) (index prefix count capped by the
    /// mask size; exact when unmasked). The guided evaluator's
    /// per-constraint cardinality estimate.
    pub fn estimate_with(&self, rel: RelId, pos: usize, c: Const) -> usize {
        let full = self.db.count_with(rel, pos, c);
        match self.mask {
            None => full,
            Some(m) => full.min(m.len()),
        }
    }

    /// The atom-id mask, when this view is a border sub-database. Exposed
    /// so evaluators can iterate the *smaller* side of a
    /// mask-vs-index-slice intersection: on a hub constant of a skewed
    /// database the index slice can be orders of magnitude larger than
    /// the border mask, and scanning the slice (filtering by visibility)
    /// would cost O(hub degree) where O(border) suffices.
    #[inline]
    pub fn mask(&self) -> Option<&'a FxHashSet<AtomId>> {
        self.mask
    }

    /// Number of visible atoms (exact; O(mask) when masked).
    pub fn len(&self) -> usize {
        match self.mask {
            None => self.db.len(),
            Some(m) => m.len(),
        }
    }

    /// Whether no atom is visible.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for View<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("View")
            .field("db_atoms", &self.db.len())
            .field("mask", &self.mask.map(|m| m.len()))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn db() -> Database {
        let mut schema = Schema::new();
        schema.declare("R", 2).unwrap();
        let mut db = Database::new(schema);
        db.insert_named("R", &["a", "b"]).unwrap();
        db.insert_named("R", &["a", "c"]).unwrap();
        db.insert_named("R", &["d", "e"]).unwrap();
        db
    }

    #[test]
    fn full_view_sees_everything() {
        let db = db();
        let r = db.schema().rel("R").unwrap();
        let v = View::full(&db);
        assert_eq!(v.len(), 3);
        assert_eq!(v.atoms_of(r).count(), 3);
        let a = db.consts().get("a").unwrap();
        assert_eq!(v.atoms_with(r, 0, a).count(), 2);
    }

    #[test]
    fn masked_view_filters() {
        let db = db();
        let r = db.schema().rel("R").unwrap();
        let mask: FxHashSet<AtomId> = [AtomId(0)].into_iter().collect();
        let v = View::masked(&db, &mask);
        assert_eq!(v.len(), 1);
        assert!(!v.is_empty());
        assert_eq!(v.atoms_of(r).collect::<Vec<_>>(), vec![AtomId(0)]);
        let a = db.consts().get("a").unwrap();
        assert_eq!(v.atoms_with(r, 0, a).collect::<Vec<_>>(), vec![AtomId(0)]);
        assert!(v.visible(AtomId(0)));
        assert!(!v.visible(AtomId(1)));
        assert_eq!(v.size_hint_of(r), 1);
        assert_eq!(v.estimate_with(r, 0, a), 1);
        assert_eq!(v.mask().map(|m| m.len()), Some(1));
    }

    #[test]
    fn estimates_are_index_counts_capped_by_the_mask() {
        let db = db();
        let r = db.schema().rel("R").unwrap();
        let a = db.consts().get("a").unwrap();
        let full = View::full(&db);
        assert_eq!(full.estimate_with(r, 0, a), 2);
        assert!(full.mask().is_none());
        assert_eq!(db.count_of(r), 3);
        assert_eq!(db.count_with(r, 0, a), 2);
        assert_eq!(db.count_mentioning(a), 2);
        let d = db.consts().get("d").unwrap();
        assert_eq!(db.count_with(r, 1, d), 0);
    }

    #[test]
    fn empty_mask_view_is_empty() {
        let db = db();
        let mask = FxHashSet::default();
        let v = View::masked(&db, &mask);
        assert!(v.is_empty());
        let r = db.schema().rel("R").unwrap();
        assert_eq!(v.atoms_of(r).count(), 0);
    }
}

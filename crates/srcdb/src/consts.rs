//! Constants and tuples.
//!
//! `dom(D)` — the set of constants occurring in the source database — is
//! represented by interned [`Const`] symbols. Classified objects (the inputs
//! of the partial function λ) are [`Tuple`]s of constants.

use obx_util::{Interner, Span, Symbol};
use std::fmt;

/// An interned source constant (an element of `dom(D)` or a query constant).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Const(pub Symbol);

impl fmt::Debug for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "const#{}", self.0 .0)
    }
}

/// A tuple of constants, as classified by λ.
pub type Tuple = Box<[Const]>;

/// Builds a [`Tuple`] from anything iterable.
pub fn tuple(consts: impl IntoIterator<Item = Const>) -> Tuple {
    consts.into_iter().collect()
}

/// The pool of interned constants shared by a database and the queries that
/// mention constants (e.g. `locatedIn(z, "Rome")`).
#[derive(Default, Debug)]
pub struct ConstPool {
    interner: Interner,
}

impl ConstPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty pool pre-sized for `cap` distinct constants
    /// (bulk loads announce the count in their snapshot header).
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            interner: Interner::with_capacity(cap),
        }
    }

    /// Reserves room for `additional` further distinct constants.
    pub fn reserve(&mut self, additional: usize) {
        self.interner.reserve(additional);
    }

    /// Interns a constant by its textual form.
    pub fn intern(&mut self, name: &str) -> Const {
        Const(self.interner.intern(name))
    }

    /// Looks up a constant without interning.
    pub fn get(&self, name: &str) -> Option<Const> {
        self.interner.get(name).map(Const)
    }

    /// Resolves a constant back to its textual form.
    pub fn resolve(&self, c: Const) -> &str {
        self.interner.resolve(c.0)
    }

    /// Number of distinct constants.
    pub fn len(&self) -> usize {
        self.interner.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.interner.is_empty()
    }

    /// The interner's raw columns `(arena, spans, slots)` — the snapshot
    /// wire content for the constant pool. See [`Interner::as_parts`].
    pub fn as_parts(&self) -> (&str, &[Span], &[(u64, u32)]) {
        self.interner.as_parts()
    }

    /// Rebuilds a pool from raw interner columns, validating consistency.
    /// Returns `None` on any structural inconsistency (see
    /// [`Interner::from_parts`]).
    pub fn from_parts(arena: String, spans: Vec<Span>, slots: Vec<(u64, u32)>) -> Option<Self> {
        Interner::from_parts(arena, spans, slots).map(|interner| Self { interner })
    }

    /// Renders a tuple like `⟨A10, Math⟩` for diagnostics.
    pub fn render_tuple(&self, t: &[Const]) -> String {
        let mut s = String::from("<");
        for (i, c) in t.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(self.resolve(*c));
        }
        s.push('>');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_resolve_roundtrip() {
        let mut p = ConstPool::new();
        let rome = p.intern("Rome");
        let milan = p.intern("Milan");
        assert_ne!(rome, milan);
        assert_eq!(p.resolve(rome), "Rome");
        assert_eq!(p.intern("Rome"), rome);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn get_does_not_intern() {
        let mut p = ConstPool::new();
        assert!(p.get("x").is_none());
        let x = p.intern("x");
        assert_eq!(p.get("x"), Some(x));
    }

    #[test]
    fn render_tuple_formats_angle_brackets() {
        let mut p = ConstPool::new();
        let t = tuple([p.intern("A10"), p.intern("Math")]);
        assert_eq!(p.render_tuple(&t), "<A10, Math>");
        assert_eq!(p.render_tuple(&[]), "<>");
    }
}

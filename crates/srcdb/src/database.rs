//! The `S`-database `D`: an indexed, set-semantics store of ground atoms.
//!
//! # Columnar layout (million-atom scale)
//!
//! The store is built for databases of 10⁶–10⁷ atoms. Per-atom heap
//! structures are avoided everywhere, including the row store itself:
//!
//! * **Rows** are three flat columns — relation ids, a shared argument
//!   array, and per-atom offsets into it. [`Database::atom`] hands out a
//!   borrowed [`AtomRef`] view; no atom owns a heap allocation.
//! * **Dedup** is a hand-rolled open-addressing table of `(hash, id)`
//!   pairs that verifies candidates against the row columns — no second
//!   copy of every atom, unlike a `HashMap<Atom, AtomId>` key set.
//! * **Posting lists** (the per-position index and the constant
//!   adjacency) live as `(offset, len, cap)` slices in one shared
//!   append-only [`PostingPool`] arena with power-of-two growth — one
//!   large allocation instead of millions of tiny `Vec`s, and every list
//!   is still a contiguous `&[AtomId]` in insertion order.
//! * **Per-position indexes** are dense columns over the compact `u32`
//!   interned-constant space, one column per `(relation, position)` —
//!   `atoms_with`/`count_with` are two array reads, no hashing. The
//!   constant adjacency (`atoms_mentioning`, the border BFS
//!   neighbourhood) is one more such column.
//!
//! # Lazy index materialization
//!
//! The row columns are the authoritative state; everything else is a
//! derived cache, and each cache is built the first time something needs
//! it:
//!
//! * the **dedup table** materializes on the first membership-dependent
//!   operation (`insert`, `contains`, `id_of`) — a text parse triggers it
//!   on the first inserted atom (set semantics need it per insert) and
//!   from then on maintains it incrementally, exactly as an always-eager
//!   table would;
//! * the **query indexes** (`rel_index`, the per-position posting
//!   columns, the constant adjacency) materialize on the first read
//!   (`atoms_of`, `atoms_with`, `atoms_mentioning`, the `count_*`
//!   family) with exact-size counting passes over the flat columns — no
//!   per-atom allocation, no hashing — and are maintained incrementally
//!   by later inserts.
//!
//! The payoff is at the loading boundary: a binary snapshot restores a
//! million-atom database by handing [`Database::from_columns`] its two
//! row columns — a bounds-checked copy, no index work at all — so load
//! time is dominated by I/O and checksum instead of hash probes and
//! posting scatter. The first query after a snapshot load pays one bulk
//! counting build, which is cheaper than a million incremental updates
//! and produces bit-identical index contents (insertion-order posting
//! lists), so ranked explanations are byte-identical whichever path
//! loaded the data. Both loading paths defer exactly the same work, so
//! the text/snapshot comparison stays honest: text parsing still pays
//! interning and per-insert dedup, which is precisely what the snapshot
//! format amortizes away.

// The row columns are durable state (snapshots adopt them verbatim);
// a stray unwind here can corrupt what every index is derived from.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::atom::{Atom, AtomId, AtomRef};
use crate::consts::{Const, ConstPool};
use crate::schema::{RelId, Schema, SchemaError};
use obx_util::hash::FxHasher;
use std::hash::Hasher;
use std::sync::OnceLock;

/// A contiguous `&[AtomId]` slice inside a [`PostingPool`]: `len` live
/// ids starting at `off`, with `cap` slots reserved there. `cap` grows by
/// doubling; outgrown regions are abandoned (bounded waste, like `Vec`).
#[derive(Clone, Copy, Debug, Default)]
struct Posting {
    off: u32,
    len: u32,
    cap: u32,
}

/// The shared arena holding every posting list of a database. Offsets are
/// `u32`, capping one pool at 2³² slots — enough for 10⁷ atoms of any
/// realistic arity with the doubling waste included.
#[derive(Debug, Default)]
struct PostingPool {
    ids: Vec<AtomId>,
}

impl PostingPool {
    /// Appends `id` to the list described by `p`, relocating the list to
    /// the end of the arena when its reserved region is full.
    fn push(&mut self, p: &mut Posting, id: AtomId) {
        if p.len == p.cap {
            let new_cap = (p.cap * 2).max(1);
            let start = p.off as usize;
            let end = start + p.len as usize;
            let new_off = self.ids.len();
            self.ids.extend_from_within(start..end);
            self.ids.resize(new_off + new_cap as usize, AtomId(0));
            p.off = new_off as u32;
            p.cap = new_cap;
        }
        self.ids[p.off as usize + p.len as usize] = id;
        p.len += 1;
    }

    #[inline]
    fn slice(&self, p: Posting) -> &[AtomId] {
        &self.ids[p.off as usize..p.off as usize + p.len as usize]
    }
}

/// Open-addressing dedup index: `(hash, id)` pairs verified against the
/// row store, so the set-semantics check costs no atom clones. Linear
/// probing, power-of-two capacity, no deletions (databases only grow).
#[derive(Debug, Default)]
struct DedupTable {
    /// `id == u32::MAX` marks an empty slot (the row store is capped far
    /// below `u32::MAX` atoms by `AtomId` itself).
    slots: Vec<(u64, u32)>,
    len: usize,
}

const EMPTY: u32 = u32::MAX;

impl DedupTable {
    fn with_capacity(atoms: usize) -> Self {
        let cap = (atoms * 8 / 7 + 1).next_power_of_two();
        Self {
            slots: vec![(0, EMPTY); cap],
            len: 0,
        }
    }

    /// Builds the table over existing rows. Duplicate rows (possible only
    /// in a forged snapshot payload; `insert` never creates them) resolve
    /// to their first occurrence.
    fn build(hint: usize, rels: &[RelId], offs: &[u32], args: &[Const]) -> Self {
        let mut table = Self::with_capacity(hint.max(rels.len()));
        for i in 0..rels.len() {
            let row = row_at(offs, args, i);
            let hash = hash_row(rels[i], row);
            if table
                .find(hash, |j| {
                    rels[j as usize] == rels[i] && row_at(offs, args, j as usize) == row
                })
                .is_none()
            {
                table.insert(hash, i as u32);
            }
        }
        table
    }

    /// Looks up an atom with hash `hash` for which `matches` confirms row
    /// equality against the store.
    fn find(&self, hash: u64, matches: impl Fn(u32) -> bool) -> Option<AtomId> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = hash as usize & mask;
        loop {
            let (h, id) = self.slots[i];
            if id == EMPTY {
                return None;
            }
            if h == hash && matches(id) {
                return Some(AtomId(id));
            }
            i = (i + 1) & mask;
        }
    }

    /// Records `hash → id`. The caller has already established via
    /// [`DedupTable::find`] that no equal atom is present.
    fn insert(&mut self, hash: u64, id: u32) {
        if (self.len + 1) * 8 > self.slots.len() * 7 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = hash as usize & mask;
        while self.slots[i].1 != EMPTY {
            i = (i + 1) & mask;
        }
        self.slots[i] = (hash, id);
        self.len += 1;
    }

    fn grow(&mut self) {
        let new_cap = (self.slots.len() * 2).max(16);
        let old = std::mem::replace(&mut self.slots, vec![(0, EMPTY); new_cap]);
        let mask = new_cap - 1;
        for (h, id) in old {
            if id == EMPTY {
                continue;
            }
            let mut i = h as usize & mask;
            while self.slots[i].1 != EMPTY {
                i = (i + 1) & mask;
            }
            self.slots[i] = (h, id);
        }
    }
}

/// Hash of one row `(rel, args)` — used by dedup for both stored rows
/// and probe [`Atom`]s, so the two always agree.
#[inline]
fn hash_row(rel: RelId, args: &[Const]) -> u64 {
    let mut h = FxHasher::default();
    h.write_u32(rel.0);
    for c in args {
        h.write_u32(c.0 .0);
    }
    h.finish()
}

/// Argument run of row `i` in the flat columns.
#[inline]
fn row_at<'a>(offs: &[u32], args: &'a [Const], i: usize) -> &'a [Const] {
    &args[offs[i] as usize..offs[i + 1] as usize]
}

/// Prefix sums of arities: the flattened `(rel, pos)` slot map.
fn pos_base_of(schema: &Schema) -> Vec<u32> {
    let mut base = Vec::with_capacity(schema.len() + 1);
    let mut acc = 0u32;
    base.push(0);
    for rel in schema.rel_ids() {
        acc += schema.arity(rel) as u32;
        base.push(acc);
    }
    base
}

/// The derived query indexes: everything `atoms_of` / `atoms_with` /
/// `atoms_mentioning` and the `count_*` family read. Built lazily in one
/// exact-size counting pass, then maintained incrementally by `insert`.
#[derive(Debug)]
struct QueryIndexes {
    rel_index: Vec<Vec<AtomId>>,
    /// Flattened `(rel, pos)` slot base: the posting column for position
    /// `pos` of relation `rel` is `pos_cols[pos_base[rel] + pos]`.
    pos_base: Vec<u32>,
    /// Dense per-`(rel, pos)` columns over the interned-constant space.
    pos_cols: Vec<Vec<Posting>>,
    /// Dense column over the interned-constant id space: `const_adj[c]`
    /// is the posting of atoms mentioning constant `c` (each atom once).
    const_adj: Vec<Posting>,
    postings: PostingPool,
}

impl QueryIndexes {
    /// Bulk build over existing rows: count per (slot, constant) and per
    /// constant (adjacency), lay every list out back-to-back with exact
    /// capacity, then fill in row order — insertion-order slices
    /// identical to what incremental maintenance would have produced.
    fn build(
        schema: &Schema,
        n_consts: usize,
        rels: &[RelId],
        offs: &[u32],
        args: &[Const],
    ) -> Self {
        let mut rel_counts = vec![0usize; schema.len()];
        for &rel in rels {
            rel_counts[rel.index()] += 1;
        }
        let mut rel_index: Vec<Vec<AtomId>> =
            rel_counts.iter().map(|&c| Vec::with_capacity(c)).collect();
        for (i, &rel) in rels.iter().enumerate() {
            rel_index[rel.index()].push(AtomId(i as u32));
        }

        let pos_base = pos_base_of(schema);
        let mut pos_cols = vec![Vec::<Posting>::new(); *pos_base.last().unwrap_or(&0) as usize];
        let mut const_adj = vec![Posting::default(); n_consts];
        for (i, &rel) in rels.iter().enumerate() {
            let base = pos_base[rel.index()] as usize;
            let a = row_at(offs, args, i);
            for (pos, &c) in a.iter().enumerate() {
                let slot = c.0.index();
                let col = &mut pos_cols[base + pos];
                if slot >= col.len() {
                    col.resize(slot + 1, Posting::default());
                }
                col[slot].len += 1;
                if !a[..pos].contains(&c) {
                    const_adj[slot].len += 1;
                }
            }
        }
        let mut off = 0u32;
        for p in pos_cols
            .iter_mut()
            .flat_map(|col| col.iter_mut())
            .chain(const_adj.iter_mut())
        {
            p.off = off;
            p.cap = p.len;
            off += p.len;
            p.len = 0;
        }
        let mut postings = PostingPool {
            ids: vec![AtomId(0); off as usize],
        };
        for (i, &rel) in rels.iter().enumerate() {
            let id = AtomId(i as u32);
            let base = pos_base[rel.index()] as usize;
            let a = row_at(offs, args, i);
            for (pos, &c) in a.iter().enumerate() {
                let slot = c.0.index();
                let p = &mut pos_cols[base + pos][slot];
                postings.ids[(p.off + p.len) as usize] = id;
                p.len += 1;
                if !a[..pos].contains(&c) {
                    let p = &mut const_adj[slot];
                    postings.ids[(p.off + p.len) as usize] = id;
                    p.len += 1;
                }
            }
        }

        Self {
            rel_index,
            pos_base,
            pos_cols,
            const_adj,
            postings,
        }
    }

    /// Incremental maintenance for one freshly appended row.
    fn add_row(&mut self, id: AtomId, rel: RelId, args: &[Const]) {
        self.rel_index[rel.index()].push(id);
        let base = self.pos_base[rel.index()] as usize;
        for (pos, &c) in args.iter().enumerate() {
            let slot = c.0.index();
            let col = &mut self.pos_cols[base + pos];
            if slot >= col.len() {
                col.resize(slot + 1, Posting::default());
            }
            self.postings.push(&mut col[slot], id);
            // `const_adj` must contain each incident atom once even when
            // the constant repeats within the atom (e.g. W(e, e)).
            if !args[..pos].contains(&c) {
                if slot >= self.const_adj.len() {
                    self.const_adj.resize(slot + 1, Posting::default());
                }
                self.postings.push(&mut self.const_adj[slot], id);
            }
        }
    }

    #[inline]
    fn pos_posting(&self, rel: RelId, pos: usize, c: Const) -> Option<Posting> {
        self.pos_cols[self.pos_base[rel.index()] as usize + pos]
            .get(c.0.index())
            .copied()
    }
}

/// An in-memory `S`-database.
///
/// Atoms are deduplicated (a database is a *set* of atoms, §2). Three
/// indexes serve queries:
///
/// 1. `rel_index` — all atoms of a relation (scan side of joins);
/// 2. per-position posting columns — atoms of a relation with a given
///    constant at a given position (lookup side of joins);
/// 3. `const_adj` — all atoms mentioning a given constant, regardless of
///    relation or position. This is exactly the neighbourhood function of
///    the border BFS (Definitions 3.1/3.2): one layer expansion touches each
///    incident atom once.
///
/// See the [module docs](self) for the columnar storage layout behind
/// these indexes and for when each one materializes.
#[derive(Default, Debug)]
pub struct Database {
    schema: Schema,
    consts: ConstPool,
    /// Row column 1: relation id per atom.
    rels: Vec<RelId>,
    /// Row column 2: end offset of each atom's argument run in `args`
    /// (`offs[0] == 0`; atom `i` owns `args[offs[i]..offs[i + 1]]`).
    offs: Vec<u32>,
    /// Row column 3: all argument constants, concatenated.
    args: Vec<Const>,
    /// Bulk-load sizing hint consumed when `dedup` materializes.
    dedup_hint: usize,
    /// Lazily built; see the module docs. `OnceLock` keeps the build
    /// thread-safe under the shared borrows of the border worker pool.
    dedup: OnceLock<Box<DedupTable>>,
    qidx: OnceLock<Box<QueryIndexes>>,
}

impl Database {
    /// Creates an empty database over `schema`.
    pub fn new(schema: Schema) -> Self {
        Self::with_capacity(schema, 0, 0)
    }

    /// Creates an empty database pre-sized for a bulk load of roughly
    /// `atoms` atoms over roughly `consts` distinct constants (e.g. from
    /// a snapshot header). Pre-sizing skips the rehash/regrow churn that
    /// dominates million-atom text loads.
    pub fn with_capacity(schema: Schema, atoms: usize, consts: usize) -> Self {
        let mut offs = Vec::with_capacity(atoms + 1);
        offs.push(0);
        Self {
            schema,
            consts: ConstPool::with_capacity(consts),
            rels: Vec::with_capacity(atoms),
            offs,
            args: Vec::with_capacity(atoms.saturating_mul(2)),
            dedup_hint: atoms,
            dedup: OnceLock::new(),
            qidx: OnceLock::new(),
        }
    }

    /// The schema `S`.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The constant pool (read access).
    #[inline]
    pub fn consts(&self) -> &ConstPool {
        &self.consts
    }

    /// The constant pool (intern access, e.g. for query parsing).
    #[inline]
    pub fn consts_mut(&mut self) -> &mut ConstPool {
        &mut self.consts
    }

    /// Interns a constant in this database's pool.
    pub fn constant(&mut self, name: &str) -> Const {
        self.consts.intern(name)
    }

    /// Split borrow: read access to the schema together with intern access
    /// to the constant pool (needed by query/mapping parsers, which resolve
    /// relations against the schema while interning constants).
    pub fn schema_and_consts_mut(&mut self) -> (&Schema, &mut ConstPool) {
        (&self.schema, &mut self.consts)
    }

    #[inline]
    fn row_args(&self, i: usize) -> &[Const] {
        row_at(&self.offs, &self.args, i)
    }

    #[inline]
    fn row_matches(&self, i: u32, rel: RelId, args: &[Const]) -> bool {
        self.rels[i as usize] == rel && self.row_args(i as usize) == args
    }

    /// The dedup table, materializing it over the current rows on first
    /// use.
    #[inline]
    fn dedup_table(&self) -> &DedupTable {
        self.dedup.get_or_init(|| {
            Box::new(DedupTable::build(
                self.dedup_hint,
                &self.rels,
                &self.offs,
                &self.args,
            ))
        })
    }

    /// The query indexes, materializing them over the current rows on
    /// first use.
    #[inline]
    fn query_indexes(&self) -> &QueryIndexes {
        self.qidx.get_or_init(|| {
            Box::new(QueryIndexes::build(
                &self.schema,
                self.consts.len(),
                &self.rels,
                &self.offs,
                &self.args,
            ))
        })
    }

    /// Inserts an atom, returning its id (existing id if duplicate).
    pub fn insert(&mut self, atom: Atom) -> Result<AtomId, SchemaError> {
        self.schema.check_arity(atom.rel, atom.args.len())?;
        self.dedup_table();
        let hash = hash_row(atom.rel, &atom.args);
        let (rels, offs, args) = (&self.rels, &self.offs, &self.args);
        let Some(dedup) = self.dedup.get_mut() else {
            unreachable!("dedup_table() above materializes the table");
        };
        if let Some(id) = dedup.find(hash, |i| {
            rels[i as usize] == atom.rel && row_at(offs, args, i as usize) == &*atom.args
        }) {
            return Ok(id);
        }
        let id = AtomId(self.rels.len() as u32);
        dedup.insert(hash, id.0);
        self.rels.push(atom.rel);
        self.args.extend_from_slice(&atom.args);
        self.offs.push(self.args.len() as u32);
        // Query indexes are only maintained once someone has read them;
        // until then the next read's bulk build covers this row too.
        if let Some(q) = self.qidx.get_mut() {
            q.add_row(id, atom.rel, &atom.args);
        }
        Ok(id)
    }

    /// Convenience: intern names and insert `rel(args…)` in one call.
    pub fn insert_named(&mut self, rel: &str, args: &[&str]) -> Result<AtomId, SchemaError> {
        let rel = self.schema.rel(rel)?;
        let args: Vec<Const> = args.iter().map(|a| self.consts.intern(a)).collect();
        self.insert(Atom::new(rel, args))
    }

    /// The atom with the given id, as a borrowed columnar view.
    #[inline]
    pub fn atom(&self, id: AtomId) -> AtomRef<'_> {
        AtomRef {
            rel: self.rels[id.index()],
            args: self.row_args(id.index()),
        }
    }

    /// Whether an identical atom is present.
    pub fn contains(&self, atom: &Atom) -> bool {
        self.id_of(atom).is_some()
    }

    /// Id of an identical atom, if present.
    pub fn id_of(&self, atom: &Atom) -> Option<AtomId> {
        self.dedup_table()
            .find(hash_row(atom.rel, &atom.args), |i| {
                self.row_matches(i, atom.rel, &atom.args)
            })
    }

    /// Total number of atoms.
    pub fn len(&self) -> usize {
        self.rels.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.rels.is_empty()
    }

    /// All atom ids, in insertion order.
    pub fn atom_ids(&self) -> impl Iterator<Item = AtomId> {
        (0..self.rels.len() as u32).map(AtomId)
    }

    /// The raw row columns `(rels, args)` — the snapshot wire content.
    /// Per-atom argument runs follow the schema arities in `rels` order;
    /// [`Database::from_columns`] is the inverse.
    pub fn columns(&self) -> (&[RelId], &[Const]) {
        (&self.rels, &self.args)
    }

    /// Rebuilds a database from row columns (and an already-populated
    /// constant pool). Every id is bounds-checked — a malformed column is
    /// an `Err`, never a panic — but no index is built: dedup and the
    /// query indexes materialize on first use (see the module docs),
    /// which is what makes the binary snapshot load an I/O-bound copy.
    ///
    /// Duplicate rows are structurally accepted (detecting them would
    /// force the dedup build this constructor exists to defer); lookups
    /// resolve to the first occurrence. The snapshot encoder never writes
    /// duplicates — only a forged payload can contain them, and the
    /// snapshot checksum plus this keep-first rule bound the damage to
    /// wrong query answers, exactly like the interner's trusted slots.
    pub fn from_columns(
        schema: Schema,
        consts: ConstPool,
        rels: Vec<RelId>,
        args: Vec<Const>,
    ) -> Result<Self, String> {
        let n_consts = consts.len();
        // Offsets from the declared arities; validates relation ids and
        // the total argument count.
        let mut offs = Vec::with_capacity(rels.len() + 1);
        offs.push(0u32);
        let mut total = 0usize;
        for (i, &rel) in rels.iter().enumerate() {
            if rel.index() >= schema.len() {
                return Err(format!("atom {i}: unknown relation id {}", rel.0));
            }
            total += schema.arity(rel);
            if total > args.len() {
                return Err(format!("atom {i}: argument run past the argument column"));
            }
            offs.push(total as u32);
        }
        if total != args.len() {
            return Err(format!(
                "argument column holds {} constants, rows need {total}",
                args.len()
            ));
        }
        if args.iter().any(|c| c.0.index() >= n_consts) {
            return Err("argument names an unknown constant id".into());
        }

        Ok(Self {
            schema,
            consts,
            rels,
            offs,
            args,
            dedup_hint: 0,
            dedup: OnceLock::new(),
            qidx: OnceLock::new(),
        })
    }

    /// Atom ids of relation `rel`.
    #[inline]
    pub fn atoms_of(&self, rel: RelId) -> &[AtomId] {
        &self.query_indexes().rel_index[rel.index()]
    }

    /// Atom ids of `rel` having constant `c` at position `pos`.
    #[inline]
    pub fn atoms_with(&self, rel: RelId, pos: usize, c: Const) -> &[AtomId] {
        let q = self.query_indexes();
        q.pos_posting(rel, pos, c)
            .map(|p| q.postings.slice(p))
            .unwrap_or(&[])
    }

    /// All atom ids mentioning constant `c` (each atom once).
    #[inline]
    pub fn atoms_mentioning(&self, c: Const) -> &[AtomId] {
        let q = self.query_indexes();
        q.const_adj
            .get(c.0.index())
            .map(|&p| q.postings.slice(p))
            .unwrap_or(&[])
    }

    /// Number of atoms of relation `rel` — O(1) (the `rel_index` length).
    ///
    /// The prefix-count family (`count_of` / `count_with` /
    /// `count_mentioning`) backs the guided evaluator's cardinality
    /// estimates ([`obx-query`]'s `eval::guided`): every estimate is a
    /// plain length read of an index the database already maintains, so
    /// re-estimating after each variable binding costs O(arity) lookups.
    #[inline]
    pub fn count_of(&self, rel: RelId) -> usize {
        self.query_indexes().rel_index[rel.index()].len()
    }

    /// Number of atoms of `rel` with constant `c` at position `pos` —
    /// O(1) (two array reads in the dense per-position column).
    #[inline]
    pub fn count_with(&self, rel: RelId, pos: usize, c: Const) -> usize {
        self.query_indexes()
            .pos_posting(rel, pos, c)
            .map_or(0, |p| p.len as usize)
    }

    /// Number of atoms mentioning constant `c` — O(1).
    #[inline]
    pub fn count_mentioning(&self, c: Const) -> usize {
        self.query_indexes()
            .const_adj
            .get(c.0.index())
            .map_or(0, |p| p.len as usize)
    }

    /// Renders the whole database, one atom per line (stable order), for
    /// golden tests and examples.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for id in self.atom_ids() {
            out.push_str(&self.atom(id).render(&self.schema, &self.consts));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn db_rs() -> Database {
        let mut schema = Schema::new();
        schema.declare("R", 2).unwrap();
        schema.declare("S", 2).unwrap();
        Database::new(schema)
    }

    #[test]
    fn insert_deduplicates() {
        let mut db = db_rs();
        let a = db.insert_named("R", &["a", "b"]).unwrap();
        let b = db.insert_named("R", &["a", "b"]).unwrap();
        assert_eq!(a, b);
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn arity_is_enforced() {
        let mut db = db_rs();
        let err = db.insert_named("R", &["a"]).unwrap_err();
        assert!(matches!(err, SchemaError::ArityMismatch { .. }));
        assert!(db.is_empty());
    }

    #[test]
    fn unknown_relation_is_rejected() {
        let mut db = db_rs();
        assert!(matches!(
            db.insert_named("Z", &["a"]).unwrap_err(),
            SchemaError::Unknown(_)
        ));
    }

    #[test]
    fn indexes_are_consistent() {
        let mut db = db_rs();
        let r = db.schema().rel("R").unwrap();
        let s = db.schema().rel("S").unwrap();
        let id1 = db.insert_named("R", &["a", "b"]).unwrap();
        let id2 = db.insert_named("R", &["a", "c"]).unwrap();
        let id3 = db.insert_named("S", &["c", "a"]).unwrap();
        let a = db.consts().get("a").unwrap();
        let c = db.consts().get("c").unwrap();

        assert_eq!(db.atoms_of(r), &[id1, id2]);
        assert_eq!(db.atoms_of(s), &[id3]);
        assert_eq!(db.atoms_with(r, 0, a), &[id1, id2]);
        assert_eq!(db.atoms_with(r, 1, c), &[id2]);
        assert_eq!(db.atoms_with(s, 1, a), &[id3]);
        assert!(db.atoms_with(s, 0, a).is_empty());

        let mut mention_a: Vec<AtomId> = db.atoms_mentioning(a).to_vec();
        mention_a.sort();
        assert_eq!(mention_a, vec![id1, id2, id3]);
        assert_eq!(db.atoms_mentioning(c), &[id2, id3]);
    }

    #[test]
    fn repeated_constant_in_one_atom_appears_once_in_adjacency() {
        let mut db = db_rs();
        let id = db.insert_named("R", &["e", "e"]).unwrap();
        let e = db.consts().get("e").unwrap();
        assert_eq!(db.atoms_mentioning(e), &[id]);
    }

    #[test]
    fn contains_and_id_of() {
        let mut db = db_rs();
        let id = db.insert_named("R", &["a", "b"]).unwrap();
        let r = db.schema().rel("R").unwrap();
        let a = db.consts().get("a").unwrap();
        let b = db.consts().get("b").unwrap();
        let atom = Atom::new(r, [a, b]);
        assert!(db.contains(&atom));
        assert_eq!(db.id_of(&atom), Some(id));
        let missing = Atom::new(r, [b, a]);
        assert!(!db.contains(&missing));
        assert_eq!(db.id_of(&missing), None);
    }

    #[test]
    fn render_lists_atoms_in_insertion_order() {
        let mut db = db_rs();
        db.insert_named("R", &["a", "b"]).unwrap();
        db.insert_named("S", &["a", "c"]).unwrap();
        assert_eq!(db.render(), "R(a, b)\nS(a, c)\n");
    }

    #[test]
    fn posting_lists_stay_in_insertion_order_across_regrowth() {
        // Enough atoms sharing a constant to force several posting
        // relocations and a few dedup-table regrows.
        let mut schema = Schema::new();
        schema.declare("R", 2).unwrap();
        let mut db = Database::new(schema);
        let mut ids = Vec::new();
        for i in 0..1000 {
            let right = format!("x{i}");
            ids.push(db.insert_named("R", &["hub", &right]).unwrap());
        }
        let hub = db.consts().get("hub").unwrap();
        assert_eq!(db.atoms_mentioning(hub), ids.as_slice());
        assert_eq!(db.count_mentioning(hub), 1000);
        let r = db.schema().rel("R").unwrap();
        assert_eq!(db.atoms_with(r, 0, hub), ids.as_slice());
        // Dedup still exact after regrowth.
        assert_eq!(db.insert_named("R", &["hub", "x500"]).unwrap(), ids[500]);
        assert_eq!(db.len(), 1000);
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut schema = Schema::new();
        schema.declare("R", 2).unwrap();
        let mut db = Database::with_capacity(schema, 64, 64);
        let id = db.insert_named("R", &["a", "b"]).unwrap();
        assert_eq!(db.insert_named("R", &["a", "b"]).unwrap(), id);
        let a = db.consts().get("a").unwrap();
        assert_eq!(db.atoms_mentioning(a), &[id]);
    }

    /// Inserts landing after the lazy bulk build must keep every index
    /// live: queries force the build, and later inserts maintain it
    /// incrementally — interleaving the two must agree with an eager
    /// database at every step.
    #[test]
    fn inserts_after_the_lazy_build_keep_indexes_live() {
        let mut db = db_rs();
        let r = db.schema().rel("R").unwrap();
        let id1 = db.insert_named("R", &["a", "b"]).unwrap();
        // Force the query-index build…
        assert_eq!(db.atoms_of(r), &[id1]);
        // …then keep inserting and observe each row appear everywhere.
        let id2 = db.insert_named("R", &["a", "c"]).unwrap();
        let id3 = db.insert_named("S", &["c", "a"]).unwrap();
        let a = db.consts().get("a").unwrap();
        let c = db.consts().get("c").unwrap();
        assert_eq!(db.atoms_of(r), &[id1, id2]);
        assert_eq!(db.atoms_with(r, 0, a), &[id1, id2]);
        assert_eq!(db.atoms_mentioning(c), &[id2, id3]);
        assert_eq!(db.count_mentioning(a), 3);
        assert_eq!(db.insert_named("R", &["a", "c"]).unwrap(), id2);
        assert_eq!(db.len(), 3);
    }

    /// `from_columns` must rebuild a database indistinguishable from the
    /// one the rows came from — identical render, indexes, counts, and
    /// dedup behaviour — because the snapshot fast path rests on it.
    #[test]
    fn from_columns_rebuilds_the_identical_database() {
        let mut db = db_rs();
        db.insert_named("R", &["a", "b"]).unwrap();
        db.insert_named("R", &["a", "c"]).unwrap();
        db.insert_named("S", &["c", "a"]).unwrap();
        db.insert_named("S", &["e", "e"]).unwrap();
        let (rels, args) = db.columns();
        let mut pool = ConstPool::new();
        for name in ["a", "b", "c", "e"] {
            pool.intern(name);
        }
        let rebuilt =
            Database::from_columns(db.schema().clone(), pool, rels.to_vec(), args.to_vec())
                .unwrap();
        assert_eq!(rebuilt.render(), db.render());
        let r = db.schema().rel("R").unwrap();
        let a = rebuilt.consts().get("a").unwrap();
        let e = rebuilt.consts().get("e").unwrap();
        assert_eq!(rebuilt.atoms_of(r), db.atoms_of(r));
        assert_eq!(rebuilt.atoms_with(r, 0, a), db.atoms_with(r, 0, a));
        assert_eq!(rebuilt.atoms_mentioning(a), db.atoms_mentioning(a));
        assert_eq!(rebuilt.atoms_mentioning(e).len(), 1);
        assert_eq!(rebuilt.count_with(r, 0, a), 2);
        // Dedup is live: re-inserting an existing row returns its id.
        let mut rebuilt = rebuilt;
        assert_eq!(rebuilt.insert_named("R", &["a", "b"]).unwrap(), AtomId(0));
        assert_eq!(rebuilt.len(), 4);
    }

    #[test]
    fn from_columns_rejects_inconsistent_rows() {
        let mut schema = Schema::new();
        let r = schema.declare("R", 2).unwrap();
        // Unknown relation id.
        assert!(
            Database::from_columns(schema.clone(), ConstPool::new(), vec![RelId(9)], vec![])
                .is_err()
        );
        // Argument column too short / too long.
        assert!(Database::from_columns(schema.clone(), ConstPool::new(), vec![r], vec![]).is_err());
        let mut pool2 = ConstPool::new();
        let a2 = pool2.intern("a");
        assert!(Database::from_columns(schema.clone(), pool2, vec![r], vec![a2, a2, a2]).is_err());
        // Unknown constant id.
        assert!(Database::from_columns(
            schema,
            ConstPool::new(),
            vec![r],
            vec![Const(obx_util::Symbol(5)), Const(obx_util::Symbol(6))]
        )
        .is_err());
    }

    /// Duplicate rows can only reach `from_columns` via a forged snapshot
    /// payload; they are tolerated structurally and resolve keep-first,
    /// as the trust model in the snapshot module documents.
    #[test]
    fn duplicate_rows_resolve_to_their_first_occurrence() {
        let mut schema = Schema::new();
        let r = schema.declare("R", 2).unwrap();
        let mut pool = ConstPool::new();
        let a = pool.intern("a");
        let b = pool.intern("b");
        let db = Database::from_columns(schema, pool, vec![r, r], vec![a, b, a, b]).unwrap();
        assert_eq!(db.len(), 2);
        assert_eq!(db.id_of(&Atom::new(r, [a, b])), Some(AtomId(0)));
        let mut db = db;
        assert_eq!(db.insert(Atom::new(r, [a, b])).unwrap(), AtomId(0));
        assert_eq!(db.len(), 2);
    }
}

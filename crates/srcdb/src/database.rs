//! The `S`-database `D`: an indexed, set-semantics store of ground atoms.

use crate::atom::{Atom, AtomId};
use crate::consts::{Const, ConstPool};
use crate::schema::{RelId, Schema, SchemaError};
use obx_util::FxHashMap;

/// An in-memory `S`-database.
///
/// Atoms are deduplicated (a database is a *set* of atoms, §2). Three
/// indexes are maintained incrementally:
///
/// 1. `rel_index` — all atoms of a relation (scan side of joins);
/// 2. `pos_index` — atoms of a relation with a given constant at a given
///    position (lookup side of joins);
/// 3. `const_adj` — all atoms mentioning a given constant, regardless of
///    relation or position. This is exactly the neighbourhood function of
///    the border BFS (Definitions 3.1/3.2): one layer expansion touches each
///    incident atom once.
#[derive(Default, Debug)]
pub struct Database {
    schema: Schema,
    consts: ConstPool,
    atoms: Vec<Atom>,
    dedup: FxHashMap<Atom, AtomId>,
    rel_index: Vec<Vec<AtomId>>,
    pos_index: FxHashMap<(RelId, u16, Const), Vec<AtomId>>,
    const_adj: FxHashMap<Const, Vec<AtomId>>,
}

impl Database {
    /// Creates an empty database over `schema`.
    pub fn new(schema: Schema) -> Self {
        let rel_index = vec![Vec::new(); schema.len()];
        Self {
            schema,
            consts: ConstPool::new(),
            atoms: Vec::new(),
            dedup: FxHashMap::default(),
            rel_index,
            pos_index: FxHashMap::default(),
            const_adj: FxHashMap::default(),
        }
    }

    /// The schema `S`.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The constant pool (read access).
    #[inline]
    pub fn consts(&self) -> &ConstPool {
        &self.consts
    }

    /// The constant pool (intern access, e.g. for query parsing).
    #[inline]
    pub fn consts_mut(&mut self) -> &mut ConstPool {
        &mut self.consts
    }

    /// Interns a constant in this database's pool.
    pub fn constant(&mut self, name: &str) -> Const {
        self.consts.intern(name)
    }

    /// Split borrow: read access to the schema together with intern access
    /// to the constant pool (needed by query/mapping parsers, which resolve
    /// relations against the schema while interning constants).
    pub fn schema_and_consts_mut(&mut self) -> (&Schema, &mut ConstPool) {
        (&self.schema, &mut self.consts)
    }

    /// Inserts an atom, returning its id (existing id if duplicate).
    pub fn insert(&mut self, atom: Atom) -> Result<AtomId, SchemaError> {
        self.schema.check_arity(atom.rel, atom.args.len())?;
        if let Some(&id) = self.dedup.get(&atom) {
            return Ok(id);
        }
        let id = AtomId(self.atoms.len() as u32);
        self.rel_index[atom.rel.index()].push(id);
        for (pos, &c) in atom.args.iter().enumerate() {
            self.pos_index
                .entry((atom.rel, pos as u16, c))
                .or_default()
                .push(id);
            // `const_adj` must contain each incident atom once even when the
            // constant repeats within the atom (e.g. W(e, e)).
            if !atom.args[..pos].contains(&c) {
                self.const_adj.entry(c).or_default().push(id);
            }
        }
        self.dedup.insert(atom.clone(), id);
        self.atoms.push(atom);
        Ok(id)
    }

    /// Convenience: intern names and insert `rel(args…)` in one call.
    pub fn insert_named(&mut self, rel: &str, args: &[&str]) -> Result<AtomId, SchemaError> {
        let rel = self.schema.rel(rel)?;
        let args: Vec<Const> = args.iter().map(|a| self.consts.intern(a)).collect();
        self.insert(Atom::new(rel, args))
    }

    /// The atom with the given id.
    #[inline]
    pub fn atom(&self, id: AtomId) -> &Atom {
        &self.atoms[id.index()]
    }

    /// Whether an identical atom is present.
    pub fn contains(&self, atom: &Atom) -> bool {
        self.dedup.contains_key(atom)
    }

    /// Id of an identical atom, if present.
    pub fn id_of(&self, atom: &Atom) -> Option<AtomId> {
        self.dedup.get(atom).copied()
    }

    /// Total number of atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// All atom ids, in insertion order.
    pub fn atom_ids(&self) -> impl Iterator<Item = AtomId> {
        (0..self.atoms.len() as u32).map(AtomId)
    }

    /// Atom ids of relation `rel`.
    #[inline]
    pub fn atoms_of(&self, rel: RelId) -> &[AtomId] {
        &self.rel_index[rel.index()]
    }

    /// Atom ids of `rel` having constant `c` at position `pos`.
    #[inline]
    pub fn atoms_with(&self, rel: RelId, pos: usize, c: Const) -> &[AtomId] {
        self.pos_index
            .get(&(rel, pos as u16, c))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// All atom ids mentioning constant `c` (each atom once).
    #[inline]
    pub fn atoms_mentioning(&self, c: Const) -> &[AtomId] {
        self.const_adj.get(&c).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of atoms of relation `rel` — O(1) (the `rel_index` length).
    ///
    /// The prefix-count family (`count_of` / `count_with` /
    /// `count_mentioning`) backs the guided evaluator's cardinality
    /// estimates ([`obx-query`]'s `eval::guided`): every estimate is a
    /// plain length read of an index the database already maintains, so
    /// re-estimating after each variable binding costs O(arity) lookups.
    #[inline]
    pub fn count_of(&self, rel: RelId) -> usize {
        self.rel_index[rel.index()].len()
    }

    /// Number of atoms of `rel` with constant `c` at position `pos` —
    /// O(1) (one `pos_index` hash lookup).
    #[inline]
    pub fn count_with(&self, rel: RelId, pos: usize, c: Const) -> usize {
        self.pos_index
            .get(&(rel, pos as u16, c))
            .map_or(0, Vec::len)
    }

    /// Number of atoms mentioning constant `c` — O(1).
    #[inline]
    pub fn count_mentioning(&self, c: Const) -> usize {
        self.const_adj.get(&c).map_or(0, Vec::len)
    }

    /// Renders the whole database, one atom per line (stable order), for
    /// golden tests and examples.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for a in &self.atoms {
            out.push_str(&a.render(&self.schema, &self.consts));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_rs() -> Database {
        let mut schema = Schema::new();
        schema.declare("R", 2).unwrap();
        schema.declare("S", 2).unwrap();
        Database::new(schema)
    }

    #[test]
    fn insert_deduplicates() {
        let mut db = db_rs();
        let a = db.insert_named("R", &["a", "b"]).unwrap();
        let b = db.insert_named("R", &["a", "b"]).unwrap();
        assert_eq!(a, b);
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn arity_is_enforced() {
        let mut db = db_rs();
        let err = db.insert_named("R", &["a"]).unwrap_err();
        assert!(matches!(err, SchemaError::ArityMismatch { .. }));
        assert!(db.is_empty());
    }

    #[test]
    fn unknown_relation_is_rejected() {
        let mut db = db_rs();
        assert!(matches!(
            db.insert_named("Z", &["a"]).unwrap_err(),
            SchemaError::Unknown(_)
        ));
    }

    #[test]
    fn indexes_are_consistent() {
        let mut db = db_rs();
        let r = db.schema().rel("R").unwrap();
        let s = db.schema().rel("S").unwrap();
        let id1 = db.insert_named("R", &["a", "b"]).unwrap();
        let id2 = db.insert_named("R", &["a", "c"]).unwrap();
        let id3 = db.insert_named("S", &["c", "a"]).unwrap();
        let a = db.consts().get("a").unwrap();
        let c = db.consts().get("c").unwrap();

        assert_eq!(db.atoms_of(r), &[id1, id2]);
        assert_eq!(db.atoms_of(s), &[id3]);
        assert_eq!(db.atoms_with(r, 0, a), &[id1, id2]);
        assert_eq!(db.atoms_with(r, 1, c), &[id2]);
        assert_eq!(db.atoms_with(s, 1, a), &[id3]);
        assert!(db.atoms_with(s, 0, a).is_empty());

        let mut mention_a: Vec<AtomId> = db.atoms_mentioning(a).to_vec();
        mention_a.sort();
        assert_eq!(mention_a, vec![id1, id2, id3]);
        assert_eq!(db.atoms_mentioning(c), &[id2, id3]);
    }

    #[test]
    fn repeated_constant_in_one_atom_appears_once_in_adjacency() {
        let mut db = db_rs();
        let id = db.insert_named("R", &["e", "e"]).unwrap();
        let e = db.consts().get("e").unwrap();
        assert_eq!(db.atoms_mentioning(e), &[id]);
    }

    #[test]
    fn contains_and_id_of() {
        let mut db = db_rs();
        let id = db.insert_named("R", &["a", "b"]).unwrap();
        let r = db.schema().rel("R").unwrap();
        let a = db.consts().get("a").unwrap();
        let b = db.consts().get("b").unwrap();
        let atom = Atom::new(r, [a, b]);
        assert!(db.contains(&atom));
        assert_eq!(db.id_of(&atom), Some(id));
        let missing = Atom::new(r, [b, a]);
        assert!(!db.contains(&missing));
        assert_eq!(db.id_of(&missing), None);
    }

    #[test]
    fn render_lists_atoms_in_insertion_order() {
        let mut db = db_rs();
        db.insert_named("R", &["a", "b"]).unwrap();
        db.insert_named("S", &["a", "c"]).unwrap();
        assert_eq!(db.render(), "R(a, b)\nS(a, c)\n");
    }
}

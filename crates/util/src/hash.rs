//! Fx-style hashing.
//!
//! The standard library's default SipHash is robust against HashDoS but slow
//! for the short integer keys (interned symbols, atom ids) that dominate this
//! workspace. All inputs here are trusted (no attacker-controlled keys reach
//! long-lived tables), so we use the Fx mixing function popularized by the
//! Rust compiler: `state = (state.rotate_left(5) ^ word) * K`.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc Fx hash (64-bit variant).
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic hasher for trusted keys.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.mix(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            // Mix in the remainder length so that e.g. "a" and "a\0" differ.
            self.mix(u64::from_le_bytes(buf) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.mix(n as u64);
        self.mix((n >> 64) as u64);
    }
}

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) over `bytes`.
///
/// Used for integrity checks on durable artifacts (e.g. the serve tenant
/// journal), where a well-known, externally verifiable checksum matters more
/// than speed. Bitwise implementation — journal lines are tiny, so a lookup
/// table would be wasted space.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the fast Fx hash.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the fast Fx hash.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic_across_hasher_instances() {
        assert_eq!(hash_of(&42u32), hash_of(&42u32));
        assert_eq!(hash_of(&"border"), hash_of(&"border"));
    }

    #[test]
    fn distinguishes_close_integers() {
        assert_ne!(hash_of(&0u64), hash_of(&1u64));
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
    }

    #[test]
    fn distinguishes_prefix_strings() {
        assert_ne!(hash_of(&"a"), hash_of(&"ab"));
        assert_ne!(hash_of(&"abcdefgh"), hash_of(&"abcdefgh\0"));
    }

    #[test]
    fn empty_input_hashes_to_initial_state() {
        let mut h = FxHasher::default();
        h.write(&[]);
        assert_eq!(h.finish(), 0);
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<&str, u32> = FxHashMap::default();
        m.insert("radius", 2);
        assert_eq!(m.get("radius"), Some(&2));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let base = crc32(b"tenantA\t/some/dir");
        assert_ne!(base, crc32(b"tenantB\t/some/dir"));
        assert_ne!(base, crc32(b"tenantA\t/some/dis"));
    }

    #[test]
    fn long_inputs_use_all_bytes() {
        let a: Vec<u8> = (0..64).collect();
        let mut b = a.clone();
        b[63] ^= 1;
        let mut ha = FxHasher::default();
        ha.write(&a);
        let mut hb = FxHasher::default();
        hb.write(&b);
        assert_ne!(ha.finish(), hb.finish());
    }
}

//! Fx-style hashing.
//!
//! The standard library's default SipHash is robust against HashDoS but slow
//! for the short integer keys (interned symbols, atom ids) that dominate this
//! workspace. All inputs here are trusted (no attacker-controlled keys reach
//! long-lived tables), so we use the Fx mixing function popularized by the
//! Rust compiler: `state = (state.rotate_left(5) ^ word) * K`.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc Fx hash (64-bit variant).
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic hasher for trusted keys.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // The Fx multiply pushes entropy toward the high bits and leaves
        // the low bits — exactly the ones an open-addressing table masks —
        // barely mixed for structured keys ("s0", "s1", …, or sequential
        // ids). Folding the high half back down costs one shift+xor and
        // turns those near-sequential states into well-spread slot
        // indexes; without it a million-constant bulk load collapses into
        // a handful of probe clusters and interning goes quadratic.
        self.state ^ (self.state >> 32)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.mix(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            // Mix in the remainder length so that e.g. "a" and "a\0" differ.
            self.mix(u64::from_le_bytes(buf) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.mix(n as u64);
        self.mix((n >> 64) as u64);
    }
}

/// Slice-by-16 CRC-32 tables, built at compile time (16 KiB of rodata).
/// `CRC_TABLES[0]` is the classic byte-indexed table; `CRC_TABLES[k]`
/// advances a byte through `k` further zero bytes, which lets the hot
/// loop fold sixteen input bytes per iteration across two independent
/// dependency chains (the second eight bytes don't touch the running
/// crc until the final XOR, so the lookups pipeline).
const CRC_TABLES: [[u32; 256]; 16] = {
    let mut tables = [[0u32; 256]; 16];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 16 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
};

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) over `bytes`.
///
/// Used for integrity checks on durable artifacts — the serve tenant
/// journal and the multi-megabyte binary data snapshots — where a
/// well-known, externally verifiable checksum matters more than raw
/// speed. Slice-by-16 (sixteen table lookups fold sixteen bytes, two
/// independent eight-byte chains per iteration) so checksumming a
/// million-atom snapshot payload stays a small fraction of its load
/// time.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    let mut chunks = bytes.chunks_exact(16);
    for c in chunks.by_ref() {
        let a = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        let b = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        let d = u32::from_le_bytes([c[8], c[9], c[10], c[11]]);
        let e = u32::from_le_bytes([c[12], c[13], c[14], c[15]]);
        crc = CRC_TABLES[15][(a & 0xFF) as usize]
            ^ CRC_TABLES[14][((a >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[13][((a >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[12][(a >> 24) as usize]
            ^ CRC_TABLES[11][(b & 0xFF) as usize]
            ^ CRC_TABLES[10][((b >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[9][((b >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[8][(b >> 24) as usize]
            ^ CRC_TABLES[7][(d & 0xFF) as usize]
            ^ CRC_TABLES[6][((d >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[5][((d >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[4][(d >> 24) as usize]
            ^ CRC_TABLES[3][(e & 0xFF) as usize]
            ^ CRC_TABLES[2][((e >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[1][((e >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[0][(e >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ CRC_TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the fast Fx hash.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the fast Fx hash.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic_across_hasher_instances() {
        assert_eq!(hash_of(&42u32), hash_of(&42u32));
        assert_eq!(hash_of(&"border"), hash_of(&"border"));
    }

    #[test]
    fn distinguishes_close_integers() {
        assert_ne!(hash_of(&0u64), hash_of(&1u64));
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
    }

    #[test]
    fn distinguishes_prefix_strings() {
        assert_ne!(hash_of(&"a"), hash_of(&"ab"));
        assert_ne!(hash_of(&"abcdefgh"), hash_of(&"abcdefgh\0"));
    }

    #[test]
    fn empty_input_hashes_to_initial_state() {
        let mut h = FxHasher::default();
        h.write(&[]);
        assert_eq!(h.finish(), 0);
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<&str, u32> = FxHashMap::default();
        m.insert("radius", 2);
        assert_eq!(m.get("radius"), Some(&2));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let base = crc32(b"tenantA\t/some/dir");
        assert_ne!(base, crc32(b"tenantB\t/some/dir"));
        assert_ne!(base, crc32(b"tenantA\t/some/dis"));
    }

    #[test]
    fn long_inputs_use_all_bytes() {
        let a: Vec<u8> = (0..64).collect();
        let mut b = a.clone();
        b[63] ^= 1;
        let mut ha = FxHasher::default();
        ha.write(&a);
        let mut hb = FxHasher::default();
        hb.write(&b);
        assert_ne!(ha.finish(), hb.finish());
    }
}

//! `obx-util` — shared low-level utilities for the `obx` workspace.
//!
//! This crate deliberately has **no** third-party dependencies. It provides:
//!
//! * [`hash`] — an Fx-style fast hasher plus [`FxHashMap`]/[`FxHashSet`]
//!   aliases (the workspace policy forbids pulling `rustc-hash`, so the
//!   64-bit Fx mixing function is reimplemented here);
//! * [`intern`] — a compact string interner used for constants, predicate
//!   names, concept names and role names across the whole stack;
//! * [`table`] — a tiny fixed-width table printer used by the benchmark
//!   harness to render paper-style tables;
//! * [`fixpoint`] — a helper for running saturation loops to a fixed point;
//! * [`interrupt`] — a cooperative deadline/cancellation signal checked by
//!   the workspace's long-running kernels (rewriting, chase, border BFS);
//! * [`guard`] — cumulative size/memory guards charged by those kernels
//!   (max rewrite disjuncts, chase facts, border atoms, byte estimate);
//! * [`diag`] — structured, positioned ingestion diagnostics with a
//!   source-line caret renderer;
//! * [`obs`] — observability: hierarchical spans, a process-wide metrics
//!   registry (counters + log-scale latency histograms), and
//!   JSON/tree/flamegraph profile exporters, gated by the `obs` feature
//!   and the `OBX_OBS` environment variable;
//! * [`signal`] — the process's single SIGINT/SIGTERM handler, fanning
//!   shutdown out to every registered cancellation flag (CLI Ctrl-C
//!   cancel and `obx serve` drain share it — no double-install races);
//! * [`pool`] — a persistent scoped worker pool (lifetime-erased batch
//!   closures behind a countdown latch) shared by the scoring engine and
//!   the parallel border BFS.

#![warn(missing_docs)]

pub mod diag;
pub mod fixpoint;
pub mod guard;
pub mod hash;
pub mod intern;
pub mod interrupt;
pub mod obs;
pub mod pool;
pub mod signal;
pub mod table;

pub use diag::{Diagnostic, Diagnostics, Severity};
pub use guard::{GuardKind, GuardLimits, GuardTrip, ResourceGuard};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use intern::{Interner, Span, Symbol};
pub use interrupt::Interrupt;
pub use obs::{PipelineProfile, Recorder};
pub use pool::WorkerPool;

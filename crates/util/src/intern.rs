//! String interning.
//!
//! Every name that flows through the system — source constants, source
//! predicate names, ontology concept/role names — is interned once into a
//! [`Symbol`] (a `u32` newtype). All downstream data structures (atoms,
//! queries, TBox axioms, indexes) work on symbols, which makes equality a
//! word compare and keeps hot structures small (see the type-size guidance in
//! the Rust Performance Book).

use crate::hash::FxHashMap;
use std::fmt;
use std::sync::Arc;

/// An interned string. Cheap to copy, compare, and hash.
///
/// Symbols are only meaningful relative to the [`Interner`] that produced
/// them; mixing symbols from different interners is a logic error (but not
/// memory-unsafe).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(pub u32);

impl Symbol {
    /// The raw index of this symbol in its interner.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// An append-only string interner.
///
/// Each distinct string owns exactly one heap allocation, shared (via
/// `Arc<str>`) between the resolution vector and the lookup-map key —
/// `Arc<str>: Borrow<str>` lets the map answer `&str` queries without an
/// allocation. Resolution (`Symbol -> &str`) is an array index.
#[derive(Default)]
pub struct Interner {
    strings: Vec<Arc<str>>,
    lookup: FxHashMap<Arc<str>, Symbol>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an interner with room for `cap` distinct strings.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            strings: Vec::with_capacity(cap),
            lookup: FxHashMap::with_capacity_and_hasher(cap, Default::default()),
        }
    }

    /// Interns `s`, returning the existing symbol if already present.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.lookup.get(s) {
            return sym;
        }
        let sym = Symbol(
            u32::try_from(self.strings.len()).expect("interner overflow: more than 2^32 strings"),
        );
        let shared: Arc<str> = s.into();
        self.strings.push(Arc::clone(&shared));
        self.lookup.insert(shared, sym);
        sym
    }

    /// Looks up an already-interned string without inserting.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.lookup.get(s).copied()
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    /// Panics if `sym` did not come from this interner (index out of range).
    #[inline]
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Resolves a symbol, returning `None` for foreign symbols.
    pub fn try_resolve(&self, sym: Symbol) -> Option<&str> {
        self.strings.get(sym.index()).map(|s| &**s)
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterates over `(symbol, string)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (Symbol(i as u32), &**s))
    }
}

impl fmt::Debug for Interner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Interner")
            .field("len", &self.strings.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("Rome");
        let b = i.intern("Rome");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let mut i = Interner::new();
        let a = i.intern("Math");
        let b = i.intern("Science");
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "Math");
        assert_eq!(i.resolve(b), "Science");
    }

    #[test]
    fn get_does_not_insert() {
        let mut i = Interner::new();
        assert_eq!(i.get("missing"), None);
        assert_eq!(i.len(), 0);
        let s = i.intern("present");
        assert_eq!(i.get("present"), Some(s));
    }

    #[test]
    fn try_resolve_handles_foreign_symbols() {
        let i = Interner::new();
        assert_eq!(i.try_resolve(Symbol(3)), None);
    }

    #[test]
    fn iter_yields_in_interning_order() {
        let mut i = Interner::new();
        let syms: Vec<Symbol> = ["a", "b", "c"].iter().map(|s| i.intern(s)).collect();
        let collected: Vec<(Symbol, &str)> = i.iter().collect();
        assert_eq!(
            collected,
            vec![(syms[0], "a"), (syms[1], "b"), (syms[2], "c")]
        );
    }

    #[test]
    fn empty_string_is_internable() {
        let mut i = Interner::new();
        let e = i.intern("");
        assert_eq!(i.resolve(e), "");
    }

    #[test]
    fn vector_and_map_share_one_allocation() {
        let mut i = Interner::new();
        let sym = i.intern("Person");
        let in_vec = Arc::clone(&i.strings[sym.index()]);
        let in_map = i
            .lookup
            .get_key_value("Person")
            .map(|(k, _)| Arc::clone(k))
            .unwrap();
        assert!(
            Arc::ptr_eq(&in_vec, &in_map),
            "interned string must be stored once, shared by vec and map"
        );
    }

    proptest! {
        #[test]
        fn roundtrip(strings in proptest::collection::vec(".{0,16}", 0..64)) {
            let mut i = Interner::new();
            let syms: Vec<Symbol> = strings.iter().map(|s| i.intern(s)).collect();
            for (s, sym) in strings.iter().zip(&syms) {
                prop_assert_eq!(i.resolve(*sym), s.as_str());
            }
        }

        #[test]
        fn symbol_equality_mirrors_string_equality(
            a in ".{0,12}",
            b in ".{0,12}",
        ) {
            let mut i = Interner::new();
            let sa = i.intern(&a);
            let sb = i.intern(&b);
            prop_assert_eq!(sa == sb, a == b);
        }

        #[test]
        fn len_counts_distinct(strings in proptest::collection::vec("[a-c]{1,2}", 0..32)) {
            let mut i = Interner::new();
            for s in &strings {
                i.intern(s);
            }
            let distinct: std::collections::BTreeSet<&String> = strings.iter().collect();
            prop_assert_eq!(i.len(), distinct.len());
        }
    }
}

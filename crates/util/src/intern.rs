//! String interning.
//!
//! Every name that flows through the system — source constants, source
//! predicate names, ontology concept/role names — is interned once into a
//! [`Symbol`] (a `u32` newtype). All downstream data structures (atoms,
//! queries, TBox axioms, indexes) work on symbols, which makes equality a
//! word compare and keeps hot structures small (see the type-size guidance in
//! the Rust Performance Book).

use crate::hash::FxHasher;
use std::fmt;
use std::hash::Hasher;

/// An interned string. Cheap to copy, compare, and hash.
///
/// Symbols are only meaningful relative to the [`Interner`] that produced
/// them; mixing symbols from different interners is a logic error (but not
/// memory-unsafe).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(pub u32);

impl Symbol {
    /// The raw index of this symbol in its interner.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// Marks an empty lookup slot (`u32::MAX` symbols would overflow the
/// interner long before this sentinel is reachable).
const EMPTY: u32 = u32::MAX;

/// A `(start, len)` byte span into the interner's arena.
pub type Span = (u32, u32);

/// An append-only string interner with **columnar arena storage**.
///
/// The string bytes live in one shared `String` arena addressed by
/// `(start, len)` spans — one allocation for the whole population instead
/// of one `Box<str>` per string, which matters when a million-atom
/// snapshot restores hundreds of thousands of constants in one gulp. The
/// lookup side is a hand-rolled open-addressing table of `(hash, symbol)`
/// pairs verified against the arena. Compared to a
/// `HashMap<Arc<str>, Symbol>` this halves the per-string metadata, drops
/// the refcount traffic, and hashes each miss exactly once — the interner
/// is the single hottest structure in a bulk (snapshot or generator) load
/// of a million-atom database. Resolution (`Symbol -> &str`) is a span
/// lookup plus a slice.
///
/// The three columns round-trip losslessly through
/// [`Interner::as_parts`] / [`Interner::from_parts`], which is how binary
/// snapshots persist a constant pool without re-hashing every string on
/// load.
#[derive(Default)]
pub struct Interner {
    /// Concatenated bytes of every interned string, in symbol order.
    arena: String,
    /// Byte span of each symbol's string inside the arena.
    spans: Vec<Span>,
    /// Power-of-two open-addressing table; `.1 == EMPTY` marks a free slot.
    slots: Vec<(u64, u32)>,
}

/// The interner's key hash: Fx over the raw bytes. `FxHasher::write`
/// already folds the tail length into the final mix, so no extra length
/// prefix is needed to separate prefixes.
#[inline]
fn hash_str(s: &str) -> u64 {
    let mut h = FxHasher::default();
    h.write(s.as_bytes());
    h.finish()
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an interner with room for `cap` distinct strings.
    pub fn with_capacity(cap: usize) -> Self {
        let mut i = Self {
            arena: String::new(),
            spans: Vec::with_capacity(cap),
            slots: Vec::new(),
        };
        i.reserve_table(cap);
        i
    }

    /// Reserves room for `additional` further distinct strings (bulk
    /// loaders call this with the count from a snapshot header, skipping
    /// every intermediate table rehash).
    pub fn reserve(&mut self, additional: usize) {
        self.spans.reserve(additional);
        self.reserve_table(self.spans.len() + additional);
    }

    /// Ensures the lookup table can hold `total` entries under its 7/8
    /// load-factor ceiling.
    fn reserve_table(&mut self, total: usize) {
        let needed = (total * 8 / 7 + 1).next_power_of_two();
        if needed > self.slots.len() {
            self.rehash(needed);
        }
    }

    fn rehash(&mut self, new_cap: usize) {
        let old = std::mem::replace(&mut self.slots, vec![(0, EMPTY); new_cap]);
        let mask = new_cap - 1;
        for (h, sym) in old {
            if sym == EMPTY {
                continue;
            }
            let mut i = h as usize & mask;
            while self.slots[i].1 != EMPTY {
                i = (i + 1) & mask;
            }
            self.slots[i] = (h, sym);
        }
    }

    #[inline]
    fn span_str(&self, span: Span) -> &str {
        &self.arena[span.0 as usize..span.0 as usize + span.1 as usize]
    }

    /// Interns `s`, returning the existing symbol if already present.
    pub fn intern(&mut self, s: &str) -> Symbol {
        let hash = hash_str(s);
        if self.slots.is_empty() || (self.spans.len() + 1) * 8 > self.slots.len() * 7 {
            let target = (self.spans.len() + 1).max(8);
            self.reserve_table(target * 2);
        }
        let mask = self.slots.len() - 1;
        let mut i = hash as usize & mask;
        loop {
            let (h, sym) = self.slots[i];
            if sym == EMPTY {
                break;
            }
            if h == hash && self.span_str(self.spans[sym as usize]) == s {
                return Symbol(sym);
            }
            i = (i + 1) & mask;
        }
        let sym =
            u32::try_from(self.spans.len()).expect("interner overflow: more than 2^32 strings");
        let start = u32::try_from(self.arena.len()).expect("interner arena overflow (4 GiB)");
        let len = u32::try_from(s.len()).expect("interned string longer than 4 GiB");
        self.arena.push_str(s);
        self.spans.push((start, len));
        self.slots[i] = (hash, sym);
        Symbol(sym)
    }

    /// Looks up an already-interned string without inserting.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        if self.slots.is_empty() {
            return None;
        }
        let hash = hash_str(s);
        let mask = self.slots.len() - 1;
        let mut i = hash as usize & mask;
        loop {
            let (h, sym) = self.slots[i];
            if sym == EMPTY {
                return None;
            }
            if h == hash && self.span_str(self.spans[sym as usize]) == s {
                return Some(Symbol(sym));
            }
            i = (i + 1) & mask;
        }
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    /// Panics if `sym` did not come from this interner (index out of range).
    #[inline]
    pub fn resolve(&self, sym: Symbol) -> &str {
        self.span_str(self.spans[sym.index()])
    }

    /// Resolves a symbol, returning `None` for foreign symbols.
    pub fn try_resolve(&self, sym: Symbol) -> Option<&str> {
        self.spans.get(sym.index()).map(|&s| self.span_str(s))
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Iterates over `(symbol, string)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.spans
            .iter()
            .enumerate()
            .map(|(i, &s)| (Symbol(i as u32), self.span_str(s)))
    }

    /// The interner's raw columns `(arena, spans, slots)`, for snapshot
    /// serialization. Restoring them via [`Interner::from_parts`] yields
    /// an interner with identical symbols — no string is re-hashed.
    pub fn as_parts(&self) -> (&str, &[Span], &[(u64, u32)]) {
        (&self.arena, &self.spans, &self.slots)
    }

    /// Rebuilds an interner from columns previously captured by
    /// [`Interner::as_parts`]. Returns `None` when the columns are not
    /// mutually consistent (spans out of arena bounds or off UTF-8
    /// boundaries, a non-power-of-two or overfull table, symbols that do
    /// not bijectively cover `0..len`) — the checks a loader needs before
    /// trusting bytes from disk. Stored hashes are *not* re-verified: a
    /// wrong hash only mis-routes lookups, it cannot break memory safety,
    /// and transport corruption is the checksum's job.
    pub fn from_parts(arena: String, spans: Vec<Span>, slots: Vec<(u64, u32)>) -> Option<Self> {
        for &(start, len) in &spans {
            let (start, len) = (start as usize, len as usize);
            let end = start.checked_add(len)?;
            if end > arena.len() || !arena.is_char_boundary(start) || !arena.is_char_boundary(end) {
                return None;
            }
        }
        if slots.is_empty() {
            return spans.is_empty().then_some(Self {
                arena,
                spans,
                slots,
            });
        }
        if !slots.len().is_power_of_two() || spans.len() * 8 > slots.len() * 7 {
            return None;
        }
        // Occupied slots must name each symbol exactly once.
        let mut seen = vec![false; spans.len()];
        let mut occupied = 0usize;
        for &(_, sym) in &slots {
            if sym == EMPTY {
                continue;
            }
            let i = sym as usize;
            if i >= spans.len() || seen[i] {
                return None;
            }
            seen[i] = true;
            occupied += 1;
        }
        if occupied != spans.len() {
            return None;
        }
        Some(Self {
            arena,
            spans,
            slots,
        })
    }
}

impl fmt::Debug for Interner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Interner")
            .field("len", &self.spans.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("Rome");
        let b = i.intern("Rome");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let mut i = Interner::new();
        let a = i.intern("Math");
        let b = i.intern("Science");
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "Math");
        assert_eq!(i.resolve(b), "Science");
    }

    #[test]
    fn get_does_not_insert() {
        let mut i = Interner::new();
        assert_eq!(i.get("missing"), None);
        assert_eq!(i.len(), 0);
        let s = i.intern("present");
        assert_eq!(i.get("present"), Some(s));
    }

    #[test]
    fn try_resolve_handles_foreign_symbols() {
        let i = Interner::new();
        assert_eq!(i.try_resolve(Symbol(3)), None);
    }

    #[test]
    fn iter_yields_in_interning_order() {
        let mut i = Interner::new();
        let syms: Vec<Symbol> = ["a", "b", "c"].iter().map(|s| i.intern(s)).collect();
        let collected: Vec<(Symbol, &str)> = i.iter().collect();
        assert_eq!(
            collected,
            vec![(syms[0], "a"), (syms[1], "b"), (syms[2], "c")]
        );
    }

    #[test]
    fn empty_string_is_internable() {
        let mut i = Interner::new();
        let e = i.intern("");
        assert_eq!(i.resolve(e), "");
    }

    #[test]
    fn strings_live_in_one_arena() {
        // The lookup table holds only (hash, symbol) pairs and the string
        // bytes live concatenated in the single arena allocation.
        let mut i = Interner::new();
        let sym = i.intern("Person");
        assert_eq!(i.spans.len(), 1);
        assert_eq!(i.resolve(sym), "Person");
        assert_eq!(i.arena, "Person");
        let live: usize = i.slots.iter().filter(|(_, s)| *s != EMPTY).count();
        assert_eq!(live, 1);
    }

    #[test]
    fn reserve_prevents_intermediate_rehashes() {
        let mut i = Interner::new();
        i.reserve(10_000);
        let cap = i.slots.len();
        for n in 0..10_000 {
            i.intern(&format!("c{n}"));
        }
        assert_eq!(i.slots.len(), cap, "pre-sized table must not rehash");
        assert_eq!(i.len(), 10_000);
        assert_eq!(i.get("c1234"), Some(Symbol(1234)));
    }

    #[test]
    fn survives_many_collisions_and_regrows() {
        let mut i = Interner::new();
        let syms: Vec<Symbol> = (0..5000).map(|n| i.intern(&format!("s{n}"))).collect();
        for (n, sym) in syms.iter().enumerate() {
            assert_eq!(i.get(&format!("s{n}")), Some(*sym));
            assert_eq!(i.resolve(*sym), format!("s{n}"));
        }
    }

    #[test]
    fn parts_roundtrip_preserves_symbols_and_lookups() {
        let mut i = Interner::new();
        let syms: Vec<Symbol> = (0..500).map(|n| i.intern(&format!("k{n}"))).collect();
        let (arena, spans, slots) = i.as_parts();
        let restored =
            Interner::from_parts(arena.to_owned(), spans.to_vec(), slots.to_vec()).unwrap();
        for (n, sym) in syms.iter().enumerate() {
            assert_eq!(restored.resolve(*sym), format!("k{n}"));
            assert_eq!(restored.get(&format!("k{n}")), Some(*sym));
        }
        let mut restored = restored;
        assert_eq!(restored.intern("k123"), syms[123], "no duplicate intern");
    }

    #[test]
    fn from_parts_rejects_inconsistent_columns() {
        // Span past the arena end.
        assert!(Interner::from_parts("ab".into(), vec![(0, 3)], vec![]).is_none());
        // Span off a UTF-8 boundary.
        assert!(Interner::from_parts("é".into(), vec![(0, 1)], vec![(0, 0), (0, EMPTY)]).is_none());
        // Table not a power of two.
        assert!(Interner::from_parts(
            "ab".into(),
            vec![(0, 1), (1, 1)],
            vec![(0, 0), (0, 1), (0, EMPTY)]
        )
        .is_none());
        // Symbol out of range.
        assert!(Interner::from_parts("a".into(), vec![(0, 1)], vec![(0, 7), (0, EMPTY)]).is_none());
        // Duplicate symbol / missing symbol.
        assert!(Interner::from_parts(
            "ab".into(),
            vec![(0, 1), (1, 1)],
            vec![(0, 0), (1, 0), (2, EMPTY), (3, EMPTY)]
        )
        .is_none());
        // Spans present but no slots at all.
        assert!(Interner::from_parts("a".into(), vec![(0, 1)], vec![]).is_none());
        // Empty interner round-trips.
        assert!(Interner::from_parts(String::new(), vec![], vec![]).is_some());
    }

    proptest! {
        #[test]
        fn roundtrip(strings in proptest::collection::vec(".{0,16}", 0..64)) {
            let mut i = Interner::new();
            let syms: Vec<Symbol> = strings.iter().map(|s| i.intern(s)).collect();
            for (s, sym) in strings.iter().zip(&syms) {
                prop_assert_eq!(i.resolve(*sym), s.as_str());
            }
        }

        #[test]
        fn symbol_equality_mirrors_string_equality(
            a in ".{0,12}",
            b in ".{0,12}",
        ) {
            let mut i = Interner::new();
            let sa = i.intern(&a);
            let sb = i.intern(&b);
            prop_assert_eq!(sa == sb, a == b);
        }

        #[test]
        fn len_counts_distinct(strings in proptest::collection::vec("[a-c]{1,2}", 0..32)) {
            let mut i = Interner::new();
            for s in &strings {
                i.intern(s);
            }
            let distinct: std::collections::BTreeSet<&String> = strings.iter().collect();
            prop_assert_eq!(i.len(), distinct.len());
        }

        #[test]
        fn parts_roundtrip_any_population(
            strings in proptest::collection::vec(".{0,12}", 0..48)
        ) {
            let mut i = Interner::new();
            for s in &strings {
                i.intern(s);
            }
            let (arena, spans, slots) = i.as_parts();
            let r = Interner::from_parts(arena.to_owned(), spans.to_vec(), slots.to_vec())
                .expect("self-dumped parts are consistent");
            for s in &strings {
                prop_assert_eq!(r.get(s), i.get(s));
            }
        }
    }
}

//! Resource guards: size/memory bounds on the combinatorial kernels.
//!
//! PR 2's [`crate::Interrupt`] bounds *time* (deadline, cancellation). This
//! module bounds *space*: PerfectRef rewritings grow exponentially in the
//! worst case, the restricted chase can materialize unboundedly many
//! facts, and a dense neighbourhood makes border BFS layers explode. A
//! [`ResourceGuard`] carries one cumulative counter per guarded dimension
//! plus an approximate byte estimate; kernels *charge* it where they
//! allocate, and a failed charge tells that kernel to degrade (stop
//! admitting rewritings, stop chasing, stop growing the border) while the
//! search layer folds the first trip into the run's final report.
//!
//! Semantics vs. [`crate::Interrupt`]: a tripped guard does **not** flip
//! `is_triggered` — only the kernel whose dimension tripped degrades;
//! time-based interruption still stops everything. Degradation is
//! **per-dimension**: a border trip does not fail rewrite charges, so the
//! search keeps scoring candidates over the truncated borders (the one
//! exception is [`GuardKind::AllocBytes`], which fails every charge,
//! because the byte estimate protects memory shared by all kernels).
//! Counters are cumulative across the whole run (all candidates, all
//! tuples), because the resource being protected is shared across them.

// Guards run inside every kernel's allocation path: they must be
// panic-free themselves.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// The guarded dimensions, one per blow-up kernel plus the byte estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GuardKind {
    /// Distinct CQs admitted by PerfectRef across the run.
    RewriteDisjuncts,
    /// Facts materialized by the restricted chase across the run.
    ChaseFacts,
    /// Atoms collected into border layers across the run.
    BorderAtoms,
    /// Approximate bytes attributed to guarded allocations.
    AllocBytes,
}

impl fmt::Display for GuardKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GuardKind::RewriteDisjuncts => write!(f, "rewrite disjuncts"),
            GuardKind::ChaseFacts => write!(f, "chase facts"),
            GuardKind::BorderAtoms => write!(f, "border atoms"),
            GuardKind::AllocBytes => write!(f, "estimated bytes"),
        }
    }
}

/// Per-dimension limits; `None` leaves that dimension unbounded.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GuardLimits {
    /// Cap on total rewritten disjuncts admitted by PerfectRef.
    pub max_rewrite_disjuncts: Option<usize>,
    /// Cap on total facts materialized by the chase.
    pub max_chase_facts: Option<usize>,
    /// Cap on total atoms across all border layers.
    pub max_border_atoms: Option<usize>,
    /// Cap on the approximate byte estimate across all dimensions.
    pub max_alloc_bytes: Option<usize>,
}

impl GuardLimits {
    /// No limits: a guard built from this never trips.
    pub const fn unlimited() -> Self {
        Self {
            max_rewrite_disjuncts: None,
            max_chase_facts: None,
            max_border_atoms: None,
            max_alloc_bytes: None,
        }
    }

    /// Sets the rewrite-disjunct cap.
    pub fn with_max_rewrite_disjuncts(mut self, cap: usize) -> Self {
        self.max_rewrite_disjuncts = Some(cap);
        self
    }

    /// Sets the chase-fact cap.
    pub fn with_max_chase_facts(mut self, cap: usize) -> Self {
        self.max_chase_facts = Some(cap);
        self
    }

    /// Sets the border-atom cap.
    pub fn with_max_border_atoms(mut self, cap: usize) -> Self {
        self.max_border_atoms = Some(cap);
        self
    }

    /// Sets the approximate allocation cap in bytes.
    pub fn with_max_alloc_bytes(mut self, cap: usize) -> Self {
        self.max_alloc_bytes = Some(cap);
        self
    }

    /// Whether every dimension is unbounded.
    pub fn is_unlimited(&self) -> bool {
        *self == Self::unlimited()
    }

    fn limit_of(&self, kind: GuardKind) -> Option<usize> {
        match kind {
            GuardKind::RewriteDisjuncts => self.max_rewrite_disjuncts,
            GuardKind::ChaseFacts => self.max_chase_facts,
            GuardKind::BorderAtoms => self.max_border_atoms,
            GuardKind::AllocBytes => self.max_alloc_bytes,
        }
    }
}

/// The record of a fired guard: which dimension, its limit, and the count
/// that breached it. First trip wins; later charges keep failing but do
/// not overwrite it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuardTrip {
    /// The dimension that fired.
    pub kind: GuardKind,
    /// The configured limit.
    pub limit: usize,
    /// The cumulative count observed when the limit was breached.
    pub observed: usize,
}

impl fmt::Display for GuardTrip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} reached {} (limit {})",
            self.kind, self.observed, self.limit
        )
    }
}

/// Cumulative resource accounting for one run, shared by all kernels via
/// `Arc`. See the module docs for the charge/degrade protocol.
#[derive(Debug, Default)]
pub struct ResourceGuard {
    limits: GuardLimits,
    rewrite_disjuncts: AtomicUsize,
    chase_facts: AtomicUsize,
    border_atoms: AtomicUsize,
    alloc_bytes: AtomicUsize,
    peak_alloc_bytes: AtomicUsize,
    tripped: AtomicBool,
    trip: Mutex<Option<GuardTrip>>,
}

impl ResourceGuard {
    /// A guard enforcing `limits` (all counters start at zero).
    pub fn new(limits: GuardLimits) -> Self {
        Self {
            limits,
            ..Self::default()
        }
    }

    /// The configured limits.
    pub fn limits(&self) -> &GuardLimits {
        &self.limits
    }

    /// Charges `units` of `kind` plus `approx_bytes` to the byte estimate.
    /// Returns `false` — and records the first [`GuardTrip`] — when this
    /// dimension's limit or the byte limit is (or already was) breached;
    /// the caller must then degrade. Other dimensions tripping does *not*
    /// fail this charge (degradation is per-kernel; see module docs).
    /// Counting is monotone: a failed charge still updates the counters,
    /// so `observed` reflects what was actually reached.
    pub fn charge(&self, kind: GuardKind, units: usize, approx_bytes: usize) -> bool {
        let count = self.counter_of(kind).fetch_add(units, Ordering::Relaxed) + units;
        let bytes = self.alloc_bytes.fetch_add(approx_bytes, Ordering::Relaxed) + approx_bytes;
        self.peak_alloc_bytes.fetch_max(bytes, Ordering::Relaxed);
        if let Some(limit) = self.limits.limit_of(kind) {
            if count > limit {
                self.record_trip(kind, limit, count);
                return false;
            }
        }
        if let Some(limit) = self.limits.max_alloc_bytes {
            if bytes > limit {
                self.record_trip(GuardKind::AllocBytes, limit, bytes);
                return false;
            }
        }
        true
    }

    /// Returns `approx_bytes` to the estimate (e.g. a freed scratch
    /// buffer). The peak is unaffected.
    pub fn release_bytes(&self, approx_bytes: usize) {
        let _ = self
            .alloc_bytes
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| {
                Some(b.saturating_sub(approx_bytes))
            });
    }

    /// Whether any limit has been breached.
    pub fn is_tripped(&self) -> bool {
        self.tripped.load(Ordering::Relaxed)
    }

    /// Whether charges of `kind` would fail right now: its own cumulative
    /// count or the byte estimate is past its limit. Kernels use this to
    /// skip work cheaply once their dimension has degraded.
    pub fn is_exhausted(&self, kind: GuardKind) -> bool {
        let count_over = self
            .limits
            .limit_of(kind)
            .is_some_and(|l| self.counter_of(kind).load(Ordering::Relaxed) > l);
        let bytes_over = self
            .limits
            .max_alloc_bytes
            .is_some_and(|l| self.alloc_bytes.load(Ordering::Relaxed) > l);
        count_over || bytes_over
    }

    /// The first recorded trip, if any.
    pub fn trip(&self) -> Option<GuardTrip> {
        *self.trip.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// The cumulative count for `kind`.
    pub fn count(&self, kind: GuardKind) -> usize {
        self.counter_of(kind).load(Ordering::Relaxed)
    }

    /// The high-water mark of the approximate byte estimate.
    pub fn peak_alloc_bytes(&self) -> usize {
        self.peak_alloc_bytes.load(Ordering::Relaxed)
    }

    fn counter_of(&self, kind: GuardKind) -> &AtomicUsize {
        match kind {
            GuardKind::RewriteDisjuncts => &self.rewrite_disjuncts,
            GuardKind::ChaseFacts => &self.chase_facts,
            GuardKind::BorderAtoms => &self.border_atoms,
            GuardKind::AllocBytes => &self.alloc_bytes,
        }
    }

    fn record_trip(&self, kind: GuardKind, limit: usize, observed: usize) {
        self.tripped.store(true, Ordering::Relaxed);
        let mut slot = self.trip.lock().unwrap_or_else(|p| p.into_inner());
        if slot.is_none() {
            *slot = Some(GuardTrip {
                kind,
                limit,
                observed,
            });
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_guard_never_trips() {
        let g = ResourceGuard::new(GuardLimits::unlimited());
        assert!(g.limits().is_unlimited());
        for _ in 0..1000 {
            assert!(g.charge(GuardKind::RewriteDisjuncts, 10, 100));
        }
        assert!(!g.is_tripped());
        assert!(g.trip().is_none());
        assert_eq!(g.count(GuardKind::RewriteDisjuncts), 10_000);
        assert_eq!(g.peak_alloc_bytes(), 100_000);
    }

    #[test]
    fn first_trip_wins_and_degradation_is_per_dimension() {
        let limits = GuardLimits::unlimited()
            .with_max_chase_facts(5)
            .with_max_border_atoms(3);
        let g = ResourceGuard::new(limits);
        assert!(g.charge(GuardKind::ChaseFacts, 5, 0));
        assert!(!g.charge(GuardKind::ChaseFacts, 1, 0));
        let trip = g.trip().unwrap();
        assert_eq!(trip.kind, GuardKind::ChaseFacts);
        assert_eq!(trip.limit, 5);
        assert_eq!(trip.observed, 6);
        assert!(g.is_exhausted(GuardKind::ChaseFacts));
        // Other dimensions are unaffected: the search keeps working on
        // whatever the degraded kernel already materialised.
        assert!(!g.is_exhausted(GuardKind::BorderAtoms));
        assert!(g.charge(GuardKind::RewriteDisjuncts, 1, 0));
        // A second dimension breaching does not overwrite the record.
        assert!(!g.charge(GuardKind::BorderAtoms, 4, 0));
        assert_eq!(g.trip().unwrap().kind, GuardKind::ChaseFacts);
        assert!(g.is_tripped());
    }

    #[test]
    fn byte_estimate_trips_and_tracks_peak() {
        let g = ResourceGuard::new(GuardLimits::unlimited().with_max_alloc_bytes(1000));
        assert!(g.charge(GuardKind::RewriteDisjuncts, 1, 600));
        g.release_bytes(500);
        assert!(g.charge(GuardKind::RewriteDisjuncts, 1, 600));
        assert_eq!(g.peak_alloc_bytes(), 700);
        assert!(!g.charge(GuardKind::RewriteDisjuncts, 1, 600));
        assert_eq!(g.trip().unwrap().kind, GuardKind::AllocBytes);
        assert!(format!("{}", g.trip().unwrap()).contains("estimated bytes"));
    }

    #[test]
    fn display_names_the_dimension_and_counts() {
        let t = GuardTrip {
            kind: GuardKind::RewriteDisjuncts,
            limit: 20,
            observed: 21,
        };
        assert_eq!(t.to_string(), "rewrite disjuncts reached 21 (limit 20)");
    }
}

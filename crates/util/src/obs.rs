//! Observability: hierarchical spans, a process-wide metrics registry, and
//! profile exporters.
//!
//! The pipeline's expensive phases — PerfectRef rewriting, the chase,
//! border BFS, engine batch scoring — run in crates that must not depend
//! on the search layer, mirroring the [`interrupt`](crate::interrupt)
//! situation. A [`Recorder`] is the recording counterpart of an
//! [`Interrupt`](crate::Interrupt): an `Arc<Recorder>` rides down into the
//! kernels (on the interrupt itself), each kernel opens a [`Span`] and
//! bumps named counters, and the search layer snapshots the whole run into
//! a [`PipelineProfile`] that reports, exporters, and benches can render.
//!
//! Three layers, from cheapest to richest:
//!
//! 1. **Metrics registry** — process-wide named [`Counter`]s and log-scale
//!    latency [`Histogram`]s (p50/p95/p99). Lock-free after the first
//!    lookup (cache the `&'static` handle in a `LazyLock`); cheap enough
//!    to stay on in release builds.
//! 2. **Spans** — per-run wall-time aggregation keyed by a slash-separated
//!    path (`"explain/search/rewrite"`), with per-span counters. Spans are
//!    opened at loop granularity (per kernel invocation, per batch), never
//!    per candidate, so the mutex behind them is uncontended in practice.
//! 3. **Exporters** — a [`PipelineProfile`] snapshot that renders to JSON,
//!    an indented tree, or flamegraph collapsed-stack text.
//!
//! Two kill switches: building `obx-util` with `--no-default-features`
//! removes the `obs` feature and compiles every recording path down to a
//! constant-false branch, and setting `OBX_OBS=0` (or `off`/`false`/`no`)
//! disables recording at runtime. Both produce empty profiles; neither
//! changes any search result.

// Observability runs inside every kernel; it must never panic or poison.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

/// Whether observability is compiled in **and** enabled at runtime.
///
/// The runtime half reads `OBX_OBS` once per process: `0`, `off`, `false`
/// and `no` (case-insensitive) disable recording. With the `obs` cargo
/// feature off this is a compile-time `false` and every recording path
/// becomes dead code.
pub fn enabled() -> bool {
    if !cfg!(feature = "obs") {
        return false;
    }
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| match std::env::var("OBX_OBS") {
        Ok(v) => !matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "0" | "off" | "false" | "no"
        ),
        Err(_) => true,
    })
}

/// Recovers a mutex guard whether or not the lock is poisoned: the data
/// under observability locks is plain counters, always valid.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

// ---------------------------------------------------------------------------
// Span recording
// ---------------------------------------------------------------------------

/// Aggregated measurements for one span path: how many times it was
/// entered, total wall time, and its named counters.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
struct SpanAgg {
    count: u64,
    wall_ns: u64,
    counters: BTreeMap<String, u64>,
}

#[derive(Debug, Default)]
struct RecorderState {
    /// Span aggregates in *entry* order: a parent span is entered before
    /// its children and phases are entered in execution order, so this
    /// order renders directly as a tree.
    spans: Vec<(String, SpanAgg)>,
    /// The current top-level phase label; kernel spans nest under it (a
    /// kernel does not know whether it runs during preparation, search,
    /// or an audit pass — the phase owner does).
    phase: String,
}

impl RecorderState {
    fn agg_mut(&mut self, path: &str) -> &mut SpanAgg {
        if let Some(i) = self.spans.iter().position(|(p, _)| p == path) {
            return &mut self.spans[i].1;
        }
        self.spans.push((path.to_owned(), SpanAgg::default()));
        // `last_mut` is always `Some` after the push; avoid unwrap anyway.
        let last = self.spans.len() - 1;
        &mut self.spans[last].1
    }
}

/// A thread-safe per-run span recorder.
///
/// Cloned freely via `Arc`; kernels receive it through
/// [`Interrupt::recorder`](crate::Interrupt::recorder). A disabled
/// recorder (observability off, or [`Recorder::disabled`]) never locks and
/// never allocates.
#[derive(Debug, Default)]
pub struct Recorder {
    enabled: bool,
    state: Mutex<RecorderState>,
}

impl Recorder {
    /// A recorder that records iff [`enabled`] says observability is on.
    pub fn new() -> Arc<Self> {
        Arc::new(Recorder {
            enabled: enabled(),
            state: Mutex::new(RecorderState::default()),
        })
    }

    /// A recorder that never records (for tests and defaults).
    pub fn disabled() -> Arc<Self> {
        Arc::new(Recorder {
            enabled: false,
            state: Mutex::new(RecorderState::default()),
        })
    }

    /// Whether this recorder records anything at all.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Opens a span at an absolute slash-separated path. The span records
    /// its wall time (and any [`Span::count`] increments) when dropped.
    pub fn enter(&self, path: &str) -> Span<'_> {
        if !self.enabled {
            return Span::noop();
        }
        lock_recover(&self.state).agg_mut(path);
        Span {
            rec: Some(self),
            path: path.to_owned(),
            t0: Instant::now(),
            counters: Vec::new(),
            max_counters: Vec::new(),
        }
    }

    /// Opens a span at `path` and makes it the current *phase*: until the
    /// next `enter_phase`, kernel spans ([`Recorder::kernel`]) nest under
    /// this path.
    pub fn enter_phase(&self, path: &str) -> Span<'_> {
        if !self.enabled {
            return Span::noop();
        }
        lock_recover(&self.state).phase = path.to_owned();
        self.enter(path)
    }

    /// Opens a kernel span named `name` under the current phase
    /// (`"<phase>/<name>"`, or just `"<name>"` when no phase is set).
    /// Kernels running on worker threads still land under the right phase
    /// because the phase label lives on the shared recorder.
    pub fn kernel(&self, name: &str) -> Span<'_> {
        if !self.enabled {
            return Span::noop();
        }
        let path = {
            let state = lock_recover(&self.state);
            if state.phase.is_empty() {
                name.to_owned()
            } else {
                format!("{}/{}", state.phase, name)
            }
        };
        self.enter(&path)
    }

    /// Adds `delta` to the counter `key` of the span at `path`, creating
    /// both if needed.
    pub fn count(&self, path: &str, key: &str, delta: u64) {
        if !self.enabled || delta == 0 {
            return;
        }
        let mut state = lock_recover(&self.state);
        let agg = state.agg_mut(path);
        *agg.counters.entry(key.to_owned()).or_insert(0) += delta;
    }

    /// Sets the counter `key` of the span at `path` to an absolute value,
    /// overwriting any previous one. For cumulative gauges (engine cache
    /// totals) that would double-count if merged additively.
    pub fn gauge(&self, path: &str, key: &str, value: u64) {
        if !self.enabled {
            return;
        }
        let mut state = lock_recover(&self.state);
        let agg = state.agg_mut(path);
        agg.counters.insert(key.to_owned(), value);
    }

    /// [`Recorder::gauge`], but nested under the current phase like a
    /// kernel span (`"<phase>/<name>"`): end-of-phase snapshots (engine
    /// cache totals) render inside the phase that produced them instead
    /// of as a stray root.
    pub fn gauge_in_phase(&self, name: &str, key: &str, value: u64) {
        if !self.enabled {
            return;
        }
        let mut state = lock_recover(&self.state);
        let path = if state.phase.is_empty() {
            name.to_owned()
        } else {
            format!("{}/{}", state.phase, name)
        };
        let agg = state.agg_mut(&path);
        agg.counters.insert(key.to_owned(), value);
    }

    fn merge(
        &self,
        path: &str,
        elapsed: Duration,
        counters: &[(String, u64)],
        max_counters: &[(String, u64)],
    ) {
        let mut state = lock_recover(&self.state);
        let agg = state.agg_mut(path);
        agg.count += 1;
        agg.wall_ns = agg.wall_ns.saturating_add(duration_ns(elapsed));
        for (key, delta) in counters {
            *agg.counters.entry(key.clone()).or_insert(0) += delta;
        }
        // High-water marks merge by max, so concurrent spans at one path
        // (e.g. per-worker spans of one batch) report a true maximum.
        for (key, value) in max_counters {
            let slot = agg.counters.entry(key.clone()).or_insert(0);
            *slot = (*slot).max(*value);
        }
    }

    /// Snapshots everything recorded so far into a [`PipelineProfile`].
    /// A disabled recorder yields an empty profile.
    pub fn profile(&self) -> PipelineProfile {
        if !self.enabled {
            return PipelineProfile::default();
        }
        let state = lock_recover(&self.state);
        PipelineProfile {
            spans: state
                .spans
                .iter()
                .map(|(path, agg)| ProfiledSpan {
                    path: path.clone(),
                    count: agg.count,
                    wall_ms: agg.wall_ns as f64 / 1e6,
                    counters: agg.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
                })
                .collect(),
        }
    }
}

fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// An open span: measures wall time from creation to drop and buffers
/// counter increments locally (one lock acquisition per span, at drop).
#[derive(Debug)]
pub struct Span<'a> {
    rec: Option<&'a Recorder>,
    path: String,
    t0: Instant,
    counters: Vec<(String, u64)>,
    max_counters: Vec<(String, u64)>,
}

impl Span<'_> {
    /// A span that records nothing; [`Span::count`] on it is free.
    pub fn noop() -> Span<'static> {
        Span {
            rec: None,
            path: String::new(),
            t0: Instant::now(),
            counters: Vec::new(),
            max_counters: Vec::new(),
        }
    }

    /// Whether this span actually records (false on disabled recorders).
    pub fn is_live(&self) -> bool {
        self.rec.is_some()
    }

    /// Adds `delta` to this span's counter `key` (merged into the
    /// recorder when the span drops).
    pub fn count(&mut self, key: &str, delta: u64) {
        if self.rec.is_none() || delta == 0 {
            return;
        }
        if let Some(slot) = self.counters.iter_mut().find(|(k, _)| k == key) {
            slot.1 += delta;
            return;
        }
        self.counters.push((key.to_owned(), delta));
    }

    /// Sets this span's counter `key` to the maximum of its current value
    /// and `value` (for high-water marks like frontier width). Unlike
    /// [`Span::count`], these merge into the recorder by **max**, so
    /// concurrent spans at the same path keep true high-water semantics.
    pub fn count_max(&mut self, key: &str, value: u64) {
        if self.rec.is_none() {
            return;
        }
        if let Some(slot) = self.max_counters.iter_mut().find(|(k, _)| k == key) {
            slot.1 = slot.1.max(value);
            return;
        }
        self.max_counters.push((key.to_owned(), value));
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(rec) = self.rec {
            rec.merge(
                &self.path,
                self.t0.elapsed(),
                &self.counters,
                &self.max_counters,
            );
        }
    }
}

/// Opens a kernel span on an optional recorder — the form every kernel
/// uses, since kernels hold `interrupt.recorder(): Option<&Arc<Recorder>>`.
/// Returns a no-op span when the recorder is absent or disabled.
pub fn span_of<'a>(rec: Option<&'a Arc<Recorder>>, name: &str) -> Span<'a> {
    match rec {
        Some(r) if r.is_enabled() => r.kernel(name),
        _ => Span::noop(),
    }
}

/// Opens a kernel [`Span`](crate::obs::Span) on an `Option<&Arc<Recorder>>`
/// (as carried by [`Interrupt`](crate::Interrupt)): `span!(rec, "rewrite")`.
/// Expands to a no-op span when observability is off.
#[macro_export]
macro_rules! span {
    ($rec:expr, $name:expr) => {
        $crate::obs::span_of($rec, $name)
    };
}

// ---------------------------------------------------------------------------
// Pipeline profile (the exported snapshot)
// ---------------------------------------------------------------------------

/// One span in a [`PipelineProfile`] snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfiledSpan {
    /// Slash-separated span path, e.g. `"explain/search/rewrite"`.
    pub path: String,
    /// How many times the span was entered.
    pub count: u64,
    /// Total wall time across all entries, in milliseconds.
    pub wall_ms: f64,
    /// Named counters, sorted by name.
    pub counters: Vec<(String, u64)>,
}

impl ProfiledSpan {
    /// The value of counter `key`, or 0 when absent.
    pub fn counter(&self, key: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == key)
            .map_or(0, |(_, v)| *v)
    }

    /// The last path segment (the span's own name).
    pub fn name(&self) -> &str {
        self.path.rsplit('/').next().unwrap_or(&self.path)
    }

    /// How many `/`-separated segments deep this span is (0 for roots).
    pub fn depth(&self) -> usize {
        self.path.matches('/').count()
    }
}

/// A structured snapshot of one run's spans — the `profile` field of an
/// explain report, the payload of `obx explain --profile`, and the
/// `"profile"` object embedded in the bench JSON files.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PipelineProfile {
    /// Spans in entry order (parents before children, phases in execution
    /// order).
    pub spans: Vec<ProfiledSpan>,
}

impl PipelineProfile {
    /// Whether nothing was recorded (observability off, or no spans).
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The span at exactly `path`, if recorded.
    pub fn span(&self, path: &str) -> Option<&ProfiledSpan> {
        self.spans.iter().find(|s| s.path == path)
    }

    /// Total wall time of the span at `path` (0 when absent).
    pub fn wall_ms(&self, path: &str) -> f64 {
        self.span(path).map_or(0.0, |s| s.wall_ms)
    }

    /// Sums counter `key` across every span (counters live on the span
    /// that recorded them; this answers "how many rewrite disjuncts were
    /// produced anywhere in the run").
    pub fn counter_total(&self, key: &str) -> u64 {
        self.spans.iter().map(|s| s.counter(key)).sum()
    }

    /// The direct children of `path` (spans exactly one segment deeper).
    pub fn children_of<'a>(&'a self, path: &str) -> impl Iterator<Item = &'a ProfiledSpan> {
        let prefix = format!("{path}/");
        self.spans
            .iter()
            .filter(move |s| s.path.starts_with(&prefix) && !s.path[prefix.len()..].contains('/'))
    }

    /// Renders the profile as deterministic single-line JSON:
    /// `{"spans":[{"path":…,"count":…,"wall_ms":…,"counters":{…}}, …]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"spans\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"path\":\"{}\",\"count\":{},\"wall_ms\":{:.3},\"counters\":{{",
                json_escape(&s.path),
                s.count,
                s.wall_ms
            ));
            for (j, (k, v)) in s.counters.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":{}", json_escape(k), v));
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }

    /// Renders the profile as an indented tree, one span per line:
    /// wall time, entry count, then `key=value` counters.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            let indent = "  ".repeat(s.depth());
            out.push_str(&format!(
                "{indent}{:<width$} {:>10.3} ms  ×{}",
                s.name(),
                s.wall_ms,
                s.count,
                width = 24usize.saturating_sub(indent.len()),
            ));
            for (k, v) in &s.counters {
                out.push_str(&format!("  {k}={v}"));
            }
            out.push('\n');
        }
        out
    }

    /// Renders collapsed-stack flamegraph text: one `path;seg;… value`
    /// line per span, value = *self* time in microseconds (span wall time
    /// minus its direct children's, clamped at zero) — the input format of
    /// standard flamegraph tooling.
    pub fn to_flamegraph(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            let child_ms: f64 = self.children_of(&s.path).map(|c| c.wall_ms).sum();
            let self_us = ((s.wall_ms - child_ms).max(0.0) * 1e3).round() as u64;
            out.push_str(&format!("{} {}\n", s.path.replace('/', ";"), self_us));
        }
        out
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Process-wide metrics registry
// ---------------------------------------------------------------------------

/// A monotonically increasing named counter. Obtain a `&'static` handle
/// once via [`counter`], then [`Counter::add`] is a single relaxed atomic
/// add (or a constant-false branch when observability is off).
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// The counter's registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `delta`. No-op when observability is disabled.
    pub fn add(&self, delta: u64) {
        if enabled() {
            self.value.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Sub-bucket resolution bits: 4 sub-buckets per power of two, so bucket
/// boundaries are ≤ 25% apart and quantile estimates land within 25% of
/// the true order statistic.
const SUB_BITS: u32 = 2;
const SUBS: usize = 1 << SUB_BITS;
/// Values 0..4 get exact buckets; every exponent ≥ 2 contributes 4.
const NUM_BUCKETS: usize = SUBS + (64 - SUB_BITS as usize) * SUBS;

/// A log-scale histogram of `u64` samples (latencies in nanoseconds,
/// sizes, …): 4 sub-buckets per power of two, each bucket a relaxed
/// atomic, so recording is lock-free and quantiles are reconstructed to
/// within 25% relative error ([`Histogram::quantile`]).
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    count: AtomicU64,
    sum: AtomicU64,
    buckets: Vec<AtomicU64>,
}

/// The bucket index of `v`: exact for `v < 4`, then `4·(exp−2) + 4 + sub`
/// where `exp = ⌊log2 v⌋` and `sub` is the two bits below the leading one.
fn bucket_index(v: u64) -> usize {
    if v < SUBS as u64 {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros();
    let sub = ((v >> (exp - SUB_BITS)) & ((1 << SUB_BITS) - 1)) as usize;
    SUBS + ((exp - SUB_BITS) as usize) * SUBS + sub
}

/// The inclusive upper bound of bucket `i` (the representative value a
/// quantile query returns).
fn bucket_hi(i: usize) -> u64 {
    if i < SUBS {
        return i as u64;
    }
    let exp = ((i - SUBS) / SUBS) as u32 + SUB_BITS;
    let sub = ((i - SUBS) % SUBS) as u64;
    let lo = (SUBS as u64 + sub) << (exp - SUB_BITS);
    // Parenthesised so the top bucket (`lo + width` = 2⁶⁴) cannot overflow
    // before the −1 is applied.
    lo + ((1u64 << (exp - SUB_BITS)) - 1)
}

impl Histogram {
    fn new(name: &'static str) -> Self {
        Histogram {
            name,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// The histogram's registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Records one sample. No-op when observability is disabled.
    pub fn record(&self, value: u64) {
        if !enabled() {
            return;
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a duration as nanoseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(duration_ns(d));
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The estimated `q`-quantile (`0.0 ≤ q ≤ 1.0`): the upper bound of
    /// the bucket holding the `⌈q·n⌉`-th smallest sample. Exact for
    /// values < 4, within 25% above the true order statistic otherwise.
    /// Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_hi(i);
            }
        }
        bucket_hi(NUM_BUCKETS - 1)
    }
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<&'static str, &'static Counter>,
    histograms: BTreeMap<&'static str, &'static Histogram>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

/// The process-wide counter named `name`, created on first use. The
/// returned handle is `'static`: look it up once (e.g. in a `LazyLock`)
/// and hot paths pay only the atomic add.
pub fn counter(name: &'static str) -> &'static Counter {
    let mut reg = lock_recover(registry());
    reg.counters.entry(name).or_insert_with(|| {
        // One-time intentional leak: metric handles live for the process.
        Box::leak(Box::new(Counter {
            name,
            value: AtomicU64::new(0),
        }))
    })
}

/// Like [`counter`], but for names composed at runtime (e.g. per-tenant
/// metrics such as `serve.tenant.alpha.shed`). The name is leaked **once**
/// on first registration — callers must keep the name space bounded
/// (tenant names, not request ids). Subsequent calls with the same name
/// return the existing handle without allocating.
pub fn counter_dyn(name: &str) -> &'static Counter {
    let mut reg = lock_recover(registry());
    if let Some(c) = reg.counters.get(name) {
        return c;
    }
    let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
    let handle: &'static Counter = Box::leak(Box::new(Counter {
        name: leaked,
        value: AtomicU64::new(0),
    }));
    reg.counters.insert(leaked, handle);
    handle
}

/// The process-wide histogram named `name`, created on first use. Same
/// `'static`-handle contract as [`counter`].
pub fn histogram(name: &'static str) -> &'static Histogram {
    let mut reg = lock_recover(registry());
    reg.histograms
        .entry(name)
        .or_insert_with(|| Box::leak(Box::new(Histogram::new(name))))
}

/// Renders every registered metric as deterministic single-line JSON:
/// counters as `name: value`, histograms as
/// `name: {count, sum, p50, p95, p99}`.
pub fn metrics_json() -> String {
    let reg = lock_recover(registry());
    let mut out = String::from("{\"counters\":{");
    for (i, (name, c)) in reg.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{}", json_escape(name), c.get()));
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, h)) in reg.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"{}\":{{\"count\":{},\"sum\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
            json_escape(name),
            h.count(),
            h.sum(),
            h.quantile(0.50),
            h.quantile(0.95),
            h.quantile(0.99)
        ));
    }
    out.push_str("}}");
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn spans_aggregate_by_path_in_entry_order() {
        let rec = Recorder::new();
        if !rec.is_enabled() {
            return; // OBX_OBS=0 in the environment: nothing to assert.
        }
        {
            let _outer = rec.enter("run");
            for _ in 0..3 {
                let mut s = rec.enter("run/step");
                s.count("items", 2);
            }
        }
        let p = rec.profile();
        assert_eq!(p.spans.len(), 2);
        assert_eq!(p.spans[0].path, "run", "parent entered first");
        let step = p.span("run/step").unwrap();
        assert_eq!(step.count, 3);
        assert_eq!(step.counter("items"), 6);
        let run = p.span("run").unwrap();
        assert!(run.wall_ms >= step.wall_ms, "children sum ≤ parent");
    }

    #[test]
    fn phase_prefixes_kernel_spans() {
        let rec = Recorder::new();
        if !rec.is_enabled() {
            return;
        }
        {
            let _p = rec.enter_phase("explain/search");
            let _k = rec.kernel("rewrite");
        }
        let p = rec.profile();
        assert!(p.span("explain/search/rewrite").is_some(), "{p:?}");
        let free = span_of(None, "orphan");
        assert!(!free.is_live());
    }

    #[test]
    fn disabled_recorder_yields_an_empty_profile() {
        let rec = Recorder::disabled();
        {
            let mut s = rec.enter("anything");
            s.count("k", 1);
            rec.count("anything", "k", 1);
            rec.gauge("anything", "g", 9);
        }
        assert!(rec.profile().is_empty());
        assert_eq!(rec.profile().to_json(), "{\"spans\":[]}");
    }

    #[test]
    fn count_max_merges_by_maximum_across_spans() {
        let rec = Recorder::new();
        if !rec.is_enabled() {
            return;
        }
        // Two spans at the same path (as per-worker spans of one batch
        // are): the high-water mark must be the max, not the sum.
        for v in [7u64, 3] {
            let mut s = rec.enter("batch/worker");
            s.count_max("max_tasks", v);
            s.count("tasks", v);
        }
        let p = rec.profile();
        let w = p.span("batch/worker").unwrap();
        assert_eq!(w.counter("max_tasks"), 7);
        assert_eq!(w.counter("tasks"), 10);
    }

    #[test]
    fn gauge_overwrites_instead_of_accumulating() {
        let rec = Recorder::new();
        if !rec.is_enabled() {
            return;
        }
        rec.gauge("engine", "cache_hits", 5);
        rec.gauge("engine", "cache_hits", 7);
        assert_eq!(
            rec.profile().span("engine").unwrap().counter("cache_hits"),
            7
        );
    }

    #[test]
    fn counter_dyn_returns_a_stable_handle_per_name() {
        let a = counter_dyn("test.dyn.tenant-a");
        let b = counter_dyn("test.dyn.tenant-a");
        assert!(std::ptr::eq(a, b), "same name must reuse one handle");
        assert_eq!(a.name(), "test.dyn.tenant-a");
        let other = counter_dyn("test.dyn.tenant-b");
        assert!(!std::ptr::eq(a, other));
    }

    #[test]
    fn counter_dyn_and_counter_share_the_registry() {
        let via_static = counter("test.dyn.shared");
        let via_dyn = counter_dyn("test.dyn.shared");
        assert!(std::ptr::eq(via_static, via_dyn));
    }

    #[test]
    fn bucket_index_and_hi_are_consistent() {
        for v in (0..200u64).chain([1023, 1024, 1 << 40, u64::MAX / 2, u64::MAX]) {
            let i = bucket_index(v);
            assert!(i < NUM_BUCKETS, "index in range for {v}");
            assert!(bucket_hi(i) >= v, "hi ≥ v for {v}");
            assert!(
                v < SUBS as u64 || bucket_hi(i) <= v.saturating_add(v / SUBS as u64),
                "hi within 25% for {v}: {}",
                bucket_hi(i)
            );
        }
    }

    #[test]
    fn exporters_render_deterministically() {
        let rec = Recorder::new();
        if !rec.is_enabled() {
            return;
        }
        {
            let _a = rec.enter("x");
            let mut b = rec.enter("x/y");
            b.count("n", 3);
        }
        let p = rec.profile();
        let json = p.to_json();
        assert!(json.starts_with("{\"spans\":[{\"path\":\"x\""), "{json}");
        assert!(json.contains("\"n\":3"), "{json}");
        let tree = p.render_tree();
        assert!(tree.contains("x"), "{tree}");
        assert!(tree.contains("n=3"), "{tree}");
        let fg = p.to_flamegraph();
        assert!(fg.contains("x;y "), "{fg}");
    }
}

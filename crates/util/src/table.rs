//! Minimal fixed-width table rendering.
//!
//! The benchmark harness (`obx-bench`, binary `tables`) prints one table per
//! reproduced experiment; this module renders them without pulling a
//! table-formatting dependency.

use std::fmt::Write as _;

/// A simple text table with a header row and left-aligned cells.
#[derive(Debug, Default, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row. Short rows are padded with empty cells; rows
    /// longer than the header are truncated.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table to a string (trailing newline included).
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().take(ncols).enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let write_row = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().take(ncols).enumerate() {
                let pad = widths[i] - cell.chars().count();
                let _ = write!(out, "| {}{} ", cell, " ".repeat(pad));
            }
            out.push_str("|\n");
        };
        write_row(&self.header, &mut out);
        for (i, w) in widths.iter().enumerate() {
            let _ = write!(out, "|{}", "-".repeat(w + 2));
            if i + 1 == ncols {
                out.push_str("|\n");
            }
        }
        for row in &self.rows {
            write_row(row, &mut out);
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["query", "Z1"]);
        t.row(["q1", "0.694"]);
        t.row(["q3 (winner)", "0.833"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines have equal display width.
        let w = lines[0].chars().count();
        assert!(lines.iter().all(|l| l.chars().count() == w), "{s}");
        assert!(s.contains("q3 (winner)"));
    }

    #[test]
    fn short_rows_are_padded_and_long_rows_truncated() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-a"]);
        t.row(["x", "y", "dropped"]);
        let s = t.render();
        assert!(!s.contains("dropped"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = Table::new(["col"]);
        assert!(t.is_empty());
        assert_eq!(t.render().lines().count(), 2);
    }
}

//! Structured ingestion diagnostics.
//!
//! Every parser and the cross-artifact validator report problems as
//! [`Diagnostic`]s — positioned, coded, many per file — instead of
//! first-error strings. The CLI renders them with a source-line caret via
//! [`render_with_source`]. Diagnostic codes are stable identifiers,
//! grouped by area (see DESIGN.md for the full table):
//!
//! | range  | area                          |
//! |--------|-------------------------------|
//! | OBX0xx | I/O and encoding              |
//! | OBX10x | source schema (`schema.obx`)  |
//! | OBX11x | database facts (`data.obx`)   |
//! | OBX12x | ontology TBox (`ontology.obx`)|
//! | OBX13x | mapping (`mapping.obx`)       |
//! | OBX14x | query syntax                  |
//! | OBX15x | labels (`labels.obx`)         |
//! | OBX2xx | cross-artifact validation     |

// Diagnostics are built on user-input paths: they must never panic.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::fmt;

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but admissible; the scenario still loads.
    Warning,
    /// The artifact (or the scenario as a whole) is rejected.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One positioned, coded problem in one ingestion artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// File the problem is in (e.g. `schema.obx`).
    pub file: String,
    /// 1-based line; `0` means the whole file (I/O, semantic checks).
    pub line: usize,
    /// 1-based column (in characters); `0` means the whole line.
    pub col: usize,
    /// Stable code, e.g. `OBX103` (see the module table).
    pub code: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Human-readable message.
    pub msg: String,
    /// Optional fix-it hint.
    pub hint: Option<String>,
}

impl Diagnostic {
    /// An error diagnostic without a hint.
    pub fn error(
        file: impl Into<String>,
        line: usize,
        col: usize,
        code: &'static str,
        msg: impl Into<String>,
    ) -> Self {
        Self {
            file: file.into(),
            line,
            col,
            code,
            severity: Severity::Error,
            msg: msg.into(),
            hint: None,
        }
    }

    /// A warning diagnostic without a hint.
    pub fn warning(
        file: impl Into<String>,
        line: usize,
        col: usize,
        code: &'static str,
        msg: impl Into<String>,
    ) -> Self {
        Self {
            severity: Severity::Warning,
            ..Self::error(file, line, col, code, msg)
        }
    }

    /// Attaches a fix-it hint.
    pub fn with_hint(mut self, hint: impl Into<String>) -> Self {
        self.hint = Some(hint.into());
        self
    }

    /// One-line rendering: `error[OBX103] schema.obx:1:8: bad arity`.
    pub fn header(&self) -> String {
        let mut s = format!("{}[{}] {}", self.severity, self.code, self.file);
        if self.line > 0 {
            s.push_str(&format!(":{}", self.line));
            if self.col > 0 {
                s.push_str(&format!(":{}", self.col));
            }
        }
        s.push_str(": ");
        s.push_str(&self.msg);
        s
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.header())
    }
}

/// An ordered collection of diagnostics for one load.
#[derive(Debug, Clone, Default)]
pub struct Diagnostics {
    items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// An empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.items.push(d);
    }

    /// Appends every diagnostic from `other`.
    pub fn extend(&mut self, other: Diagnostics) {
        self.items.extend(other.items);
    }

    /// All diagnostics, in the order recorded.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.items.iter()
    }

    /// Number of diagnostics.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.items
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity diagnostics.
    pub fn warning_count(&self) -> usize {
        self.items
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// Whether any diagnostic is an error.
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// Stable sort by (file, line, col); errors before warnings on ties.
    pub fn sort(&mut self) {
        self.items.sort_by(|a, b| {
            a.file
                .cmp(&b.file)
                .then(a.line.cmp(&b.line))
                .then(a.col.cmp(&b.col))
                .then(b.severity.cmp(&a.severity))
        });
    }

    /// Consumes the collection, yielding the diagnostics.
    pub fn into_vec(self) -> Vec<Diagnostic> {
        self.items
    }
}

/// Renders `d` with a source-line excerpt and a caret under the column:
///
/// ```text
/// error[OBX103] schema.obx:1:8: bad arity in `LOC/x`
///   1 | STUD/1 LOC/x ENR/3
///     |        ^
///   hint: write `name/arity`, e.g. `LOC/2`
/// ```
///
/// `source` is the full text of `d.file`; pass `None` when it is
/// unavailable (the header still renders). Out-of-range positions degrade
/// to the header-only form rather than panicking.
pub fn render_with_source(d: &Diagnostic, source: Option<&str>) -> String {
    let mut out = d.header();
    if let (Some(text), true) = (source, d.line > 0) {
        if let Some(line) = text.lines().nth(d.line - 1) {
            // Binary garbage can survive lossy decoding; keep excerpts on
            // one visual line.
            let excerpt: String = line
                .chars()
                .take(120)
                .map(|c| if c.is_control() { '\u{FFFD}' } else { c })
                .collect();
            let lineno = d.line.to_string();
            out.push_str(&format!("\n  {lineno} | {excerpt}"));
            if d.col > 0 && d.col <= excerpt.chars().count() + 1 {
                let pad = " ".repeat(lineno.chars().count());
                let dots = " ".repeat(d.col - 1);
                out.push_str(&format!("\n  {pad} | {dots}^"));
            }
        }
    }
    if let Some(hint) = &d.hint {
        out.push_str(&format!("\n  hint: {hint}"));
    }
    out
}

/// 1-based character column of the subslice `sub` within the line `raw`.
/// `sub` **must** be a subslice of `raw` (same allocation); returns `0`
/// (meaning "whole line") when it is not, rather than panicking.
pub fn col_of(raw: &str, sub: &str) -> usize {
    let raw_start = raw.as_ptr() as usize;
    let sub_start = sub.as_ptr() as usize;
    if sub_start < raw_start || sub_start > raw_start + raw.len() {
        return 0;
    }
    let byte_off = sub_start - raw_start;
    raw.get(..byte_off)
        .map(|prefix| prefix.chars().count() + 1)
        .unwrap_or(0)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn header_includes_position_and_code() {
        let d = Diagnostic::error("schema.obx", 3, 8, "OBX103", "bad arity");
        assert_eq!(d.header(), "error[OBX103] schema.obx:3:8: bad arity");
        let w = Diagnostic::warning("x.obx", 0, 0, "OBX201", "whole file");
        assert_eq!(w.header(), "warning[OBX201] x.obx: whole file");
        assert_eq!(w.to_string(), w.header());
    }

    #[test]
    fn caret_rendering_points_at_the_column() {
        let d = Diagnostic::error("s.obx", 2, 8, "OBX103", "bad arity in `LOC/x`")
            .with_hint("write `name/arity`");
        let text = "STUD/1\nSTUD/1 LOC/x\n";
        let r = render_with_source(&d, Some(text));
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines[1], "  2 | STUD/1 LOC/x");
        assert_eq!(lines[2], "    |        ^");
        assert_eq!(lines[3], "  hint: write `name/arity`");
        // Out-of-range line: header only, no panic.
        let far = Diagnostic::error("s.obx", 99, 1, "OBX103", "x");
        assert_eq!(render_with_source(&far, Some(text)), far.header());
        assert_eq!(render_with_source(&d, None).lines().count(), 2);
    }

    #[test]
    fn collection_counts_and_sorts() {
        let mut ds = Diagnostics::new();
        assert!(ds.is_empty());
        ds.push(Diagnostic::warning("b.obx", 1, 1, "OBX201", "w"));
        ds.push(Diagnostic::error("a.obx", 2, 1, "OBX111", "e"));
        ds.push(Diagnostic::error("a.obx", 1, 5, "OBX111", "e2"));
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.error_count(), 2);
        assert_eq!(ds.warning_count(), 1);
        assert!(ds.has_errors());
        ds.sort();
        let files: Vec<(&str, usize)> = ds.iter().map(|d| (d.file.as_str(), d.line)).collect();
        assert_eq!(files, vec![("a.obx", 1), ("a.obx", 2), ("b.obx", 1)]);
    }

    #[test]
    fn col_of_locates_subslices() {
        let raw = "alpha beta gamma";
        let sub = &raw[6..10];
        assert_eq!(sub, "beta");
        assert_eq!(col_of(raw, sub), 7);
        assert_eq!(col_of(raw, "unrelated"), 0);
    }
}

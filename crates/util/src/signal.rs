//! Process-wide graceful-shutdown signals (SIGINT / SIGTERM), shared by
//! every front end.
//!
//! The `obx` binary's Ctrl-C cancel and the `obx serve` drain need the
//! same thing: "when the process is asked to stop, set my cancellation
//! flag". POSIX allows only one handler per signal, so each front end
//! installing its own raced the other (last install wins, the loser's
//! flag never fires). This module owns the handler exactly once and fans
//! the signal out to every registered flag.
//!
//! Pure-std and async-signal-safe: the handler only walks a lock-free
//! intrusive list of pre-allocated nodes and does relaxed atomic stores —
//! no locks, no allocation. Registration is for process-lifetime tokens
//! (one per front end); each [`register`] leaks one small node by design.
//!
//! Escalation mirrors the CLI's historical behaviour: the *second* SIGINT
//! restores the default disposition, so a third Ctrl-C kills a process
//! stuck in a non-cooperative section. SIGTERM stays graceful no matter
//! how often it is repeated — a supervisor re-sending TERM must not turn
//! a clean drain into an abort (it has SIGKILL for that).

use std::sync::atomic::AtomicBool;
use std::sync::Arc;

#[cfg(unix)]
mod imp {
    use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};
    use std::sync::{Arc, Once};

    struct Node {
        flag: Arc<AtomicBool>,
        next: *mut Node,
    }

    // The handler reads HEAD/nodes only; registration publishes with
    // Release so a handler's Acquire load sees initialized nodes.
    static HEAD: AtomicPtr<Node> = AtomicPtr::new(std::ptr::null_mut());
    static FIRED: AtomicBool = AtomicBool::new(false);
    static SIGINT_SEEN: AtomicBool = AtomicBool::new(false);
    static INSTALL: Once = Once::new();

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    const SIG_DFL: usize = 0;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(signum: i32) {
        if signum == SIGINT && SIGINT_SEEN.swap(true, Ordering::Relaxed) {
            // Second Ctrl-C: restore the default disposition so the next
            // one terminates immediately.
            unsafe {
                signal(SIGINT, SIG_DFL);
            }
        }
        FIRED.store(true, Ordering::SeqCst);
        let mut node = HEAD.load(Ordering::Acquire);
        while !node.is_null() {
            unsafe {
                (*node).flag.store(true, Ordering::Relaxed);
                node = (*node).next;
            }
        }
    }

    pub fn install() {
        INSTALL.call_once(|| unsafe {
            signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
            signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
        });
    }

    pub fn register(flag: Arc<AtomicBool>) {
        install();
        let observer = Arc::clone(&flag);
        let node = Box::into_raw(Box::new(Node {
            flag,
            next: std::ptr::null_mut(),
        }));
        let mut head = HEAD.load(Ordering::Relaxed);
        loop {
            unsafe {
                (*node).next = head;
            }
            match HEAD.compare_exchange_weak(head, node, Ordering::Release, Ordering::Relaxed) {
                Ok(_) => break,
                Err(h) => head = h,
            }
        }
        // A signal may have fired between the install and the push above
        // (or long before, for late registrants like a worker spawned
        // mid-drain): they must still observe the shutdown.
        if FIRED.load(Ordering::SeqCst) {
            observer.store(true, Ordering::Relaxed);
        }
    }

    pub fn fired() -> bool {
        FIRED.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod imp {
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    pub fn install() {}

    pub fn register(_flag: Arc<AtomicBool>) {}

    pub fn fired() -> bool {
        false
    }
}

/// Installs the SIGINT/SIGTERM handlers if not yet installed. Idempotent
/// and race-free (guarded by a [`std::sync::Once`]); [`register`] calls
/// it implicitly, so explicit calls are only useful to arm the handler
/// before any token exists. No-op on non-Unix platforms.
pub fn install() {
    imp::install();
}

/// Registers `flag` to be set (relaxed store of `true`) when the process
/// receives SIGINT or SIGTERM, installing the shared handler on first
/// use. Pass the backing flag of a long-lived cancellation token; each
/// call permanently allocates one registry node, so register per token,
/// not per request. If a shutdown signal already fired, `flag` is set
/// immediately — late registrants cannot miss the shutdown.
pub fn register(flag: Arc<AtomicBool>) {
    imp::register(flag);
}

/// Whether a shutdown signal (SIGINT or SIGTERM) has been observed by
/// this process since startup.
pub fn fired() -> bool {
    imp::fired()
}

#[cfg(all(test, unix))]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    extern "C" {
        fn raise(signum: i32) -> i32;
    }

    // One test raising one SIGTERM: raising is process-global state, and
    // SIGTERM never escalates to the default disposition, so the test
    // process survives no matter how the suite is sliced.
    #[test]
    fn sigterm_fans_out_to_every_flag_and_late_registrants() {
        let a = Arc::new(AtomicBool::new(false));
        let b = Arc::new(AtomicBool::new(false));
        register(Arc::clone(&a));
        register(Arc::clone(&b));
        assert!(!a.load(Ordering::Relaxed) && !b.load(Ordering::Relaxed));
        // raise() delivers synchronously to the calling thread: the
        // handler has run by the time it returns.
        unsafe {
            raise(15);
        }
        assert!(fired());
        assert!(a.load(Ordering::Relaxed), "first flag not set");
        assert!(b.load(Ordering::Relaxed), "second flag not set");
        // A registrant arriving after the signal still observes it.
        let late = Arc::new(AtomicBool::new(false));
        register(Arc::clone(&late));
        assert!(
            late.load(Ordering::Relaxed),
            "late registrant missed the shutdown"
        );
    }
}

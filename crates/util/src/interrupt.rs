//! A cheap cooperative-interruption primitive shared across the stack.
//!
//! Long-running kernels — PerfectRef rewriting, the chase, border BFS,
//! candidate scoring — sit in crates that must not depend on the search
//! layer, yet all of them need to honour the same "stop now" signal: a
//! wall-clock deadline or an explicit cancellation (Ctrl-C, a caller
//! tearing a request down). [`Interrupt`] packages both as a value that
//! costs nothing when inactive: the inert [`Interrupt::none`] has no
//! allocation and [`Interrupt::is_triggered`] on it is two branches on
//! immediate data.
//!
//! Checks are *cooperative*: kernels poll at loop granularity (per popped
//! rewrite candidate, per chase round, per BFS layer), so a trigger stops
//! work at the next check, never mid-invariant.

// The interruption primitive must itself be panic-free: it runs inside
// every kernel's hot loop.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::guard::ResourceGuard;
use crate::obs::Recorder;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A deadline and/or a shared cancellation flag, checked cooperatively by
/// long-running kernels, plus an optional [`ResourceGuard`] the kernels
/// charge where they allocate and an optional observability [`Recorder`]
/// they open spans on. `Clone` is cheap and shares the flag, the guard,
/// and the recorder.
#[derive(Debug, Clone, Default)]
pub struct Interrupt {
    cancelled: Option<Arc<AtomicBool>>,
    deadline: Option<Instant>,
    guard: Option<Arc<ResourceGuard>>,
    recorder: Option<Arc<Recorder>>,
}

impl Interrupt {
    /// The inert interrupt: never triggers, costs nothing to check.
    pub const fn none() -> Self {
        Self {
            cancelled: None,
            deadline: None,
            guard: None,
            recorder: None,
        }
    }

    /// An interrupt that triggers once `deadline` passes.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// An interrupt that triggers once `flag` is set (the flag is shared:
    /// any clone observes the store).
    pub fn with_flag(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancelled = Some(flag);
        self
    }

    /// The shared cancellation flag, if any.
    pub fn flag(&self) -> Option<&Arc<AtomicBool>> {
        self.cancelled.as_ref()
    }

    /// The deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Attaches a [`ResourceGuard`] for kernels to charge. A tripped guard
    /// does **not** flip [`Interrupt::is_triggered`]: only the kernel whose
    /// dimension tripped degrades (see the `guard` module docs), while the
    /// search layer reports the trip at its next budget poll.
    pub fn with_guard(mut self, guard: Arc<ResourceGuard>) -> Self {
        self.guard = Some(guard);
        self
    }

    /// The shared resource guard, if any. Kernels call
    /// [`ResourceGuard::charge`] through this where they allocate.
    pub fn guard(&self) -> Option<&Arc<ResourceGuard>> {
        self.guard.as_ref()
    }

    /// Attaches an observability [`Recorder`]. Kernels open spans and bump
    /// counters through it ([`crate::span!`]); like the guard, a recorder
    /// never flips [`Interrupt::is_triggered`] and never changes results.
    pub fn with_recorder(mut self, recorder: Arc<Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// The attached recorder, if any — the argument kernels hand to
    /// [`crate::obs::span_of`] / [`crate::span!`].
    pub fn recorder(&self) -> Option<&Arc<Recorder>> {
        self.recorder.as_ref()
    }

    /// Whether nothing can ever trigger this interrupt *and* no resource
    /// guard needs charging. Kernels may use this to skip per-iteration
    /// checks wholesale; a recorder deliberately does not count — it is
    /// polled never, only written to at span boundaries.
    pub fn is_inert(&self) -> bool {
        self.cancelled.is_none() && self.deadline.is_none() && self.guard.is_none()
    }

    /// Whether the interrupt has fired: the flag is set or the deadline has
    /// passed. The flag is read with `Relaxed` ordering — the signal only
    /// gates *when* a kernel stops, never what data it reads.
    pub fn is_triggered(&self) -> bool {
        if let Some(flag) = &self.cancelled {
            if flag.load(Ordering::Relaxed) {
                return true;
            }
        }
        match self.deadline {
            Some(d) => Instant::now() >= d,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn inert_interrupt_never_triggers() {
        let i = Interrupt::none();
        assert!(i.is_inert());
        assert!(!i.is_triggered());
        assert!(Interrupt::default().is_inert());
    }

    #[test]
    fn flag_triggers_all_clones() {
        let flag = Arc::new(AtomicBool::new(false));
        let i = Interrupt::none().with_flag(Arc::clone(&flag));
        let j = i.clone();
        assert!(!i.is_triggered() && !j.is_triggered());
        flag.store(true, Ordering::Relaxed);
        assert!(i.is_triggered() && j.is_triggered());
    }

    #[test]
    fn guard_rides_along_without_triggering() {
        use crate::guard::{GuardKind, GuardLimits, ResourceGuard};
        let g = Arc::new(ResourceGuard::new(
            GuardLimits::unlimited().with_max_border_atoms(1),
        ));
        let i = Interrupt::none().with_guard(Arc::clone(&g));
        assert!(!i.is_inert(), "a guard needs charging");
        assert!(!i.is_triggered());
        let charged = i
            .guard()
            .map(|g| g.charge(GuardKind::BorderAtoms, 2, 0))
            .unwrap_or(true);
        assert!(!charged, "over-limit charge fails");
        // Tripped guard degrades its kernel only; time interruption is
        // separate.
        assert!(!i.is_triggered());
        assert!(g.is_tripped());
    }

    #[test]
    fn deadline_triggers_after_it_passes() {
        let past = Instant::now() - Duration::from_millis(1);
        assert!(Interrupt::none().with_deadline(past).is_triggered());
        let future = Instant::now() + Duration::from_secs(3600);
        let i = Interrupt::none().with_deadline(future);
        assert!(!i.is_triggered());
        assert!(!i.is_inert());
    }
}

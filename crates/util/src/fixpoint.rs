//! Fixed-point saturation helper.
//!
//! Several reasoning procedures in the workspace (TBox inclusion closure,
//! chase saturation, PerfectRef's reduce loop) are "apply rules until nothing
//! changes" loops. [`saturate`] centralizes the loop shape, the step budget,
//! and the non-termination error.

use std::fmt;

/// Error returned when a saturation loop exceeds its step budget.
///
/// All saturation procedures in this workspace are theoretically terminating;
/// the budget exists to convert an implementation bug into a diagnosable
/// error instead of a hang.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetExhausted {
    /// The budget that was exceeded.
    pub budget: usize,
    /// Human-readable name of the procedure that diverged.
    pub what: &'static str,
}

impl fmt::Display for BudgetExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} did not reach a fixed point within {} iterations",
            self.what, self.budget
        )
    }
}

impl std::error::Error for BudgetExhausted {}

/// Runs `step` until it reports no change, or the budget is exhausted.
///
/// `step` should apply one round of rules to `state` and return `true` iff
/// anything changed. Returns the number of productive rounds executed.
pub fn saturate<S>(
    what: &'static str,
    budget: usize,
    state: &mut S,
    mut step: impl FnMut(&mut S) -> bool,
) -> Result<usize, BudgetExhausted> {
    for round in 0..budget {
        if !step(state) {
            return Ok(round);
        }
    }
    Err(BudgetExhausted { budget, what })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reaches_fixed_point_and_counts_rounds() {
        let mut v = 0u32;
        let rounds = saturate("inc-to-5", 100, &mut v, |v| {
            if *v < 5 {
                *v += 1;
                true
            } else {
                false
            }
        })
        .unwrap();
        assert_eq!(v, 5);
        assert_eq!(rounds, 5);
    }

    #[test]
    fn zero_rounds_when_already_saturated() {
        let mut v = ();
        assert_eq!(saturate("noop", 10, &mut v, |_| false), Ok(0));
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let mut v = ();
        let err = saturate("diverge", 3, &mut v, |_| true).unwrap_err();
        assert_eq!(err.budget, 3);
        assert_eq!(err.what, "diverge");
        assert!(err.to_string().contains("diverge"));
    }
}

//! A persistent scoped worker pool.
//!
//! Threads are spawned once per pool and park on a condvar between
//! batches. [`WorkerPool::run`] hands every participant (workers *and*
//! the caller) the same closure, which typically pulls work items off a
//! shared atomic cursor — dynamic distribution, so one slow item delays
//! only the thread that drew it.
//!
//! Extracted from the scoring engine so that lower layers (the srcdb
//! border BFS, bulk snapshot loading) can share one pool implementation
//! without depending on `obx-core`.

// The pool sits under every parallel hot loop; stray unwinds here would
// defeat the callers' quarantine contracts.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

/// Locks in the pool recover from poisoning instead of propagating it:
/// a job that panicked is contained per job (see [`WorkerPool::run`]),
/// and the shared state a lock guards here (job queue, latch counters)
/// is never left mid-update across a panic boundary, so the data is
/// intact.
macro_rules! lock_recover {
    ($e:expr) => {
        $e.unwrap_or_else(PoisonError::into_inner)
    };
}

/// Thread count: `OBX_THREADS` (positive integer) wins; otherwise the
/// machine's available parallelism. There is deliberately no upper clamp.
pub fn configured_threads() -> usize {
    if let Ok(v) = std::env::var("OBX_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A persistent scoped worker pool. See the [module docs](self).
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    /// Worker handles, behind a mutex so [`WorkerPool::run`] (which
    /// callers typically reach with only `&self` through a `OnceLock`)
    /// can replace threads that died — a poisoned worker must not
    /// shrink the pool for the rest of the process.
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    workers: usize,
    name: &'static str,
}

struct PoolShared {
    state: Mutex<PoolState>,
    work_ready: Condvar,
}

struct PoolState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

#[derive(Clone)]
struct Job {
    // Lifetime-erased borrow of a batch closure. Soundness contract: the
    // pusher (`WorkerPool::run`) waits on `latch` before returning, so
    // every clone of this borrow is dead before the real closure's
    // lifetime ends.
    f: &'static (dyn Fn() + Sync),
    latch: Arc<Latch>,
}

/// Countdown latch signalling that every worker finished a batch.
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
    panicked: AtomicBool,
}

impl Latch {
    fn new(n: usize) -> Self {
        Self {
            remaining: Mutex::new(n),
            done: Condvar::new(),
            panicked: AtomicBool::new(false),
        }
    }

    fn count_down(&self) {
        let mut remaining = lock_recover!(self.remaining.lock());
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut remaining = lock_recover!(self.remaining.lock());
        while *remaining > 0 {
            remaining = lock_recover!(self.done.wait(remaining));
        }
    }
}

impl WorkerPool {
    /// Spawns `workers` parked threads named `obx-pool-{i}`.
    ///
    /// `workers` is the number of *extra* threads: [`WorkerPool::run`]
    /// also executes the closure on the caller, so total parallelism is
    /// `workers + 1`.
    pub fn new(workers: usize) -> Self {
        Self::named(workers, "obx-pool")
    }

    /// Spawns `workers` parked threads named `{name}-{i}`. The name must
    /// be `'static` because dead workers are respawned lazily for the
    /// pool's whole lifetime.
    pub fn named(workers: usize, name: &'static str) -> Self {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| spawn_worker(&shared, name, i))
            .collect();
        Self {
            shared,
            handles: Mutex::new(handles),
            workers,
            name,
        }
    }

    /// Number of pool worker threads (excluding the participating caller).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Replaces workers whose threads have exited (a worker only dies if
    /// something escapes the per-job `catch_unwind`, e.g. a panic while
    /// panicking) so the pool keeps its capacity across incidents.
    fn respawn_dead_workers(&self) {
        let mut handles = lock_recover!(self.handles.lock());
        for i in 0..handles.len() {
            if handles[i].is_finished() {
                let fresh = spawn_worker(&self.shared, self.name, i);
                let dead = std::mem::replace(&mut handles[i], fresh);
                let _ = dead.join();
            }
        }
    }

    /// Runs `f` on every pool worker and on the caller, returning once
    /// every invocation has finished (which is what makes handing the
    /// non-`'static` closure to the workers sound). A panic escaping a
    /// *worker's* invocation is contained (recorded on the latch, the
    /// batch still completes); a panic in the *caller's* invocation
    /// resumes on the caller after the latch settles, so the erased
    /// borrow never dangles either way.
    pub fn run<'env>(&self, f: &(dyn Fn() + Sync + 'env)) {
        self.respawn_dead_workers();
        let n_workers = self.workers;
        // SAFETY: the erased borrow is only used by worker invocations
        // counted by `latch`, and `latch.wait()` below does not return
        // until all of them are done — `f` outlives every use.
        let f_static: &'static (dyn Fn() + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn() + Sync), _>(f) };
        let latch = Arc::new(Latch::new(n_workers));
        {
            let mut state = lock_recover!(self.shared.state.lock());
            for _ in 0..n_workers {
                state.jobs.push_back(Job {
                    f: f_static,
                    latch: Arc::clone(&latch),
                });
            }
        }
        self.shared.work_ready.notify_all();
        // The caller participates instead of idling on the latch.
        let caller = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
        latch.wait();
        if let Err(payload) = caller {
            std::panic::resume_unwind(payload);
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers)
            .field("name", &self.name)
            .finish()
    }
}

fn spawn_worker(
    shared: &Arc<PoolShared>,
    name: &'static str,
    i: usize,
) -> std::thread::JoinHandle<()> {
    let shared = Arc::clone(shared);
    match std::thread::Builder::new()
        .name(format!("{name}-{i}"))
        .spawn(move || worker_loop(&shared))
    {
        Ok(handle) => handle,
        // OS-level spawn failure is unrecoverable resource exhaustion;
        // panicking keeps the message without the linted shorthand.
        Err(e) => panic!("spawn pool thread: {e}"),
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut state = lock_recover!(shared.state.lock());
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = lock_recover!(shared.work_ready.wait(state));
            }
        };
        // A panicking batch must still count down, or `run` deadlocks
        // and the erased borrow could dangle.
        if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| (job.f)())).is_err() {
            job.latch.panicked.store(true, Ordering::Relaxed);
        }
        job.latch.count_down();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        lock_recover!(self.shared.state.lock()).shutdown = true;
        self.shared.work_ready.notify_all();
        for handle in lock_recover!(self.handles.lock()).drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize};

    #[test]
    fn worker_pool_drains_a_counter_and_survives_reuse() {
        let pool = WorkerPool::new(3);
        for round in 1..=3u64 {
            let cursor = AtomicUsize::new(0);
            let hits = AtomicU64::new(0);
            pool.run(&|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= 1000 {
                    break;
                }
                hits.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(hits.load(Ordering::Relaxed), 1000, "round {round}");
        }
    }

    #[test]
    fn zero_worker_pool_runs_on_the_caller() {
        let pool = WorkerPool::new(0);
        let hits = AtomicU64::new(0);
        pool.run(&|| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn named_pool_reports_worker_count() {
        let pool = WorkerPool::named(2, "obx-test");
        assert_eq!(pool.workers(), 2);
        let hits = AtomicU64::new(0);
        pool.run(&|| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        // Caller + both workers each ran the closure exactly once.
        assert_eq!(hits.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn worker_panic_is_contained_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let cursor = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(&|| {
                // Exactly one participant draws index 0 and panics.
                if cursor.fetch_add(1, Ordering::Relaxed) == 0 {
                    panic!("injected");
                }
            });
        }));
        // Whether the caller or a worker drew the panic, the pool must
        // still complete subsequent batches at full capacity.
        let _ = result;
        let hits = AtomicU64::new(0);
        pool.run(&|| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 3);
    }
}

//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment has no crates.io access, so this crate provides
//! the `proptest!` surface the test-suite relies on — integer/float range
//! strategies, tuple strategies, `collection::vec`, simple string-pattern
//! strategies, `ProptestConfig { cases }`, and `prop_assert!`/
//! `prop_assert_eq!` — backed by a deterministic RNG seeded per test
//! name. There is no shrinking: a failing case panics with the generated
//! values in scope, which is enough to reproduce (the stream is
//! deterministic).

/// Re-export used by the macros; not part of the public API.
#[doc(hidden)]
pub use rand as __rand;

/// Test-runner configuration.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The subset of proptest's `Config` the workspace sets.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps the offline suite fast
            // while still exercising each property broadly.
            Self { cases: 64 }
        }
    }

    /// Deterministic per-test RNG: the stream depends only on the test
    /// name, so failures reproduce run-to-run.
    pub fn rng(test_name: &str) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        StdRng::seed_from_u64(h)
    }
}

/// Value-generation strategies.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A generator of random values (no shrinking in this stand-in).
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
            )
        }
    }

    /// `&str` patterns act as string strategies. Supported subset: a
    /// sequence of units, each a literal character, `.` (printable
    /// ASCII), or a `[a-z…]` class, optionally followed by `{n}` or
    /// `{m,n}` repetition.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut StdRng) -> String {
            generate_pattern(self, rng)
        }
    }

    fn generate_pattern(pattern: &str, rng: &mut StdRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // One unit: a character class...
            let class: Vec<char> = match chars[i] {
                '.' => {
                    i += 1;
                    (0x20u8..=0x7E).map(char::from).collect()
                }
                '[' => {
                    let mut set = Vec::new();
                    i += 1;
                    while i < chars.len() && chars[i] != ']' {
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
                            set.extend((lo..=hi).filter_map(char::from_u32));
                            i += 3;
                        } else {
                            set.push(chars[i]);
                            i += 1;
                        }
                    }
                    i += 1; // closing ']'
                    set
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            // ...then an optional repetition.
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i + 1..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unterminated repetition")
                    + i
                    + 1;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse::<usize>().expect("bad repetition"),
                        n.trim().parse::<usize>().expect("bad repetition"),
                    ),
                    None => {
                        let n = body.trim().parse::<usize>().expect("bad repetition");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let n = if min == max {
                min
            } else {
                rng.gen_range(min..=max)
            };
            assert!(!class.is_empty(), "empty character class in {pattern:?}");
            for _ in 0..n {
                out.push(class[rng.gen_range(0..class.len())]);
            }
        }
        out
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Vector length specification: an exact `usize` or a `Range<usize>`.
    pub trait SizeRange {
        /// Draws a length.
        fn draw(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn draw(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn draw(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn draw(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy producing `Vec`s of `elem`-generated values.
    pub struct VecStrategy<S, L> {
        elem: S,
        len: L,
    }

    /// Builds a [`VecStrategy`].
    pub fn vec<S: Strategy, L: SizeRange>(elem: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.len.draw(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a property holds; panics with the formatted message otherwise.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts two values differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, …) { … }`
/// becomes a test running `config.cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $( $(#[$attr:meta])*
         fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                let mut __rng = $crate::test_runner::rng(stringify!($name));
                for __case in 0..__config.cases {
                    $( let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng); )+
                    // Upstream proptest bodies run in a Result context so
                    // they can `return Ok(())` to skip a case early.
                    #[allow(clippy::redundant_closure_call)]
                    let __outcome: ::core::result::Result<(), ::std::string::String> = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(__msg) = __outcome {
                        panic!("property case {__case} failed: {__msg}");
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;

    #[test]
    fn pattern_strategies_match_their_shape() {
        let mut rng = crate::test_runner::rng("pattern");
        for _ in 0..200 {
            let s = ".{0,16}".generate(&mut rng);
            assert!(s.len() <= 16);
            assert!(s.bytes().all(|b| (0x20..=0x7E).contains(&b)));
            let t = "[a-c]{1,2}".generate(&mut rng);
            assert!((1..=2).contains(&t.len()));
            assert!(t.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32 })]

        #[test]
        fn macro_generates_cases(x in 0usize..10, y in 0.0f64..1.0) {
            prop_assert!(x < 10);
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn vec_and_tuple_strategies(v in collection::vec((0usize..5, 1u64..9), 0..8)) {
            prop_assert!(v.len() < 8);
            for (a, b) in v {
                prop_assert!(a < 5 && (1..9).contains(&b));
            }
        }
    }
}

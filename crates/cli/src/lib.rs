//! `obx-cli` — a command-line front end for the explanation framework.
//!
//! A *scenario directory* holds the five text artefacts of an explanation
//! problem (the formats are those of the workspace parsers):
//!
//! | file | contents | format |
//! |---|---|---|
//! | `schema.obx` | the source schema `S` | `NAME/ARITY …` |
//! | `data.obx` | the database `D` | `REL(a, b).` per line |
//! | `ontology.obx` | the TBox `O` | `concept …` / `role …` / `A < B` |
//! | `mapping.obx` | the mapping `M` | `REL(x, y) ~> role(x, y)` |
//! | `labels.obx` | the classifier λ | `+ const[, const]` / `- …` |
//!
//! Commands (see [`run`]): `init`, `explain`, `score`, `certain`,
//! `consistency`, `border`, `evidence`.

#![warn(missing_docs)]
// User input must never crash the CLI with a panic message: every failure
// path is a structured `CliError` with an exit code. Tests opt back in
// (see the per-module allows).
#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod commands;
pub mod scenario_io;

pub use commands::{run, run_cancellable, CliError, CliOutcome};
pub use obx_core::budget::CancelToken;
pub use scenario_io::{load_dir, write_paper_example, LoadedScenario};

//! Command dispatch. [`run`] is a pure function from arguments to output
//! text, so the whole CLI is testable without spawning processes.

use crate::scenario_io::{load_dir, write_paper_example, LoadError, LoadedScenario};
use obx_core::budget::CancelToken;
use obx_core::explain::{ExplainTask, SearchLimits};
use obx_core::score::{ExplainMode, Scoring};
use obx_core::service::{self, ExplainRequest, ServiceError};
use obx_srcdb::Border;
use obx_util::obs::Recorder;
use obx_util::PipelineProfile;
use std::fmt;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;

/// CLI failure, rendered to stderr by the binary. Each variant maps to a
/// process exit code via [`CliError::exit_code`] (degraded-but-successful
/// runs are *not* errors — see [`CliOutcome::exit_code`]).
#[derive(Debug)]
pub enum CliError {
    /// The command line itself was malformed (unknown command or option,
    /// missing value, wrong positional count).
    Usage(String),
    /// A scenario directory failed to load; the message names the file.
    Load {
        /// The directory being loaded.
        dir: String,
        /// What went wrong, file by file.
        source: LoadError,
    },
    /// User-supplied input (query text, constant, strategy name) was
    /// invalid against the loaded scenario.
    Input(String),
    /// The explanation machinery itself failed.
    Search(String),
}

impl CliError {
    /// The process exit code for this failure: `64` (BSD `EX_USAGE`) for
    /// malformed command lines, `1` for everything else. Exit code `2` is
    /// reserved for runs that *succeeded* with degraded/partial results.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 64,
            _ => 1,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Load { dir, source } => write!(f, "loading {dir}: {source}"),
            CliError::Input(msg) => write!(f, "{msg}"),
            CliError::Search(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CliError {}

fn usage_err(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

fn input_err(msg: impl Into<String>) -> CliError {
    CliError::Input(msg.into())
}

fn search_err(msg: impl Into<String>) -> CliError {
    CliError::Search(msg.into())
}

/// A successful CLI run: the text for stdout plus the process exit code
/// (`0` = complete, `2` = the search ended early or degraded — partial,
/// best-so-far results were printed).
#[derive(Debug)]
pub struct CliOutcome {
    /// Text to print on stdout.
    pub stdout: String,
    /// Process exit code (0 complete, 2 degraded/partial).
    pub exit_code: i32,
}

impl CliOutcome {
    fn complete(stdout: String) -> Self {
        Self {
            stdout,
            exit_code: 0,
        }
    }
}

const USAGE: &str = "\
obx — ontology-based explanation of classifiers (EDBT 2020 reproduction)

USAGE:
  obx init <dir>                      write the paper's example scenario
  obx validate <dir>                  check a scenario: every syntax and
                                      semantic problem, with positions
  obx snapshot build <dir>            compile schema.obx + data.obx into a
                                      binary data snapshot (data.obxsnap)
                                      for fast million-atom loads
  obx explain <dir> [opts]            find best-describing queries (Def. 3.7)
  obx score <dir> \"<query>\" [opts]    Z-score one ontology query
  obx certain <dir> \"<query>\"         certain answers over the full database
  obx consistency <dir>               check the system's consistency
  obx border <dir> <consts> <radius>  show B_{t,r}(D) (consts comma-separated)
  obx evidence <dir> \"<query>\" <const> [opts]
                                      why does the query J-match the tuple?
  obx serve [<dir>] [opts]            run the always-on explanation service
                                      (epoch snapshots, POST /explain,
                                      /validate, /reload; SIGINT/SIGTERM
                                      drains gracefully). <dir> mounts as
                                      scenario `default`; --mount adds
                                      more tenants to the same process

OPTIONS:
  --radius N          border radius r (default 1)
  --strategy NAME     beam | bottom-up | exhaustive | greedy | data-level
  --mode NAME         (explain) search objective: fscore (default, the
                      paper's Z-score) | sound (best explanation with
                      zero λ⁻ hits, then recall, then size) | complete
                      (best explanation covering all of λ⁺, then
                      precision, then size). When no perfect candidate
                      exists within budget, the best approximation is
                      printed with a marker and the exit code is 2
  --weights A,B,G     paper Z weights for δ1, δ4, δ5 (default 1,1,1)
  --top K             how many explanations to print (default 5)
  --max-atoms N       cap atoms per candidate body (default 3); small
                      caps shrink the space and arm bound pruning
  --beam-width N      candidates kept per search round (default 24)
  --timeout-ms N      wall-clock budget; on expiry the best-so-far
                      explanations are printed and the exit code is 2
  --max-evals N       cap on J-match evaluator calls (anytime, like
                      --timeout-ms)
  --max-rewrite N     resource guard: cap cumulative PerfectRef disjuncts
  --max-chase N       resource guard: cap cumulative chase facts
  --max-border N      resource guard: cap cumulative border atoms
                      (guards degrade the run to best-so-far, exit code 2)
  --profile[=FMT]     (explain) append a pipeline profile: per-phase wall
                      times and kernel counters. FMT is `tree` (default)
                      or `json`. Profiling never changes the results;
                      OBX_OBS=0 disables recording and yields an empty
                      profile

SERVE OPTIONS:
  --port N                listen port on 127.0.0.1 (default 0 = pick free)
  --max-inflight N        concurrent executing requests (default 4)
  --queue-depth N         waiting requests before load is shed (default 16)
  --request-timeout-ms N  server-side wall-clock ceiling per request;
                          requests may ask for less, never more
  --mount NAME=DIR        mount DIR as scenario NAME (repeatable); wire
                          requests route with a `scenario` field
  --journal PATH          crash-safe mount registry: runtime mounts are
                          journaled here and replayed after a restart
                          (rotten ones come back quarantined, not fatal)
  --tenant-max-inflight N bulkhead: concurrent requests per tenant
                          (default: the global --max-inflight)
  --tenant-queue-depth N  bulkhead: queued requests per tenant
                          (default: the global --queue-depth)
  --breaker-threshold N   consecutive panics/ceiling-timeouts before a
                          tenant's circuit breaker opens (default 5)
  --breaker-open-ms N     how long a tripped breaker sheds before a
                          half-open probe (default 2000)

Ctrl-C cancels a running search gracefully: best-so-far results are
printed, exit code 2. Exit codes: 0 complete, 1 error, 2 partial/degraded
results, 64 usage.

Queries use the paper-style syntax: q(x) :- studies(x, \"Math\")";

/// Output format of `--profile`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProfileFormat {
    /// Indented span tree (human-oriented, the default).
    Tree,
    /// Single-line JSON (machine-oriented; what the bench bins embed).
    Json,
}

struct Opts {
    radius: usize,
    strategy: String,
    mode: ExplainMode,
    weights: (f64, f64, f64),
    top: usize,
    timeout_ms: Option<u64>,
    max_evals: Option<u64>,
    max_rewrite: Option<usize>,
    max_chase: Option<usize>,
    max_border: Option<usize>,
    max_atoms: Option<usize>,
    beam_width: Option<usize>,
    profile: Option<ProfileFormat>,
    // `obx serve` knobs.
    port: Option<u16>,
    max_inflight: Option<usize>,
    queue_depth: Option<usize>,
    request_timeout_ms: Option<u64>,
    mounts: Vec<(String, String)>,
    journal: Option<String>,
    tenant_max_inflight: Option<usize>,
    tenant_queue_depth: Option<usize>,
    breaker_threshold: Option<u32>,
    breaker_open_ms: Option<u64>,
}

fn parse_opts(args: &[String]) -> Result<(Vec<String>, Opts), CliError> {
    let mut opts = Opts {
        radius: 1,
        strategy: "beam".to_owned(),
        mode: ExplainMode::Fscore,
        weights: (1.0, 1.0, 1.0),
        top: 5,
        timeout_ms: None,
        max_evals: None,
        max_rewrite: None,
        max_chase: None,
        max_border: None,
        max_atoms: None,
        beam_width: None,
        profile: None,
        port: None,
        max_inflight: None,
        queue_depth: None,
        request_timeout_ms: None,
        mounts: Vec::new(),
        journal: None,
        tenant_max_inflight: None,
        tenant_queue_depth: None,
        breaker_threshold: None,
        breaker_open_ms: None,
    };
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut next = |flag: &str| -> Result<&String, CliError> {
            it.next()
                .ok_or_else(|| usage_err(format!("{flag} needs a value")))
        };
        match a.as_str() {
            "--radius" => {
                opts.radius = next("--radius")?
                    .parse()
                    .map_err(|_| usage_err("--radius must be a number"))?;
            }
            "--strategy" => {
                opts.strategy = next("--strategy")?.clone();
            }
            "--mode" => {
                opts.mode = next("--mode")?
                    .parse()
                    .map_err(|e: String| usage_err(format!("--mode: {e}")))?;
            }
            "--top" => {
                opts.top = next("--top")?
                    .parse()
                    .map_err(|_| usage_err("--top must be a number"))?;
            }
            "--timeout-ms" => {
                opts.timeout_ms = Some(
                    next("--timeout-ms")?
                        .parse()
                        .map_err(|_| usage_err("--timeout-ms must be a number"))?,
                );
            }
            "--max-evals" => {
                opts.max_evals = Some(
                    next("--max-evals")?
                        .parse()
                        .map_err(|_| usage_err("--max-evals must be a number"))?,
                );
            }
            "--max-rewrite" => {
                opts.max_rewrite = Some(
                    next("--max-rewrite")?
                        .parse()
                        .map_err(|_| usage_err("--max-rewrite must be a number"))?,
                );
            }
            "--max-chase" => {
                opts.max_chase = Some(
                    next("--max-chase")?
                        .parse()
                        .map_err(|_| usage_err("--max-chase must be a number"))?,
                );
            }
            "--max-border" => {
                opts.max_border = Some(
                    next("--max-border")?
                        .parse()
                        .map_err(|_| usage_err("--max-border must be a number"))?,
                );
            }
            "--max-atoms" => {
                opts.max_atoms = Some(
                    next("--max-atoms")?
                        .parse()
                        .map_err(|_| usage_err("--max-atoms must be a number"))?,
                );
            }
            "--beam-width" => {
                opts.beam_width = Some(
                    next("--beam-width")?
                        .parse()
                        .map_err(|_| usage_err("--beam-width must be a number"))?,
                );
            }
            "--port" => {
                opts.port = Some(
                    next("--port")?
                        .parse()
                        .map_err(|_| usage_err("--port must be a port number"))?,
                );
            }
            "--max-inflight" => {
                opts.max_inflight = Some(
                    next("--max-inflight")?
                        .parse()
                        .map_err(|_| usage_err("--max-inflight must be a number"))?,
                );
            }
            "--queue-depth" => {
                opts.queue_depth = Some(
                    next("--queue-depth")?
                        .parse()
                        .map_err(|_| usage_err("--queue-depth must be a number"))?,
                );
            }
            "--request-timeout-ms" => {
                opts.request_timeout_ms = Some(
                    next("--request-timeout-ms")?
                        .parse()
                        .map_err(|_| usage_err("--request-timeout-ms must be a number"))?,
                );
            }
            "--mount" => {
                let raw = next("--mount")?;
                let Some((name, dir)) = raw.split_once('=') else {
                    return Err(usage_err("--mount must be NAME=DIR"));
                };
                if name.is_empty() || dir.is_empty() {
                    return Err(usage_err("--mount must be NAME=DIR"));
                }
                opts.mounts.push((name.to_owned(), dir.to_owned()));
            }
            "--journal" => {
                opts.journal = Some(next("--journal")?.clone());
            }
            "--tenant-max-inflight" => {
                opts.tenant_max_inflight = Some(
                    next("--tenant-max-inflight")?
                        .parse()
                        .map_err(|_| usage_err("--tenant-max-inflight must be a number"))?,
                );
            }
            "--tenant-queue-depth" => {
                opts.tenant_queue_depth = Some(
                    next("--tenant-queue-depth")?
                        .parse()
                        .map_err(|_| usage_err("--tenant-queue-depth must be a number"))?,
                );
            }
            "--breaker-threshold" => {
                opts.breaker_threshold = Some(
                    next("--breaker-threshold")?
                        .parse()
                        .map_err(|_| usage_err("--breaker-threshold must be a number"))?,
                );
            }
            "--breaker-open-ms" => {
                opts.breaker_open_ms = Some(
                    next("--breaker-open-ms")?
                        .parse()
                        .map_err(|_| usage_err("--breaker-open-ms must be a number"))?,
                );
            }
            "--weights" => {
                let raw = next("--weights")?;
                let parts: Vec<f64> = raw
                    .split(',')
                    .map(|p| p.trim().parse())
                    .collect::<Result<_, _>>()
                    .map_err(|_| usage_err("--weights must be A,B,G"))?;
                if parts.len() != 3 {
                    return Err(usage_err("--weights must have three values"));
                }
                opts.weights = (parts[0], parts[1], parts[2]);
            }
            "--profile" => {
                opts.profile = Some(ProfileFormat::Tree);
            }
            other if other.starts_with("--profile=") => {
                opts.profile = Some(match &other["--profile=".len()..] {
                    "tree" => ProfileFormat::Tree,
                    "json" => ProfileFormat::Json,
                    v => {
                        return Err(usage_err(format!(
                            "--profile must be `tree` or `json`, got `{v}`"
                        )))
                    }
                });
            }
            other if other.starts_with("--") => {
                return Err(usage_err(format!("unknown option `{other}`")));
            }
            other => positional.push(other.to_owned()),
        }
    }
    Ok((positional, opts))
}

/// The front-end-agnostic [`ExplainRequest`] these options describe; the
/// shared service layer derives the scoring and search budget from it.
fn request_of(opts: &Opts) -> ExplainRequest {
    ExplainRequest {
        radius: opts.radius,
        strategy: opts.strategy.clone(),
        mode: opts.mode,
        weights: opts.weights,
        top: opts.top,
        max_atoms: opts.max_atoms,
        beam_width: opts.beam_width,
        timeout_ms: opts.timeout_ms,
        max_evals: opts.max_evals,
        max_rewrite: opts.max_rewrite,
        max_chase: opts.max_chase,
        max_border: opts.max_border,
    }
}

/// Runs one CLI invocation; returns the text to print on stdout. This is
/// the compatibility wrapper over [`run_cancellable`] with a fresh (never
/// fired) cancellation token, dropping the exit-code detail.
pub fn run(args: &[String]) -> Result<String, CliError> {
    run_cancellable(args, &CancelToken::new()).map(|o| o.stdout)
}

/// Runs one CLI invocation under a caller-owned [`CancelToken`] (the
/// binary bridges SIGINT onto it). Long-running searches honour the token
/// plus any `--timeout-ms` / `--max-evals` budget and return best-so-far
/// results with [`CliOutcome::exit_code`] = 2 instead of failing.
pub fn run_cancellable(args: &[String], cancel: &CancelToken) -> Result<CliOutcome, CliError> {
    let Some(command) = args.first() else {
        return Ok(CliOutcome::complete(USAGE.to_owned()));
    };
    let (pos, opts) = parse_opts(&args[1..])?;
    match command.as_str() {
        "help" | "--help" | "-h" => Ok(CliOutcome::complete(USAGE.to_owned())),
        "init" => {
            let dir = pos
                .first()
                .ok_or_else(|| usage_err("init needs a directory"))?;
            write_paper_example(Path::new(dir)).map_err(|e| search_err(format!("init: {e}")))?;
            Ok(CliOutcome::complete(format!(
                "wrote the paper's Example 3.6 scenario to {dir}"
            )))
        }
        "validate" => {
            let dir = pos
                .first()
                .ok_or_else(|| usage_err("validate needs a directory"))?;
            Ok(validate(dir))
        }
        "snapshot" => {
            let [sub, dir] = two(&pos, "snapshot build <dir>")?;
            if sub != "build" {
                return Err(usage_err(format!(
                    "unknown snapshot subcommand `{sub}` (expected `build`)"
                )));
            }
            let (atoms, consts, bytes) = obx_core::scenario::build_snapshot(Path::new(dir))
                .map_err(|source| CliError::Load {
                    dir: dir.to_owned(),
                    source,
                })?;
            Ok(CliOutcome::complete(format!(
                "wrote {}/{}: {atoms} atoms, {consts} constants, {bytes} bytes\n\
                 subsequent loads of {dir} use the snapshot while schema.obx \
                 and data.obx are unchanged",
                dir,
                obx_core::scenario::SNAPSHOT_FILE,
            )))
        }
        "explain" => {
            let dir = pos
                .first()
                .ok_or_else(|| usage_err("explain needs a directory"))?;
            let loaded = load(dir)?;
            explain(&loaded, &opts, cancel)
        }
        "serve" => {
            if pos.is_empty() && opts.mounts.is_empty() && opts.journal.is_none() {
                return Err(usage_err(
                    "serve needs a directory, at least one --mount NAME=DIR, or a --journal",
                ));
            }
            serve(pos.first().map(String::as_str), &opts, cancel)
        }
        "score" => {
            let [dir, query] = two(&pos, "score <dir> \"<query>\"")?;
            let mut loaded = load(dir)?;
            let ucq = parse_query(&mut loaded, query)?;
            let scoring = scoring_of(&opts);
            let task = task_of(&loaded, &scoring, &opts, cancel, None)?;
            let e = task
                .score_ucq(&ucq)
                .map_err(|e| search_err(format!("score: {e}")))?;
            let mut out = String::new();
            let _ = writeln!(out, "query:   {}", e.render(&loaded.system));
            let _ = writeln!(out, "Z-score: {:.4}", e.score);
            let _ = writeln!(
                out,
                "matches: {}/{} of λ⁺, {}/{} of λ⁻",
                e.stats.pos_matched, e.stats.pos_total, e.stats.neg_matched, e.stats.neg_total
            );
            let _ = writeln!(out, "criteria (δ1, δ4, δ5): {:?}", e.criterion_values);
            Ok(CliOutcome::complete(out))
        }
        "certain" => {
            let [dir, query] = two(&pos, "certain <dir> \"<query>\"")?;
            let mut loaded = load(dir)?;
            let ucq = parse_query(&mut loaded, query)?;
            let answers = loaded
                .system
                .certain_answers(&ucq)
                .map_err(|e| search_err(format!("certain: {e}")))?;
            let mut names: Vec<String> = answers
                .iter()
                .map(|t| loaded.system.db().consts().render_tuple(t))
                .collect();
            names.sort();
            Ok(CliOutcome::complete(format!(
                "{} certain answer(s)\n{}\n",
                names.len(),
                names.join("\n")
            )))
        }
        "consistency" => {
            let dir = pos
                .first()
                .ok_or_else(|| usage_err("consistency needs a directory"))?;
            let loaded = load(dir)?;
            let violations = loaded.system.check_consistency();
            if violations.is_empty() {
                Ok(CliOutcome::complete("consistent".to_owned()))
            } else {
                Ok(CliOutcome::complete(format!(
                    "INCONSISTENT: {} violation(s)\n{violations:#?}",
                    violations.len()
                )))
            }
        }
        "border" => {
            let [dir, consts, radius] = three(&pos, "border <dir> <consts> <radius>")?;
            let loaded = load(dir)?;
            let radius: usize = radius
                .parse()
                .map_err(|_| usage_err("radius must be a number"))?;
            let tuple: Vec<obx_srcdb::Const> = consts
                .split(',')
                .map(|c| {
                    loaded
                        .system
                        .db()
                        .consts()
                        .get(c.trim())
                        .ok_or_else(|| input_err(format!("unknown constant `{}`", c.trim())))
                })
                .collect::<Result<_, _>>()?;
            let border = Border::compute(loaded.system.db(), &tuple, radius);
            let db = loaded.system.db();
            let mut out = String::new();
            for j in 0..border.num_layers() {
                let mut atoms: Vec<String> = border
                    .layer(j)
                    .into_iter()
                    .flatten()
                    .map(|&id| db.atom(id).render(db.schema(), db.consts()))
                    .collect();
                atoms.sort();
                let _ = writeln!(out, "W_{j}: {{{}}}", atoms.join(", "));
            }
            let _ = writeln!(out, "B_t,{radius}: {} atom(s)", border.len());
            Ok(CliOutcome::complete(out))
        }
        "evidence" => {
            let [dir, query, constant] = three(&pos, "evidence <dir> \"<query>\" <const>")?;
            let mut loaded = load(dir)?;
            let ucq = parse_query(&mut loaded, query)?;
            let c = loaded
                .system
                .db()
                .consts()
                .get(constant)
                .ok_or_else(|| input_err(format!("unknown constant `{constant}`")))?;
            let scoring = scoring_of(&opts);
            let task = task_of(&loaded, &scoring, &opts, cancel, None)?;
            match task
                .evidence(&ucq, &[c])
                .map_err(|e| search_err(format!("evidence: {e}")))?
            {
                Some(atoms) => Ok(CliOutcome::complete(format!(
                    "{constant} J-matches; grounded by:\n  {}",
                    atoms.join("\n  ")
                ))),
                None => Ok(CliOutcome::complete(format!(
                    "{constant} does not J-match the query within radius {} (or is unlabelled)",
                    opts.radius
                ))),
            }
        }
        other => Err(usage_err(format!("unknown command `{other}`\n\n{USAGE}"))),
    }
}

fn load(dir: &str) -> Result<LoadedScenario, CliError> {
    load_dir(Path::new(dir)).map_err(|source| CliError::Load {
        dir: dir.to_owned(),
        source,
    })
}

/// `obx validate <dir>`: delegates to the shared
/// [`service::validate_dir`] implementation (also behind the server's
/// `/validate` endpoint), so both front ends emit identical diagnostics.
fn validate(dir: &str) -> CliOutcome {
    let outcome = service::validate_dir(Path::new(dir));
    CliOutcome {
        stdout: outcome.stdout,
        exit_code: outcome.exit_code,
    }
}

fn parse_query(loaded: &mut LoadedScenario, text: &str) -> Result<obx_query::OntoUcq, CliError> {
    loaded
        .system
        .parse_query(text)
        .map_err(|e| input_err(format!("query: {e}")))
}

fn scoring_of(opts: &Opts) -> Scoring {
    Scoring::paper_weighted(opts.weights.0, opts.weights.1, opts.weights.2)
}

fn task_of<'a>(
    loaded: &'a LoadedScenario,
    scoring: &'a Scoring,
    opts: &Opts,
    cancel: &CancelToken,
    recorder: Option<&Arc<Recorder>>,
) -> Result<ExplainTask<'a>, CliError> {
    let limits = SearchLimits {
        top_k: opts.top,
        ..SearchLimits::default()
    };
    let mut budget = request_of(opts).budget(cancel);
    if let Some(rec) = recorder {
        budget = budget.with_recorder(Arc::clone(rec));
    }
    ExplainTask::new_with_budget(
        &loaded.system,
        &loaded.labels,
        opts.radius,
        scoring,
        limits,
        budget,
    )
    .map_err(|e| search_err(format!("task: {e}")))
}

fn explain(
    loaded: &LoadedScenario,
    opts: &Opts,
    cancel: &CancelToken,
) -> Result<CliOutcome, CliError> {
    // The actual run — prepare (border BFS inside task construction) then
    // search — lives in the shared service layer, so `obx explain` and
    // `obx serve` produce byte-identical output for the same request.
    // `--profile` attaches a recorder to the budget; it rides down into
    // every kernel via the task's interrupt, and the service phases the
    // run (`explain/prepare`, `explain/search`) so phase wall times sum
    // to the run's total.
    let recorder = opts.profile.map(|_| Recorder::new());
    let req = request_of(opts);
    let mut budget = req.budget(cancel);
    if let Some(rec) = &recorder {
        budget = budget.with_recorder(Arc::clone(rec));
    }
    // Same cancel/deadline/guard/recorder wiring the task will carry —
    // built up front because the budget moves into the service call.
    let audit_interrupt = recorder.as_ref().map(|_| budget.interrupt());
    let outer = recorder.as_ref().map(|r| r.enter("explain"));
    let outcome = service::run_explain(&loaded.system, &loaded.labels, &req, budget).map_err(
        |e| match e {
            ServiceError::UnknownStrategy(s) => usage_err(format!("unknown strategy `{s}`")),
            ServiceError::Task(msg) => search_err(format!("task: {msg}")),
            ServiceError::Search(msg) => search_err(format!("explain: {msg}")),
        },
    )?;
    // Audit (profiling only): run the top explanation through the
    // materialization engine — virtual ABox + chase — as an independent
    // oracle. Never on the non-profiled path: the chase is deliberately
    // not part of explain's hot loop.
    if let (Some(rec), Some(report)) = (&recorder, &outcome.report) {
        let _audit = rec.enter_phase("explain/audit");
        if let (Some(best), Some(interrupt)) = (report.explanations.first(), &audit_interrupt) {
            let _ = loaded.system.certain_answers_materialized_interruptible(
                &best.query,
                obx_srcdb::View::full(loaded.system.db()),
                obx_obdm::ChaseConfig::for_ucq(&best.query),
                interrupt,
            );
        }
    }
    drop(outer);
    let mut out = CliOutcome {
        stdout: outcome.stdout,
        exit_code: outcome.exit_code,
    };
    if let Some(fmt) = opts.profile {
        // Snapshot after the audit phase so it is included (the report's
        // own `profile` field was frozen at the end of the search).
        append_profile(
            &mut out.stdout,
            &recorder.as_ref().map(|r| r.profile()).unwrap_or_default(),
            fmt,
        );
    }
    Ok(out)
}

/// `obx serve <dir>`: boots the always-on explanation server and blocks
/// until the shared signal handler fires (SIGINT/SIGTERM), then drains
/// gracefully — stop accepting, shed queued work, let in-flight requests
/// finish inside the grace window, cancel stragglers. The one command
/// that prints while running (the listening line goes to stderr so
/// stdout stays reserved for the final summary).
fn serve(dir: Option<&str>, opts: &Opts, cancel: &CancelToken) -> Result<CliOutcome, CliError> {
    let mut config = obx_serve::ServeConfig {
        bind: format!("127.0.0.1:{}", opts.port.unwrap_or(0)),
        ..obx_serve::ServeConfig::default()
    };
    if let Some(n) = opts.max_inflight {
        config.max_inflight = n;
    }
    if let Some(n) = opts.queue_depth {
        config.queue_depth = n;
    }
    if let Some(ms) = opts.request_timeout_ms {
        config.request_timeout_ms = Some(ms);
    }
    config.tenant_max_inflight = opts.tenant_max_inflight;
    config.tenant_queue_depth = opts.tenant_queue_depth;
    if let Some(n) = opts.breaker_threshold {
        config.breaker_threshold = n;
    }
    if let Some(ms) = opts.breaker_open_ms {
        config.breaker_open_ms = ms;
    }
    // A bare <dir> is the single-tenant spelling: mounted as `default`.
    let mut mounts: Vec<(String, std::path::PathBuf)> = Vec::new();
    if let Some(dir) = dir {
        mounts.push(("default".to_owned(), std::path::PathBuf::from(dir)));
    }
    for (name, dir) in &opts.mounts {
        mounts.push((name.clone(), std::path::PathBuf::from(dir)));
    }
    let journal = opts.journal.as_ref().map(std::path::PathBuf::from);
    let server = obx_serve::start_multi(mounts, journal, config).map_err(input_err)?;
    let mounted: Vec<String> = server
        .tenants()
        .list()
        .iter()
        .map(|t| format!("{} (epoch {}, {})", t.name(), t.epoch_id(), t.status()))
        .collect();
    eprintln!(
        "obx serve: listening on http://{} — {} scenario(s): {} (Ctrl-C drains)",
        server.addr(),
        mounted.len(),
        mounted.join(", ")
    );
    // Block until the shared handler bridges a signal onto the token.
    // Polling (rather than parking on a condvar) keeps the loop signal-
    // safe and costs nothing at this cadence.
    while !cancel.is_cancelled() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    let final_epoch = server.epoch();
    server.shutdown();
    Ok(CliOutcome::complete(format!(
        "serve: drained cleanly (final epoch {final_epoch})"
    )))
}

/// Appends a [`PipelineProfile`] to the command output in the requested
/// format: a `-- profile --` header plus the indented span tree, or one
/// line of JSON.
fn append_profile(out: &mut String, profile: &PipelineProfile, fmt: ProfileFormat) {
    match fmt {
        ProfileFormat::Json => {
            let _ = writeln!(out, "{}", profile.to_json());
        }
        ProfileFormat::Tree => {
            let _ = writeln!(out, "-- profile --");
            out.push_str(&profile.render_tree());
        }
    }
}

fn two<'a>(pos: &'a [String], usage: &str) -> Result<[&'a str; 2], CliError> {
    match pos {
        [a, b] => Ok([a, b]),
        _ => Err(usage_err(format!("usage: obx {usage}"))),
    }
}

fn three<'a>(pos: &'a [String], usage: &str) -> Result<[&'a str; 3], CliError> {
    match pos {
        [a, b, c] => Ok([a, b, c]),
        _ => Err(usage_err(format!("usage: obx {usage}"))),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn with_scenario(tag: &str, f: impl FnOnce(&str)) {
        let dir = std::env::temp_dir().join(format!("obx-cmd-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        write_paper_example(&dir).unwrap();
        f(dir.to_str().unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn no_args_prints_usage() {
        let out = run(&[]).unwrap();
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn unknown_command_errors_with_usage() {
        let e = run(&args(&["frobnicate"])).unwrap_err();
        assert!(e.to_string().contains("unknown command"));
    }

    #[test]
    fn score_reproduces_example_3_8() {
        with_scenario("score", |dir| {
            let out = run(&args(&["score", dir, r#"q(x) :- likes(x, "Science")"#])).unwrap();
            assert!(out.contains("0.8333"), "{out}");
            assert!(out.contains("2/4 of λ⁺"), "{out}");
        });
    }

    #[test]
    fn certain_answers_command() {
        with_scenario("certain", |dir| {
            let out = run(&args(&["certain", dir, r#"q(x) :- studies(x, "Math")"#])).unwrap();
            assert!(out.starts_with("3 certain answer(s)"), "{out}");
            assert!(out.contains("<E25>"), "{out}");
        });
    }

    #[test]
    fn border_command_matches_example() {
        with_scenario("border", |dir| {
            let out = run(&args(&["border", dir, "A10", "1"])).unwrap();
            assert!(out.contains("STUD(A10)"), "{out}");
            assert!(out.contains("LOC(TV, Rome)"), "{out}");
        });
    }

    #[test]
    fn snapshot_build_then_explain_is_byte_identical_to_text() {
        with_scenario("snapbuild", |dir| {
            let text_out = run(&args(&["explain", dir, "--top", "3"])).unwrap();
            let built = run(&args(&["snapshot", "build", dir])).unwrap();
            assert!(built.contains("13 atoms"), "{built}");
            assert!(Path::new(dir).join("data.obxsnap").exists());
            let snap_out = run(&args(&["explain", dir, "--top", "3"])).unwrap();
            assert_eq!(snap_out, text_out);
        });
        assert!(run(&args(&["snapshot", "rebuild", "x"])).is_err());
        assert!(run(&args(&["snapshot", "build"])).is_err());
    }

    #[test]
    fn explain_finds_a_good_query() {
        with_scenario("explain", |dir| {
            let out = run(&args(&["explain", dir, "--top", "3"])).unwrap();
            assert!(out.contains("0.8333"), "{out}");
            let lines: Vec<&str> = out.lines().collect();
            assert_eq!(lines.len(), 3);
        });
    }

    #[test]
    fn explain_with_weights_finds_the_true_z2_optimum() {
        with_scenario("weights", |dir| {
            // Under the paper's Z2 (α = 3), Example 3.8 crowns q1 (0.716) —
            // but only among its three candidates. The unrestricted search
            // finds `studies(x, y)`: coverage 4/4 and one atom give
            // (3·1 + 1·0 + 1·1)/5 = 0.8 > 0.716. See EXPERIMENTS.md.
            let out = run(&args(&["explain", dir, "--weights", "3,1,1", "--top", "1"])).unwrap();
            assert!(out.contains("Z = 0.8000"), "{out}");
            assert!(out.contains("[4/4+"), "{out}");
        });
    }

    #[test]
    fn explain_mode_fscore_is_byte_identical_to_the_default() {
        with_scenario("mode-fscore", |dir| {
            let default = run(&args(&["explain", dir, "--top", "3"])).unwrap();
            let fscore = run(&args(&["explain", dir, "--mode", "fscore", "--top", "3"])).unwrap();
            assert_eq!(default, fscore);
        });
    }

    #[test]
    fn explain_mode_sound_returns_a_clean_query() {
        with_scenario("mode-sound", |dir| {
            let out = run_cancellable(
                &args(&["explain", dir, "--mode", "sound", "--top", "1"]),
                &CancelToken::new(),
            )
            .unwrap();
            assert_eq!(out.exit_code, 0, "{}", out.stdout);
            // The ranked line reports λ⁻ hits as "N-": sound means 0.
            assert!(out.stdout.contains("  0-]"), "{}", out.stdout);
        });
    }

    #[test]
    fn explain_mode_complete_covers_every_positive() {
        with_scenario("mode-complete", |dir| {
            let out = run_cancellable(
                &args(&["explain", dir, "--mode", "complete", "--top", "1"]),
                &CancelToken::new(),
            )
            .unwrap();
            assert_eq!(out.exit_code, 0, "{}", out.stdout);
            assert!(out.stdout.contains("[4/4+"), "{}", out.stdout);
        });
    }

    #[test]
    fn bad_mode_is_a_usage_error() {
        let e = run(&args(&["explain", "x", "--mode", "perfect"])).unwrap_err();
        assert!(matches!(e, CliError::Usage(_)), "{e}");
        assert!(e.to_string().contains("unknown mode"), "{e}");
    }

    #[test]
    fn evidence_command_grounds_a_match() {
        with_scenario("evidence", |dir| {
            let out = run(&args(&[
                "evidence",
                dir,
                r#"q(x) :- studies(x, y), taughtIn(y, z), locatedIn(z, "Rome")"#,
                "A10",
            ]))
            .unwrap();
            assert!(out.contains("grounded by"), "{out}");
            assert!(out.contains("LOC(TV, Rome)"), "{out}");
            let out2 = run(&args(&[
                "evidence",
                dir,
                r#"q(x) :- studies(x, y), taughtIn(y, z), locatedIn(z, "Rome")"#,
                "E25",
            ]))
            .unwrap();
            assert!(out2.contains("does not J-match"), "{out2}");
        });
    }

    #[test]
    fn consistency_command() {
        with_scenario("consistency", |dir| {
            let out = run(&args(&["consistency", dir])).unwrap();
            assert_eq!(out, "consistent");
        });
    }

    #[test]
    fn data_level_strategy_is_reachable() {
        with_scenario("datalevel", |dir| {
            let out = run(&args(&[
                "explain",
                dir,
                "--strategy",
                "data-level",
                "--top",
                "2",
            ]))
            .unwrap();
            assert!(
                out.contains("ENR") || out.contains("STUD") || out.contains("LOC"),
                "{out}"
            );
        });
    }

    #[test]
    fn validate_paper_example_reports_its_unused_relation() {
        // The shipped example's mapping never reads STUD — validate finds
        // exactly that warning and exits 2.
        with_scenario("validate-ok", |dir| {
            let out = run_cancellable(&args(&["validate", dir]), &CancelToken::new()).unwrap();
            assert_eq!(out.exit_code, 2, "{}", out.stdout);
            assert!(out.stdout.contains("OBX203"), "{}", out.stdout);
            assert!(out.stdout.contains("STUD"), "{}", out.stdout);
            assert!(
                out.stdout.contains("0 error(s), 1 warning(s)"),
                "{}",
                out.stdout
            );
        });
    }

    #[test]
    fn validate_broken_scenario_collects_every_problem() {
        with_scenario("validate-bad", |dir| {
            let d = Path::new(dir);
            std::fs::write(d.join("ontology.obx"), "role studies\nstudies << likes\n").unwrap();
            std::fs::write(d.join("labels.obx"), "+ A10\n? B80\n").unwrap();
            let out = run_cancellable(&args(&["validate", dir]), &CancelToken::new()).unwrap();
            assert_eq!(out.exit_code, 1, "{}", out.stdout);
            // Problems from *both* files, each positioned, with a caret
            // pointing into the offending source line.
            assert!(out.stdout.contains("ontology.obx:2"), "{}", out.stdout);
            assert!(out.stdout.contains("labels.obx:2"), "{}", out.stdout);
            assert!(out.stdout.contains('^'), "{}", out.stdout);
        });
    }

    #[test]
    fn validate_missing_directory_reports_every_file() {
        let out = run_cancellable(
            &args(&["validate", "/nonexistent/obx-scenario"]),
            &CancelToken::new(),
        )
        .unwrap();
        assert_eq!(out.exit_code, 1, "{}", out.stdout);
        assert_eq!(out.stdout.matches("OBX001").count(), 5, "{}", out.stdout);
        assert!(
            out.stdout.contains("could not be assembled"),
            "{}",
            out.stdout
        );
    }

    #[test]
    fn guarded_explain_degrades_to_best_so_far() {
        with_scenario("guard", |dir| {
            let out = run_cancellable(
                &args(&["explain", dir, "--max-border", "1", "--top", "3"]),
                &CancelToken::new(),
            )
            .unwrap();
            assert_eq!(out.exit_code, 2, "{}", out.stdout);
            // Best-so-far results still print, plus the stop-reason footer
            // naming the tripped guard and its counts.
            assert!(out.stdout.starts_with("Z = "), "{}", out.stdout);
            assert!(
                out.stdout.contains("search stopped early"),
                "{}",
                out.stdout
            );
            assert!(
                out.stdout.contains("resource guard tripped: border atoms"),
                "{}",
                out.stdout
            );
            assert!(out.stdout.contains("(limit 1)"), "{}", out.stdout);
        });
    }

    #[test]
    fn bad_options_are_reported() {
        assert!(run(&args(&["explain", "--radius"])).is_err());
        assert!(run(&args(&["explain", "x", "--weights", "1,2"])).is_err());
        assert!(run(&args(&["explain", "x", "--bogus"])).is_err());
        with_scenario("badstrat", |dir| {
            assert!(run(&args(&["explain", dir, "--strategy", "nope"])).is_err());
        });
    }
}

//! Command dispatch. [`run`] is a pure function from arguments to output
//! text, so the whole CLI is testable without spawning processes.

use crate::scenario_io::{load_dir, write_paper_example, LoadedScenario};
use obx_core::baseline::DataLevelBeam;
use obx_core::explain::{ExplainTask, SearchLimits, Strategy};
use obx_core::score::Scoring;
use obx_core::strategies::{BeamSearch, BottomUpGeneralize, ExhaustiveSearch, GreedyUcq};
use obx_srcdb::Border;
use std::fmt;
use std::fmt::Write as _;
use std::path::Path;

/// CLI failure, rendered to stderr by the binary.
#[derive(Debug)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

const USAGE: &str = "\
obx — ontology-based explanation of classifiers (EDBT 2020 reproduction)

USAGE:
  obx init <dir>                      write the paper's example scenario
  obx explain <dir> [opts]            find best-describing queries (Def. 3.7)
  obx score <dir> \"<query>\" [opts]    Z-score one ontology query
  obx certain <dir> \"<query>\"         certain answers over the full database
  obx consistency <dir>               check the system's consistency
  obx border <dir> <consts> <radius>  show B_{t,r}(D) (consts comma-separated)
  obx evidence <dir> \"<query>\" <const> [opts]
                                      why does the query J-match the tuple?

OPTIONS:
  --radius N          border radius r (default 1)
  --strategy NAME     beam | bottom-up | exhaustive | greedy | data-level
  --weights A,B,G     paper Z weights for δ1, δ4, δ5 (default 1,1,1)
  --top K             how many explanations to print (default 5)

Queries use the paper-style syntax: q(x) :- studies(x, \"Math\")";

struct Opts {
    radius: usize,
    strategy: String,
    weights: (f64, f64, f64),
    top: usize,
}

fn parse_opts(args: &[String]) -> Result<(Vec<String>, Opts), CliError> {
    let mut opts = Opts {
        radius: 1,
        strategy: "beam".to_owned(),
        weights: (1.0, 1.0, 1.0),
        top: 5,
    };
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut next = |flag: &str| -> Result<&String, CliError> {
            it.next().ok_or_else(|| err(format!("{flag} needs a value")))
        };
        match a.as_str() {
            "--radius" => {
                opts.radius = next("--radius")?
                    .parse()
                    .map_err(|_| err("--radius must be a number"))?;
            }
            "--strategy" => {
                opts.strategy = next("--strategy")?.clone();
            }
            "--top" => {
                opts.top = next("--top")?
                    .parse()
                    .map_err(|_| err("--top must be a number"))?;
            }
            "--weights" => {
                let raw = next("--weights")?;
                let parts: Vec<f64> = raw
                    .split(',')
                    .map(|p| p.trim().parse())
                    .collect::<Result<_, _>>()
                    .map_err(|_| err("--weights must be A,B,G"))?;
                if parts.len() != 3 {
                    return Err(err("--weights must have three values"));
                }
                opts.weights = (parts[0], parts[1], parts[2]);
            }
            other if other.starts_with("--") => {
                return Err(err(format!("unknown option `{other}`")));
            }
            other => positional.push(other.to_owned()),
        }
    }
    Ok((positional, opts))
}

/// Runs one CLI invocation; returns the text to print on stdout.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let Some(command) = args.first() else {
        return Ok(USAGE.to_owned());
    };
    let (pos, opts) = parse_opts(&args[1..])?;
    match command.as_str() {
        "help" | "--help" | "-h" => Ok(USAGE.to_owned()),
        "init" => {
            let dir = pos.first().ok_or_else(|| err("init needs a directory"))?;
            write_paper_example(Path::new(dir)).map_err(|e| err(format!("init: {e}")))?;
            Ok(format!("wrote the paper's Example 3.6 scenario to {dir}"))
        }
        "explain" => {
            let dir = pos.first().ok_or_else(|| err("explain needs a directory"))?;
            let loaded = load(dir)?;
            explain(&loaded, &opts)
        }
        "score" => {
            let [dir, query] = two(&pos, "score <dir> \"<query>\"")?;
            let mut loaded = load(dir)?;
            let ucq = parse_query(&mut loaded, query)?;
            let scoring = scoring_of(&opts);
            let task = task_of(&loaded, &scoring, &opts)?;
            let e = task
                .score_ucq(&ucq)
                .map_err(|e| err(format!("score: {e}")))?;
            let mut out = String::new();
            let _ = writeln!(out, "query:   {}", e.render(&loaded.system));
            let _ = writeln!(out, "Z-score: {:.4}", e.score);
            let _ = writeln!(
                out,
                "matches: {}/{} of λ⁺, {}/{} of λ⁻",
                e.stats.pos_matched, e.stats.pos_total, e.stats.neg_matched, e.stats.neg_total
            );
            let _ = writeln!(out, "criteria (δ1, δ4, δ5): {:?}", e.criterion_values);
            Ok(out)
        }
        "certain" => {
            let [dir, query] = two(&pos, "certain <dir> \"<query>\"")?;
            let mut loaded = load(dir)?;
            let ucq = parse_query(&mut loaded, query)?;
            let answers = loaded
                .system
                .certain_answers(&ucq)
                .map_err(|e| err(format!("certain: {e}")))?;
            let mut names: Vec<String> = answers
                .iter()
                .map(|t| loaded.system.db().consts().render_tuple(t))
                .collect();
            names.sort();
            Ok(format!("{} certain answer(s)\n{}\n", names.len(), names.join("\n")))
        }
        "consistency" => {
            let dir = pos.first().ok_or_else(|| err("consistency needs a directory"))?;
            let loaded = load(dir)?;
            let violations = loaded.system.check_consistency();
            if violations.is_empty() {
                Ok("consistent".to_owned())
            } else {
                Ok(format!("INCONSISTENT: {} violation(s)\n{violations:#?}", violations.len()))
            }
        }
        "border" => {
            let [dir, consts, radius] = three(&pos, "border <dir> <consts> <radius>")?;
            let loaded = load(dir)?;
            let radius: usize = radius.parse().map_err(|_| err("radius must be a number"))?;
            let tuple: Vec<obx_srcdb::Const> = consts
                .split(',')
                .map(|c| {
                    loaded
                        .system
                        .db()
                        .consts()
                        .get(c.trim())
                        .ok_or_else(|| err(format!("unknown constant `{}`", c.trim())))
                })
                .collect::<Result<_, _>>()?;
            let border = Border::compute(loaded.system.db(), &tuple, radius);
            let db = loaded.system.db();
            let mut out = String::new();
            for j in 0..border.num_layers() {
                let mut atoms: Vec<String> = border
                    .layer(j)
                    .unwrap()
                    .iter()
                    .map(|&id| db.atom(id).render(db.schema(), db.consts()))
                    .collect();
                atoms.sort();
                let _ = writeln!(out, "W_{j}: {{{}}}", atoms.join(", "));
            }
            let _ = writeln!(out, "B_t,{radius}: {} atom(s)", border.len());
            Ok(out)
        }
        "evidence" => {
            let [dir, query, constant] = three(&pos, "evidence <dir> \"<query>\" <const>")?;
            let mut loaded = load(dir)?;
            let ucq = parse_query(&mut loaded, query)?;
            let c = loaded
                .system
                .db()
                .consts()
                .get(constant)
                .ok_or_else(|| err(format!("unknown constant `{constant}`")))?;
            let scoring = scoring_of(&opts);
            let task = task_of(&loaded, &scoring, &opts)?;
            match task
                .evidence(&ucq, &[c])
                .map_err(|e| err(format!("evidence: {e}")))?
            {
                Some(atoms) => Ok(format!(
                    "{constant} J-matches; grounded by:\n  {}",
                    atoms.join("\n  ")
                )),
                None => Ok(format!(
                    "{constant} does not J-match the query within radius {} (or is unlabelled)",
                    opts.radius
                )),
            }
        }
        other => Err(err(format!("unknown command `{other}`\n\n{USAGE}"))),
    }
}

fn load(dir: &str) -> Result<LoadedScenario, CliError> {
    load_dir(Path::new(dir)).map_err(|e| err(format!("loading {dir}: {e}")))
}

fn parse_query(
    loaded: &mut LoadedScenario,
    text: &str,
) -> Result<obx_query::OntoUcq, CliError> {
    loaded
        .system
        .parse_query(text)
        .map_err(|e| err(format!("query: {e}")))
}

fn scoring_of(opts: &Opts) -> Scoring {
    Scoring::paper_weighted(opts.weights.0, opts.weights.1, opts.weights.2)
}

fn task_of<'a>(
    loaded: &'a LoadedScenario,
    scoring: &'a Scoring,
    opts: &Opts,
) -> Result<ExplainTask<'a>, CliError> {
    let limits = SearchLimits {
        top_k: opts.top,
        ..SearchLimits::default()
    };
    ExplainTask::new(&loaded.system, &loaded.labels, opts.radius, scoring, limits)
        .map_err(|e| err(format!("task: {e}")))
}

fn explain(loaded: &LoadedScenario, opts: &Opts) -> Result<String, CliError> {
    let scoring = scoring_of(opts);
    let task = task_of(loaded, &scoring, opts)?;
    let mut out = String::new();
    if opts.strategy == "data-level" {
        let result = DataLevelBeam
            .explain(&task)
            .map_err(|e| err(format!("explain: {e}")))?;
        for e in result {
            let _ = writeln!(
                out,
                "Z = {:.4}  [{}/{}+  {}-]  {}",
                e.score,
                e.stats.pos_matched,
                e.stats.pos_total,
                e.stats.neg_matched,
                e.render(&task)
            );
        }
        return Ok(out);
    }
    let strategy: Box<dyn Strategy> = match opts.strategy.as_str() {
        "beam" => Box::new(BeamSearch),
        "bottom-up" => Box::new(BottomUpGeneralize::default()),
        "exhaustive" => Box::new(ExhaustiveSearch::default()),
        "greedy" => Box::new(GreedyUcq::default()),
        other => return Err(err(format!("unknown strategy `{other}`"))),
    };
    let result = strategy
        .explain(&task)
        .map_err(|e| err(format!("explain: {e}")))?;
    for e in result {
        let _ = writeln!(
            out,
            "Z = {:.4}  [{}/{}+  {}-]  {}",
            e.score,
            e.stats.pos_matched,
            e.stats.pos_total,
            e.stats.neg_matched,
            e.render(&loaded.system)
        );
    }
    Ok(out)
}

fn two<'a>(pos: &'a [String], usage: &str) -> Result<[&'a str; 2], CliError> {
    match pos {
        [a, b] => Ok([a, b]),
        _ => Err(err(format!("usage: obx {usage}"))),
    }
}

fn three<'a>(pos: &'a [String], usage: &str) -> Result<[&'a str; 3], CliError> {
    match pos {
        [a, b, c] => Ok([a, b, c]),
        _ => Err(err(format!("usage: obx {usage}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn with_scenario(tag: &str, f: impl FnOnce(&str)) {
        let dir = std::env::temp_dir().join(format!("obx-cmd-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        write_paper_example(&dir).unwrap();
        f(dir.to_str().unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn no_args_prints_usage() {
        let out = run(&[]).unwrap();
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn unknown_command_errors_with_usage() {
        let e = run(&args(&["frobnicate"])).unwrap_err();
        assert!(e.to_string().contains("unknown command"));
    }

    #[test]
    fn score_reproduces_example_3_8() {
        with_scenario("score", |dir| {
            let out = run(&args(&[
                "score",
                dir,
                r#"q(x) :- likes(x, "Science")"#,
            ]))
            .unwrap();
            assert!(out.contains("0.8333"), "{out}");
            assert!(out.contains("2/4 of λ⁺"), "{out}");
        });
    }

    #[test]
    fn certain_answers_command() {
        with_scenario("certain", |dir| {
            let out = run(&args(&["certain", dir, r#"q(x) :- studies(x, "Math")"#])).unwrap();
            assert!(out.starts_with("3 certain answer(s)"), "{out}");
            assert!(out.contains("<E25>"), "{out}");
        });
    }

    #[test]
    fn border_command_matches_example() {
        with_scenario("border", |dir| {
            let out = run(&args(&["border", dir, "A10", "1"])).unwrap();
            assert!(out.contains("STUD(A10)"), "{out}");
            assert!(out.contains("LOC(TV, Rome)"), "{out}");
        });
    }

    #[test]
    fn explain_finds_a_good_query() {
        with_scenario("explain", |dir| {
            let out = run(&args(&["explain", dir, "--top", "3"])).unwrap();
            assert!(out.contains("0.8333"), "{out}");
            let lines: Vec<&str> = out.lines().collect();
            assert_eq!(lines.len(), 3);
        });
    }

    #[test]
    fn explain_with_weights_finds_the_true_z2_optimum() {
        with_scenario("weights", |dir| {
            // Under the paper's Z2 (α = 3), Example 3.8 crowns q1 (0.716) —
            // but only among its three candidates. The unrestricted search
            // finds `studies(x, y)`: coverage 4/4 and one atom give
            // (3·1 + 1·0 + 1·1)/5 = 0.8 > 0.716. See EXPERIMENTS.md.
            let out = run(&args(&["explain", dir, "--weights", "3,1,1", "--top", "1"])).unwrap();
            assert!(out.contains("Z = 0.8000"), "{out}");
            assert!(out.contains("[4/4+"), "{out}");
        });
    }

    #[test]
    fn evidence_command_grounds_a_match() {
        with_scenario("evidence", |dir| {
            let out = run(&args(&[
                "evidence",
                dir,
                r#"q(x) :- studies(x, y), taughtIn(y, z), locatedIn(z, "Rome")"#,
                "A10",
            ]))
            .unwrap();
            assert!(out.contains("grounded by"), "{out}");
            assert!(out.contains("LOC(TV, Rome)"), "{out}");
            let out2 = run(&args(&[
                "evidence",
                dir,
                r#"q(x) :- studies(x, y), taughtIn(y, z), locatedIn(z, "Rome")"#,
                "E25",
            ]))
            .unwrap();
            assert!(out2.contains("does not J-match"), "{out2}");
        });
    }

    #[test]
    fn consistency_command() {
        with_scenario("consistency", |dir| {
            let out = run(&args(&["consistency", dir])).unwrap();
            assert_eq!(out, "consistent");
        });
    }

    #[test]
    fn data_level_strategy_is_reachable() {
        with_scenario("datalevel", |dir| {
            let out =
                run(&args(&["explain", dir, "--strategy", "data-level", "--top", "2"])).unwrap();
            assert!(out.contains("ENR") || out.contains("STUD") || out.contains("LOC"), "{out}");
        });
    }

    #[test]
    fn bad_options_are_reported() {
        assert!(run(&args(&["explain", "--radius"])).is_err());
        assert!(run(&args(&["explain", "x", "--weights", "1,2"])).is_err());
        assert!(run(&args(&["explain", "x", "--bogus"])).is_err());
        with_scenario("badstrat", |dir| {
            assert!(run(&args(&["explain", dir, "--strategy", "nope"])).is_err());
        });
    }
}

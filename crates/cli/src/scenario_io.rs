//! Scenario directory I/O — re-exported from [`obx_core::scenario`].
//!
//! The loaders historically lived here; they moved into `obx-core` so the
//! CLI and the long-lived `obx serve` front end share one load path (and
//! one set of diagnostics). This module remains as the CLI-facing name.

pub use obx_core::scenario::{
    load_dir, load_dir_checked, write_paper_example, write_scenario_dir, CheckedLoad, LoadError,
    LoadedScenario, SCENARIO_FILES,
};

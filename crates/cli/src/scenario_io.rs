//! Loading and saving scenario directories.

use obx_core::labels::Labels;
use obx_mapping::parse_mapping;
use obx_obdm::{ObdmSpec, ObdmSystem};
use obx_ontology::parse_tbox;
use obx_srcdb::{parse_database, parse_schema};
use std::fmt;
use std::path::Path;

/// A scenario loaded from disk: the system plus λ.
#[derive(Debug)]
pub struct LoadedScenario {
    /// Σ = ⟨J, D⟩.
    pub system: ObdmSystem,
    /// λ.
    pub labels: Labels,
}

/// Errors loading a scenario directory.
#[derive(Debug)]
pub enum LoadError {
    /// A file was missing or unreadable.
    Io {
        /// The file involved.
        file: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A file failed to parse.
    Parse {
        /// The file involved.
        file: String,
        /// The parser's message.
        msg: String,
    },
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io { file, source } => write!(f, "{file}: {source}"),
            LoadError::Parse { file, msg } => write!(f, "{file}: {msg}"),
        }
    }
}

impl std::error::Error for LoadError {}

fn read(dir: &Path, file: &str) -> Result<String, LoadError> {
    std::fs::read_to_string(dir.join(file)).map_err(|source| LoadError::Io {
        file: file.to_owned(),
        source,
    })
}

fn parse_err(file: &str, msg: impl ToString) -> LoadError {
    LoadError::Parse {
        file: file.to_owned(),
        msg: msg.to_string(),
    }
}

/// Loads `schema.obx`, `data.obx`, `ontology.obx`, `mapping.obx`,
/// `labels.obx` from `dir` and assembles the system.
pub fn load_dir(dir: &Path) -> Result<LoadedScenario, LoadError> {
    let schema =
        parse_schema(&read(dir, "schema.obx")?).map_err(|e| parse_err("schema.obx", e))?;
    let mut db = parse_database(schema, &read(dir, "data.obx")?)
        .map_err(|e| parse_err("data.obx", e))?;
    let tbox =
        parse_tbox(&read(dir, "ontology.obx")?).map_err(|e| parse_err("ontology.obx", e))?;
    let mapping = {
        let (schema_ref, consts) = db.schema_and_consts_mut();
        parse_mapping(schema_ref, tbox.vocab(), consts, &read(dir, "mapping.obx")?)
            .map_err(|e| parse_err("mapping.obx", e))?
    };
    let labels = Labels::parse(&mut db, &read(dir, "labels.obx")?)
        .map_err(|e| parse_err("labels.obx", e))?;
    Ok(LoadedScenario {
        system: ObdmSystem::new(ObdmSpec::new(tbox, mapping), db),
        labels,
    })
}

/// Writes the paper's Example 3.6/3.8 scenario into `dir` (`obx init`).
pub fn write_paper_example(dir: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let files: [(&str, &str); 5] = [
        ("schema.obx", "STUD/1 LOC/2 ENR/3\n"),
        (
            "data.obx",
            "STUD(A10).\nSTUD(B80).\nSTUD(C12).\nSTUD(D50).\nSTUD(E25).\n\
             LOC(Sap, Rome).\nLOC(TV, Rome).\nLOC(Pol, Milan).\n\
             ENR(A10, Math, TV).\nENR(B80, Math, Sap).\nENR(C12, Science, Norm).\n\
             ENR(D50, Science, TV).\nENR(E25, Math, Pol).\n",
        ),
        (
            "ontology.obx",
            "role studies likes taughtIn locatedIn\nstudies < likes\n",
        ),
        (
            "mapping.obx",
            "ENR(x, y, z) ~> studies(x, y)\nENR(x, y, z) ~> taughtIn(y, z)\n\
             LOC(x, y) ~> locatedIn(x, y)\n",
        ),
        ("labels.obx", "+ A10\n+ B80\n+ C12\n+ D50\n- E25\n"),
    ];
    for (name, contents) in files {
        std::fs::write(dir.join(name), contents)?;
    }
    Ok(())
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("obx-cli-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn init_then_load_roundtrips_the_paper_example() {
        let dir = tmpdir("roundtrip");
        write_paper_example(&dir).unwrap();
        let loaded = load_dir(&dir).unwrap();
        assert_eq!(loaded.system.db().len(), 13);
        assert_eq!(loaded.labels.pos().len(), 4);
        assert_eq!(loaded.labels.neg().len(), 1);
        assert_eq!(loaded.system.spec().tbox().len(), 1);
        assert_eq!(loaded.system.spec().mapping().len(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let dir = tmpdir("missing");
        std::fs::create_dir_all(&dir).unwrap();
        let err = load_dir(&dir).unwrap_err();
        assert!(matches!(err, LoadError::Io { .. }), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_syntax_is_a_parse_error_naming_the_file() {
        let dir = tmpdir("badsyntax");
        write_paper_example(&dir).unwrap();
        std::fs::write(dir.join("ontology.obx"), "role r\nr << s\n").unwrap();
        let err = load_dir(&dir).unwrap_err();
        assert!(err.to_string().starts_with("ontology.obx:"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

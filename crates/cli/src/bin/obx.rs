//! The `obx` binary: thin shell around [`obx_cli::run`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match obx_cli::run(&args) {
        Ok(out) => println!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

//! The `obx` binary: thin shell around [`obx_cli::run_cancellable`].
//!
//! Exit codes: `0` complete, `1` error, `2` the search stopped early
//! (deadline / eval cap / Ctrl-C) or degraded — partial results were
//! printed, `64` usage error.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use obx_cli::CancelToken;

/// Bridges SIGINT onto the search's cancellation token. Pure-std: the
/// handler may only touch async-signal-safe state, and a relaxed store to
/// a process-global `AtomicBool` qualifies. The first Ctrl-C requests a
/// graceful stop (best-so-far results); a second one hits the default
/// disposition path below and kills the process.
#[cfg(unix)]
mod sigint {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, OnceLock};

    static CANCEL_FLAG: OnceLock<Arc<AtomicBool>> = OnceLock::new();
    static SEEN: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIG_DFL: usize = 0;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_sigint(_signum: i32) {
        if SEEN.swap(true, Ordering::Relaxed) {
            // Second Ctrl-C: restore the default disposition so the next
            // one (or a re-raise) terminates immediately.
            unsafe {
                signal(SIGINT, SIG_DFL);
            }
        }
        if let Some(flag) = CANCEL_FLAG.get() {
            flag.store(true, Ordering::Relaxed);
        }
    }

    pub fn install(token: &super::CancelToken) {
        let _ = CANCEL_FLAG.set(std::sync::Arc::clone(token.flag()));
        unsafe {
            signal(SIGINT, on_sigint as extern "C" fn(i32) as usize);
        }
    }
}

#[cfg(not(unix))]
mod sigint {
    pub fn install(_token: &super::CancelToken) {}
}

fn main() {
    let cancel = CancelToken::new();
    sigint::install(&cancel);
    let args: Vec<String> = std::env::args().skip(1).collect();
    match obx_cli::run_cancellable(&args, &cancel) {
        Ok(outcome) => {
            println!("{}", outcome.stdout);
            std::process::exit(outcome.exit_code);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(e.exit_code());
        }
    }
}

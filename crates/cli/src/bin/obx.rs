//! The `obx` binary: thin shell around [`obx_cli::run_cancellable`].
//!
//! Exit codes: `0` complete, `1` error, `2` the search stopped early
//! (deadline / eval cap / Ctrl-C) or degraded — partial results were
//! printed, `64` usage error.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use obx_cli::CancelToken;

fn main() {
    let cancel = CancelToken::new();
    // The shared handler bridges SIGINT/SIGTERM onto the cancellation
    // token: first Ctrl-C requests a graceful stop (best-so-far results),
    // the second restores the default disposition so a third kills a
    // stuck process. `obx serve` drains through the same code path.
    obx_util::signal::register(std::sync::Arc::clone(cancel.flag()));
    let args: Vec<String> = std::env::args().skip(1).collect();
    match obx_cli::run_cancellable(&args, &cancel) {
        Ok(outcome) => {
            println!("{}", outcome.stdout);
            std::process::exit(outcome.exit_code);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(e.exit_code());
        }
    }
}

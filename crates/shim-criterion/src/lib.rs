//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! The build environment has no crates.io access, so the Criterion
//! benches compile against this minimal harness: it runs each benchmark
//! closure through a short warm-up + timed loop and prints one mean
//! nanoseconds-per-iteration line. No statistics, plots, or baselines —
//! for tracked numbers the workspace uses the `smoke` binary's JSON
//! output instead (see `obx-bench`).

use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimizer from deleting benched code.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation (accepted, not reported by the stand-in).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier made of a function name and a parameter.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            name: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter (upstream derives the name from the group).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    measurement_time: Duration,
    mean_ns: f64,
}

impl Bencher {
    /// Runs `f` in a warm-up + timed loop and records the mean time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        let probe = Instant::now();
        black_box(f());
        let once = probe.elapsed();
        // Enough iterations to fill the measurement window, bounded so
        // pathological benches still finish.
        let iters = if once.is_zero() {
            1000
        } else {
            (self.measurement_time.as_nanos() / once.as_nanos().max(1)).clamp(1, 10_000) as u64
        };
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in sizes its loop by
    /// time, not sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Caps the time spent per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        // Upstream spreads this across many samples; use a fraction so
        // `cargo bench` stays quick offline.
        self.measurement_time = d / 20;
        self
    }

    /// Records a throughput annotation for subsequent benches (ignored).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark and prints its mean time.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            measurement_time: self.measurement_time,
            mean_ns: f64::NAN,
        };
        f(&mut bencher);
        println!(
            "bench: {}/{id} ... {:.0} ns/iter",
            self.name, bencher.mean_ns
        );
        self
    }

    /// Runs one benchmark parameterized by an input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The top-level benchmark harness.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
            measurement_time: Duration::from_millis(250),
        }
    }

    /// Runs a single benchmark outside a group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(id.to_string());
        group.bench_function("single", f);
        group.finish();
        self
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(10)
            .measurement_time(Duration::from_millis(20));
        group.throughput(Throughput::Elements(4));
        group.bench_function("sum", |b| b.iter(|| (0u64..4).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sq", 3), &3u64, |b, &n| b.iter(|| n * n));
        group.finish();
    }

    criterion_group!(shim_group, trivial);

    #[test]
    fn harness_runs() {
        shim_group();
    }
}

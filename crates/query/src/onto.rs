//! CQs and UCQs over the ontology vocabulary.
//!
//! Atoms are unary (concept) or binary (role). A query like the paper's
//!
//! ```text
//! q1(x) :- studies(x, y), taughtIn(y, z), locatedIn(z, "Rome")
//! ```
//!
//! is an [`OntoCq`] with head `[x]` and three role atoms.

use crate::term::{Term, VarId};
use obx_ontology::{ConceptId, OntoVocab, RoleId};
use obx_srcdb::ConstPool;
use obx_util::FxHashMap;
use std::fmt;

/// An atom over the ontology vocabulary.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OntoAtom {
    /// `A(t)` — concept membership.
    Concept(ConceptId, Term),
    /// `P(t1, t2)` — role membership (always over the *atomic* role; an
    /// inverse-role atom `P⁻(x, y)` is normalized to `P(y, x)`).
    Role(RoleId, Term, Term),
}

impl OntoAtom {
    /// The terms of the atom, in order.
    pub fn terms(&self) -> impl Iterator<Item = Term> {
        let (a, b) = match *self {
            OntoAtom::Concept(_, t) => (t, None),
            OntoAtom::Role(_, t1, t2) => (t1, Some(t2)),
        };
        std::iter::once(a).chain(b)
    }

    /// Applies a substitution to every term.
    pub fn substitute(&self, subst: &FxHashMap<VarId, Term>) -> OntoAtom {
        let map = |t: Term| match t {
            Term::Var(v) => subst.get(&v).copied().unwrap_or(t),
            Term::Const(_) => t,
        };
        match *self {
            OntoAtom::Concept(c, t) => OntoAtom::Concept(c, map(t)),
            OntoAtom::Role(r, t1, t2) => OntoAtom::Role(r, map(t1), map(t2)),
        }
    }

    /// Renders like `studies(x0, "Rome")`.
    pub fn render(&self, vocab: &OntoVocab, consts: &ConstPool) -> String {
        let term = |t: Term| match t {
            Term::Var(v) => format!("x{}", v.0),
            Term::Const(c) => format!("\"{}\"", consts.resolve(c)),
        };
        match *self {
            OntoAtom::Concept(c, t) => format!("{}({})", vocab.concept_name(c), term(t)),
            OntoAtom::Role(r, t1, t2) => {
                format!("{}({}, {})", vocab.role_name(r), term(t1), term(t2))
            }
        }
    }
}

/// Errors constructing a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// A head variable does not occur in the body (unsafe query).
    UnsafeHead(VarId),
    /// The body is empty.
    EmptyBody,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnsafeHead(v) => write!(f, "head variable x{} not bound by body", v.0),
            QueryError::EmptyBody => write!(f, "query body is empty"),
        }
    }
}

impl std::error::Error for QueryError {}

/// A conjunctive query over the ontology vocabulary.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct OntoCq {
    /// Answer variables (possibly with repeats).
    head: Vec<VarId>,
    /// Body atoms.
    body: Vec<OntoAtom>,
}

impl OntoCq {
    /// Builds a CQ, enforcing safety (every head variable occurs in the
    /// body) and a non-empty body.
    pub fn new(head: Vec<VarId>, body: Vec<OntoAtom>) -> Result<Self, QueryError> {
        if body.is_empty() {
            return Err(QueryError::EmptyBody);
        }
        for &h in &head {
            let occurs = body.iter().any(|a| a.terms().any(|t| t == Term::Var(h)));
            if !occurs {
                return Err(QueryError::UnsafeHead(h));
            }
        }
        Ok(Self { head, body })
    }

    /// The answer variables.
    #[inline]
    pub fn head(&self) -> &[VarId] {
        &self.head
    }

    /// The body atoms.
    #[inline]
    pub fn body(&self) -> &[OntoAtom] {
        &self.body
    }

    /// Arity of the query (length of the head).
    pub fn arity(&self) -> usize {
        self.head.len()
    }

    /// Number of body atoms — the paper's criterion δ5 measures this.
    pub fn num_atoms(&self) -> usize {
        self.body.len()
    }

    /// Number of occurrences of each variable in the body.
    pub fn occurrences(&self) -> FxHashMap<VarId, usize> {
        let mut occ: FxHashMap<VarId, usize> = FxHashMap::default();
        for atom in &self.body {
            for t in atom.terms() {
                if let Term::Var(v) = t {
                    *occ.entry(v).or_insert(0) += 1;
                }
            }
        }
        occ
    }

    /// Whether `v` is *bound* in the PerfectRef sense: it appears in the
    /// head, or at least twice in the body. Unbound variables act as
    /// existential "don't cares".
    pub fn is_bound(&self, v: VarId, occ: &FxHashMap<VarId, usize>) -> bool {
        self.head.contains(&v) || occ.get(&v).copied().unwrap_or(0) >= 2
    }

    /// The largest variable index used (`None` if the query has only
    /// constants — impossible for safe queries with non-empty heads).
    pub fn max_var(&self) -> Option<u32> {
        let mut max = None;
        for &h in &self.head {
            max = Some(max.map_or(h.0, |m: u32| m.max(h.0)));
        }
        for atom in &self.body {
            for t in atom.terms() {
                if let Term::Var(v) = t {
                    max = Some(max.map_or(v.0, |m: u32| m.max(v.0)));
                }
            }
        }
        max
    }

    /// Applies a substitution to the body (head variables must not be
    /// remapped to constants by callers that want to keep the query safe).
    pub fn substitute_body(&self, subst: &FxHashMap<VarId, Term>) -> OntoCq {
        OntoCq {
            head: self.head.clone(),
            body: self.body.iter().map(|a| a.substitute(subst)).collect(),
        }
    }

    /// Replaces the body wholesale (used by rewriting steps).
    pub fn with_body(&self, body: Vec<OntoAtom>) -> OntoCq {
        OntoCq {
            head: self.head.clone(),
            body,
        }
    }

    /// Canonical variant: variables renamed to `0, 1, 2, …` in order of
    /// first occurrence (head first, then body left-to-right), and body
    /// atoms deduplicated and sorted; the rename/sort pass is iterated to a
    /// fixed point. The result is a *sound* dedup key: equal canonical
    /// forms imply equivalent queries. It is not a complete graph
    /// canonicalization (that would require isomorphism testing), which is
    /// fine for its uses — PerfectRef termination only needs the canonical
    /// space to be finite, and search dedup only needs soundness.
    pub fn canonical(&self) -> OntoCq {
        let mut cur = self.canon_pass();
        for _ in 0..8 {
            let next = cur.canon_pass();
            if next == cur {
                break;
            }
            cur = next;
        }
        cur
    }

    /// One rename + sort + dedup pass of [`OntoCq::canonical`].
    fn canon_pass(&self) -> OntoCq {
        let mut rename: FxHashMap<VarId, VarId> = FxHashMap::default();
        let mut next = 0u32;
        let mut get = |v: VarId, rename: &mut FxHashMap<VarId, VarId>| -> VarId {
            *rename.entry(v).or_insert_with(|| {
                let nv = VarId(next);
                next += 1;
                nv
            })
        };
        let head: Vec<VarId> = self.head.iter().map(|&v| get(v, &mut rename)).collect();
        let mut body: Vec<OntoAtom> = self
            .body
            .iter()
            .map(|a| {
                let mut map = |t: Term, rename: &mut FxHashMap<VarId, VarId>| match t {
                    Term::Var(v) => Term::Var(get(v, rename)),
                    c => c,
                };
                match *a {
                    OntoAtom::Concept(c, t) => OntoAtom::Concept(c, map(t, &mut rename)),
                    OntoAtom::Role(r, t1, t2) => {
                        OntoAtom::Role(r, map(t1, &mut rename), map(t2, &mut rename))
                    }
                }
            })
            .collect();
        // Note: dedup+sort *after* renaming keeps the renaming dependent
        // only on the original syntactic order, which is deterministic.
        body.sort_by_key(atom_sort_key);
        body.dedup();
        OntoCq { head, body }
    }

    /// Renders like `q(x0) :- studies(x0, x1), Course(x1)`.
    pub fn render(&self, vocab: &OntoVocab, consts: &ConstPool) -> String {
        let mut s = String::from("q(");
        for (i, v) in self.head.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("x{}", v.0));
        }
        s.push_str(") :- ");
        for (i, a) in self.body.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&a.render(vocab, consts));
        }
        s
    }
}

fn term_sort_key(t: Term) -> (u8, u32) {
    match t {
        Term::Var(v) => (0, v.0),
        Term::Const(c) => (1, c.0 .0),
    }
}

fn atom_sort_key(a: &OntoAtom) -> (u8, u32, (u8, u32), (u8, u32)) {
    match *a {
        OntoAtom::Concept(c, t) => (0, c.0 .0, term_sort_key(t), (0, 0)),
        OntoAtom::Role(r, t1, t2) => (1, r.0 .0, term_sort_key(t1), term_sort_key(t2)),
    }
}

/// A union of conjunctive queries over the ontology vocabulary.
///
/// Disjuncts are kept canonicalized and deduplicated.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct OntoUcq {
    disjuncts: Vec<OntoCq>,
}

impl OntoUcq {
    /// An empty union (unsatisfiable query).
    pub fn empty() -> Self {
        Self::default()
    }

    /// A single-disjunct union.
    pub fn from_cq(cq: OntoCq) -> Self {
        let mut u = Self::default();
        u.push(cq);
        u
    }

    /// Adds a disjunct (canonicalized; duplicates ignored). Returns whether
    /// the disjunct was new.
    pub fn push(&mut self, cq: OntoCq) -> bool {
        let canon = cq.canonical();
        if self.disjuncts.contains(&canon) {
            false
        } else {
            self.disjuncts.push(canon);
            true
        }
    }

    /// The disjuncts.
    pub fn disjuncts(&self) -> &[OntoCq] {
        &self.disjuncts
    }

    /// Number of disjuncts — the paper's criterion δ6 measures this.
    pub fn len(&self) -> usize {
        self.disjuncts.len()
    }

    /// Whether the union is empty.
    pub fn is_empty(&self) -> bool {
        self.disjuncts.is_empty()
    }

    /// Renders one disjunct per line.
    pub fn render(&self, vocab: &OntoVocab, consts: &ConstPool) -> String {
        let mut s = String::new();
        for d in &self.disjuncts {
            s.push_str(&d.render(vocab, consts));
            s.push('\n');
        }
        s
    }
}

impl FromIterator<OntoCq> for OntoUcq {
    fn from_iter<T: IntoIterator<Item = OntoCq>>(iter: T) -> Self {
        let mut u = Self::default();
        for cq in iter {
            u.push(cq);
        }
        u
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::var;
    use obx_ontology::OntoVocab;

    fn vocab() -> (OntoVocab, ConceptId, RoleId) {
        let mut v = OntoVocab::new();
        let student = v.concept("Student");
        let studies = v.role("studies");
        (v, student, studies)
    }

    #[test]
    fn safety_is_enforced() {
        let (_, student, _) = vocab();
        let ok = OntoCq::new(vec![VarId(0)], vec![OntoAtom::Concept(student, var(0))]);
        assert!(ok.is_ok());
        let unsafe_q = OntoCq::new(vec![VarId(1)], vec![OntoAtom::Concept(student, var(0))]);
        assert_eq!(unsafe_q.unwrap_err(), QueryError::UnsafeHead(VarId(1)));
        let empty = OntoCq::new(vec![], vec![]);
        assert_eq!(empty.unwrap_err(), QueryError::EmptyBody);
    }

    #[test]
    fn boundness_matches_perfectref_definition() {
        let (_, _, studies) = vocab();
        // q(x0) :- studies(x0, x1): x1 occurs once and not in head -> unbound.
        let q = OntoCq::new(
            vec![VarId(0)],
            vec![OntoAtom::Role(studies, var(0), var(1))],
        )
        .unwrap();
        let occ = q.occurrences();
        assert!(q.is_bound(VarId(0), &occ));
        assert!(!q.is_bound(VarId(1), &occ));
        // Adding a second occurrence binds x1.
        let q2 = OntoCq::new(
            vec![VarId(0)],
            vec![
                OntoAtom::Role(studies, var(0), var(1)),
                OntoAtom::Role(studies, var(1), var(0)),
            ],
        )
        .unwrap();
        let occ2 = q2.occurrences();
        assert!(q2.is_bound(VarId(1), &occ2));
    }

    #[test]
    fn canonical_is_invariant_under_renaming_and_order() {
        let (_, student, studies) = vocab();
        let q1 = OntoCq::new(
            vec![VarId(5)],
            vec![
                OntoAtom::Role(studies, var(5), var(9)),
                OntoAtom::Concept(student, var(5)),
            ],
        )
        .unwrap();
        let q2 = OntoCq::new(
            vec![VarId(0)],
            vec![
                OntoAtom::Concept(student, var(0)),
                OntoAtom::Role(studies, var(0), var(2)),
            ],
        )
        .unwrap();
        assert_eq!(q1.canonical(), q2.canonical());
        // Canonical dedups repeated atoms.
        let q3 = OntoCq::new(
            vec![VarId(0)],
            vec![
                OntoAtom::Concept(student, var(0)),
                OntoAtom::Concept(student, var(0)),
            ],
        )
        .unwrap();
        assert_eq!(q3.canonical().num_atoms(), 1);
    }

    #[test]
    fn canonical_distinguishes_different_queries() {
        let (_, student, studies) = vocab();
        let q1 = OntoCq::new(vec![VarId(0)], vec![OntoAtom::Concept(student, var(0))]).unwrap();
        let q2 = OntoCq::new(
            vec![VarId(0)],
            vec![OntoAtom::Role(studies, var(0), var(1))],
        )
        .unwrap();
        assert_ne!(q1.canonical(), q2.canonical());
        // Join structure matters: studies(x,y),studies(y,z) != studies(x,y),studies(z,w)
        let chain = OntoCq::new(
            vec![VarId(0)],
            vec![
                OntoAtom::Role(studies, var(0), var(1)),
                OntoAtom::Role(studies, var(1), var(2)),
            ],
        )
        .unwrap();
        let fork = OntoCq::new(
            vec![VarId(0)],
            vec![
                OntoAtom::Role(studies, var(0), var(1)),
                OntoAtom::Role(studies, var(2), var(3)),
            ],
        )
        .unwrap();
        assert_ne!(chain.canonical(), fork.canonical());
    }

    #[test]
    fn ucq_dedups_up_to_renaming() {
        let (_, student, _) = vocab();
        let mut u = OntoUcq::empty();
        let q1 = OntoCq::new(vec![VarId(0)], vec![OntoAtom::Concept(student, var(0))]).unwrap();
        let q2 = OntoCq::new(vec![VarId(7)], vec![OntoAtom::Concept(student, var(7))]).unwrap();
        assert!(u.push(q1));
        assert!(!u.push(q2));
        assert_eq!(u.len(), 1);
    }

    #[test]
    fn substitution_and_max_var() {
        let (_, _, studies) = vocab();
        let q = OntoCq::new(
            vec![VarId(0)],
            vec![OntoAtom::Role(studies, var(0), var(4))],
        )
        .unwrap();
        assert_eq!(q.max_var(), Some(4));
        let mut subst = FxHashMap::default();
        subst.insert(VarId(4), Term::Var(VarId(0)));
        let q2 = q.substitute_body(&subst);
        assert_eq!(q2.body()[0], OntoAtom::Role(studies, var(0), var(0)));
    }

    #[test]
    fn render_is_stable() {
        let (v, student, studies) = vocab();
        let mut consts = ConstPool::new();
        let rome = consts.intern("Rome");
        let q = OntoCq::new(
            vec![VarId(0)],
            vec![
                OntoAtom::Concept(student, var(0)),
                OntoAtom::Role(studies, var(0), Term::Const(rome)),
            ],
        )
        .unwrap();
        assert_eq!(
            q.render(&v, &consts),
            "q(x0) :- Student(x0), studies(x0, \"Rome\")"
        );
    }
}

//! The constraint-guided evaluator: variable-at-a-time join ordered by
//! O(1) cardinality estimates.
//!
//! Every body atom of a [`SrcCq`] acts as a *constraint* over the
//! variables it mentions, in the worst-case-optimal join family
//! (Atreides-style). A constraint supports four operations, realized as
//! methods of the [`Guided`] engine:
//!
//! * **estimate** — an upper bound on how many values the constraint can
//!   propose for a variable under the current partial binding. Computed
//!   from the prefix counts the database already maintains
//!   ([`Database::count_of`]/[`count_with`], capped by the view mask via
//!   [`View::estimate_with`]) — every estimate is O(arity) hash lookups,
//!   no data is touched.
//! * **propose** — collect the candidate values for a variable by
//!   scanning the *smaller* of the most selective index slice (filtering
//!   by mask visibility) and the mask itself (filtering by relation and
//!   consistency). On a hub constant of a skewed database the index slice
//!   can be orders of magnitude larger than a border mask; iterating the
//!   mask side makes the proposal cost O(border) instead of O(hub
//!   degree). Each scan also records the proposer's **support** — the
//!   facts found consistent — so when the same constraint proposes again
//!   deeper in the search (its next variable), the support is replayed
//!   instead of re-reading the index: a constraint's data is inspected
//!   once per branch, not once per variable.
//! * **confirm** — after a variable is bound, every *other* constraint
//!   covering it must still have at least one consistent visible fact;
//!   otherwise the binding is rejected before any deeper work. A
//!   constraint whose arguments are fully resolved confirms in O(1)
//!   through the database's exact-atom hash index instead of scanning;
//!   still-open constraints are screened by a zero-estimate check that
//!   touches no data at all.
//! * **influence** — binding a variable invalidates the cached estimates
//!   of exactly the unbound variables sharing a constraint with it;
//!   untouched variables keep their cached `(estimate, proposing atom)`
//!   pair. Invalidations are recorded on an undo log and rolled back on
//!   backtrack.
//!
//! The engine repeatedly binds the unbound variable with the smallest
//! estimate (ties broken by slot index, so the search is deterministic),
//! with one short-circuit mirroring the legacy evaluator's last-atom rule:
//! when all remaining unbound variables live in a single atom, that atom's
//! candidates are enumerated directly instead of variable-at-a-time —
//! enumeration-heavy scans (the chase's single-atom queries) then cost one
//! pass, not one pass per variable.
//!
//! [`Database::count_of`]: obx_srcdb::Database::count_of
//! [`count_with`]: obx_srcdb::Database::count_with
//! [`View::estimate_with`]: obx_srcdb::View::estimate_with

use crate::src::{SrcAtom, SrcCq};
use crate::term::{Term, VarId};
use obx_srcdb::{Atom, AtomId, AtomRef, Const, View};
use obx_util::FxHashSet;
use std::sync::atomic::Ordering;

/// Sentinel atom index: "no proposing constraint cached".
const NO_ATOM: u32 = u32::MAX;

/// Goal-directed searches (satisfies/witness stop at the first solution)
/// only pre-pay an eager proposal scan — the full access set collected,
/// sorted, and support-recorded before the first value is tried — when
/// that scan is at most this many candidates. Above it, values stream
/// lazily off the scan so a shallow witness stops mid-scan: on a hub
/// constant of a skewed database the eager scan would cost O(hub degree)
/// up front where the witness is typically a handful of candidates in.
/// The proposal estimate is exactly the eager cost, so the choice is O(1).
const GOAL_EAGER_MAX: usize = 16;

/// Where to read a constraint's candidate facts from: the most selective
/// index slice (filter by mask visibility) or the mask itself (filter by
/// relation + consistency), whichever is smaller.
enum Access<'v> {
    Slice(&'v [AtomId]),
    Mask(&'v FxHashSet<AtomId>),
}

/// One guided evaluation: the constraint set of a single CQ over a view,
/// plus the per-variable estimate cache and its undo log.
struct Guided<'v, 'q> {
    view: View<'v>,
    body: &'q [SrcAtom],
    /// Current partial binding, dense over variable slots.
    binding: Vec<Option<Const>>,
    /// Per variable slot: indices of the body atoms covering it (the
    /// constraint set consulted by estimate/propose/confirm/influence).
    cover: Vec<Vec<u32>>,
    /// Whether the slot occurs in the body at all.
    present: Vec<bool>,
    /// Cached `(estimate, proposing atom)` per slot.
    est: Vec<(usize, u32)>,
    /// Whether the cached estimate must be recomputed before use.
    dirty: Vec<bool>,
    /// Undo log of estimate-cache entries invalidated by a binding:
    /// `(slot, saved est, saved dirty)`.
    undo: Vec<(u32, (usize, u32), bool)>,
    /// Per-recursion-level `(value, fact)` proposal buffers, reused across
    /// siblings.
    pairs: Vec<Vec<(Const, AtomId)>>,
    /// Per-recursion-level sets of already-tried values, used by the
    /// streaming proposal path.
    seen: Vec<FxHashSet<Const>>,
    /// Active support per atom: `(start, end)` range in [`support_buf`]
    /// holding the facts found consistent when the atom was last scanned
    /// on the current branch. Deeper proposals replay this range instead
    /// of re-reading the index — those candidates were already inspected
    /// (and counted) by the scan that built the range.
    ///
    /// [`support_buf`]: Self::support_buf
    support: Vec<Option<(usize, usize)>>,
    /// Stack arena backing [`support`](Self::support); truncated on
    /// backtrack.
    support_buf: Vec<AtomId>,
    /// Scratch for replaying a support range (detached copy so the replay
    /// can run while `support_buf` grows).
    replay: Vec<AtomId>,
    /// Slots bound by the single-atom fast path (scratch; it never
    /// recurses, so one buffer suffices).
    fast_bound: Vec<u32>,
    /// Whether the caller stops at the first solution (satisfies/witness).
    /// Expensive proposals then stream instead of eagerly collecting — see
    /// [`GOAL_EAGER_MAX`].
    goal: bool,
    /// Candidate atoms inspected; flushed to the process-wide guided
    /// total on drop.
    nodes: u64,
}

impl Drop for Guided<'_, '_> {
    fn drop(&mut self) {
        super::GUIDED_NODES.fetch_add(self.nodes, Ordering::Relaxed);
    }
}

impl<'v, 'q> Guided<'v, 'q> {
    fn new(view: View<'v>, cq: &'q SrcCq) -> Self {
        let nv = cq.max_var().map_or(0, |m| m as usize + 1);
        let body = cq.body();
        let mut cover: Vec<Vec<u32>> = vec![Vec::new(); nv];
        let mut present = vec![false; nv];
        for (ai, atom) in body.iter().enumerate() {
            for &t in atom.args.iter() {
                if let Term::Var(v) = t {
                    let s = v.index();
                    present[s] = true;
                    // Positions of one atom are pushed consecutively, so a
                    // repeated variable within an atom dedups via `last`.
                    if cover[s].last() != Some(&(ai as u32)) {
                        cover[s].push(ai as u32);
                    }
                }
            }
        }
        Self {
            view,
            body,
            binding: vec![None; nv],
            cover,
            present,
            est: vec![(usize::MAX, NO_ATOM); nv],
            dirty: vec![true; nv],
            undo: Vec::new(),
            pairs: vec![Vec::new(); nv],
            seen: vec![FxHashSet::default(); nv],
            support: vec![None; body.len()],
            support_buf: Vec::new(),
            replay: Vec::new(),
            fast_bound: Vec::new(),
            goal: false,
            nodes: 0,
        }
    }

    #[inline]
    fn resolve(&self, t: Term) -> Option<Const> {
        match t {
            Term::Const(c) => Some(c),
            Term::Var(v) => self.binding[v.index()],
        }
    }

    /// Pre-binds head variables to an answer tuple. `false` on a repeated
    /// head variable demanding two different constants.
    fn bind_tuple(&mut self, head: &[VarId], tuple: &[Const]) -> bool {
        for (&v, &c) in head.iter().zip(tuple.iter()) {
            match self.binding[v.index()] {
                Some(prev) if prev != c => return false,
                _ => self.binding[v.index()] = Some(c),
            }
        }
        true
    }

    fn unbound_count(&self) -> usize {
        (0..self.binding.len())
            .filter(|&s| self.present[s] && self.binding[s].is_none())
            .count()
    }

    /// Whether `fact` is compatible with `atom` under the current binding
    /// (constants and bound variables must match; repeated *unbound*
    /// variables must carry equal constants across their positions).
    fn consistent(&self, atom: &SrcAtom, fact: AtomRef<'_>) -> bool {
        if atom.args.len() != fact.args.len() {
            return false;
        }
        for (pos, &t) in atom.args.iter().enumerate() {
            let c = fact.args[pos];
            match t {
                Term::Const(qc) => {
                    if qc != c {
                        return false;
                    }
                }
                Term::Var(v) => match self.binding[v.index()] {
                    Some(b) => {
                        if b != c {
                            return false;
                        }
                    }
                    None => {
                        for (p2, &t2) in atom.args[..pos].iter().enumerate() {
                            if t2 == t && fact.args[p2] != c {
                                return false;
                            }
                        }
                    }
                },
            }
        }
        true
    }

    /// Estimate for one constraint: the smallest prefix count over its
    /// resolved positions (mask-capped), defaulting to the relation size.
    /// An active support range is an even tighter bound — only those facts
    /// can still match on this branch.
    fn estimate_atom(&self, a: u32) -> usize {
        let atom = &self.body[a as usize];
        let mut best = self.view.size_hint_of(atom.rel);
        if let Some((s, e)) = self.support[a as usize] {
            best = best.min(e - s);
        }
        for (pos, &t) in atom.args.iter().enumerate() {
            if let Some(c) = self.resolve(t) {
                best = best.min(self.view.estimate_with(atom.rel, pos, c));
            }
        }
        best
    }

    /// Whether some constraint provably has no consistent visible fact
    /// under the current binding — a pure estimate computation (hash
    /// lookups only, no candidates inspected), mirroring the legacy
    /// evaluator's zero-selectivity fast-fail.
    fn some_constraint_dead(&self) -> bool {
        (0..self.body.len() as u32).any(|a| self.estimate_atom(a) == 0)
    }

    /// Estimate for one variable: the minimum over its covering
    /// constraints, remembering which constraint attains it (the proposer).
    fn estimate_var(&self, s: usize) -> (usize, u32) {
        let mut best = usize::MAX;
        let mut arg = NO_ATOM;
        for &a in &self.cover[s] {
            let e = self.estimate_atom(a);
            if e < best {
                best = e;
                arg = a;
            }
        }
        (best, arg)
    }

    /// Picks the cheaper side to read constraint `a`'s candidates from.
    fn access(&self, a: u32) -> Access<'v> {
        let atom = &self.body[a as usize];
        let db = self.view.db();
        let mut best = db.count_of(atom.rel);
        let mut best_pos: Option<(usize, Const)> = None;
        for (pos, &t) in atom.args.iter().enumerate() {
            if let Some(c) = self.resolve(t) {
                let n = db.count_with(atom.rel, pos, c);
                if n < best {
                    best = n;
                    best_pos = Some((pos, c));
                }
            }
        }
        if let Some(m) = self.view.mask() {
            if m.len() < best {
                return Access::Mask(m);
            }
        }
        Access::Slice(match best_pos {
            Some((pos, c)) => db.atoms_with(atom.rel, pos, c),
            None => db.atoms_of(atom.rel),
        })
    }

    /// Confirms a constraint whose arguments are all resolved: one O(1)
    /// probe of the database's exact-atom hash index plus a mask lookup,
    /// instead of an index-slice scan. A hit inspects exactly one
    /// candidate atom (counted); a miss inspects none — no fact with this
    /// exact tuple exists, the scan-equivalent of an empty index slice.
    ///
    /// Returns `None` if the constraint still has an unbound variable.
    fn confirm_ground(&mut self, a: u32) -> Option<bool> {
        let atom = &self.body[a as usize];
        let mut args = Vec::with_capacity(atom.args.len());
        for &t in atom.args.iter() {
            args.push(self.resolve(t)?);
        }
        let probe = Atom::new(atom.rel, args);
        Some(match self.view.db().id_of(&probe) {
            Some(id) => {
                self.nodes += 1;
                self.view.visible(id)
            }
            None => false,
        })
    }

    /// Entry screen: fails fast (zero nodes) when some constraint is
    /// provably empty, then confirms every constraint whose arguments are
    /// already fully resolved (constant-only guard atoms, and atoms
    /// grounded entirely by pre-bound head variables). Variable-driven
    /// search never visits those, so they are checked once up front.
    fn ground_ok(&mut self) -> bool {
        if self.some_constraint_dead() {
            return false;
        }
        for a in 0..self.body.len() as u32 {
            if self.confirm_ground(a) == Some(false) {
                return false;
            }
        }
        true
    }

    /// Marks the estimates of unbound variables sharing a constraint with
    /// `v` dirty (the *influence* set of binding `v`), saving their cached
    /// state on the undo log.
    fn invalidate_influenced(&mut self, v: usize) {
        let body = self.body;
        let cov = std::mem::take(&mut self.cover[v]);
        for &a in &cov {
            for &t in body[a as usize].args.iter() {
                if let Term::Var(u) = t {
                    let u = u.index();
                    if u != v && self.binding[u].is_none() && !self.dirty[u] {
                        self.undo.push((u as u32, self.est[u], false));
                        self.dirty[u] = true;
                    }
                }
            }
        }
        self.cover[v] = cov;
    }

    /// Rolls the estimate cache back to an undo mark.
    fn restore(&mut self, mark: usize) {
        while self.undo.len() > mark {
            if let Some((u, est, dirty)) = self.undo.pop() {
                self.est[u as usize] = est;
                self.dirty[u as usize] = dirty;
            }
        }
    }

    /// When exactly one atom still has unbound variables, returns it:
    /// every other constraint is ground (and was confirmed when its last
    /// variable bound), so enumerating this atom's candidates directly
    /// finishes the search in one pass.
    fn sole_open_atom(&self) -> Option<u32> {
        let mut open = None;
        for (ai, atom) in self.body.iter().enumerate() {
            let has_unbound = atom
                .args
                .iter()
                .any(|&t| matches!(t, Term::Var(v) if self.binding[v.index()].is_none()));
            if has_unbound {
                if open.is_some() {
                    return None;
                }
                open = Some(ai as u32);
            }
        }
        open
    }

    /// Terminal fast path: enumerate the last open atom's consistent
    /// facts, emitting one solution per fact. Replays the atom's active
    /// support when one exists (already inspected and counted), otherwise
    /// scans its access set.
    fn enumerate_atom(
        &mut self,
        a: u32,
        on_solution: &mut dyn FnMut(&[Option<Const>]) -> bool,
    ) -> bool {
        let body = self.body;
        let atom = &body[a as usize];
        let view = self.view;
        let mut keep = true;
        macro_rules! visit {
            ($id:expr) => {{
                let fact = view.atom($id);
                if fact.rel == atom.rel && self.consistent(atom, fact) {
                    self.fast_bound.clear();
                    for (pos, &t) in atom.args.iter().enumerate() {
                        if let Term::Var(v) = t {
                            let s = v.index();
                            if self.binding[s].is_none() {
                                self.binding[s] = Some(fact.args[pos]);
                                self.fast_bound.push(s as u32);
                            }
                        }
                    }
                    keep = on_solution(&self.binding);
                    while let Some(s) = self.fast_bound.pop() {
                        self.binding[s as usize] = None;
                    }
                    if !keep {
                        break;
                    }
                }
            }};
        }
        if let Some((s, e)) = self.support[a as usize] {
            let mut ids = std::mem::take(&mut self.replay);
            ids.clear();
            ids.extend_from_slice(&self.support_buf[s..e]);
            for &id in &ids {
                visit!(id);
            }
            self.replay = ids;
            return keep;
        }
        match self.access(a) {
            Access::Slice(ids) => {
                for &id in ids {
                    self.nodes += 1;
                    if view.visible(id) {
                        visit!(id);
                    }
                }
            }
            Access::Mask(m) => {
                for &id in m {
                    self.nodes += 1;
                    visit!(id);
                }
            }
        }
        keep
    }

    /// Depth-first variable-at-a-time search. `on_solution` returns `true`
    /// to keep searching; `step` returns `false` iff stopped early.
    fn step(
        &mut self,
        unbound: usize,
        on_solution: &mut dyn FnMut(&[Option<Const>]) -> bool,
    ) -> bool {
        if unbound == 0 {
            return on_solution(&self.binding);
        }
        if let Some(a) = self.sole_open_atom() {
            return self.enumerate_atom(a, on_solution);
        }
        // Refresh dirty estimates and pick the smallest-estimate variable.
        // Ties go to the variable covered by the most constraints — a join
        // variable prunes sibling constraints when bound, a dangling one
        // only branches — then to the lowest slot (deterministic).
        let nv = self.binding.len();
        let mut pick = usize::MAX;
        let mut best = usize::MAX;
        let mut best_cover = 0usize;
        for s in 0..nv {
            if !self.present[s] || self.binding[s].is_some() {
                continue;
            }
            if self.dirty[s] {
                self.est[s] = self.estimate_var(s);
                self.dirty[s] = false;
            }
            let e = self.est[s].0;
            let c = self.cover[s].len();
            if e < best || (e == best && c > best_cover) {
                best = e;
                best_cover = c;
                pick = s;
            }
        }
        debug_assert!(pick != usize::MAX, "unbound > 0 implies an unbound var");
        let v = pick;
        let proposer = self.est[v].1;
        let atom = &self.body[proposer as usize];
        let vpos = atom
            .args
            .iter()
            .position(|&t| t == Term::Var(VarId(v as u32)))
            .expect("proposing constraint covers the variable");
        let proposer_open_elsewhere = atom.args.iter().any(
            |&t| matches!(t, Term::Var(u) if u.index() != v && self.binding[u.index()].is_none()),
        );
        if !proposer_open_elsewhere {
            // `v` is the proposer's last unbound variable: the proposer
            // never proposes again below here, so no support is needed —
            // stream values straight off the scan and let goal-directed
            // searches stop mid-scan.
            return self.step_streaming(v, proposer, vpos, unbound, on_solution);
        }
        if self.goal && self.est[v].0 > GOAL_EAGER_MAX {
            // Goal-directed and the eager scan would be expensive: stream
            // and accept that deeper re-proposals of this constraint must
            // re-scan (no support recorded). A shallow witness — the
            // common case for membership checks — then stops mid-scan
            // instead of paying the full access set up front.
            return self.step_streaming(v, proposer, vpos, unbound, on_solution);
        }
        // Propose: collect the proposer's consistent (value, fact) pairs,
        // sorted so the branch order is deterministic regardless of index
        // or mask iteration order.
        let mut pairs = std::mem::take(&mut self.pairs[unbound - 1]);
        pairs.clear();
        self.collect(proposer, vpos, &mut pairs);
        pairs.sort_unstable();
        let mut keep = true;
        let mut i = 0;
        while i < pairs.len() {
            let val = pairs[i].0;
            let mut j = i;
            // The run of facts carrying `val` becomes the proposer's
            // support while this value is bound: only those facts can
            // still match it deeper in the search.
            let start = self.support_buf.len();
            while j < pairs.len() && pairs[j].0 == val {
                self.support_buf.push(pairs[j].1);
                j += 1;
            }
            let end = self.support_buf.len();
            let saved = self.support[proposer as usize];
            self.support[proposer as usize] = Some((start, end));
            keep = self.try_value(v, proposer, val, unbound, on_solution);
            self.support[proposer as usize] = saved;
            self.support_buf.truncate(start);
            i = j;
            if !keep {
                break;
            }
        }
        self.pairs[unbound - 1] = pairs;
        keep
    }

    /// Streaming proposal path: try each distinct value for `v` as the
    /// scan produces it (dedup through the per-level seen-set), recording
    /// no support. Used when binding `v` grounds the proposer (no support
    /// will ever be consulted), and for expensive goal-directed proposals
    /// (paying a possible deeper re-scan to keep the early exit).
    fn step_streaming(
        &mut self,
        v: usize,
        proposer: u32,
        vpos: usize,
        unbound: usize,
        on_solution: &mut dyn FnMut(&[Option<Const>]) -> bool,
    ) -> bool {
        let body = self.body;
        let atom = &body[proposer as usize];
        let view = self.view;
        let mut seen = std::mem::take(&mut self.seen[unbound - 1]);
        seen.clear();
        let mut keep = true;
        if let Some((s, e)) = self.support[proposer as usize] {
            // Replay the support recorded by a shallower scan of this
            // constraint — already inspected and counted there.
            let mut ids = std::mem::take(&mut self.replay);
            ids.clear();
            ids.extend_from_slice(&self.support_buf[s..e]);
            for &id in &ids {
                let fact = view.atom(id);
                if self.consistent(atom, fact) && seen.insert(fact.args[vpos]) {
                    keep = self.try_value(v, proposer, fact.args[vpos], unbound, on_solution);
                    if !keep {
                        break;
                    }
                }
            }
            self.replay = ids;
        } else {
            match self.access(proposer) {
                Access::Slice(ids) => {
                    for &id in ids {
                        self.nodes += 1;
                        if !view.visible(id) {
                            continue;
                        }
                        let fact = view.atom(id);
                        if self.consistent(atom, fact) && seen.insert(fact.args[vpos]) {
                            keep =
                                self.try_value(v, proposer, fact.args[vpos], unbound, on_solution);
                            if !keep {
                                break;
                            }
                        }
                    }
                }
                Access::Mask(m) => {
                    for &id in m {
                        self.nodes += 1;
                        let fact = view.atom(id);
                        if fact.rel == atom.rel
                            && self.consistent(atom, fact)
                            && seen.insert(fact.args[vpos])
                        {
                            keep =
                                self.try_value(v, proposer, fact.args[vpos], unbound, on_solution);
                            if !keep {
                                break;
                            }
                        }
                    }
                }
            }
        }
        self.seen[unbound - 1] = seen;
        keep
    }

    /// Collects the proposer's consistent visible facts paired with their
    /// value at `vpos` — replaying the atom's active support if one exists
    /// (those candidates were inspected and counted by the scan that built
    /// it), otherwise scanning its access set (counted per candidate).
    fn collect(&mut self, a: u32, vpos: usize, out: &mut Vec<(Const, AtomId)>) {
        let body = self.body;
        let atom = &body[a as usize];
        let view = self.view;
        if let Some((s, e)) = self.support[a as usize] {
            let mut ids = std::mem::take(&mut self.replay);
            ids.clear();
            ids.extend_from_slice(&self.support_buf[s..e]);
            for &id in &ids {
                let fact = view.atom(id);
                if self.consistent(atom, fact) {
                    out.push((fact.args[vpos], id));
                }
            }
            self.replay = ids;
            return;
        }
        match self.access(a) {
            Access::Slice(ids) => {
                for &id in ids {
                    self.nodes += 1;
                    if !view.visible(id) {
                        continue;
                    }
                    let fact = view.atom(id);
                    if self.consistent(atom, fact) {
                        out.push((fact.args[vpos], id));
                    }
                }
            }
            Access::Mask(m) => {
                for &id in m {
                    self.nodes += 1;
                    let fact = view.atom(id);
                    if fact.rel == atom.rel && self.consistent(atom, fact) {
                        out.push((fact.args[vpos], id));
                    }
                }
            }
        }
    }

    /// Binds `v := val` and recurses. Covering constraints that became
    /// fully ground are confirmed in O(1) each — except the proposer,
    /// which is witnessed by the very facts in its support. Still-open
    /// constraints are instead screened by the zero-estimate check (pure
    /// lookups): each is fully checked when its own last variable binds
    /// (or enumerated directly by the single-atom fast path). Returns
    /// `false` iff the search stopped early.
    fn try_value(
        &mut self,
        v: usize,
        proposer: u32,
        val: Const,
        unbound: usize,
        on_solution: &mut dyn FnMut(&[Option<Const>]) -> bool,
    ) -> bool {
        self.binding[v] = Some(val);
        let mut ok = true;
        let cov = std::mem::take(&mut self.cover[v]);
        for &a in &cov {
            if a != proposer && self.confirm_ground(a) == Some(false) {
                ok = false;
                break;
            }
        }
        self.cover[v] = cov;
        let mut keep = true;
        if ok && !self.some_constraint_dead() {
            let mark = self.undo.len();
            self.invalidate_influenced(v);
            keep = self.step(unbound - 1, on_solution);
            self.restore(mark);
        }
        self.binding[v] = None;
        keep
    }
}

/// All answers of `cq` over `view` — guided evaluation.
pub fn answers(view: View<'_>, cq: &SrcCq) -> FxHashSet<Box<[Const]>> {
    let mut g = Guided::new(view, cq);
    let mut out: FxHashSet<Box<[Const]>> = FxHashSet::default();
    if g.ground_ok() {
        let unbound = g.unbound_count();
        g.step(unbound, &mut |b| {
            let tuple: Box<[Const]> = cq
                .head()
                .iter()
                .map(|&v| b[v.index()].expect("head var bound by safety"))
                .collect();
            out.insert(tuple);
            true
        });
    }
    out
}

/// Whether `tuple` is an answer of `cq` over `view` — guided evaluation,
/// head variables pre-bound (goal-directed).
pub fn satisfies(view: View<'_>, cq: &SrcCq, tuple: &[Const]) -> bool {
    if tuple.len() != cq.arity() {
        return false;
    }
    let mut g = Guided::new(view, cq);
    g.goal = true;
    if !g.bind_tuple(cq.head(), tuple) || !g.ground_ok() {
        return false;
    }
    let unbound = g.unbound_count();
    let mut found = false;
    g.step(unbound, &mut |_| {
        found = true;
        false
    });
    found
}

/// Like [`satisfies`], but returns the database atoms (one per body atom,
/// in body order) grounding the first embedding found. The guided and
/// legacy evaluators may pick *different* (both valid) witnesses.
pub fn witness(view: View<'_>, cq: &SrcCq, tuple: &[Const]) -> Option<Vec<AtomId>> {
    if tuple.len() != cq.arity() {
        return None;
    }
    let mut g = Guided::new(view, cq);
    g.goal = true;
    if !g.bind_tuple(cq.head(), tuple) || !g.ground_ok() {
        return None;
    }
    let unbound = g.unbound_count();
    let mut sol: Option<Vec<Option<Const>>> = None;
    g.step(unbound, &mut |b| {
        sol = Some(b.to_vec());
        false
    });
    let sol = sol?;
    ground_witness(&mut g, &sol)
}

/// Grounds each body atom against a complete solution: for every atom,
/// the first visible fact matching its fully resolved arguments.
fn ground_witness(g: &mut Guided<'_, '_>, sol: &[Option<Const>]) -> Option<Vec<AtomId>> {
    let body = g.body;
    let view = g.view;
    let db = view.db();
    let mut out = Vec::with_capacity(body.len());
    for atom in body {
        // Resolve the atom to ground constants under the solution.
        let resolved: Vec<Const> = atom
            .args
            .iter()
            .map(|&t| match t {
                Term::Const(c) => c,
                Term::Var(v) => sol[v.index()].expect("solution binds all body vars"),
            })
            .collect();
        // Probe the most selective position index.
        let mut best = db.count_of(atom.rel);
        let mut best_pos = None;
        for (pos, &c) in resolved.iter().enumerate() {
            let n = db.count_with(atom.rel, pos, c);
            if n < best {
                best = n;
                best_pos = Some(pos);
            }
        }
        let ids = match best_pos {
            Some(pos) => db.atoms_with(atom.rel, pos, resolved[pos]),
            None => db.atoms_of(atom.rel),
        };
        let mut found = None;
        for &id in ids {
            g.nodes += 1;
            if !view.visible(id) {
                continue;
            }
            let fact = view.atom(id);
            if fact.args.len() == resolved.len() && fact.args.iter().eq(resolved.iter()) {
                found = Some(id);
                break;
            }
        }
        out.push(found?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::var;
    use obx_srcdb::{Database, Schema};

    fn students_db() -> Database {
        let mut schema = Schema::new();
        schema.declare("STUD", 1).unwrap();
        schema.declare("LOC", 2).unwrap();
        schema.declare("ENR", 3).unwrap();
        let mut db = Database::new(schema);
        for s in ["A10", "B80", "C12", "D50", "E25"] {
            db.insert_named("STUD", &[s]).unwrap();
        }
        db.insert_named("LOC", &["Sap", "Rome"]).unwrap();
        db.insert_named("LOC", &["TV", "Rome"]).unwrap();
        db.insert_named("LOC", &["Pol", "Milan"]).unwrap();
        db.insert_named("ENR", &["A10", "Math", "TV"]).unwrap();
        db.insert_named("ENR", &["B80", "Math", "Sap"]).unwrap();
        db.insert_named("ENR", &["C12", "Science", "Norm"]).unwrap();
        db.insert_named("ENR", &["D50", "Science", "TV"]).unwrap();
        db.insert_named("ENR", &["E25", "Math", "Pol"]).unwrap();
        db
    }

    fn c(db: &Database, name: &str) -> Const {
        db.consts().get(name).expect("constant present")
    }

    #[test]
    fn guided_agrees_with_legacy_on_joins() {
        let db = students_db();
        let enr = db.schema().rel("ENR").unwrap();
        let loc = db.schema().rel("LOC").unwrap();
        let rome = c(&db, "Rome");
        let q = SrcCq::new(
            vec![VarId(0)],
            vec![
                SrcAtom::new(enr, [var(0), var(1), var(2)]),
                SrcAtom::new(loc, [var(2), Term::Const(rome)]),
            ],
        )
        .unwrap();
        let view = View::full(&db);
        assert_eq!(answers(view, &q), crate::eval::answers_legacy(view, &q));
        for name in ["A10", "B80", "C12", "D50", "E25", "Milan"] {
            let t = [c(&db, name)];
            assert_eq!(
                satisfies(view, &q, &t),
                crate::eval::satisfies_legacy(view, &q, &t),
                "satisfies mismatch for {name}"
            );
            assert_eq!(
                witness(view, &q, &t).is_some(),
                crate::eval::witness_legacy(view, &q, &t).is_some(),
                "witness mismatch for {name}"
            );
        }
    }

    #[test]
    fn guided_witness_grounds_the_body_in_order() {
        let db = students_db();
        let enr = db.schema().rel("ENR").unwrap();
        let loc = db.schema().rel("LOC").unwrap();
        let rome = c(&db, "Rome");
        let q = SrcCq::new(
            vec![VarId(0)],
            vec![
                SrcAtom::new(enr, [var(0), var(1), var(2)]),
                SrcAtom::new(loc, [var(2), Term::Const(rome)]),
            ],
        )
        .unwrap();
        let view = View::full(&db);
        let a10 = c(&db, "A10");
        let w = witness(view, &q, &[a10]).expect("A10 matches");
        assert_eq!(w.len(), 2);
        let w0 = db.atom(w[0]);
        let w1 = db.atom(w[1]);
        assert_eq!(w0.rel, enr);
        assert_eq!(w0.args[0], a10);
        assert_eq!(w1.rel, loc);
        assert_eq!(w1.args[1], rome);
        assert_eq!(w0.args[2], w1.args[0]);
    }

    #[test]
    fn guided_respects_masks_and_repeated_vars() {
        let mut schema = Schema::new();
        schema.declare("E", 2).unwrap();
        let mut db = Database::new(schema);
        let aa = db.insert_named("E", &["a", "a"]).unwrap();
        db.insert_named("E", &["a", "b"]).unwrap();
        db.insert_named("E", &["b", "b"]).unwrap();
        let e = db.schema().rel("E").unwrap();
        let q = SrcCq::new(vec![VarId(0)], vec![SrcAtom::new(e, [var(0), var(0)])]).unwrap();
        let full = answers(View::full(&db), &q);
        assert_eq!(full.len(), 2);
        let mask: FxHashSet<AtomId> = [aa].into_iter().collect();
        let masked = answers(View::masked(&db, &mask), &q);
        assert_eq!(masked.len(), 1);
        assert!(masked.contains(&vec![c(&db, "a")].into_boxed_slice()));
    }

    #[test]
    fn guided_handles_ground_guards_and_cross_products() {
        let db = students_db();
        let stud = db.schema().rel("STUD").unwrap();
        let loc = db.schema().rel("LOC").unwrap();
        let sap = c(&db, "Sap");
        let rome = c(&db, "Rome");
        let milan = c(&db, "Milan");
        let q_true = SrcCq::new(
            vec![VarId(0)],
            vec![
                SrcAtom::new(stud, [var(0)]),
                SrcAtom::new(loc, [Term::Const(sap), Term::Const(rome)]),
            ],
        )
        .unwrap();
        let q_false = SrcCq::new(
            vec![VarId(0)],
            vec![
                SrcAtom::new(stud, [var(0)]),
                SrcAtom::new(loc, [Term::Const(sap), Term::Const(milan)]),
            ],
        )
        .unwrap();
        let view = View::full(&db);
        assert_eq!(answers(view, &q_true).len(), 5);
        assert!(answers(view, &q_false).is_empty());
        let q_cross = SrcCq::new(
            vec![VarId(0), VarId(1)],
            vec![SrcAtom::new(stud, [var(0)]), SrcAtom::new(stud, [var(1)])],
        )
        .unwrap();
        assert_eq!(answers(view, &q_cross).len(), 25);
    }

    #[test]
    fn guided_counts_nodes() {
        let db = students_db();
        let stud = db.schema().rel("STUD").unwrap();
        let q = SrcCq::new(vec![VarId(0)], vec![SrcAtom::new(stud, [var(0)])]).unwrap();
        let before = crate::eval::node_counts().1;
        answers(View::full(&db), &q);
        let after = crate::eval::node_counts().1;
        assert!(after > before, "guided node counter must advance");
    }
}

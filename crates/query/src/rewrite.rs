//! **PerfectRef** — first-order rewriting of UCQs w.r.t. a DL-Lite_R TBox.
//!
//! This is the algorithm of Calvanese, De Giacomo, Lembo, Lenzerini &
//! Rosati, *Tractable Reasoning and Efficient Query Answering in
//! Description Logics: The DL-Lite Family* (JAR 2007) — the engine behind
//! every OBDM platform in the paper's lineage. Given a UCQ `q` over the
//! ontology and the positive inclusions (PIs) of a TBox `T`, it produces a
//! UCQ `q'` such that for every ABox `A`:
//!
//! ```text
//! cert(q, T, A)  =  eval(q', A)
//! ```
//!
//! i.e. all TBox reasoning is compiled into the query, and certain answers
//! reduce to plain evaluation. The two rule kinds:
//!
//! * **(a) atom rewriting** — if a PI `I` is *applicable* to an atom `g`,
//!   replace `g` with `gr(g, I)` (the atom that `I` would use to derive
//!   `g`). Applicability depends on *boundness*: a variable is unbound if
//!   it occurs exactly once in the query and not in the head.
//! * **(b) reduce** — unify two body atoms with their most general unifier;
//!   this can turn bound variables into unbound ones and unlock further
//!   (a)-steps.
//!
//! **Known deviation.** Our CQ heads hold variables only, so a reduce step
//! whose mgu would map an *answer variable to a constant* is skipped. Such
//! steps can only matter for queries that join an answer variable with a
//! constant through two unifiable atoms — none of our workloads (nor the
//! paper's examples) need it, and the rewrite-vs-materialize cross-check
//! property tests in `obx-obdm` guard the equivalence on random scenarios.

use crate::onto::{OntoAtom, OntoCq, OntoUcq};
use crate::term::{Term, VarId};
use obx_ontology::{Axiom, BasicConcept, ConceptRhs, Role, RoleRhs, TBox};
use obx_util::{FxHashMap, FxHashSet, GuardKind, GuardTrip};
use std::cell::Cell;
use std::collections::VecDeque;
use std::fmt;
use std::sync::LazyLock;

/// Process-wide count of admitted rewrite disjuncts, across every rewrite
/// of the process (the per-run counts live on the `rewrite` span).
static REWRITE_DISJUNCTS: LazyLock<&'static obx_util::obs::Counter> =
    LazyLock::new(|| obx_util::obs::counter("obx.rewrite.disjuncts"));

/// Resource limits for the rewriting.
#[derive(Debug, Clone, Copy)]
pub struct RewriteBudget {
    /// Maximum number of distinct CQs generated (including the inputs).
    pub max_disjuncts: usize,
    /// Whether to drop disjuncts subsumed by other disjuncts at the end.
    pub minimize: bool,
}

impl Default for RewriteBudget {
    fn default() -> Self {
        Self {
            max_disjuncts: 20_000,
            minimize: true,
        }
    }
}

/// Rewriting failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RewriteError {
    /// The rewriting produced more CQs than allowed.
    BudgetExceeded {
        /// The limit that was hit.
        max_disjuncts: usize,
    },
    /// The caller's [`Interrupt`](obx_util::Interrupt) fired (deadline or
    /// cancellation) before the rewriting reached a fixed point. Unlike
    /// [`RewriteError::BudgetExceeded`] this is not a property of the
    /// query — retrying with a fresh interrupt may succeed — so callers
    /// must not cache it as a permanent failure.
    Interrupted,
    /// The run's [`ResourceGuard`](obx_util::ResourceGuard) tripped — this
    /// or an earlier rewrite pushed a cumulative counter over its limit.
    /// Like [`RewriteError::Interrupted`] this is *transient* (a property
    /// of the run, not of the query): callers skip the candidate and must
    /// not memoize the failure.
    ResourceLimit(GuardTrip),
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewriteError::BudgetExceeded { max_disjuncts } => {
                write!(f, "PerfectRef exceeded {max_disjuncts} disjuncts")
            }
            RewriteError::Interrupted => write!(f, "PerfectRef interrupted"),
            RewriteError::ResourceLimit(trip) => {
                write!(f, "PerfectRef stopped by resource guard: {trip}")
            }
        }
    }
}

impl std::error::Error for RewriteError {}

/// Is the term unbound in `cq` (a variable occurring once, not in the head)?
fn unbound(cq: &OntoCq, occ: &FxHashMap<VarId, usize>, t: Term) -> bool {
    match t {
        Term::Const(_) => false,
        Term::Var(v) => !cq.is_bound(v, occ),
    }
}

/// Builds the role atom for role expression `role` applied to `(a, b)`.
fn role_atom(role: Role, a: Term, b: Term) -> OntoAtom {
    if role.inverse {
        OntoAtom::Role(role.id, b, a)
    } else {
        OntoAtom::Role(role.id, a, b)
    }
}

/// `gr(subject, B)` — the atom stating `subject ∈ B`, with a fresh variable
/// for the existential witness when `B` is `∃R`.
fn gr_concept(subject: Term, lhs: BasicConcept, fresh: &mut u32) -> OntoAtom {
    match lhs {
        BasicConcept::Atomic(a) => OntoAtom::Concept(a, subject),
        BasicConcept::Exists(role) => {
            let w = Term::Var(VarId(*fresh));
            *fresh += 1;
            role_atom(role, subject, w)
        }
    }
}

/// All single-step (a)-rewritings of atom `g` in `cq` under PI `pi`.
fn rewrite_atom(
    cq: &OntoCq,
    occ: &FxHashMap<VarId, usize>,
    g: &OntoAtom,
    pi: &Axiom,
    fresh: &mut u32,
) -> Option<OntoAtom> {
    match (*g, pi) {
        // g = A(x), PI = B ⊑ A.
        (OntoAtom::Concept(a, x), Axiom::ConceptIncl(lhs, ConceptRhs::Basic(rhs))) => {
            if *rhs == BasicConcept::Atomic(a) {
                Some(gr_concept(x, *lhs, fresh))
            } else {
                None
            }
        }
        // g = R(x1, x2).
        (OntoAtom::Role(r, x1, x2), Axiom::ConceptIncl(lhs, ConceptRhs::Basic(rhs))) => {
            // PI = B ⊑ ∃R applicable when x2 is unbound.
            if *rhs == BasicConcept::Exists(Role::direct(r)) && unbound(cq, occ, x2) {
                return Some(gr_concept(x1, *lhs, fresh));
            }
            // PI = B ⊑ ∃R⁻ applicable when x1 is unbound.
            if *rhs == BasicConcept::Exists(Role::inv(r)) && unbound(cq, occ, x1) {
                return Some(gr_concept(x2, *lhs, fresh));
            }
            None
        }
        // g = R(x1, x2), PI = S ⊑ R (role inclusion, possibly with inverses).
        (OntoAtom::Role(r, x1, x2), Axiom::RoleIncl(lhs, RoleRhs::Role(rhs))) => {
            if rhs.id != r {
                return None;
            }
            let (a, b) = if rhs.inverse { (x2, x1) } else { (x1, x2) };
            Some(role_atom(*lhs, a, b))
        }
        _ => None,
    }
}

/// Resolves a term through the substitution being built by unification.
fn walk(subst: &FxHashMap<VarId, Term>, mut t: Term) -> Term {
    while let Term::Var(v) = t {
        match subst.get(&v) {
            Some(&next) => t = next,
            None => break,
        }
    }
    t
}

fn unify_terms(subst: &mut FxHashMap<VarId, Term>, t1: Term, t2: Term) -> bool {
    let t1 = walk(subst, t1);
    let t2 = walk(subst, t2);
    match (t1, t2) {
        (Term::Const(a), Term::Const(b)) => a == b,
        (Term::Var(v), other) | (other, Term::Var(v)) => {
            if Term::Var(v) != other {
                subst.insert(v, other);
            }
            true
        }
    }
}

/// Most general unifier of two atoms, if they unify.
fn unify_atoms(a1: &OntoAtom, a2: &OntoAtom) -> Option<FxHashMap<VarId, Term>> {
    let mut subst = FxHashMap::default();
    let ok = match (*a1, *a2) {
        (OntoAtom::Concept(c1, t1), OntoAtom::Concept(c2, t2)) => {
            c1 == c2 && unify_terms(&mut subst, t1, t2)
        }
        (OntoAtom::Role(r1, s1, o1), OntoAtom::Role(r2, s2, o2)) => {
            r1 == r2 && unify_terms(&mut subst, s1, s2) && unify_terms(&mut subst, o1, o2)
        }
        _ => false,
    };
    if ok {
        Some(subst)
    } else {
        None
    }
}

/// Applies a unifier to the whole query; returns `None` when an answer
/// variable would become a constant (see module docs).
fn apply_mgu(cq: &OntoCq, subst: &FxHashMap<VarId, Term>) -> Option<OntoCq> {
    let mut head = Vec::with_capacity(cq.head().len());
    for &h in cq.head() {
        match walk(subst, Term::Var(h)) {
            Term::Var(v) => head.push(v),
            Term::Const(_) => return None,
        }
    }
    let body: Vec<OntoAtom> = cq
        .body()
        .iter()
        .map(|a| {
            let map = |t: Term| walk(subst, t);
            match *a {
                OntoAtom::Concept(c, t) => OntoAtom::Concept(c, map(t)),
                OntoAtom::Role(r, t1, t2) => OntoAtom::Role(r, map(t1), map(t2)),
            }
        })
        .collect();
    // Head stays safe: substitution maps head vars to vars occurring in the
    // body image.
    Some(OntoCq::new(head, body).expect("mgu preserves safety"))
}

/// Computes the perfect rewriting of `ucq` w.r.t. the positive inclusions
/// of `tbox`. See the module documentation.
pub fn perfect_ref(
    ucq: &OntoUcq,
    tbox: &TBox,
    budget: RewriteBudget,
) -> Result<OntoUcq, RewriteError> {
    perfect_ref_interruptible(ucq, tbox, budget, &obx_util::Interrupt::none())
}

/// [`perfect_ref`] with a cooperative stop signal: the worklist loop polls
/// `interrupt` once per popped CQ and returns [`RewriteError::Interrupted`]
/// when it fires, so one pathological rewrite cannot pin a deadline-bound
/// search. The inert interrupt makes this identical to [`perfect_ref`].
pub fn perfect_ref_interruptible(
    ucq: &OntoUcq,
    tbox: &TBox,
    budget: RewriteBudget,
    interrupt: &obx_util::Interrupt,
) -> Result<OntoUcq, RewriteError> {
    // Observability wrapper: one `rewrite` span per invocation carrying
    // the disjunct counters; the inner function is the actual algorithm.
    let mut sp = obx_util::span!(interrupt.recorder(), "rewrite");
    let attempts = Cell::new(0u64);
    let admitted = Cell::new(0u64);
    let minimized_away = Cell::new(0u64);
    let result = perfect_ref_inner(
        ucq,
        tbox,
        budget,
        interrupt,
        &attempts,
        &admitted,
        &minimized_away,
    );
    sp.count("attempts", attempts.get());
    sp.count("disjuncts", admitted.get());
    sp.count("deduped", attempts.get().saturating_sub(admitted.get()));
    sp.count("minimized_away", minimized_away.get());
    if matches!(result, Err(RewriteError::ResourceLimit(_))) {
        sp.count("guard_clipped", 1);
    }
    REWRITE_DISJUNCTS.add(admitted.get());
    result
}

#[allow(clippy::too_many_arguments)]
fn perfect_ref_inner(
    ucq: &OntoUcq,
    tbox: &TBox,
    budget: RewriteBudget,
    interrupt: &obx_util::Interrupt,
    attempts: &Cell<u64>,
    admitted: &Cell<u64>,
    minimized_away: &Cell<u64>,
) -> Result<OntoUcq, RewriteError> {
    let pis: Vec<&Axiom> = tbox.positive_inclusions().collect();
    // The reduce step exists solely to turn bound variables unbound so
    // that PIs of the form `B ⊑ ∃R` become applicable (their
    // applicability is the only boundness-dependent condition). When the
    // TBox has no such PI, every reduce result is a homomorphic image of
    // its parent — subsumed, hence redundant for UCQ semantics — and can
    // be skipped wholesale. This turns PerfectRef from exponential to
    // linear on large queries over hierarchy-only TBoxes (the common case
    // in the explanation search's bottom-up seeds).
    let needs_reduce = pis.iter().any(|ax| {
        matches!(
            ax,
            Axiom::ConceptIncl(_, ConceptRhs::Basic(BasicConcept::Exists(_)))
        )
    });
    let mut seen: FxHashSet<OntoCq> = FxHashSet::default();
    let mut queue: VecDeque<OntoCq> = VecDeque::new();
    let mut out: Vec<OntoCq> = Vec::new();

    let admit = |cq: OntoCq,
                 seen: &mut FxHashSet<OntoCq>,
                 queue: &mut VecDeque<OntoCq>,
                 out: &mut Vec<OntoCq>|
     -> Result<(), RewriteError> {
        attempts.set(attempts.get() + 1);
        let canon = cq.canonical();
        if seen.insert(canon.clone()) {
            admitted.set(admitted.get() + 1);
            if seen.len() > budget.max_disjuncts {
                return Err(RewriteError::BudgetExceeded {
                    max_disjuncts: budget.max_disjuncts,
                });
            }
            // Charge the run-wide resource guard per admitted disjunct: the
            // counter is cumulative across every rewrite of the run, so a
            // blown-up query space fails here (transiently) instead of
            // exhausting memory.
            if let Some(guard) = interrupt.guard() {
                let approx_bytes =
                    std::mem::size_of_val(canon.body()) + std::mem::size_of_val(canon.head());
                if !guard.charge(GuardKind::RewriteDisjuncts, 1, approx_bytes) {
                    let trip = guard.trip().unwrap_or(GuardTrip {
                        kind: GuardKind::RewriteDisjuncts,
                        limit: 0,
                        observed: 0,
                    });
                    return Err(RewriteError::ResourceLimit(trip));
                }
            }
            queue.push_back(canon.clone());
            out.push(canon);
        }
        Ok(())
    };

    for cq in ucq.disjuncts() {
        admit(cq.clone(), &mut seen, &mut queue, &mut out)?;
    }

    while let Some(cq) = queue.pop_front() {
        if interrupt.is_triggered() {
            return Err(RewriteError::Interrupted);
        }
        let occ = cq.occurrences();
        let mut fresh = cq.max_var().map_or(0, |m| m + 1);
        // (a) atom rewriting.
        for (i, g) in cq.body().iter().enumerate() {
            for pi in &pis {
                if let Some(new_atom) = rewrite_atom(&cq, &occ, g, pi, &mut fresh) {
                    let mut body = cq.body().to_vec();
                    body[i] = new_atom;
                    let q2 = cq.with_body(body);
                    admit(q2, &mut seen, &mut queue, &mut out)?;
                }
            }
        }
        // (b) reduce.
        if !needs_reduce {
            continue;
        }
        for i in 0..cq.body().len() {
            for j in (i + 1)..cq.body().len() {
                if let Some(mgu) = unify_atoms(&cq.body()[i], &cq.body()[j]) {
                    if mgu.is_empty() {
                        continue; // identical atoms; canonical() already dedups
                    }
                    if let Some(q2) = apply_mgu(&cq, &mgu) {
                        admit(q2, &mut seen, &mut queue, &mut out)?;
                    }
                }
            }
        }
    }

    if budget.minimize {
        let before = out.len();
        out = minimize(out);
        minimized_away.set((before - out.len()) as u64);
    }
    let mut result = OntoUcq::empty();
    for cq in out {
        result.push(cq);
    }
    Ok(result)
}

/// Drops disjuncts strictly subsumed by another disjunct.
fn minimize(disjuncts: Vec<OntoCq>) -> Vec<OntoCq> {
    use crate::containment::onto_cq_contained;
    let mut keep: Vec<bool> = vec![true; disjuncts.len()];
    for i in 0..disjuncts.len() {
        if !keep[i] {
            continue;
        }
        for j in 0..disjuncts.len() {
            if i == j || !keep[j] {
                continue;
            }
            // Drop i if i ⊑ j (j already covers i's answers). Tie (mutual
            // containment) keeps the earlier one.
            if onto_cq_contained(&disjuncts[i], &disjuncts[j])
                && !(j < i && onto_cq_contained(&disjuncts[j], &disjuncts[i]))
            {
                keep[i] = false;
                break;
            }
        }
    }
    disjuncts
        .into_iter()
        .zip(keep)
        .filter_map(|(d, k)| k.then_some(d))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::var;
    use obx_ontology::parse_tbox;

    fn rewrite_one(tbox: &TBox, cq: OntoCq) -> OntoUcq {
        perfect_ref(&OntoUcq::from_cq(cq), tbox, RewriteBudget::default()).unwrap()
    }

    #[test]
    fn role_inclusion_rewrites_role_atom() {
        // The paper's Example 3.6 ontology: studies ⊑ likes.
        let tbox = parse_tbox("role studies likes\nstudies < likes").unwrap();
        let likes = tbox.vocab().get_role("likes").unwrap();
        let studies = tbox.vocab().get_role("studies").unwrap();
        let q = OntoCq::new(vec![VarId(0)], vec![OntoAtom::Role(likes, var(0), var(1))]).unwrap();
        let rewritten = rewrite_one(&tbox, q);
        assert_eq!(rewritten.len(), 2);
        let has_studies = rewritten.disjuncts().iter().any(|d| {
            d.body()
                .iter()
                .any(|a| matches!(a, OntoAtom::Role(r, _, _) if *r == studies))
        });
        assert!(has_studies);
    }

    #[test]
    fn concept_hierarchy_rewrites_concept_atom() {
        let tbox = parse_tbox("concept Student Person\nStudent < Person").unwrap();
        let person = tbox.vocab().get_concept("Person").unwrap();
        let student = tbox.vocab().get_concept("Student").unwrap();
        let q = OntoCq::new(vec![VarId(0)], vec![OntoAtom::Concept(person, var(0))]).unwrap();
        let rewritten = rewrite_one(&tbox, q);
        assert_eq!(rewritten.len(), 2);
        assert!(rewritten.disjuncts().iter().any(|d| {
            d.body()
                .iter()
                .any(|a| matches!(a, OntoAtom::Concept(c, _) if *c == student))
        }));
    }

    #[test]
    fn exists_rewriting_requires_unbound_witness() {
        // ∃teaches ⊑ Professor and Professor(x) asked: rewrites to
        // teaches(x, fresh).
        let tbox =
            parse_tbox("concept Professor\nrole teaches\nexists(teaches) < Professor").unwrap();
        let prof = tbox.vocab().get_concept("Professor").unwrap();
        let teaches = tbox.vocab().get_role("teaches").unwrap();
        let q = OntoCq::new(vec![VarId(0)], vec![OntoAtom::Concept(prof, var(0))]).unwrap();
        let rewritten = rewrite_one(&tbox, q);
        assert!(rewritten.disjuncts().iter().any(|d| {
            d.body().iter().any(
                |a| matches!(a, OntoAtom::Role(r, Term::Var(_), Term::Var(_)) if *r == teaches),
            )
        }));

        // Conversely: Person ⊑ ∃teaches lets teaches(x, y) with unbound y be
        // rewritten to Person(x)…
        let tbox2 = parse_tbox("concept Person\nrole teaches\nPerson < exists(teaches)").unwrap();
        let person2 = tbox2.vocab().get_concept("Person").unwrap();
        let teaches2 = tbox2.vocab().get_role("teaches").unwrap();
        let q_unbound = OntoCq::new(
            vec![VarId(0)],
            vec![OntoAtom::Role(teaches2, var(0), var(1))],
        )
        .unwrap();
        let rw = rewrite_one(&tbox2, q_unbound);
        assert!(rw.disjuncts().iter().any(|d| {
            d.body()
                .iter()
                .any(|a| matches!(a, OntoAtom::Concept(c, _) if *c == person2))
        }));

        // …but not when y is bound (appears in the head).
        let q_bound = OntoCq::new(
            vec![VarId(0), VarId(1)],
            vec![OntoAtom::Role(teaches2, var(0), var(1))],
        )
        .unwrap();
        let rw_bound = rewrite_one(&tbox2, q_bound);
        assert_eq!(rw_bound.len(), 1, "no rewriting applicable to bound atom");
    }

    #[test]
    fn inverse_role_inclusion() {
        // supervises ⊑ knows⁻ : knows(x,y) should rewrite to supervises(y,x).
        let tbox = parse_tbox("role supervises knows\nsupervises < inv(knows)").unwrap();
        let knows = tbox.vocab().get_role("knows").unwrap();
        let supervises = tbox.vocab().get_role("supervises").unwrap();
        let q = OntoCq::new(
            vec![VarId(0), VarId(1)],
            vec![OntoAtom::Role(knows, var(0), var(1))],
        )
        .unwrap();
        let rewritten = rewrite_one(&tbox, q);
        // Expect a disjunct supervises(x1, x0) (canonicalized as (x1, x0)
        // with head (x0, x1) — check structurally).
        let found = rewritten.disjuncts().iter().any(|d| {
            d.body().iter().any(|a| match a {
                OntoAtom::Role(r, Term::Var(s), Term::Var(o)) => {
                    *r == supervises && *s == d.head()[1] && *o == d.head()[0]
                }
                _ => false,
            })
        });
        assert!(found, "missing inverse rewriting: {rewritten:?}");
    }

    #[test]
    fn chain_of_inclusions_composes() {
        let tbox = parse_tbox("concept A B C\nA < B\nB < C").unwrap();
        let c = tbox.vocab().get_concept("C").unwrap();
        let q = OntoCq::new(vec![VarId(0)], vec![OntoAtom::Concept(c, var(0))]).unwrap();
        let rewritten = rewrite_one(&tbox, q);
        // C(x) ∪ B(x) ∪ A(x).
        assert_eq!(rewritten.len(), 3);
    }

    #[test]
    fn reduce_step_unlocks_rewriting() {
        // Classic example needing reduce: q(x) :- teaches(x,y), teaches(z,y)
        // with Professor ⊑ ∃teaches. Unifying the two atoms makes y unbound
        // (x=z), unlocking Professor(x).
        let tbox =
            parse_tbox("concept Professor\nrole teaches\nProfessor < exists(teaches)").unwrap();
        let prof = tbox.vocab().get_concept("Professor").unwrap();
        let teaches = tbox.vocab().get_role("teaches").unwrap();
        let q = OntoCq::new(
            vec![VarId(0)],
            vec![
                OntoAtom::Role(teaches, var(0), var(1)),
                OntoAtom::Role(teaches, var(2), var(1)),
            ],
        )
        .unwrap();
        let rewritten = rewrite_one(&tbox, q);
        assert!(
            rewritten.disjuncts().iter().any(|d| {
                d.body().len() == 1 && matches!(d.body()[0], OntoAtom::Concept(c, _) if c == prof)
            }),
            "reduce+rewrite should yield Professor(x): {rewritten:?}"
        );
    }

    #[test]
    fn empty_tbox_is_identity() {
        let tbox = parse_tbox("concept A\nrole r").unwrap();
        let a = tbox.vocab().get_concept("A").unwrap();
        let q = OntoCq::new(vec![VarId(0)], vec![OntoAtom::Concept(a, var(0))]).unwrap();
        let rewritten = rewrite_one(&tbox, q.clone());
        assert_eq!(rewritten.len(), 1);
        assert_eq!(rewritten.disjuncts()[0], q.canonical());
    }

    #[test]
    fn budget_is_enforced() {
        // A deep chain makes many disjuncts; a budget of 2 must trip.
        let tbox = parse_tbox("concept A B C D\nA < B\nB < C\nC < D").unwrap();
        let d = tbox.vocab().get_concept("D").unwrap();
        let q = OntoCq::new(vec![VarId(0)], vec![OntoAtom::Concept(d, var(0))]).unwrap();
        let err = perfect_ref(
            &OntoUcq::from_cq(q),
            &tbox,
            RewriteBudget {
                max_disjuncts: 2,
                minimize: false,
            },
        )
        .unwrap_err();
        assert_eq!(err, RewriteError::BudgetExceeded { max_disjuncts: 2 });
    }

    #[test]
    fn resource_guard_trips_transiently() {
        use obx_util::{GuardLimits, Interrupt, ResourceGuard};
        use std::sync::Arc;
        let tbox = parse_tbox("concept A B C D\nA < B\nB < C\nC < D").unwrap();
        let d = tbox.vocab().get_concept("D").unwrap();
        let q = OntoCq::new(vec![VarId(0)], vec![OntoAtom::Concept(d, var(0))]).unwrap();
        let guard = Arc::new(ResourceGuard::new(
            GuardLimits::unlimited().with_max_rewrite_disjuncts(2),
        ));
        let interrupt = Interrupt::none().with_guard(Arc::clone(&guard));
        let err = perfect_ref_interruptible(
            &OntoUcq::from_cq(q.clone()),
            &tbox,
            RewriteBudget::default(),
            &interrupt,
        )
        .unwrap_err();
        assert!(
            matches!(err, RewriteError::ResourceLimit(t) if t.kind == GuardKind::RewriteDisjuncts),
            "{err:?}"
        );
        assert!(guard.is_tripped());
        // The counter is cumulative: even a tiny follow-up rewrite now
        // fails, so skipped candidates stay skipped for the whole run.
        let err2 = perfect_ref_interruptible(
            &OntoUcq::from_cq(q),
            &tbox,
            RewriteBudget::default(),
            &interrupt,
        )
        .unwrap_err();
        assert!(matches!(err2, RewriteError::ResourceLimit(_)));
    }

    #[test]
    fn minimization_drops_subsumed_disjuncts() {
        // Rewriting Person(x) with Student ⊑ Person gives Person ∪ Student;
        // neither subsumes the other, so both stay. But a UCQ that already
        // contains a redundant specialisation gets pruned.
        let tbox = parse_tbox("concept Person Student\nStudent < Person").unwrap();
        let person = tbox.vocab().get_concept("Person").unwrap();
        let student = tbox.vocab().get_concept("Student").unwrap();
        let broad = OntoCq::new(vec![VarId(0)], vec![OntoAtom::Concept(person, var(0))]).unwrap();
        let narrow = OntoCq::new(
            vec![VarId(0)],
            vec![
                OntoAtom::Concept(person, var(0)),
                OntoAtom::Concept(student, var(0)),
            ],
        )
        .unwrap();
        let mut ucq = OntoUcq::empty();
        ucq.push(broad);
        ucq.push(narrow);
        let rewritten = perfect_ref(&ucq, &tbox, RewriteBudget::default()).unwrap();
        // narrow ⊑ broad, so after minimization no disjunct contains both a
        // Person and a Student atom.
        assert!(rewritten.disjuncts().iter().all(|d| d.body().len() == 1));
    }

    #[test]
    fn functionality_and_negative_axioms_are_ignored_by_rewriting() {
        let tbox = parse_tbox("concept A B\nrole r\nA < not B\nfunct r\nA < B").unwrap();
        let b = tbox.vocab().get_concept("B").unwrap();
        let q = OntoCq::new(vec![VarId(0)], vec![OntoAtom::Concept(b, var(0))]).unwrap();
        let rewritten = rewrite_one(&tbox, q);
        assert_eq!(rewritten.len(), 2); // B ∪ A, nothing from `not`/funct.
    }
}

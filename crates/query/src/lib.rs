//! `obx-query` — conjunctive queries (CQs) and unions of conjunctive
//! queries (UCQs) for the OBDM stack.
//!
//! §2 of the paper fixes UCQs as the query language: FOL immediately makes
//! certain-answer computation undecidable, whereas UCQs over DL-Lite admit
//! first-order rewritability. This crate provides:
//!
//! * [`term`] — query terms (variables / constants);
//! * [`onto`] — CQs/UCQs over the *ontology* vocabulary (unary concept
//!   atoms, binary role atoms), with canonicalization up to variable
//!   renaming;
//! * [`src`] — CQs/UCQs over the *source* schema (n-ary relational atoms);
//! * [`eval`] — evaluation of source CQs over a [`obx_srcdb::View`] (full
//!   database or border sub-database): a constraint-guided
//!   variable-at-a-time join (default) plus the legacy index-driven
//!   backtracking join (`OBX_GUIDED=0`);
//! * [`containment`] — CQ/UCQ containment via canonical databases
//!   (freezing), the classical Chandra–Merlin characterization;
//! * [`rewrite`] — the **PerfectRef** algorithm (Calvanese et al., 2007):
//!   compiles a UCQ over the ontology and a DL-Lite_R TBox into a UCQ whose
//!   evaluation over any ABox/database yields exactly the certain answers;
//! * [`parse`] — text syntax `q(x) :- studies(x, y), locatedIn(y, "Rome")`.

#![warn(missing_docs)]

pub mod containment;
pub mod eval;
pub mod onto;
pub mod parse;
pub mod rewrite;
pub mod src;
pub mod term;

pub use containment::{
    cq_contained, cq_equivalent, minimize_cq, minimize_onto_cq, onto_cq_contained,
    onto_to_pseudo_src, onto_ucq_contained, ucq_contained,
};
pub use eval::{
    answers, answers_ucq, guided_min_view, mode, node_counts, satisfies, satisfies_ucq,
    set_guided_min_view, set_mode, witness, witness_ucq, EvalMode,
};
pub use onto::{OntoAtom, OntoCq, OntoUcq, QueryError};
pub use parse::{parse_onto_cq, parse_onto_ucq, parse_src_cq, QueryParseError};
pub use rewrite::{perfect_ref, perfect_ref_interruptible, RewriteBudget, RewriteError};
pub use src::{SrcAtom, SrcCq, SrcUcq};
pub use term::{Term, VarId};

//! Query terms: variables and constants.

use obx_srcdb::Const;
use std::fmt;

/// A query variable, scoped to one query (dense indices starting at 0).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

impl VarId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.0)
    }
}

/// A term: a variable or a constant from the shared constant pool.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Term {
    /// A query variable.
    Var(VarId),
    /// A constant (interned in the database's [`obx_srcdb::ConstPool`]).
    Const(Const),
}

impl Term {
    /// The variable inside, if any.
    #[inline]
    pub fn as_var(self) -> Option<VarId> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }

    /// The constant inside, if any.
    #[inline]
    pub fn as_const(self) -> Option<Const> {
        match self {
            Term::Const(c) => Some(c),
            Term::Var(_) => None,
        }
    }

    /// Whether this term is a variable.
    #[inline]
    pub fn is_var(self) -> bool {
        matches!(self, Term::Var(_))
    }
}

/// Convenience constructor for a variable term.
pub fn var(i: u32) -> Term {
    Term::Var(VarId(i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use obx_srcdb::ConstPool;

    #[test]
    fn accessors() {
        let mut pool = ConstPool::new();
        let rome = pool.intern("Rome");
        let v = var(3);
        let c = Term::Const(rome);
        assert_eq!(v.as_var(), Some(VarId(3)));
        assert_eq!(v.as_const(), None);
        assert!(v.is_var());
        assert_eq!(c.as_const(), Some(rome));
        assert_eq!(c.as_var(), None);
        assert!(!c.is_var());
    }
}

//! CQ/UCQ containment.
//!
//! `q1 ⊑ q2` (every answer of `q1` is an answer of `q2`, on every database)
//! holds iff there is a homomorphism from `q2` into `q1` that maps the
//! i-th head term of `q2` to the i-th head term of `q1` (Chandra & Merlin).
//! UCQ containment reduces to: every disjunct of the left union is
//! contained in *some* disjunct of the right union (Sagiv & Yannakakis).
//!
//! Containment is used by the explanation search to prune
//! equivalent-or-weaker candidate queries, and by tests to validate
//! PerfectRef output.

use crate::onto::{OntoAtom, OntoCq, OntoUcq};
use crate::src::{SrcAtom, SrcCq, SrcUcq};
use crate::term::{Term, VarId};
use obx_srcdb::RelId;
use obx_util::FxHashMap;

/// Tries to extend the homomorphism `h` (from `from`'s variables to `into`'s
/// terms) so that every remaining atom of `from` lands on some atom of
/// `into`.
fn extend(
    from_atoms: &[SrcAtom],
    into_atoms: &[SrcAtom],
    idx: usize,
    h: &mut FxHashMap<VarId, Term>,
) -> bool {
    let Some(atom) = from_atoms.get(idx) else {
        return true;
    };
    'cands: for target in into_atoms {
        if target.rel != atom.rel || target.args.len() != atom.args.len() {
            continue;
        }
        // Try to unify this atom with the target, extending h.
        let mut trail: Vec<VarId> = Vec::new();
        for (&t_from, &t_into) in atom.args.iter().zip(target.args.iter()) {
            let ok = match t_from {
                Term::Const(c) => t_into == Term::Const(c),
                Term::Var(v) => match h.get(&v) {
                    Some(&mapped) => mapped == t_into,
                    None => {
                        h.insert(v, t_into);
                        trail.push(v);
                        true
                    }
                },
            };
            if !ok {
                for v in trail.drain(..) {
                    h.remove(&v);
                }
                continue 'cands;
            }
        }
        if extend(from_atoms, into_atoms, idx + 1, h) {
            return true;
        }
        for v in trail {
            h.remove(&v);
        }
    }
    false
}

/// Whether there is a head-preserving homomorphism from `from` into `into`.
fn homomorphism(from: &SrcCq, into: &SrcCq) -> bool {
    if from.arity() != into.arity() {
        return false;
    }
    let mut h: FxHashMap<VarId, Term> = FxHashMap::default();
    // Head condition: h(from.head[i]) = into.head[i].
    for (&vf, &vi) in from.head().iter().zip(into.head().iter()) {
        match h.get(&vf) {
            Some(&mapped) => {
                if mapped != Term::Var(vi) {
                    return false;
                }
            }
            None => {
                h.insert(vf, Term::Var(vi));
            }
        }
    }
    extend(from.body(), into.body(), 0, &mut h)
}

/// CQ containment: `q1 ⊑ q2`.
pub fn cq_contained(q1: &SrcCq, q2: &SrcCq) -> bool {
    homomorphism(q2, q1)
}

/// UCQ containment: `u1 ⊑ u2`.
pub fn ucq_contained(u1: &SrcUcq, u2: &SrcUcq) -> bool {
    u1.disjuncts()
        .iter()
        .all(|d1| u2.disjuncts().iter().any(|d2| cq_contained(d1, d2)))
}

/// Whether two CQs are equivalent (mutual containment).
pub fn cq_equivalent(q1: &SrcCq, q2: &SrcCq) -> bool {
    cq_contained(q1, q2) && cq_contained(q2, q1)
}

/// Encodes an ontology CQ as a pseudo-source CQ over synthetic relation
/// ids (concepts on even ids, roles on odd ids), for reuse of the
/// homomorphism machinery. Only valid for containment checks between
/// queries over the *same* vocabulary — never evaluate the result.
pub fn onto_to_pseudo_src(cq: &OntoCq) -> SrcCq {
    let body = cq
        .body()
        .iter()
        .map(|a| match *a {
            OntoAtom::Concept(c, t) => SrcAtom::new(RelId(c.0 .0 * 2), [t]),
            OntoAtom::Role(r, t1, t2) => SrcAtom::new(RelId(r.0 .0 * 2 + 1), [t1, t2]),
        })
        .collect();
    SrcCq::new(cq.head().to_vec(), body).expect("safety is preserved by the encoding")
}

/// CQ containment for ontology queries (no TBox; for TBox-aware containment
/// rewrite the right-hand side with [`crate::rewrite::perfect_ref`] first).
pub fn onto_cq_contained(q1: &OntoCq, q2: &OntoCq) -> bool {
    cq_contained(&onto_to_pseudo_src(q1), &onto_to_pseudo_src(q2))
}

/// UCQ containment for ontology queries (no TBox).
pub fn onto_ucq_contained(u1: &OntoUcq, u2: &OntoUcq) -> bool {
    u1.disjuncts()
        .iter()
        .all(|d1| u2.disjuncts().iter().any(|d2| onto_cq_contained(d1, d2)))
}

/// Computes the **core** of a CQ by greedy redundancy removal: an atom is
/// dropped when the query without it is still contained in the original
/// (dropping can only generalize, so mutual containment ⇔ equivalence).
/// The result is an equivalent query with no redundant atom — minimal in
/// the number of atoms among equivalent subqueries, which directly
/// improves the paper's parsimony criterion δ5 without changing any
/// match.
pub fn minimize_cq(cq: &SrcCq) -> SrcCq {
    let mut current = cq.clone();
    loop {
        let mut dropped = false;
        for i in 0..current.body().len() {
            if current.body().len() == 1 {
                break;
            }
            let mut body = current.body().to_vec();
            body.remove(i);
            let Ok(candidate) = SrcCq::new(current.head().to_vec(), body) else {
                continue; // dropping would unbind a head variable
            };
            // candidate ⊒ current always; equivalence iff candidate ⊑ current.
            if cq_contained(&candidate, &current) {
                current = candidate;
                dropped = true;
                break;
            }
        }
        if !dropped {
            return current;
        }
    }
}

/// [`minimize_cq`] for ontology CQs (via the pseudo-source encoding).
pub fn minimize_onto_cq(cq: &OntoCq) -> OntoCq {
    let mut current = cq.clone();
    loop {
        let mut dropped = false;
        for i in 0..current.body().len() {
            if current.body().len() == 1 {
                break;
            }
            let mut body = current.body().to_vec();
            body.remove(i);
            let Ok(candidate) = OntoCq::new(current.head().to_vec(), body) else {
                continue;
            };
            if onto_cq_contained(&candidate, &current) {
                current = candidate;
                dropped = true;
                break;
            }
        }
        if !dropped {
            return current;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::var;
    use obx_srcdb::Schema;

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.declare("R", 2).unwrap();
        s.declare("A", 1).unwrap();
        s
    }

    fn r(s: &Schema) -> RelId {
        s.rel("R").unwrap()
    }

    #[test]
    fn adding_atoms_restricts() {
        let s = schema();
        let a = s.rel("A").unwrap();
        // q1(x) :- R(x,y), A(x)   ⊑   q2(x) :- R(x,y)
        let q1 = SrcCq::new(
            vec![VarId(0)],
            vec![
                SrcAtom::new(r(&s), [var(0), var(1)]),
                SrcAtom::new(a, [var(0)]),
            ],
        )
        .unwrap();
        let q2 = SrcCq::new(vec![VarId(0)], vec![SrcAtom::new(r(&s), [var(0), var(1)])]).unwrap();
        assert!(cq_contained(&q1, &q2));
        assert!(!cq_contained(&q2, &q1));
        assert!(!cq_equivalent(&q1, &q2));
    }

    #[test]
    fn chain_contained_in_single_edge() {
        let s = schema();
        // q1(x) :- R(x,y), R(y,z)  ⊑  q2(x) :- R(x,w)
        let q1 = SrcCq::new(
            vec![VarId(0)],
            vec![
                SrcAtom::new(r(&s), [var(0), var(1)]),
                SrcAtom::new(r(&s), [var(1), var(2)]),
            ],
        )
        .unwrap();
        let q2 = SrcCq::new(vec![VarId(0)], vec![SrcAtom::new(r(&s), [var(0), var(3)])]).unwrap();
        assert!(cq_contained(&q1, &q2));
        assert!(!cq_contained(&q2, &q1));
    }

    #[test]
    fn redundant_atom_gives_equivalence() {
        let s = schema();
        // q1(x) :- R(x,y)  ≡  q2(x) :- R(x,y), R(x,z)
        let q1 = SrcCq::new(vec![VarId(0)], vec![SrcAtom::new(r(&s), [var(0), var(1)])]).unwrap();
        let q2 = SrcCq::new(
            vec![VarId(0)],
            vec![
                SrcAtom::new(r(&s), [var(0), var(1)]),
                SrcAtom::new(r(&s), [var(0), var(2)]),
            ],
        )
        .unwrap();
        assert!(cq_equivalent(&q1, &q2));
    }

    #[test]
    fn constants_must_match() {
        let s = schema();
        let mut pool = obx_srcdb::ConstPool::new();
        let rome = pool.intern("Rome");
        let milan = pool.intern("Milan");
        let q_rome = SrcCq::new(
            vec![VarId(0)],
            vec![SrcAtom::new(r(&s), [var(0), Term::Const(rome)])],
        )
        .unwrap();
        let q_milan = SrcCq::new(
            vec![VarId(0)],
            vec![SrcAtom::new(r(&s), [var(0), Term::Const(milan)])],
        )
        .unwrap();
        let q_any =
            SrcCq::new(vec![VarId(0)], vec![SrcAtom::new(r(&s), [var(0), var(1)])]).unwrap();
        assert!(cq_contained(&q_rome, &q_any));
        assert!(!cq_contained(&q_any, &q_rome));
        assert!(!cq_contained(&q_rome, &q_milan));
    }

    #[test]
    fn head_positions_matter() {
        let s = schema();
        // q1(x,y) :- R(x,y) vs q2(x,y) :- R(y,x): incomparable.
        let q1 = SrcCq::new(
            vec![VarId(0), VarId(1)],
            vec![SrcAtom::new(r(&s), [var(0), var(1)])],
        )
        .unwrap();
        let q2 = SrcCq::new(
            vec![VarId(0), VarId(1)],
            vec![SrcAtom::new(r(&s), [var(1), var(0)])],
        )
        .unwrap();
        assert!(!cq_contained(&q1, &q2));
        assert!(!cq_contained(&q2, &q1));
        assert!(cq_contained(&q1, &q1));
    }

    #[test]
    fn arity_mismatch_is_never_contained() {
        let s = schema();
        let q1 = SrcCq::new(vec![VarId(0)], vec![SrcAtom::new(r(&s), [var(0), var(1)])]).unwrap();
        let q2 = SrcCq::new(
            vec![VarId(0), VarId(1)],
            vec![SrcAtom::new(r(&s), [var(0), var(1)])],
        )
        .unwrap();
        assert!(!cq_contained(&q1, &q2));
    }

    #[test]
    fn ucq_containment() {
        let s = schema();
        let mut pool = obx_srcdb::ConstPool::new();
        let rome = pool.intern("Rome");
        let q_rome = SrcCq::new(
            vec![VarId(0)],
            vec![SrcAtom::new(r(&s), [var(0), Term::Const(rome)])],
        )
        .unwrap();
        let q_any =
            SrcCq::new(vec![VarId(0)], vec![SrcAtom::new(r(&s), [var(0), var(1)])]).unwrap();
        let u_small = SrcUcq::from_cq(q_rome.clone());
        let u_big: SrcUcq = [q_rome, q_any].into_iter().collect();
        assert!(ucq_contained(&u_small, &u_big));
        assert!(!ucq_contained(&u_big, &u_small));
        // Empty union is contained in everything.
        assert!(ucq_contained(&SrcUcq::empty(), &u_small));
    }

    #[test]
    fn minimize_drops_redundant_atoms_only() {
        let s = schema();
        let a = s.rel("A").unwrap();
        // q(x) :- R(x,y), R(x,z), A(x): R(x,z) is redundant.
        let q = SrcCq::new(
            vec![VarId(0)],
            vec![
                SrcAtom::new(r(&s), [var(0), var(1)]),
                SrcAtom::new(r(&s), [var(0), var(2)]),
                SrcAtom::new(a, [var(0)]),
            ],
        )
        .unwrap();
        let core = minimize_cq(&q);
        assert_eq!(core.num_atoms(), 2);
        assert!(cq_equivalent(&q, &core));
        // A genuinely constraining chain loses nothing: R(x,y), R(y,z) has
        // no homomorphism into R(x,y) alone.
        let chain = SrcCq::new(
            vec![VarId(0)],
            vec![
                SrcAtom::new(r(&s), [var(0), var(1)]),
                SrcAtom::new(r(&s), [var(1), var(2)]),
            ],
        )
        .unwrap();
        assert_eq!(minimize_cq(&chain).num_atoms(), 2);
        // Head safety survives: the only atom binding the head stays.
        let single = SrcCq::new(vec![VarId(0)], vec![SrcAtom::new(a, [var(0)])]).unwrap();
        assert_eq!(minimize_cq(&single).num_atoms(), 1);
    }

    #[test]
    fn minimize_onto_cq_collapses_duplicated_patterns() {
        let mut vocab = obx_ontology::OntoVocab::new();
        let studies = vocab.role("studies");
        let q = OntoCq::new(
            vec![VarId(0)],
            vec![
                OntoAtom::Role(studies, var(0), var(1)),
                OntoAtom::Role(studies, var(0), var(2)),
                OntoAtom::Role(studies, var(3), var(1)),
            ],
        )
        .unwrap();
        let core = minimize_onto_cq(&q);
        assert_eq!(core.num_atoms(), 1);
        assert!(onto_cq_contained(&q, &core) && onto_cq_contained(&core, &q));
    }

    #[test]
    fn onto_containment_via_pseudo_encoding() {
        let mut vocab = obx_ontology::OntoVocab::new();
        let student = vocab.concept("Student");
        let studies = vocab.role("studies");
        let q1 = OntoCq::new(
            vec![VarId(0)],
            vec![
                OntoAtom::Concept(student, var(0)),
                OntoAtom::Role(studies, var(0), var(1)),
            ],
        )
        .unwrap();
        let q2 = OntoCq::new(
            vec![VarId(0)],
            vec![OntoAtom::Role(studies, var(0), var(1))],
        )
        .unwrap();
        assert!(onto_cq_contained(&q1, &q2));
        assert!(!onto_cq_contained(&q2, &q1));
        let u1 = OntoUcq::from_cq(q1);
        let u2 = OntoUcq::from_cq(q2);
        assert!(onto_ucq_contained(&u1, &u2));
        assert!(!onto_ucq_contained(&u2, &u1));
    }
}

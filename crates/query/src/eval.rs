//! Evaluation of source CQs/UCQs over a database [`View`].
//!
//! Two evaluators live here, selected at runtime by [`mode`]. The default
//! mode, [`EvalMode::Auto`], dispatches per call by view size: tiny views
//! (below [`guided_min_view`] atoms, typically radius-1 borders) go to the
//! legacy backtracker whose constant factors win at that scale, larger
//! views to the guided engine.
//!
//! * the **guided** evaluator ([`guided`]) — a
//!   constraint-guided join in the worst-case-optimal family: every body
//!   atom is a constraint proposing/confirming values for one variable at
//!   a time, and the engine always binds the variable with the smallest
//!   O(1) cardinality estimate;
//! * the **legacy** evaluator ([`answers_legacy`] and friends) — a
//!   backtracking join with dynamic *atom* ordering: at every depth it
//!   picks the not-yet-joined atom with the smallest estimated candidate
//!   set and binds all of its variables at once. This is the classical
//!   "most-selective-first" heuristic; it remains as the reference
//!   implementation (`OBX_GUIDED=0`) and the baseline the equivalence
//!   suite and the `guided` bench compare against.
//!
//! Both evaluators count the candidate atoms they inspect (one *node* per
//! index-slice or mask entry examined); [`node_counts`] exposes the
//! process-wide totals per evaluator so benches and the observability
//! layer can attribute join work to the mode that did it.

use crate::src::{SrcAtom, SrcCq, SrcUcq};
use crate::term::{Term, VarId};
use obx_srcdb::{Const, View};
use obx_util::FxHashSet;
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

pub mod guided;

/// Which evaluator implementation the public entry points dispatch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalMode {
    /// The fixed-strategy backtracking join (atom-at-a-time).
    Legacy,
    /// The constraint-guided join (variable-at-a-time), on every view.
    Guided,
    /// Size-gated dispatch (the default): guided on views at or above
    /// [`guided_min_view`] atoms, legacy below it. The guided engine's
    /// per-call bookkeeping (constraint propagation state, cardinality
    /// estimates) loses to the plain backtracker on tiny border views —
    /// this recovers that overhead without giving up guided wins at scale.
    Auto,
}

/// 0 = uninitialized (read `OBX_GUIDED` on first use), 1 = legacy,
/// 2 = guided, 3 = auto.
static MODE: AtomicU8 = AtomicU8::new(0);

fn mode_from_env() -> EvalMode {
    match std::env::var("OBX_GUIDED") {
        Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
            "0" | "off" | "false" | "no" => EvalMode::Legacy,
            "auto" => EvalMode::Auto,
            _ => EvalMode::Guided,
        },
        Err(_) => EvalMode::Auto,
    }
}

/// The active evaluator. Initialized from `OBX_GUIDED` on first call
/// (`0|off|false|no` → legacy, `auto` or unset → size-gated auto, any
/// other value → guided on every view); overridable at runtime with
/// [`set_mode`].
pub fn mode() -> EvalMode {
    match MODE.load(Ordering::Relaxed) {
        1 => EvalMode::Legacy,
        2 => EvalMode::Guided,
        3 => EvalMode::Auto,
        _ => {
            let m = mode_from_env();
            set_mode(m);
            m
        }
    }
}

/// Selects the evaluator process-wide. Intended for A/B benches and
/// equivalence tests; concurrent evaluations pick up the change at their
/// next entry-point call, so flip it only between runs.
pub fn set_mode(m: EvalMode) {
    MODE.store(
        match m {
            EvalMode::Legacy => 1,
            EvalMode::Guided => 2,
            EvalMode::Auto => 3,
        },
        Ordering::Relaxed,
    );
}

/// 0 = uninitialized (read `OBX_GUIDED_MIN_VIEW` on first use); the
/// stored value is the threshold plus one so a configured 0 is
/// representable.
static MIN_VIEW: AtomicU64 = AtomicU64::new(0);

/// Default [`Auto`](EvalMode::Auto) threshold: measured on the guided
/// bench's border panel, views under ~16 atoms are where the legacy
/// backtracker's lower constant factors win (the crossover is flat
/// between 8 and 32; 16 splits it).
const DEFAULT_MIN_VIEW: usize = 16;

/// The [`Auto`](EvalMode::Auto) size gate: views with fewer than this
/// many visible atoms evaluate on the legacy engine, the rest on the
/// guided one. Initialized from `OBX_GUIDED_MIN_VIEW` (default 16) on
/// first call; overridable with [`set_guided_min_view`].
pub fn guided_min_view() -> usize {
    match MIN_VIEW.load(Ordering::Relaxed) {
        0 => {
            let t = std::env::var("OBX_GUIDED_MIN_VIEW")
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .unwrap_or(DEFAULT_MIN_VIEW);
            set_guided_min_view(t);
            t
        }
        stored => (stored - 1) as usize,
    }
}

/// Sets the [`Auto`](EvalMode::Auto) size gate process-wide (0 = guided
/// everywhere). Intended for A/B benches and equivalence tests.
pub fn set_guided_min_view(atoms: usize) {
    MIN_VIEW.store((atoms as u64).saturating_add(1), Ordering::Relaxed);
}

/// The evaluator [`mode`] resolves to for a concrete view: `Auto` picks
/// per call by view size, the forced modes pass through.
fn effective_mode(view: &View<'_>) -> EvalMode {
    match mode() {
        EvalMode::Auto => {
            if view.len() < guided_min_view() {
                EvalMode::Legacy
            } else {
                EvalMode::Guided
            }
        }
        forced => forced,
    }
}

/// Process-wide candidate-inspection totals (monotone).
static LEGACY_NODES: AtomicU64 = AtomicU64::new(0);
static GUIDED_NODES: AtomicU64 = AtomicU64::new(0);

/// Cumulative `(legacy, guided)` node counts: one node per candidate
/// database atom inspected by the respective evaluator (including
/// mask-filtered and consistency-rejected candidates — the true measure
/// of join work). Monotone process-wide totals; read before/after a
/// region and subtract.
pub fn node_counts() -> (u64, u64) {
    (
        LEGACY_NODES.load(Ordering::Relaxed),
        GUIDED_NODES.load(Ordering::Relaxed),
    )
}

/// A variable binding, dense over the query's variable indices.
struct Binding {
    slots: Vec<Option<Const>>,
}

impl Binding {
    fn new(num_vars: usize) -> Self {
        Self {
            slots: vec![None; num_vars],
        }
    }

    #[inline]
    fn get(&self, v: VarId) -> Option<Const> {
        self.slots[v.index()]
    }

    #[inline]
    fn resolve(&self, t: Term) -> Option<Const> {
        match t {
            Term::Const(c) => Some(c),
            Term::Var(v) => self.get(v),
        }
    }
}

/// Estimated number of candidate database atoms for `atom` under the
/// current binding, estimated against the **masked** view: index sizes are
/// capped by the number of visible atoms, so on a border-sized mask a
/// bound-argument index over a huge relation no longer looks worse than an
/// unbound scan of a small one (the estimate that used to mis-order joins
/// on masked views).
fn selectivity(view: &View<'_>, atom: &SrcAtom, binding: &Binding) -> usize {
    let mut best = view.size_hint_of(atom.rel);
    for (pos, &t) in atom.args.iter().enumerate() {
        if let Some(c) = binding.resolve(t) {
            best = best.min(view.db().atoms_with(atom.rel, pos, c).len());
        }
    }
    // No index can contribute more atoms than the view makes visible.
    best.min(view.len())
}

/// Iterator over candidate atom ids for one atom: the most selective index
/// slice, filtered by the view's mask. A concrete type (not a boxed
/// `dyn Iterator`) so the per-node hot path of the backtracking search
/// does not allocate; it borrows only the view, so the search can keep
/// mutating the binding while iterating.
struct CandidateIter<'v> {
    ids: &'v [obx_srcdb::AtomId],
    view: View<'v>,
    next: usize,
    /// Per-search node tally (candidates inspected, visible or not),
    /// flushed into [`LEGACY_NODES`] by the entry points.
    nodes: &'v Cell<u64>,
}

impl Iterator for CandidateIter<'_> {
    type Item = obx_srcdb::AtomId;

    fn next(&mut self) -> Option<obx_srcdb::AtomId> {
        while let Some(&id) = self.ids.get(self.next) {
            self.next += 1;
            self.nodes.set(self.nodes.get() + 1);
            if self.view.visible(id) {
                return Some(id);
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, Some(self.ids.len() - self.next))
    }
}

/// Candidate atom ids for `atom` under `binding`, using the most selective
/// index available.
fn candidates<'v>(
    view: View<'v>,
    atom: &SrcAtom,
    binding: &Binding,
    nodes: &'v Cell<u64>,
) -> CandidateIter<'v> {
    let mut best: Option<(usize, usize, Const)> = None; // (index size, pos, const)
    for (pos, &t) in atom.args.iter().enumerate() {
        if let Some(c) = binding.resolve(t) {
            let size = view.db().atoms_with(atom.rel, pos, c).len();
            if best.map_or(true, |(s, _, _)| size < s) {
                best = Some((size, pos, c));
            }
        }
    }
    let ids = match best {
        Some((_, pos, c)) => view.db().atoms_with(atom.rel, pos, c),
        None => view.db().atoms_of(atom.rel),
    };
    CandidateIter {
        ids,
        view,
        next: 0,
        nodes,
    }
}

/// Tries to match `atom` against the database atom `id`, extending
/// `binding`. Newly bound variables are pushed onto `trail` (the caller
/// records the trail length before the call and rewinds with [`undo_to`]
/// on backtrack). On failure the binding and trail are restored before
/// returning. The trail is a single per-search scratch buffer, so the hot
/// per-node path of the backtracking join performs no allocation.
fn try_match(
    view: &View<'_>,
    atom: &SrcAtom,
    id: obx_srcdb::AtomId,
    binding: &mut Binding,
    trail: &mut Vec<VarId>,
) -> bool {
    let fact = view.atom(id);
    debug_assert_eq!(fact.rel, atom.rel);
    if fact.args.len() != atom.args.len() {
        return false;
    }
    let mark = trail.len();
    for (&t, &c) in atom.args.iter().zip(fact.args.iter()) {
        match t {
            Term::Const(qc) => {
                if qc != c {
                    undo_to(binding, trail, mark);
                    return false;
                }
            }
            Term::Var(v) => match binding.get(v) {
                Some(bound) => {
                    if bound != c {
                        undo_to(binding, trail, mark);
                        return false;
                    }
                }
                None => {
                    binding.slots[v.index()] = Some(c);
                    trail.push(v);
                }
            },
        }
    }
    true
}

/// Unbinds every variable recorded after `mark` and truncates the trail
/// back to it.
#[inline]
fn undo_to(binding: &mut Binding, trail: &mut Vec<VarId>, mark: usize) {
    for &v in &trail[mark..] {
        binding.slots[v.index()] = None;
    }
    trail.truncate(mark);
}

/// Picks the next atom to join: the most selective unjoined atom — except
/// when exactly one atom remains, where the selectivity estimates cannot
/// change a choice of one and are skipped outright (on deep joins the
/// final level dominates the node count, so this halves the estimator
/// work).
fn pick_unjoined(
    view: &View<'_>,
    atoms: &[SrcAtom],
    used: &[bool],
    binding: &Binding,
    remaining: usize,
) -> usize {
    if remaining == 1 {
        for (i, &u) in used.iter().enumerate() {
            if !u {
                return i;
            }
        }
    }
    let mut pick = 0;
    let mut pick_size = usize::MAX;
    for (i, atom) in atoms.iter().enumerate() {
        if used[i] {
            continue;
        }
        let s = selectivity(view, atom, binding);
        if s < pick_size {
            pick_size = s;
            pick = i;
        }
    }
    pick
}

/// Depth-first search over the remaining atoms. `on_solution` returns
/// `true` to keep searching, `false` to stop early. Returns `false` iff the
/// search was stopped early.
#[allow(clippy::too_many_arguments)]
fn search(
    view: &View<'_>,
    atoms: &[SrcAtom],
    used: &mut [bool],
    remaining: usize,
    binding: &mut Binding,
    trail: &mut Vec<VarId>,
    nodes: &Cell<u64>,
    on_solution: &mut dyn FnMut(&Binding) -> bool,
) -> bool {
    if remaining == 0 {
        return on_solution(binding);
    }
    let pick = pick_unjoined(view, atoms, used, binding, remaining);
    let atom = &atoms[pick];
    used[pick] = true;
    let mut keep_going = true;
    for id in candidates(*view, atom, binding, nodes) {
        let mark = trail.len();
        if try_match(view, atom, id, binding, trail) {
            keep_going = search(
                view,
                atoms,
                used,
                remaining - 1,
                binding,
                trail,
                nodes,
                on_solution,
            );
            undo_to(binding, trail, mark);
            if !keep_going {
                break;
            }
        }
    }
    used[pick] = false;
    keep_going
}

fn num_vars(cq: &SrcCq) -> usize {
    cq.max_var().map_or(0, |m| m as usize + 1)
}

/// All answers of `cq` over `view`: the set of head-variable tuples.
/// Dispatches to the evaluator selected by [`mode`].
pub fn answers(view: View<'_>, cq: &SrcCq) -> FxHashSet<Box<[Const]>> {
    match effective_mode(&view) {
        EvalMode::Legacy => answers_legacy(view, cq),
        _ => guided::answers(view, cq),
    }
}

/// [`answers`] on the legacy backtracking evaluator, regardless of
/// [`mode`]. Reference implementation for the equivalence suite and the
/// baseline side of A/B benches.
pub fn answers_legacy(view: View<'_>, cq: &SrcCq) -> FxHashSet<Box<[Const]>> {
    let mut out: FxHashSet<Box<[Const]>> = FxHashSet::default();
    let mut binding = Binding::new(num_vars(cq));
    let mut trail: Vec<VarId> = Vec::with_capacity(binding.slots.len());
    let mut used = vec![false; cq.body().len()];
    let n = cq.body().len();
    let nodes = Cell::new(0u64);
    search(
        &view,
        cq.body(),
        &mut used,
        n,
        &mut binding,
        &mut trail,
        &nodes,
        &mut |b| {
            let tuple: Box<[Const]> = cq
                .head()
                .iter()
                .map(|&v| b.get(v).expect("head var bound by safety"))
                .collect();
            out.insert(tuple);
            true
        },
    );
    LEGACY_NODES.fetch_add(nodes.get(), Ordering::Relaxed);
    out
}

/// Whether `tuple` is an answer of `cq` over `view`.
///
/// Head variables are pre-bound to the tuple (so this is a single
/// goal-directed search, not answer enumeration). Returns `false` when the
/// tuple arity differs from the query arity, or when a repeated head
/// variable would need two different constants. Dispatches to the
/// evaluator selected by [`mode`].
pub fn satisfies(view: View<'_>, cq: &SrcCq, tuple: &[Const]) -> bool {
    match effective_mode(&view) {
        EvalMode::Legacy => satisfies_legacy(view, cq, tuple),
        _ => guided::satisfies(view, cq, tuple),
    }
}

/// [`satisfies`] on the legacy backtracking evaluator, regardless of
/// [`mode`].
pub fn satisfies_legacy(view: View<'_>, cq: &SrcCq, tuple: &[Const]) -> bool {
    if tuple.len() != cq.arity() {
        return false;
    }
    let mut binding = Binding::new(num_vars(cq));
    for (&v, &c) in cq.head().iter().zip(tuple.iter()) {
        match binding.get(v) {
            Some(prev) if prev != c => return false,
            _ => binding.slots[v.index()] = Some(c),
        }
    }
    let mut trail: Vec<VarId> = Vec::with_capacity(binding.slots.len());
    let mut used = vec![false; cq.body().len()];
    let n = cq.body().len();
    let nodes = Cell::new(0u64);
    let mut found = false;
    search(
        &view,
        cq.body(),
        &mut used,
        n,
        &mut binding,
        &mut trail,
        &nodes,
        &mut |_| {
            found = true;
            false // stop at the first witness
        },
    );
    LEGACY_NODES.fetch_add(nodes.get(), Ordering::Relaxed);
    found
}

/// Like [`satisfies`], but additionally returns a *witness*: the database
/// atoms (one per body atom, in body order) of the first embedding found.
/// This is the provenance primitive behind explanation evidence — the
/// paper's future-work item on explaining query answers (its reference
/// [10]) asks exactly for the facts that ground a certain answer.
/// Dispatches to the evaluator selected by [`mode`]; the two evaluators
/// may ground the body with *different* (both valid) witnesses.
pub fn witness(view: View<'_>, cq: &SrcCq, tuple: &[Const]) -> Option<Vec<obx_srcdb::AtomId>> {
    match effective_mode(&view) {
        EvalMode::Legacy => witness_legacy(view, cq, tuple),
        _ => guided::witness(view, cq, tuple),
    }
}

/// [`witness`] on the legacy backtracking evaluator, regardless of
/// [`mode`].
pub fn witness_legacy(
    view: View<'_>,
    cq: &SrcCq,
    tuple: &[Const],
) -> Option<Vec<obx_srcdb::AtomId>> {
    if tuple.len() != cq.arity() {
        return None;
    }
    let mut binding = Binding::new(num_vars(cq));
    for (&v, &c) in cq.head().iter().zip(tuple.iter()) {
        match binding.get(v) {
            Some(prev) if prev != c => return None,
            _ => binding.slots[v.index()] = Some(c),
        }
    }
    // Re-run the search keeping per-atom matched ids. Reuses the same
    // machinery with a side table filled on the way down.
    #[allow(clippy::too_many_arguments)]
    fn go(
        view: &View<'_>,
        atoms: &[SrcAtom],
        used: &mut [bool],
        matched: &mut [Option<obx_srcdb::AtomId>],
        remaining: usize,
        binding: &mut Binding,
        trail: &mut Vec<VarId>,
        nodes: &Cell<u64>,
    ) -> bool {
        if remaining == 0 {
            return true;
        }
        let pick = pick_unjoined(view, atoms, used, binding, remaining);
        let atom = &atoms[pick];
        used[pick] = true;
        for id in candidates(*view, atom, binding, nodes) {
            let mark = trail.len();
            if try_match(view, atom, id, binding, trail) {
                matched[pick] = Some(id);
                if go(
                    view,
                    atoms,
                    used,
                    matched,
                    remaining - 1,
                    binding,
                    trail,
                    nodes,
                ) {
                    return true;
                }
                matched[pick] = None;
                undo_to(binding, trail, mark);
            }
        }
        used[pick] = false;
        false
    }
    let n = cq.body().len();
    let mut used = vec![false; n];
    let mut trail: Vec<VarId> = Vec::with_capacity(binding.slots.len());
    let mut matched: Vec<Option<obx_srcdb::AtomId>> = vec![None; n];
    let nodes = Cell::new(0u64);
    let hit = go(
        &view,
        cq.body(),
        &mut used,
        &mut matched,
        n,
        &mut binding,
        &mut trail,
        &nodes,
    );
    LEGACY_NODES.fetch_add(nodes.get(), Ordering::Relaxed);
    if hit {
        Some(
            matched
                .into_iter()
                .map(|m| m.expect("all atoms matched"))
                .collect(),
        )
    } else {
        None
    }
}

/// First witness across a UCQ's disjuncts, with the disjunct index.
pub fn witness_ucq(
    view: View<'_>,
    ucq: &SrcUcq,
    tuple: &[Const],
) -> Option<(usize, Vec<obx_srcdb::AtomId>)> {
    ucq.disjuncts()
        .iter()
        .enumerate()
        .find_map(|(i, cq)| witness(view, cq, tuple).map(|w| (i, w)))
}

/// All answers of a UCQ (union of the disjuncts' answers).
pub fn answers_ucq(view: View<'_>, ucq: &SrcUcq) -> FxHashSet<Box<[Const]>> {
    let mut out: FxHashSet<Box<[Const]>> = FxHashSet::default();
    for cq in ucq.disjuncts() {
        out.extend(answers(view, cq));
    }
    out
}

/// Whether `tuple` is an answer of some disjunct.
pub fn satisfies_ucq(view: View<'_>, ucq: &SrcUcq, tuple: &[Const]) -> bool {
    ucq.disjuncts().iter().any(|cq| satisfies(view, cq, tuple))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::var;
    use obx_srcdb::{Database, Schema};

    /// The source database of the paper's Example 3.6.
    fn students_db() -> Database {
        let mut schema = Schema::new();
        schema.declare("STUD", 1).unwrap();
        schema.declare("LOC", 2).unwrap();
        schema.declare("ENR", 3).unwrap();
        let mut db = Database::new(schema);
        for s in ["A10", "B80", "C12", "D50", "E25"] {
            db.insert_named("STUD", &[s]).unwrap();
        }
        db.insert_named("LOC", &["Sap", "Rome"]).unwrap();
        db.insert_named("LOC", &["TV", "Rome"]).unwrap();
        db.insert_named("LOC", &["Pol", "Milan"]).unwrap();
        db.insert_named("ENR", &["A10", "Math", "TV"]).unwrap();
        db.insert_named("ENR", &["B80", "Math", "Sap"]).unwrap();
        db.insert_named("ENR", &["C12", "Science", "Norm"]).unwrap();
        db.insert_named("ENR", &["D50", "Science", "TV"]).unwrap();
        db.insert_named("ENR", &["E25", "Math", "Pol"]).unwrap();
        db
    }

    fn c(db: &Database, name: &str) -> Const {
        db.consts().get(name).expect("constant present")
    }

    #[test]
    fn single_atom_scan() {
        let db = students_db();
        let stud = db.schema().rel("STUD").unwrap();
        let q = SrcCq::new(vec![VarId(0)], vec![SrcAtom::new(stud, [var(0)])]).unwrap();
        let ans = answers(View::full(&db), &q);
        assert_eq!(ans.len(), 5);
        assert!(ans.contains(&vec![c(&db, "A10")].into_boxed_slice()));
    }

    #[test]
    fn join_with_constant() {
        let db = students_db();
        let enr = db.schema().rel("ENR").unwrap();
        let loc = db.schema().rel("LOC").unwrap();
        let rome = c(&db, "Rome");
        // q(x) :- ENR(x, y, z), LOC(z, "Rome")
        let q = SrcCq::new(
            vec![VarId(0)],
            vec![
                SrcAtom::new(enr, [var(0), var(1), var(2)]),
                SrcAtom::new(loc, [var(2), Term::Const(rome)]),
            ],
        )
        .unwrap();
        let ans = answers(View::full(&db), &q);
        let names: FxHashSet<&str> = ans.iter().map(|t| db.consts().resolve(t[0])).collect();
        assert_eq!(names, ["A10", "B80", "D50"].into_iter().collect());
    }

    #[test]
    fn satisfies_is_goal_directed_and_agrees_with_answers() {
        let db = students_db();
        let enr = db.schema().rel("ENR").unwrap();
        let math = c(&db, "Math");
        // q(x) :- ENR(x, "Math", z)
        let q = SrcCq::new(
            vec![VarId(0)],
            vec![SrcAtom::new(enr, [var(0), Term::Const(math), var(1)])],
        )
        .unwrap();
        let view = View::full(&db);
        let ans = answers(view, &q);
        for name in ["A10", "B80", "C12", "D50", "E25"] {
            let t = [c(&db, name)];
            assert_eq!(
                satisfies(view, &q, &t),
                ans.contains(&t.to_vec().into_boxed_slice()),
                "mismatch for {name}"
            );
        }
    }

    #[test]
    fn satisfies_rejects_wrong_arity_and_conflicting_repeated_head() {
        let db = students_db();
        let loc = db.schema().rel("LOC").unwrap();
        // q(x, x) :- LOC(x, x) — diagonal query, no LOC fact is reflexive.
        let q = SrcCq::new(
            vec![VarId(0), VarId(0)],
            vec![SrcAtom::new(loc, [var(0), var(0)])],
        )
        .unwrap();
        let view = View::full(&db);
        let sap = c(&db, "Sap");
        let rome = c(&db, "Rome");
        assert!(!satisfies(view, &q, &[sap])); // wrong arity
        assert!(!satisfies(view, &q, &[sap, rome])); // conflicting repeat
        assert!(!satisfies(view, &q, &[sap, sap])); // consistent but no fact
    }

    #[test]
    fn repeated_variable_within_atom() {
        let mut schema = Schema::new();
        schema.declare("E", 2).unwrap();
        let mut db = Database::new(schema);
        db.insert_named("E", &["a", "a"]).unwrap();
        db.insert_named("E", &["a", "b"]).unwrap();
        let e = db.schema().rel("E").unwrap();
        let q = SrcCq::new(vec![VarId(0)], vec![SrcAtom::new(e, [var(0), var(0)])]).unwrap();
        let ans = answers(View::full(&db), &q);
        assert_eq!(ans.len(), 1);
        assert!(ans.contains(&vec![c(&db, "a")].into_boxed_slice()));
    }

    #[test]
    fn evaluation_respects_masked_views() {
        let db = students_db();
        let enr = db.schema().rel("ENR").unwrap();
        let q = SrcCq::new(
            vec![VarId(0)],
            vec![SrcAtom::new(enr, [var(0), var(1), var(2)])],
        )
        .unwrap();
        // Mask down to the single ENR(C12, …) fact.
        let c12 = c(&db, "C12");
        let mask: FxHashSet<obx_srcdb::AtomId> =
            db.atoms_with(enr, 0, c12).iter().copied().collect();
        let ans = answers(View::masked(&db, &mask), &q);
        assert_eq!(ans.len(), 1);
        assert!(ans.contains(&vec![c12].into_boxed_slice()));
    }

    #[test]
    fn boolean_style_queries_via_constant_only_atoms() {
        let db = students_db();
        let loc = db.schema().rel("LOC").unwrap();
        let sap = c(&db, "Sap");
        let rome = c(&db, "Rome");
        let stud = db.schema().rel("STUD").unwrap();
        // q(x) :- STUD(x), LOC("Sap", "Rome") — the second atom is a guard.
        let q = SrcCq::new(
            vec![VarId(0)],
            vec![
                SrcAtom::new(stud, [var(0)]),
                SrcAtom::new(loc, [Term::Const(sap), Term::Const(rome)]),
            ],
        )
        .unwrap();
        assert_eq!(answers(View::full(&db), &q).len(), 5);
        // With a false guard there are no answers.
        let milan = c(&db, "Milan");
        let q2 = SrcCq::new(
            vec![VarId(0)],
            vec![
                SrcAtom::new(stud, [var(0)]),
                SrcAtom::new(loc, [Term::Const(sap), Term::Const(milan)]),
            ],
        )
        .unwrap();
        assert!(answers(View::full(&db), &q2).is_empty());
    }

    #[test]
    fn witness_returns_grounding_atoms() {
        let db = students_db();
        let enr = db.schema().rel("ENR").unwrap();
        let loc = db.schema().rel("LOC").unwrap();
        let rome = c(&db, "Rome");
        // q(x) :- ENR(x, y, z), LOC(z, "Rome")
        let q = SrcCq::new(
            vec![VarId(0)],
            vec![
                SrcAtom::new(enr, [var(0), var(1), var(2)]),
                SrcAtom::new(loc, [var(2), Term::Const(rome)]),
            ],
        )
        .unwrap();
        let view = View::full(&db);
        let a10 = c(&db, "A10");
        let w = witness(view, &q, &[a10]).expect("A10 matches");
        assert_eq!(w.len(), 2);
        // Witness atoms ground the body in order: an ENR fact about A10,
        // then a LOC(..., Rome) fact.
        let w0 = db.atom(w[0]);
        let w1 = db.atom(w[1]);
        assert_eq!(w0.rel, enr);
        assert_eq!(w0.args[0], a10);
        assert_eq!(w1.rel, loc);
        assert_eq!(w1.args[1], rome);
        // The ENR's university must be the LOC's subject (join respected).
        assert_eq!(w0.args[2], w1.args[0]);
        // Non-answers yield no witness: E25's own university (Pol) is in
        // Milan, and this source query joins the student's *own* ENR row
        // with LOC (unlike the ontology q1, whose subject-mediated join
        // lets E25 match globally).
        let e25 = c(&db, "E25");
        assert!(witness(view, &q, &[e25]).is_none());
        let milan = c(&db, "Milan");
        assert!(witness(view, &q, &[milan]).is_none());
        // Arity mismatch yields none.
        assert!(witness(view, &q, &[a10, a10]).is_none());
    }

    #[test]
    fn witness_ucq_reports_disjunct_index() {
        let db = students_db();
        let enr = db.schema().rel("ENR").unwrap();
        let math = c(&db, "Math");
        let science = c(&db, "Science");
        let q_math = SrcCq::new(
            vec![VarId(0)],
            vec![SrcAtom::new(enr, [var(0), Term::Const(math), var(1)])],
        )
        .unwrap();
        let q_sci = SrcCq::new(
            vec![VarId(0)],
            vec![SrcAtom::new(enr, [var(0), Term::Const(science), var(1)])],
        )
        .unwrap();
        let ucq: SrcUcq = [q_math, q_sci].into_iter().collect();
        let view = View::full(&db);
        let (i_a10, _) = witness_ucq(view, &ucq, &[c(&db, "A10")]).unwrap();
        let (i_c12, _) = witness_ucq(view, &ucq, &[c(&db, "C12")]).unwrap();
        assert_ne!(
            i_a10, i_c12,
            "Math and Science students hit different disjuncts"
        );
    }

    #[test]
    fn ucq_unions_disjuncts() {
        let db = students_db();
        let enr = db.schema().rel("ENR").unwrap();
        let math = c(&db, "Math");
        let science = c(&db, "Science");
        let q_math = SrcCq::new(
            vec![VarId(0)],
            vec![SrcAtom::new(enr, [var(0), Term::Const(math), var(1)])],
        )
        .unwrap();
        let q_sci = SrcCq::new(
            vec![VarId(0)],
            vec![SrcAtom::new(enr, [var(0), Term::Const(science), var(1)])],
        )
        .unwrap();
        let ucq: SrcUcq = [q_math, q_sci].into_iter().collect();
        let view = View::full(&db);
        assert_eq!(answers_ucq(view, &ucq).len(), 5);
        assert!(satisfies_ucq(view, &ucq, &[c(&db, "C12")]));
    }

    #[test]
    fn cross_product_queries_terminate_and_are_correct() {
        let db = students_db();
        let stud = db.schema().rel("STUD").unwrap();
        // q(x, y) :- STUD(x), STUD(y) — 25 answers.
        let q = SrcCq::new(
            vec![VarId(0), VarId(1)],
            vec![SrcAtom::new(stud, [var(0)]), SrcAtom::new(stud, [var(1)])],
        )
        .unwrap();
        assert_eq!(answers(View::full(&db), &q).len(), 25);
    }

    #[test]
    fn auto_mode_gates_by_view_size() {
        let db = students_db();
        let n = db.len();
        let prev_mode = mode();
        let prev_gate = guided_min_view();
        set_mode(EvalMode::Auto);
        // Gate above the view size → the tiny view routes to legacy.
        set_guided_min_view(n + 1);
        assert_eq!(effective_mode(&View::full(&db)), EvalMode::Legacy);
        // Gate at or below the view size → guided.
        set_guided_min_view(n);
        assert_eq!(effective_mode(&View::full(&db)), EvalMode::Guided);
        set_guided_min_view(0);
        assert_eq!(effective_mode(&View::full(&db)), EvalMode::Guided);
        // A masked view is gated by its *visible* atom count, not the
        // database's: a border-sized mask over a big database goes legacy.
        let mask: obx_util::FxHashSet<obx_srcdb::AtomId> = db.atom_ids().take(3).collect();
        set_guided_min_view(4);
        assert_eq!(effective_mode(&View::masked(&db, &mask)), EvalMode::Legacy);
        // Forced modes pass through the gate untouched.
        set_mode(EvalMode::Legacy);
        assert_eq!(effective_mode(&View::full(&db)), EvalMode::Legacy);
        set_mode(EvalMode::Guided);
        set_guided_min_view(usize::MAX);
        assert_eq!(effective_mode(&View::full(&db)), EvalMode::Guided);
        set_guided_min_view(prev_gate);
        set_mode(prev_mode);
    }
}

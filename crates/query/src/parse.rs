//! Text syntax for queries.
//!
//! ```text
//! q(x) :- studies(x, y), taughtIn(y, z), locatedIn(z, "Rome")
//! ```
//!
//! * the head name (`q`) is ignored;
//! * bare identifiers are **variables**;
//! * quoted strings (single or double quotes) are **constants**, interned
//!   into the caller's [`ConstPool`] (which must be the database's pool so
//!   constants align at evaluation time);
//! * for ontology queries, unary atoms must name concepts and binary atoms
//!   must name roles;
//! * a UCQ is one CQ per non-empty line.

use crate::onto::{OntoAtom, OntoCq, OntoUcq};
use crate::src::{SrcAtom, SrcCq};
use crate::term::{Term, VarId};
use obx_srcdb::{parse::split_atom, parse::unquote, ConstPool, Schema};
use obx_ontology::OntoVocab;
use obx_util::FxHashMap;
use std::fmt;

/// Errors from the query parsers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryParseError {
    /// Description of the problem.
    pub msg: String,
}

impl fmt::Display for QueryParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for QueryParseError {}

fn err(msg: impl Into<String>) -> QueryParseError {
    QueryParseError { msg: msg.into() }
}

struct VarScope {
    names: FxHashMap<String, VarId>,
}

impl VarScope {
    fn new() -> Self {
        Self {
            names: FxHashMap::default(),
        }
    }

    fn var(&mut self, name: &str) -> VarId {
        let next = VarId(self.names.len() as u32);
        *self.names.entry(name.to_owned()).or_insert(next)
    }
}

fn is_quoted(s: &str) -> bool {
    let b = s.as_bytes();
    b.len() >= 2
        && ((b[0] == b'"' && b[b.len() - 1] == b'"') || (b[0] == b'\'' && b[b.len() - 1] == b'\''))
}

fn parse_term(scope: &mut VarScope, consts: &mut ConstPool, raw: &str) -> Result<Term, QueryParseError> {
    if raw.is_empty() {
        return Err(err("empty term"));
    }
    if is_quoted(raw) {
        Ok(Term::Const(consts.intern(unquote(raw))))
    } else if raw
        .chars()
        .all(|c| c.is_alphanumeric() || c == '_')
    {
        Ok(Term::Var(scope.var(raw)))
    } else {
        Err(err(format!("bad term `{raw}` (quote constants)")))
    }
}

/// Splits `HEAD :- BODY` and returns (head atom text, body atom texts).
fn split_rule(text: &str) -> Result<(&str, Vec<String>), QueryParseError> {
    let (head, body) = text
        .split_once(":-")
        .ok_or_else(|| err(format!("expected `head :- body` in `{text}`")))?;
    // Split the body on commas at depth 0 (commas also appear inside atoms).
    let mut atoms: Vec<String> = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    for ch in body.chars() {
        match ch {
            '(' => {
                depth += 1;
                cur.push(ch);
            }
            ')' => {
                depth = depth
                    .checked_sub(1)
                    .ok_or_else(|| err("unbalanced parentheses"))?;
                cur.push(ch);
            }
            ',' if depth == 0 => {
                atoms.push(cur.trim().to_owned());
                cur.clear();
            }
            _ => cur.push(ch),
        }
    }
    if depth != 0 {
        return Err(err("unbalanced parentheses"));
    }
    if !cur.trim().is_empty() {
        atoms.push(cur.trim().to_owned());
    }
    if atoms.is_empty() {
        return Err(err("empty body"));
    }
    Ok((head.trim(), atoms))
}

fn parse_head(scope: &mut VarScope, head: &str) -> Result<Vec<VarId>, QueryParseError> {
    let (_, args) = split_atom(head).ok_or_else(|| err(format!("bad head `{head}`")))?;
    let mut out = Vec::with_capacity(args.len());
    for a in args {
        if a.is_empty() || is_quoted(a) {
            return Err(err(format!("head terms must be variables, got `{a}`")));
        }
        out.push(scope.var(a));
    }
    Ok(out)
}

/// Parses a CQ over the ontology vocabulary.
pub fn parse_onto_cq(
    vocab: &OntoVocab,
    consts: &mut ConstPool,
    text: &str,
) -> Result<OntoCq, QueryParseError> {
    let (head_txt, atom_txts) = split_rule(text)?;
    let mut scope = VarScope::new();
    let head = parse_head(&mut scope, head_txt)?;
    let mut body = Vec::with_capacity(atom_txts.len());
    for atom_txt in &atom_txts {
        let (name, args) =
            split_atom(atom_txt).ok_or_else(|| err(format!("bad atom `{atom_txt}`")))?;
        let terms: Vec<Term> = args
            .iter()
            .map(|a| parse_term(&mut scope, consts, a))
            .collect::<Result<_, _>>()?;
        match terms.len() {
            1 => {
                let c = vocab
                    .get_concept(name)
                    .ok_or_else(|| err(format!("unknown concept `{name}`")))?;
                body.push(OntoAtom::Concept(c, terms[0]));
            }
            2 => {
                let r = vocab
                    .get_role(name)
                    .ok_or_else(|| err(format!("unknown role `{name}`")))?;
                body.push(OntoAtom::Role(r, terms[0], terms[1]));
            }
            n => return Err(err(format!("ontology atom `{name}` has arity {n}, not 1/2"))),
        }
    }
    OntoCq::new(head, body).map_err(|e| err(e.to_string()))
}

/// Parses a UCQ over the ontology vocabulary: one CQ per non-empty,
/// non-comment line.
pub fn parse_onto_ucq(
    vocab: &OntoVocab,
    consts: &mut ConstPool,
    text: &str,
) -> Result<OntoUcq, QueryParseError> {
    let mut ucq = OntoUcq::empty();
    for raw in text.lines() {
        let line = match raw.find('#') {
            Some(i) => &raw[..i],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        ucq.push(parse_onto_cq(vocab, consts, line)?);
    }
    if ucq.is_empty() {
        return Err(err("no disjuncts"));
    }
    Ok(ucq)
}

/// Parses a CQ over the source schema.
pub fn parse_src_cq(
    schema: &Schema,
    consts: &mut ConstPool,
    text: &str,
) -> Result<SrcCq, QueryParseError> {
    let (head_txt, atom_txts) = split_rule(text)?;
    let mut scope = VarScope::new();
    let head = parse_head(&mut scope, head_txt)?;
    let mut body = Vec::with_capacity(atom_txts.len());
    for atom_txt in &atom_txts {
        let (name, args) =
            split_atom(atom_txt).ok_or_else(|| err(format!("bad atom `{atom_txt}`")))?;
        let rel = schema
            .rel(name)
            .map_err(|e| err(e.to_string()))?;
        if schema.arity(rel) != args.len() {
            return Err(err(format!(
                "relation `{name}` has arity {}, got {}",
                schema.arity(rel),
                args.len()
            )));
        }
        let terms: Vec<Term> = args
            .iter()
            .map(|a| parse_term(&mut scope, consts, a))
            .collect::<Result<_, _>>()?;
        body.push(SrcAtom::new(rel, terms));
    }
    SrcCq::new(head, body).map_err(|e| err(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use obx_ontology::parse_tbox;
    use obx_srcdb::parse_schema;

    #[test]
    fn parses_the_papers_q1() {
        let tbox =
            parse_tbox("concept none\nrole studies taughtIn locatedIn likes").unwrap();
        let mut consts = ConstPool::new();
        let q = parse_onto_cq(
            tbox.vocab(),
            &mut consts,
            r#"q(x) :- studies(x, y), taughtIn(y, z), locatedIn(z, "Rome")"#,
        )
        .unwrap();
        assert_eq!(q.arity(), 1);
        assert_eq!(q.num_atoms(), 3);
        assert_eq!(q.head(), &[VarId(0)]);
        let rome = consts.get("Rome").unwrap();
        assert!(matches!(
            q.body()[2],
            OntoAtom::Role(_, Term::Var(_), Term::Const(c)) if c == rome
        ));
    }

    #[test]
    fn variable_identity_is_by_name() {
        let tbox = parse_tbox("role r").unwrap();
        let mut consts = ConstPool::new();
        let q = parse_onto_cq(tbox.vocab(), &mut consts, "q(x) :- r(x, y), r(y, x)").unwrap();
        let (a, b) = match (q.body()[0], q.body()[1]) {
            (OntoAtom::Role(_, a1, a2), OntoAtom::Role(_, b1, b2)) => ((a1, a2), (b1, b2)),
            _ => panic!(),
        };
        assert_eq!(a.0, b.1);
        assert_eq!(a.1, b.0);
    }

    #[test]
    fn unary_is_concept_binary_is_role() {
        let tbox = parse_tbox("concept Student\nrole studies").unwrap();
        let mut consts = ConstPool::new();
        assert!(parse_onto_cq(tbox.vocab(), &mut consts, "q(x) :- Student(x)").is_ok());
        assert!(parse_onto_cq(tbox.vocab(), &mut consts, "q(x) :- studies(x, y)").is_ok());
        let e = parse_onto_cq(tbox.vocab(), &mut consts, "q(x) :- studies(x)").unwrap_err();
        assert!(e.msg.contains("unknown concept"));
        let e = parse_onto_cq(tbox.vocab(), &mut consts, "q(x) :- Student(x, y)").unwrap_err();
        assert!(e.msg.contains("unknown role"));
        let e =
            parse_onto_cq(tbox.vocab(), &mut consts, "q(x) :- Student(x, y, z)").unwrap_err();
        assert!(e.msg.contains("arity"));
    }

    #[test]
    fn src_queries_check_schema_arity() {
        let schema = parse_schema("ENR/3 LOC/2").unwrap();
        let mut consts = ConstPool::new();
        let q = parse_src_cq(
            &schema,
            &mut consts,
            r#"q(x) :- ENR(x, y, z), LOC(z, "Rome")"#,
        )
        .unwrap();
        assert_eq!(q.num_atoms(), 2);
        assert!(parse_src_cq(&schema, &mut consts, "q(x) :- ENR(x, y)").is_err());
        assert!(parse_src_cq(&schema, &mut consts, "q(x) :- NOPE(x, y)").is_err());
    }

    #[test]
    fn malformed_queries_error() {
        let tbox = parse_tbox("role r").unwrap();
        let mut consts = ConstPool::new();
        for bad in [
            "q(x) r(x, y)",         // no :-
            "q(x) :-",              // empty body
            "q(\"c\") :- r(x, y)",  // constant in head
            "q(x) :- r(x, y",       // unbalanced
            "q(z) :- r(x, y)",      // unsafe head
            "q(x) :- r(x, a-b)",    // bad term
        ] {
            assert!(
                parse_onto_cq(tbox.vocab(), &mut consts, bad).is_err(),
                "should reject `{bad}`"
            );
        }
    }

    #[test]
    fn ucq_parses_lines_and_dedups() {
        let tbox = parse_tbox("role r").unwrap();
        let mut consts = ConstPool::new();
        let u = parse_onto_ucq(
            tbox.vocab(),
            &mut consts,
            "# comment\nq(x) :- r(x, y)\n\nq(u) :- r(u, w)\n",
        )
        .unwrap();
        assert_eq!(u.len(), 1, "alpha-equivalent disjuncts dedup");
        assert!(parse_onto_ucq(tbox.vocab(), &mut consts, "# nothing").is_err());
    }
}

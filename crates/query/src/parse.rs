//! Text syntax for queries.
//!
//! ```text
//! q(x) :- studies(x, y), taughtIn(y, z), locatedIn(z, "Rome")
//! ```
//!
//! * the head name (`q`) is ignored;
//! * bare identifiers are **variables**;
//! * quoted strings (single or double quotes) are **constants**, interned
//!   into the caller's [`ConstPool`] (which must be the database's pool so
//!   constants align at evaluation time);
//! * for ontology queries, unary atoms must name concepts and binary atoms
//!   must name roles;
//! * a UCQ is one CQ per non-empty line.
//!
//! Errors carry 1-based line/column positions (`0` = unknown): the CQ
//! parsers position errors at the offending atom within their single
//! line, and [`parse_onto_ucq`] rebases them onto the multi-line text.

// Parsers run on untrusted user input: they must never panic.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::onto::{OntoAtom, OntoCq, OntoUcq};
use crate::src::{SrcAtom, SrcCq};
use crate::term::{Term, VarId};
use obx_ontology::OntoVocab;
use obx_srcdb::{parse::split_atom, parse::unquote, ConstPool, Schema};
use obx_util::diag::col_of;
use obx_util::FxHashMap;
use std::fmt;

/// Errors from the query parsers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryParseError {
    /// 1-based line number; `0` when unknown (single-query parses report
    /// line 1).
    pub line: usize,
    /// 1-based character column; `0` when unknown.
    pub col: usize,
    /// Description of the problem.
    pub msg: String,
}

impl fmt::Display for QueryParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.line, self.col) {
            (0, _) => write!(f, "{}", self.msg),
            (l, 0) => write!(f, "line {l}: {}", self.msg),
            (l, c) => write!(f, "line {l}:{c}: {}", self.msg),
        }
    }
}

impl std::error::Error for QueryParseError {}

impl QueryParseError {
    /// Fills in a position, keeping any already-set fields (inner parsers
    /// position errors more precisely than their callers can).
    pub fn at(mut self, line: usize, col: usize) -> Self {
        if self.line == 0 {
            self.line = line;
        }
        if self.col == 0 {
            self.col = col;
        }
        self
    }
}

fn err(msg: impl Into<String>) -> QueryParseError {
    QueryParseError {
        line: 0,
        col: 0,
        msg: msg.into(),
    }
}

fn err_at(col: usize, msg: impl Into<String>) -> QueryParseError {
    QueryParseError {
        line: 0,
        col,
        msg: msg.into(),
    }
}

struct VarScope {
    names: FxHashMap<String, VarId>,
}

impl VarScope {
    fn new() -> Self {
        Self {
            names: FxHashMap::default(),
        }
    }

    fn var(&mut self, name: &str) -> VarId {
        let next = VarId(self.names.len() as u32);
        *self.names.entry(name.to_owned()).or_insert(next)
    }
}

fn is_quoted(s: &str) -> bool {
    let b = s.as_bytes();
    b.len() >= 2
        && ((b[0] == b'"' && b[b.len() - 1] == b'"') || (b[0] == b'\'' && b[b.len() - 1] == b'\''))
}

fn parse_term(
    scope: &mut VarScope,
    consts: &mut ConstPool,
    raw: &str,
) -> Result<Term, QueryParseError> {
    if raw.is_empty() {
        return Err(err("empty term"));
    }
    if is_quoted(raw) {
        Ok(Term::Const(consts.intern(unquote(raw))))
    } else if raw.chars().all(|c| c.is_alphanumeric() || c == '_') {
        Ok(Term::Var(scope.var(raw)))
    } else {
        Err(err(format!("bad term `{raw}` (quote constants)")))
    }
}

/// Body atom texts paired with their 1-based character column within the rule.
type BodyAtoms = Vec<(usize, String)>;

/// Splits `HEAD :- BODY` and returns the head atom text plus the body atom
/// texts, each with its 1-based character column within `text`.
fn split_rule(text: &str) -> Result<(&str, BodyAtoms), QueryParseError> {
    let (head, body) = text
        .split_once(":-")
        .ok_or_else(|| err(format!("expected `head :- body` in `{text}`")))?;
    let body_off = head.chars().count() + 2;
    // Split the body on commas at depth 0 (commas also appear inside atoms).
    let mut atoms: Vec<(usize, String)> = Vec::new();
    let mut open_cols: Vec<usize> = Vec::new();
    let mut cur = String::new();
    let mut cur_col = 0usize;
    for (i, ch) in body.chars().enumerate() {
        let col = body_off + i + 1;
        match ch {
            '(' => {
                open_cols.push(col);
                cur.push(ch);
            }
            ')' => {
                if open_cols.pop().is_none() {
                    return Err(err_at(col, "unbalanced parentheses"));
                }
                cur.push(ch);
            }
            ',' if open_cols.is_empty() => {
                atoms.push((cur_col, std::mem::take(&mut cur).trim().to_owned()));
                cur_col = 0;
            }
            _ => {
                if cur_col == 0 && !ch.is_whitespace() {
                    cur_col = col;
                }
                cur.push(ch);
            }
        }
    }
    if let Some(&col) = open_cols.first() {
        return Err(err_at(col, "unbalanced parentheses"));
    }
    if !cur.trim().is_empty() {
        atoms.push((cur_col, cur.trim().to_owned()));
    }
    if atoms.is_empty() {
        return Err(err("empty body"));
    }
    Ok((head.trim(), atoms))
}

fn parse_head(scope: &mut VarScope, head: &str) -> Result<Vec<VarId>, QueryParseError> {
    let (_, args) = split_atom(head).ok_or_else(|| err_at(1, format!("bad head `{head}`")))?;
    let mut out = Vec::with_capacity(args.len());
    for a in args {
        if a.is_empty() || is_quoted(a) {
            return Err(err_at(
                1,
                format!("head terms must be variables, got `{a}`"),
            ));
        }
        out.push(scope.var(a));
    }
    Ok(out)
}

/// Parses a CQ over the ontology vocabulary. Errors report line 1 plus the
/// column of the offending atom.
pub fn parse_onto_cq(
    vocab: &OntoVocab,
    consts: &mut ConstPool,
    text: &str,
) -> Result<OntoCq, QueryParseError> {
    let (head_txt, atom_txts) = split_rule(text).map_err(|e| e.at(1, 0))?;
    let mut scope = VarScope::new();
    let head = parse_head(&mut scope, head_txt).map_err(|e| e.at(1, 0))?;
    let mut body = Vec::with_capacity(atom_txts.len());
    for (col, atom_txt) in &atom_txts {
        let (name, args) = split_atom(atom_txt)
            .ok_or_else(|| err_at(*col, format!("bad atom `{atom_txt}`")).at(1, 0))?;
        let terms: Vec<Term> = args
            .iter()
            .map(|a| parse_term(&mut scope, consts, a))
            .collect::<Result<_, _>>()
            .map_err(|e| e.at(1, *col))?;
        match terms.len() {
            1 => {
                let c = vocab
                    .get_concept(name)
                    .ok_or_else(|| err_at(*col, format!("unknown concept `{name}`")).at(1, 0))?;
                body.push(OntoAtom::Concept(c, terms[0]));
            }
            2 => {
                let r = vocab
                    .get_role(name)
                    .ok_or_else(|| err_at(*col, format!("unknown role `{name}`")).at(1, 0))?;
                body.push(OntoAtom::Role(r, terms[0], terms[1]));
            }
            n => {
                return Err(err_at(
                    *col,
                    format!("ontology atom `{name}` has arity {n}, not 1/2"),
                )
                .at(1, 0))
            }
        }
    }
    OntoCq::new(head, body).map_err(|e| err(e.to_string()).at(1, 0))
}

/// Parses a UCQ over the ontology vocabulary: one CQ per non-empty,
/// non-comment line. Errors are rebased onto the multi-line text (real
/// line number, column within the raw line).
pub fn parse_onto_ucq(
    vocab: &OntoVocab,
    consts: &mut ConstPool,
    text: &str,
) -> Result<OntoUcq, QueryParseError> {
    let mut ucq = OntoUcq::empty();
    for (lineno, raw) in text.lines().enumerate() {
        let line = match raw.find('#') {
            Some(i) => &raw[..i],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        ucq.push(parse_onto_cq(vocab, consts, line).map_err(|mut e| {
            e.line = lineno + 1;
            if e.col > 0 {
                // Rebase the within-line column onto the raw line (leading
                // whitespace and indentation shift it right).
                e.col += col_of(raw, line).saturating_sub(1);
            }
            e
        })?);
    }
    if ucq.is_empty() {
        return Err(err("no disjuncts"));
    }
    Ok(ucq)
}

/// Parses a CQ over the source schema. Errors report line 1 plus the
/// column of the offending atom.
pub fn parse_src_cq(
    schema: &Schema,
    consts: &mut ConstPool,
    text: &str,
) -> Result<SrcCq, QueryParseError> {
    let (head_txt, atom_txts) = split_rule(text).map_err(|e| e.at(1, 0))?;
    let mut scope = VarScope::new();
    let head = parse_head(&mut scope, head_txt).map_err(|e| e.at(1, 0))?;
    let mut body = Vec::with_capacity(atom_txts.len());
    for (col, atom_txt) in &atom_txts {
        let (name, args) = split_atom(atom_txt)
            .ok_or_else(|| err_at(*col, format!("bad atom `{atom_txt}`")).at(1, 0))?;
        let rel = schema
            .rel(name)
            .map_err(|e| err_at(*col, e.to_string()).at(1, 0))?;
        if schema.arity(rel) != args.len() {
            return Err(err_at(
                *col,
                format!(
                    "relation `{name}` has arity {}, got {}",
                    schema.arity(rel),
                    args.len()
                ),
            )
            .at(1, 0));
        }
        let terms: Vec<Term> = args
            .iter()
            .map(|a| parse_term(&mut scope, consts, a))
            .collect::<Result<_, _>>()
            .map_err(|e| e.at(1, *col))?;
        body.push(SrcAtom::new(rel, terms));
    }
    SrcCq::new(head, body).map_err(|e| err(e.to_string()).at(1, 0))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use obx_ontology::parse_tbox;
    use obx_srcdb::parse_schema;

    #[test]
    fn parses_the_papers_q1() {
        let tbox = parse_tbox("concept none\nrole studies taughtIn locatedIn likes").unwrap();
        let mut consts = ConstPool::new();
        let q = parse_onto_cq(
            tbox.vocab(),
            &mut consts,
            r#"q(x) :- studies(x, y), taughtIn(y, z), locatedIn(z, "Rome")"#,
        )
        .unwrap();
        assert_eq!(q.arity(), 1);
        assert_eq!(q.num_atoms(), 3);
        assert_eq!(q.head(), &[VarId(0)]);
        let rome = consts.get("Rome").unwrap();
        assert!(matches!(
            q.body()[2],
            OntoAtom::Role(_, Term::Var(_), Term::Const(c)) if c == rome
        ));
    }

    #[test]
    fn variable_identity_is_by_name() {
        let tbox = parse_tbox("role r").unwrap();
        let mut consts = ConstPool::new();
        let q = parse_onto_cq(tbox.vocab(), &mut consts, "q(x) :- r(x, y), r(y, x)").unwrap();
        let (a, b) = match (q.body()[0], q.body()[1]) {
            (OntoAtom::Role(_, a1, a2), OntoAtom::Role(_, b1, b2)) => ((a1, a2), (b1, b2)),
            _ => panic!(),
        };
        assert_eq!(a.0, b.1);
        assert_eq!(a.1, b.0);
    }

    #[test]
    fn unary_is_concept_binary_is_role() {
        let tbox = parse_tbox("concept Student\nrole studies").unwrap();
        let mut consts = ConstPool::new();
        assert!(parse_onto_cq(tbox.vocab(), &mut consts, "q(x) :- Student(x)").is_ok());
        assert!(parse_onto_cq(tbox.vocab(), &mut consts, "q(x) :- studies(x, y)").is_ok());
        let e = parse_onto_cq(tbox.vocab(), &mut consts, "q(x) :- studies(x)").unwrap_err();
        assert!(e.msg.contains("unknown concept"));
        let e = parse_onto_cq(tbox.vocab(), &mut consts, "q(x) :- Student(x, y)").unwrap_err();
        assert!(e.msg.contains("unknown role"));
        let e = parse_onto_cq(tbox.vocab(), &mut consts, "q(x) :- Student(x, y, z)").unwrap_err();
        assert!(e.msg.contains("arity"));
    }

    #[test]
    fn errors_point_at_the_offending_atom() {
        let tbox = parse_tbox("concept Student\nrole studies").unwrap();
        let mut consts = ConstPool::new();
        let e =
            parse_onto_cq(tbox.vocab(), &mut consts, "q(x) :- Student(x), Nope(x)").unwrap_err();
        assert_eq!((e.line, e.col), (1, 21), "{e}");
        assert_eq!(e.to_string(), "line 1:21: unknown concept `Nope`");
        // UCQ parsing rebases onto the real line.
        let e = parse_onto_ucq(
            tbox.vocab(),
            &mut consts,
            "q(x) :- Student(x)\n  q(x) :- Nope(x)",
        )
        .unwrap_err();
        assert_eq!((e.line, e.col), (2, 11), "{e}");
    }

    #[test]
    fn src_queries_check_schema_arity() {
        let schema = parse_schema("ENR/3 LOC/2").unwrap();
        let mut consts = ConstPool::new();
        let q = parse_src_cq(
            &schema,
            &mut consts,
            r#"q(x) :- ENR(x, y, z), LOC(z, "Rome")"#,
        )
        .unwrap();
        assert_eq!(q.num_atoms(), 2);
        assert!(parse_src_cq(&schema, &mut consts, "q(x) :- ENR(x, y)").is_err());
        assert!(parse_src_cq(&schema, &mut consts, "q(x) :- NOPE(x, y)").is_err());
    }

    #[test]
    fn malformed_queries_error() {
        let tbox = parse_tbox("role r").unwrap();
        let mut consts = ConstPool::new();
        for bad in [
            "q(x) r(x, y)",        // no :-
            "q(x) :-",             // empty body
            "q(\"c\") :- r(x, y)", // constant in head
            "q(x) :- r(x, y",      // unbalanced
            "q(z) :- r(x, y)",     // unsafe head
            "q(x) :- r(x, a-b)",   // bad term
        ] {
            assert!(
                parse_onto_cq(tbox.vocab(), &mut consts, bad).is_err(),
                "should reject `{bad}`"
            );
        }
        // Unbalanced parentheses point at the unclosed `(`.
        let e = parse_onto_cq(tbox.vocab(), &mut consts, "q(x) :- r(x, y").unwrap_err();
        assert_eq!((e.line, e.col), (1, 10), "{e}");
    }

    #[test]
    fn ucq_parses_lines_and_dedups() {
        let tbox = parse_tbox("role r").unwrap();
        let mut consts = ConstPool::new();
        let u = parse_onto_ucq(
            tbox.vocab(),
            &mut consts,
            "# comment\nq(x) :- r(x, y)\n\nq(u) :- r(u, w)\n",
        )
        .unwrap();
        assert_eq!(u.len(), 1, "alpha-equivalent disjuncts dedup");
        assert!(parse_onto_ucq(tbox.vocab(), &mut consts, "# nothing").is_err());
    }
}

//! CQs and UCQs over the source schema (n-ary relational atoms).
//!
//! These are the queries that are ultimately *evaluated*: mapping
//! unfolding turns an ontology UCQ into a source UCQ, and the evaluator in
//! [`crate::eval`] runs source CQs over a database [`obx_srcdb::View`].

use crate::onto::QueryError;
use crate::term::{Term, VarId};
use obx_srcdb::{ConstPool, RelId, Schema};
use obx_util::FxHashMap;

/// An atom over the source schema.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct SrcAtom {
    /// The relation.
    pub rel: RelId,
    /// Argument terms (length = declared arity; checked by the parser and
    /// by evaluation entry points).
    pub args: Box<[Term]>,
}

impl SrcAtom {
    /// Builds an atom.
    pub fn new(rel: RelId, args: impl IntoIterator<Item = Term>) -> Self {
        Self {
            rel,
            args: args.into_iter().collect(),
        }
    }

    /// Applies a substitution to every term.
    pub fn substitute(&self, subst: &FxHashMap<VarId, Term>) -> SrcAtom {
        SrcAtom {
            rel: self.rel,
            args: self
                .args
                .iter()
                .map(|&t| match t {
                    Term::Var(v) => subst.get(&v).copied().unwrap_or(t),
                    c => c,
                })
                .collect(),
        }
    }

    /// Renders like `ENR(x0, "Math", x1)`.
    pub fn render(&self, schema: &Schema, consts: &ConstPool) -> String {
        let mut s = String::from(schema.name(self.rel));
        s.push('(');
        for (i, t) in self.args.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            match t {
                Term::Var(v) => s.push_str(&format!("x{}", v.0)),
                Term::Const(c) => s.push_str(&format!("\"{}\"", consts.resolve(*c))),
            }
        }
        s.push(')');
        s
    }
}

/// A conjunctive query over the source schema.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct SrcCq {
    head: Vec<VarId>,
    body: Vec<SrcAtom>,
}

impl SrcCq {
    /// Builds a CQ, enforcing safety and a non-empty body.
    pub fn new(head: Vec<VarId>, body: Vec<SrcAtom>) -> Result<Self, QueryError> {
        if body.is_empty() {
            return Err(QueryError::EmptyBody);
        }
        for &h in &head {
            if !body.iter().any(|a| a.args.contains(&Term::Var(h))) {
                return Err(QueryError::UnsafeHead(h));
            }
        }
        Ok(Self { head, body })
    }

    /// The answer variables.
    #[inline]
    pub fn head(&self) -> &[VarId] {
        &self.head
    }

    /// The body atoms.
    #[inline]
    pub fn body(&self) -> &[SrcAtom] {
        &self.body
    }

    /// Arity of the query.
    pub fn arity(&self) -> usize {
        self.head.len()
    }

    /// Number of body atoms.
    pub fn num_atoms(&self) -> usize {
        self.body.len()
    }

    /// Largest variable index used anywhere in the query.
    pub fn max_var(&self) -> Option<u32> {
        let mut max: Option<u32> = None;
        let mut upd = |v: VarId| max = Some(max.map_or(v.0, |m| m.max(v.0)));
        for &h in &self.head {
            upd(h);
        }
        for a in &self.body {
            for &t in a.args.iter() {
                if let Term::Var(v) = t {
                    upd(v);
                }
            }
        }
        max
    }

    /// Canonical variant (same contract as [`crate::OntoCq::canonical`]):
    /// a sound dedup key, invariant under most renamings/atom orders.
    pub fn canonical(&self) -> SrcCq {
        let mut cur = self.canon_pass();
        for _ in 0..8 {
            let next = cur.canon_pass();
            if next == cur {
                break;
            }
            cur = next;
        }
        cur
    }

    fn canon_pass(&self) -> SrcCq {
        let mut rename: FxHashMap<VarId, VarId> = FxHashMap::default();
        let mut next = 0u32;
        let mut get = |v: VarId, rename: &mut FxHashMap<VarId, VarId>| -> VarId {
            *rename.entry(v).or_insert_with(|| {
                let nv = VarId(next);
                next += 1;
                nv
            })
        };
        let head: Vec<VarId> = self.head.iter().map(|&v| get(v, &mut rename)).collect();
        let mut body: Vec<SrcAtom> = self
            .body
            .iter()
            .map(|a| SrcAtom {
                rel: a.rel,
                args: a
                    .args
                    .iter()
                    .map(|&t| match t {
                        Term::Var(v) => Term::Var(get(v, &mut rename)),
                        c => c,
                    })
                    .collect(),
            })
            .collect();
        body.sort_by(|a, b| {
            (a.rel, a.args.iter().map(|&t| key(t)).collect::<Vec<_>>())
                .cmp(&(b.rel, b.args.iter().map(|&t| key(t)).collect::<Vec<_>>()))
        });
        body.dedup();
        SrcCq { head, body }
    }

    /// Renders like `q(x0) :- ENR(x0, x1, x2), LOC(x2, "Rome")`.
    pub fn render(&self, schema: &Schema, consts: &ConstPool) -> String {
        let mut s = String::from("q(");
        for (i, v) in self.head.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("x{}", v.0));
        }
        s.push_str(") :- ");
        for (i, a) in self.body.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&a.render(schema, consts));
        }
        s
    }
}

fn key(t: Term) -> (u8, u32) {
    match t {
        Term::Var(v) => (0, v.0),
        Term::Const(c) => (1, c.0 .0),
    }
}

/// A union of source CQs (disjuncts canonicalized and deduplicated).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SrcUcq {
    disjuncts: Vec<SrcCq>,
}

impl SrcUcq {
    /// An empty union (unsatisfiable).
    pub fn empty() -> Self {
        Self::default()
    }

    /// A single-disjunct union.
    pub fn from_cq(cq: SrcCq) -> Self {
        let mut u = Self::default();
        u.push(cq);
        u
    }

    /// Adds a disjunct; returns whether it was new.
    pub fn push(&mut self, cq: SrcCq) -> bool {
        let canon = cq.canonical();
        if self.disjuncts.contains(&canon) {
            false
        } else {
            self.disjuncts.push(canon);
            true
        }
    }

    /// The disjuncts.
    pub fn disjuncts(&self) -> &[SrcCq] {
        &self.disjuncts
    }

    /// Number of disjuncts.
    pub fn len(&self) -> usize {
        self.disjuncts.len()
    }

    /// Whether the union is empty.
    pub fn is_empty(&self) -> bool {
        self.disjuncts.is_empty()
    }
}

impl FromIterator<SrcCq> for SrcUcq {
    fn from_iter<T: IntoIterator<Item = SrcCq>>(iter: T) -> Self {
        let mut u = Self::default();
        for cq in iter {
            u.push(cq);
        }
        u
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::var;
    use obx_srcdb::Schema;

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.declare("ENR", 3).unwrap();
        s.declare("LOC", 2).unwrap();
        s
    }

    #[test]
    fn safety() {
        let s = schema();
        let enr = s.rel("ENR").unwrap();
        assert!(SrcCq::new(
            vec![VarId(0)],
            vec![SrcAtom::new(enr, [var(0), var(1), var(2)])]
        )
        .is_ok());
        assert!(SrcCq::new(
            vec![VarId(9)],
            vec![SrcAtom::new(enr, [var(0), var(1), var(2)])]
        )
        .is_err());
        assert!(SrcCq::new(vec![], vec![]).is_err());
    }

    #[test]
    fn canonical_renaming_invariance() {
        let s = schema();
        let enr = s.rel("ENR").unwrap();
        let loc = s.rel("LOC").unwrap();
        let q1 = SrcCq::new(
            vec![VarId(3)],
            vec![
                SrcAtom::new(enr, [var(3), var(7), var(8)]),
                SrcAtom::new(loc, [var(8), var(9)]),
            ],
        )
        .unwrap();
        let q2 = SrcCq::new(
            vec![VarId(0)],
            vec![
                SrcAtom::new(enr, [var(0), var(1), var(2)]),
                SrcAtom::new(loc, [var(2), var(4)]),
            ],
        )
        .unwrap();
        assert_eq!(q1.canonical(), q2.canonical());
    }

    #[test]
    fn ucq_dedup_and_render() {
        let s = schema();
        let mut pool = ConstPool::new();
        let rome = pool.intern("Rome");
        let loc = s.rel("LOC").unwrap();
        let cq = SrcCq::new(
            vec![VarId(0)],
            vec![SrcAtom::new(loc, [var(0), Term::Const(rome)])],
        )
        .unwrap();
        let mut u = SrcUcq::empty();
        assert!(u.push(cq.clone()));
        assert!(!u.push(cq.clone()));
        assert_eq!(u.len(), 1);
        assert_eq!(cq.render(&s, &pool), "q(x0) :- LOC(x0, \"Rome\")");
    }

    #[test]
    fn substitute_and_max_var() {
        let s = schema();
        let loc = s.rel("LOC").unwrap();
        let a = SrcAtom::new(loc, [var(1), var(6)]);
        let mut sub = FxHashMap::default();
        sub.insert(VarId(6), Term::Var(VarId(1)));
        assert_eq!(a.substitute(&sub).args[1], var(1));
        let q = SrcCq::new(vec![VarId(1)], vec![a]).unwrap();
        assert_eq!(q.max_var(), Some(6));
    }
}

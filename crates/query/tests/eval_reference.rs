//! Property tests: the index-driven evaluator against a naive
//! nested-loop reference, and containment against evaluation.
//!
//! The production evaluator ([`obx_query::eval`]) does dynamic atom
//! ordering, index selection, and backtracking with trails — plenty of
//! room for subtle bugs. The reference below does none of that: it
//! enumerates the full cartesian product of candidate facts per atom and
//! checks consistency afterwards. Agreement on random databases and
//! random queries validates the fast path.

use obx_query::{cq_contained, eval, SrcAtom, SrcCq, Term, VarId};
use obx_srcdb::{Const, Database, Schema, View};
use obx_util::{FxHashMap, FxHashSet};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn schema() -> Schema {
    let mut s = Schema::new();
    s.declare("R", 2).unwrap();
    s.declare("S", 2).unwrap();
    s.declare("A", 1).unwrap();
    s
}

fn random_db(seed: u64, n_consts: usize, n_atoms: usize) -> Database {
    let mut db = Database::new(schema());
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..n_atoms {
        let c = |rng: &mut StdRng| format!("c{}", rng.gen_range(0..n_consts));
        match rng.gen_range(0..3) {
            0 => {
                let (a, b) = (c(&mut rng), c(&mut rng));
                db.insert_named("R", &[&a, &b]).unwrap();
            }
            1 => {
                let (a, b) = (c(&mut rng), c(&mut rng));
                db.insert_named("S", &[&a, &b]).unwrap();
            }
            _ => {
                let a = c(&mut rng);
                db.insert_named("A", &[&a]).unwrap();
            }
        }
    }
    db
}

/// A random connected-ish CQ over the fixed schema. Constants are drawn
/// from the database's pool so they can actually match.
fn random_cq(db: &mut Database, seed: u64, n_atoms: usize) -> SrcCq {
    let mut rng = StdRng::seed_from_u64(seed);
    let rels = [
        (db.schema().rel("R").unwrap(), 2usize),
        (db.schema().rel("S").unwrap(), 2),
        (db.schema().rel("A").unwrap(), 1),
    ];
    let mut body = Vec::with_capacity(n_atoms);
    for _ in 0..n_atoms.max(1) {
        let (rel, arity) = rels[rng.gen_range(0..rels.len())];
        let args: Vec<Term> = (0..arity)
            .map(|_| {
                if rng.gen_bool(0.75) {
                    Term::Var(VarId(rng.gen_range(0..4u32)))
                } else {
                    Term::Const(db.constant(&format!("c{}", rng.gen_range(0..6))))
                }
            })
            .collect();
        body.push(SrcAtom::new(rel, args));
    }
    // Head: first variable occurring in the body (regenerate all-constant
    // bodies by injecting a variable).
    let head_var = body
        .iter()
        .flat_map(|a| a.args.iter())
        .find_map(|t| t.as_var());
    let head_var = match head_var {
        Some(v) => v,
        None => {
            let (rel, _) = rels[2];
            body.push(SrcAtom::new(rel, [Term::Var(VarId(0))]));
            VarId(0)
        }
    };
    SrcCq::new(vec![head_var], body).expect("head var occurs in body")
}

/// Naive evaluation: cartesian product of per-atom candidate facts.
fn naive_answers(db: &Database, cq: &SrcCq) -> FxHashSet<Box<[Const]>> {
    fn go(
        db: &Database,
        cq: &SrcCq,
        idx: usize,
        subst: &mut FxHashMap<VarId, Const>,
        out: &mut FxHashSet<Box<[Const]>>,
    ) {
        if idx == cq.body().len() {
            let tuple: Box<[Const]> = cq.head().iter().map(|v| subst[v]).collect();
            out.insert(tuple);
            return;
        }
        let atom = &cq.body()[idx];
        for &fact_id in db.atoms_of(atom.rel) {
            let fact = db.atom(fact_id);
            let mut local: Vec<(VarId, Const)> = Vec::new();
            let mut ok = true;
            for (&t, &c) in atom.args.iter().zip(fact.args.iter()) {
                match t {
                    Term::Const(qc) => {
                        if qc != c {
                            ok = false;
                            break;
                        }
                    }
                    Term::Var(v) => {
                        let bound = subst
                            .get(&v)
                            .copied()
                            .or_else(|| local.iter().find(|(lv, _)| *lv == v).map(|(_, lc)| *lc));
                        match bound {
                            Some(b) if b != c => {
                                ok = false;
                                break;
                            }
                            Some(_) => {}
                            None => local.push((v, c)),
                        }
                    }
                }
            }
            if ok {
                for &(v, c) in &local {
                    subst.insert(v, c);
                }
                go(db, cq, idx + 1, subst, out);
                for &(v, _) in &local {
                    subst.remove(&v);
                }
            }
        }
    }
    let mut out = FxHashSet::default();
    let mut subst = FxHashMap::default();
    go(db, cq, 0, &mut subst, &mut out);
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64 })]

    #[test]
    fn evaluator_agrees_with_naive_reference(
        db_seed in 0u64..100_000,
        q_seed in 0u64..100_000,
        n_consts in 1usize..8,
        n_atoms_db in 0usize..25,
        n_atoms_q in 1usize..4,
    ) {
        let mut db = random_db(db_seed, n_consts, n_atoms_db);
        let cq = random_cq(&mut db, q_seed, n_atoms_q);
        let fast = eval::answers(View::full(&db), &cq);
        let slow = naive_answers(&db, &cq);
        prop_assert_eq!(&fast, &slow, "query {:?} over db of {} atoms", cq, db.len());
        // `satisfies` agrees with membership in `answers` for every answer
        // and for a few non-answers.
        for t in &slow {
            prop_assert!(eval::satisfies(View::full(&db), &cq, t));
        }
    }

    /// If containment says q1 ⊑ q2, then on every database the answers of
    /// q1 are included in those of q2 (soundness of the homomorphism
    /// check).
    #[test]
    fn containment_is_sound_wrt_evaluation(
        db_seed in 0u64..100_000,
        q1_seed in 0u64..100_000,
        q2_seed in 0u64..100_000,
    ) {
        let mut db = random_db(db_seed, 5, 18);
        let q1 = random_cq(&mut db, q1_seed, 2);
        let q2 = random_cq(&mut db, q2_seed, 2);
        if cq_contained(&q1, &q2) {
            let a1 = eval::answers(View::full(&db), &q1);
            let a2 = eval::answers(View::full(&db), &q2);
            prop_assert!(a1.is_subset(&a2), "q1 {:?} ⊑ q2 {:?} but answers leak", q1, q2);
        }
    }

    /// Canonicalization preserves semantics: a CQ and its canonical form
    /// have the same answers.
    #[test]
    fn canonical_preserves_answers(
        db_seed in 0u64..100_000,
        q_seed in 0u64..100_000,
    ) {
        let mut db = random_db(db_seed, 6, 20);
        let cq = random_cq(&mut db, q_seed, 3);
        let canon = cq.canonical();
        prop_assert_eq!(
            eval::answers(View::full(&db), &cq),
            eval::answers(View::full(&db), &canon)
        );
    }

    /// Witnesses, when present, really ground the query: the returned
    /// facts have the right relations and are visible in the view.
    #[test]
    fn witnesses_are_visible_and_well_typed(
        db_seed in 0u64..100_000,
        q_seed in 0u64..100_000,
    ) {
        let mut db = random_db(db_seed, 5, 20);
        let cq = random_cq(&mut db, q_seed, 2);
        let view = View::full(&db);
        for t in eval::answers(view, &cq) {
            let w = eval::witness(view, &cq, &t);
            prop_assert!(w.is_some(), "answer without witness");
            let w = w.unwrap();
            prop_assert_eq!(w.len(), cq.body().len());
            for (atom, id) in cq.body().iter().zip(&w) {
                prop_assert_eq!(db.atom(*id).rel, atom.rel);
            }
        }
    }
}

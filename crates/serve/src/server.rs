//! The always-on explanation server: `obx serve`.
//!
//! Architecture (one paragraph): an accept thread hands each connection
//! to its own handler thread (explanations are CPU-bound and long; the
//! handful of concurrent connections a scoring service sees does not
//! justify an event loop). Every request is admitted through the
//! fair-share [`FairGate`](crate::admission::FairGate) *before* touching
//! an epoch, pins the current [`Epoch`](crate::snapshot::Epoch) for its
//! whole lifetime, runs under a per-request [`SearchBudget`] clamped to
//! server ceilings, and executes the **same**
//! [`obx_core::service::run_explain`] the CLI calls — which is what makes
//! served bodies byte-identical to one-shot `obx explain` output on the
//! same snapshot.
//!
//! Robustness invariants, each proven under fault injection by
//! `tests/serve_resilience.rs`:
//!
//! - a panicking request is quarantined (`catch_unwind`, `OBX323`,
//!   `serve/quarantined` counter) and never takes down the process;
//! - overload is shed with structured 429/503 bodies, never by unbounded
//!   queueing;
//! - `reload` swaps snapshots atomically; in-flight requests finish on
//!   the epoch they started on;
//! - drain stops admissions, lets in-flight work finish inside a grace
//!   window, then cancels stragglers (they degrade, best-so-far, exactly
//!   like `^C` on the CLI).

#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::admission::{FairGate, Shed};
use crate::http::{read_request, write_response, HttpError, HttpLimits, Request, Response};
use crate::json::{self, escape};
use crate::snapshot::EpochStore;
use obx_core::budget::CancelToken;
use obx_core::service::{run_explain, ServiceError};
use obx_util::obs;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server knobs. Defaults are production-shaped; tests tighten them.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (see [`ServerHandle::addr`]).
    pub bind: String,
    /// Concurrent executing requests (`--max-inflight`).
    pub max_inflight: usize,
    /// Waiting requests beyond which new ones are shed (`--queue-depth`).
    pub queue_depth: usize,
    /// Server-side wall-clock ceiling per request
    /// (`--request-timeout-ms`); a request may ask for less, never more.
    pub request_timeout_ms: Option<u64>,
    /// How long an admitted-but-queued request waits before `OBX321`.
    pub queue_wait_ms: u64,
    /// Socket read timeout — the slow-loris bound.
    pub read_timeout_ms: u64,
    /// Socket write timeout.
    pub write_timeout_ms: u64,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Drain grace: how long in-flight requests get to finish before
    /// they are cancelled (and degrade to best-so-far).
    pub grace_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            bind: "127.0.0.1:0".to_owned(),
            max_inflight: 4,
            queue_depth: 16,
            request_timeout_ms: None,
            queue_wait_ms: 2_000,
            read_timeout_ms: 5_000,
            write_timeout_ms: 5_000,
            max_body_bytes: 256 * 1024,
            grace_ms: 5_000,
        }
    }
}

/// Cancellation tokens of currently executing requests, so drain can
/// degrade stragglers after the grace window.
struct Inflights {
    next: AtomicU64,
    tokens: Mutex<Vec<(u64, CancelToken)>>,
}

impl Inflights {
    fn register(&self, token: CancelToken) -> u64 {
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        if let Ok(mut tokens) = self.tokens.lock() {
            tokens.push((id, token));
        }
        id
    }

    fn unregister(&self, id: u64) {
        if let Ok(mut tokens) = self.tokens.lock() {
            tokens.retain(|(t, _)| *t != id);
        }
    }

    fn cancel_all(&self) {
        if let Ok(tokens) = self.tokens.lock() {
            for (_, token) in tokens.iter() {
                token.cancel();
            }
        }
    }
}

struct Shared {
    config: ServeConfig,
    limits: HttpLimits,
    store: EpochStore,
    gate: FairGate,
    inflights: Inflights,
    /// Set once on drain: stop accepting, close keep-alive connections
    /// after their current response.
    stop: AtomicBool,
}

/// Handle to a running server. Dropping it drains and joins every
/// thread — a test that forgets `shutdown()` still cleans up.
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

/// Boots a server over the scenario in `dir`: loads the boot epoch
/// (refusing a broken directory), binds, and starts accepting. Returns
/// once the socket is live.
pub fn start(
    dir: impl Into<std::path::PathBuf>,
    config: ServeConfig,
) -> Result<ServerHandle, String> {
    let store = EpochStore::open(dir)?;
    let listener =
        TcpListener::bind(&config.bind).map_err(|e| format!("cannot bind {}: {e}", config.bind))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("cannot resolve bound address: {e}"))?;
    let limits = HttpLimits {
        max_body: config.max_body_bytes,
        ..HttpLimits::default()
    };
    let shared = Arc::new(Shared {
        gate: FairGate::new(config.max_inflight, config.queue_depth),
        config,
        limits,
        store,
        inflights: Inflights {
            next: AtomicU64::new(0),
            tokens: Mutex::new(Vec::new()),
        },
        stop: AtomicBool::new(false),
    });
    let accept_shared = Arc::clone(&shared);
    let accept = std::thread::spawn(move || accept_loop(&accept_shared, &listener));
    Ok(ServerHandle {
        shared,
        addr,
        accept: Some(accept),
    })
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.stop.load(Ordering::Acquire) {
                    break;
                }
                continue;
            }
        };
        if shared.stop.load(Ordering::Acquire) {
            // The drain poke (or a late client); either way, no new work.
            break;
        }
        obs::counter("serve/connections").add(1);
        let conn_shared = Arc::clone(shared);
        conns.push(std::thread::spawn(move || {
            handle_connection(&conn_shared, stream);
        }));
        // Reap finished handlers so a long-lived server does not
        // accumulate one parked JoinHandle per past connection.
        conns.retain(|h| !h.is_finished());
    }
    for conn in conns {
        let _ = conn.join();
    }
}

fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let timeouts_ok = stream
        .set_read_timeout(Some(Duration::from_millis(
            shared.config.read_timeout_ms.max(1),
        )))
        .and_then(|()| {
            stream.set_write_timeout(Some(Duration::from_millis(
                shared.config.write_timeout_ms.max(1),
            )))
        })
        .is_ok();
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    if !timeouts_ok {
        return;
    }
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        match read_request(&mut reader, &shared.limits) {
            Ok(None) => break,
            Ok(Some(req)) => {
                obs::counter("serve/requests").add(1);
                let started = Instant::now();
                let resp = handle_request(shared, &req);
                obs::histogram("serve/request_us").record_duration(started.elapsed());
                let close = req.wants_close() || shared.stop.load(Ordering::Acquire);
                if write_response(&mut writer, &resp, close).is_err() || close {
                    break;
                }
            }
            Err(e) => {
                obs::counter("serve/bad_requests").add(1);
                let _ = write_response(&mut writer, &http_error_response(&e), true);
                break;
            }
        }
    }
}

fn err_json(code: &str, msg: &str) -> String {
    format!("{{\"code\":\"{code}\",\"error\":\"{}\"}}\n", escape(msg))
}

fn http_error_response(e: &HttpError) -> Response {
    Response::json(e.status, err_json(e.code, &e.msg))
}

/// The shed body mirrors the CLI's degraded-termination contract: a
/// `termination` field phrased like the `-- search stopped early` footer,
/// so clients handle "shed before execution" and "degraded mid-search"
/// through one code path.
fn shed_response(shed: Shed, epoch: u64) -> Response {
    obs::counter("serve/requests_shed").add(1);
    let (code, status) = match shed {
        Shed::QueueFull => ("OBX320", 429),
        Shed::TimedOut => ("OBX321", 429),
        Shed::Draining => ("OBX322", 503),
    };
    let body = format!(
        "{{\"code\":\"{code}\",\"error\":\"{}\",\"termination\":\"degraded (request shed before execution)\",\"epoch\":{epoch}}}\n",
        escape(&shed.to_string())
    );
    Response::json(status, body)
        .with_header("x-obx-epoch", epoch.to_string())
        .with_header("retry-after", "1")
}

fn handle_request(shared: &Arc<Shared>, req: &Request) -> Response {
    let draining = shared.stop.load(Ordering::Acquire);
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            if draining {
                Response::json(503, err_json("OBX322", "server is draining"))
            } else {
                Response::text(200, "ok\n")
            }
        }
        ("GET", "/metrics") => Response::json(200, obs::metrics_json()),
        ("POST", "/reload") => {
            if draining {
                return Response::json(503, err_json("OBX322", "server is draining"));
            }
            match shared.store.reload() {
                Ok(epoch) => {
                    obs::counter("serve/reloads").add(1);
                    Response::json(200, format!("{{\"epoch\":{}}}\n", epoch.id))
                        .with_header("x-obx-epoch", epoch.id.to_string())
                }
                Err(msg) => Response::json(
                    422,
                    err_json(
                        "OBX316",
                        &format!("reload failed, keeping current epoch: {msg}"),
                    ),
                ),
            }
        }
        ("POST", "/validate") => {
            if draining {
                return Response::json(503, err_json("OBX322", "server is draining"));
            }
            let epoch = shared.store.current();
            Response::text(200, epoch.validate_text.clone())
                .with_header("x-obx-epoch", epoch.id.to_string())
                .with_header("x-obx-exit", epoch.validate_exit.to_string())
        }
        ("POST", "/explain") => handle_explain(shared, req),
        (method, path) => Response::json(
            404,
            err_json("OBX306", &format!("no such endpoint: {method} {path}")),
        ),
    }
}

fn handle_explain(shared: &Arc<Shared>, req: &Request) -> Response {
    let Ok(body_text) = std::str::from_utf8(&req.body) else {
        return Response::json(400, err_json("OBX307", "request body is not valid UTF-8"));
    };
    let body = match json::explain_body(body_text) {
        Ok(b) => b,
        Err(e) => return Response::json(400, err_json(e.code, &e.msg)),
    };
    // Admission first: a shed request must cost nothing but the parse.
    let permit = match shared.gate.admit(
        body.client.as_deref(),
        Duration::from_millis(shared.config.queue_wait_ms),
    ) {
        Ok(p) => p,
        Err(shed) => return shed_response(shed, shared.store.current().id),
    };
    // Pin the epoch only now — a request that waited through a reload
    // runs on the snapshot current at execution start, and keeps it for
    // its whole lifetime regardless of later reloads.
    let epoch = shared.store.current();
    let clamped = body
        .req
        .clamped(shared.config.request_timeout_ms, None, None);
    let token = CancelToken::new();
    let inflight_id = shared.inflights.register(token.clone());

    // Fault-injection hooks, compiled only for tests: `x-obx-fault:
    // cancel` fires the request's own token before the search starts
    // (the mid-request-cancellation path), `panic` detonates inside the
    // quarantine boundary, and `sleep:<ms>` holds the execution slot for
    // a deterministic interval so overload/drain tests can occupy
    // capacity without depending on scenario size.
    #[cfg(any(test, feature = "fault-injection"))]
    let fault = req.header("x-obx-fault").map(str::to_owned);
    #[cfg(not(any(test, feature = "fault-injection")))]
    let fault: Option<String> = None;
    if fault.as_deref() == Some("cancel") {
        token.cancel();
    }

    let mut budget = clamped.budget(&token);
    let recorder = if body.profile {
        let r = obs::Recorder::new();
        budget = budget.with_recorder(Arc::clone(&r));
        Some(r)
    } else {
        None
    };

    let result = catch_unwind(AssertUnwindSafe(|| {
        if fault.as_deref() == Some("panic") {
            panic!("injected fault: panic requested via x-obx-fault");
        }
        if let Some(ms) = fault
            .as_deref()
            .and_then(|f| f.strip_prefix("sleep:"))
            .and_then(|ms| ms.parse::<u64>().ok())
        {
            std::thread::sleep(Duration::from_millis(ms.min(10_000)));
        }
        run_explain(
            &epoch.scenario.system,
            &epoch.scenario.labels,
            &clamped,
            budget,
        )
    }));
    shared.inflights.unregister(inflight_id);
    drop(permit);

    let epoch_header = epoch.id.to_string();
    match result {
        Err(_) => {
            obs::counter("serve/quarantined").add(1);
            Response::json(
                500,
                err_json(
                    "OBX323",
                    "request quarantined: the search panicked; the server carries on",
                ),
            )
            .with_header("x-obx-epoch", epoch_header)
        }
        Ok(Err(e)) => {
            let (code, status) = match &e {
                ServiceError::UnknownStrategy(_) => ("OBX313", 400),
                ServiceError::Task(_) => ("OBX314", 422),
                ServiceError::Search(_) => ("OBX315", 500),
            };
            Response::json(status, err_json(code, &e.to_string()))
                .with_header("x-obx-epoch", epoch_header)
        }
        Ok(Ok(outcome)) => {
            let mut text = outcome.stdout;
            if let Some(r) = recorder {
                // Same trailer the profiled CLI appends.
                text.push_str("-- profile --\n");
                text.push_str(&r.profile().render_tree());
            }
            Response::text(200, text)
                .with_header("x-obx-epoch", epoch_header)
                .with_header("x-obx-exit", outcome.exit_code.to_string())
        }
    }
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The current epoch id.
    pub fn epoch(&self) -> u64 {
        self.shared.store.current().id
    }

    /// Whether the server has started draining.
    pub fn draining(&self) -> bool {
        self.shared.stop.load(Ordering::Acquire)
    }

    /// Graceful drain: stop accepting, shed all queued work, give
    /// in-flight requests `grace_ms` to finish, then cancel stragglers
    /// (they respond degraded, best-so-far). Idempotent; returns when
    /// in-flight work has ended (or the second grace expired).
    pub fn drain(&self) {
        if self.shared.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        self.shared.gate.drain();
        // Poke the accept loop out of its blocking accept.
        let _ = TcpStream::connect(self.addr);
        let grace = Duration::from_millis(self.shared.config.grace_ms.max(1));
        if !self.shared.gate.wait_idle(grace) {
            self.shared.inflights.cancel_all();
            let _ = self.shared.gate.wait_idle(grace);
        }
    }

    /// Drains and joins every server thread. Connection handlers exit at
    /// the latest one socket read-timeout after the drain.
    pub fn shutdown(mut self) {
        self.drain();
        self.join_accept();
    }

    fn join_accept(&mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.drain();
        self.join_accept();
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use obx_core::scenario::write_paper_example;
    use std::io::{Read, Write};
    use std::path::PathBuf;

    fn scratch_scenario(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("obx-serve-server-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        write_paper_example(&dir).unwrap();
        dir
    }

    fn test_config() -> ServeConfig {
        ServeConfig {
            read_timeout_ms: 500,
            write_timeout_ms: 500,
            grace_ms: 2_000,
            ..ServeConfig::default()
        }
    }

    /// Minimal test client: one request, `Connection: close`, returns
    /// `(status, headers, body)`.
    fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String, String) {
        http_with_headers(addr, method, path, &[], body)
    }

    fn http_with_headers(
        addr: SocketAddr,
        method: &str,
        path: &str,
        extra: &[(&str, &str)],
        body: &str,
    ) -> (u16, String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut req = format!(
            "{method} {path} HTTP/1.1\r\nhost: t\r\nconnection: close\r\ncontent-length: {}\r\n",
            body.len()
        );
        for (name, value) in extra {
            req.push_str(&format!("{name}: {value}\r\n"));
        }
        req.push_str("\r\n");
        req.push_str(body);
        stream.write_all(req.as_bytes()).unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let (head, payload) = raw.split_once("\r\n\r\n").unwrap();
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap();
        (status, head.to_ascii_lowercase(), payload.to_owned())
    }

    #[test]
    fn serves_health_metrics_and_byte_identical_explanations() {
        let dir = scratch_scenario("basic");
        let server = start(&dir, test_config()).unwrap();
        let addr = server.addr();

        let (status, _, body) = http(addr, "GET", "/healthz", "");
        assert_eq!((status, body.as_str()), (200, "ok\n"));

        // The served body is byte-identical to the service layer's output
        // (which is the CLI's stdout) on the same snapshot.
        let (status, head, body) = http(addr, "POST", "/explain", r#"{"top": 3}"#);
        assert_eq!(status, 200, "{body}");
        assert!(head.contains("x-obx-epoch: 1"), "{head}");
        assert!(head.contains("x-obx-exit: 0"), "{head}");
        let scenario = obx_core::scenario::load_dir(&dir).unwrap();
        let req = obx_core::service::ExplainRequest {
            top: 3,
            ..Default::default()
        };
        let local = run_explain(
            &scenario.system,
            &scenario.labels,
            &req,
            req.budget(&CancelToken::new()),
        )
        .unwrap();
        assert_eq!(body, local.stdout);
        assert!(body.contains("0.8333"), "{body}");

        let (status, _, metrics) = http(addr, "GET", "/metrics", "");
        assert_eq!(status, 200);
        assert!(metrics.contains("serve/requests"), "{metrics}");

        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn validate_reload_and_epoch_pinning() {
        let dir = scratch_scenario("reload");
        let server = start(&dir, test_config()).unwrap();
        let addr = server.addr();

        let (status, head, body) = http(addr, "POST", "/validate", "");
        assert_eq!(status, 200);
        assert!(head.contains("x-obx-epoch: 1"), "{head}");
        // The paper example validates warning-only (unused source
        // relation), exit 2 — served from the snapshot's cached text.
        assert!(head.contains("x-obx-exit: 2"), "{head}");
        assert!(body.contains("0 error(s)"), "{body}");

        let (status, _, body) = http(addr, "POST", "/reload", "");
        assert_eq!(status, 200);
        assert!(body.contains("\"epoch\":2"), "{body}");
        assert_eq!(server.epoch(), 2);

        // A broken directory fails the reload and keeps epoch 2 serving.
        std::fs::write(dir.join("ontology.obx"), "role r\nr << s\n").unwrap();
        let (status, _, body) = http(addr, "POST", "/reload", "");
        assert_eq!(status, 422);
        assert!(body.contains("OBX316"), "{body}");
        assert_eq!(server.epoch(), 2);
        let (status, _, _) = http(addr, "POST", "/explain", "{}");
        assert_eq!(status, 200);

        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_garbage_with_stable_codes() {
        let dir = scratch_scenario("garbage");
        let server = start(&dir, test_config()).unwrap();
        let addr = server.addr();

        let (status, _, body) = http(addr, "GET", "/nope", "");
        assert_eq!(status, 404);
        assert!(body.contains("OBX306"), "{body}");

        let (status, _, body) = http(addr, "POST", "/explain", "{not json");
        assert_eq!(status, 400);
        assert!(body.contains("OBX310"), "{body}");

        let (status, _, body) = http(addr, "POST", "/explain", r#"{"surprise": 1}"#);
        assert_eq!(status, 400);
        assert!(body.contains("OBX312"), "{body}");

        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_panic_is_quarantined_and_the_server_survives() {
        let dir = scratch_scenario("panic");
        let server = start(&dir, test_config()).unwrap();
        let addr = server.addr();

        let (status, _, body) =
            http_with_headers(addr, "POST", "/explain", &[("x-obx-fault", "panic")], "{}");
        assert_eq!(status, 500);
        assert!(body.contains("OBX323"), "{body}");

        // The process and its capacity survived: a normal request works.
        let (status, _, body) = http(addr, "POST", "/explain", "{}");
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("Z ="), "{body}");

        // And the quarantine is visible in the metrics.
        let (_, _, metrics) = http(addr, "GET", "/metrics", "");
        assert!(metrics.contains("serve/quarantined"), "{metrics}");

        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_cancel_degrades_with_the_cli_footer() {
        let dir = scratch_scenario("cancel");
        let server = start(&dir, test_config()).unwrap();
        let addr = server.addr();

        let (status, head, body) =
            http_with_headers(addr, "POST", "/explain", &[("x-obx-fault", "cancel")], "{}");
        assert_eq!(status, 200, "{body}");
        assert!(head.contains("x-obx-exit: 2"), "{head}");
        assert!(body.contains("search stopped early: cancelled"), "{body}");

        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drain_rejects_new_work_and_shutdown_joins() {
        let dir = scratch_scenario("drain");
        let server = start(&dir, test_config()).unwrap();
        let addr = server.addr();
        server.drain();
        assert!(server.draining());
        // A connection made after drain is either refused outright or
        // answered with the draining shed.
        if let Ok(mut stream) = TcpStream::connect(addr) {
            let _ = stream.write_all(
                b"POST /explain HTTP/1.1\r\nconnection: close\r\ncontent-length: 2\r\n\r\n{}",
            );
            let mut raw = String::new();
            let _ = stream.read_to_string(&mut raw);
            if !raw.is_empty() {
                assert!(raw.contains("503") || raw.contains("OBX322"), "{raw}");
            }
        }
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

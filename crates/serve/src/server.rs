//! The always-on explanation server: `obx serve`.
//!
//! Architecture (one paragraph): an accept thread hands each connection
//! to its own handler thread (explanations are CPU-bound and long; the
//! handful of concurrent connections a scoring service sees does not
//! justify an event loop). A process hosts many scenario directories at
//! once through the [`TenantStore`](crate::tenants::TenantStore) —
//! requests name their tenant via the wire `scenario` field. Every
//! request passes its tenant's circuit breaker, is admitted through the
//! two-level fair-share [`FairGate`](crate::admission::FairGate) (tenant
//! bulkheads first, clients within) *before* touching an epoch, pins its
//! tenant's current [`Epoch`](crate::snapshot::Epoch) for its whole
//! lifetime, runs under a per-request [`SearchBudget`] clamped to server
//! ceilings, and executes the **same** [`obx_core::service::run_explain`]
//! the CLI calls — which is what makes served bodies byte-identical to
//! one-shot `obx explain` output on the same snapshot.
//!
//! Robustness invariants, each proven under fault injection by
//! `tests/serve_resilience.rs` and `tests/serve_tenancy.rs`:
//!
//! - a panicking request is quarantined (`catch_unwind`, `OBX323`,
//!   `serve/quarantined` counter) and never takes down the process;
//! - overload is shed with structured 429/503 bodies, never by unbounded
//!   queueing — and a hot tenant saturates its own bulkhead (`OBX324`),
//!   not its co-tenants';
//! - a tenant whose requests repeatedly panic or burn the server time
//!   ceiling trips its breaker (`OBX325`) while co-tenants keep serving;
//! - `reload` swaps snapshots atomically per tenant; in-flight requests
//!   finish on the epoch they started on; flapping reloads back off
//!   (`OBX328`);
//! - the mount set survives `kill -9` through the checksummed tenant
//!   journal, replayed at boot (rotten tenants come back quarantined,
//!   `OBX327`, instead of failing the boot);
//! - drain stops admissions, lets in-flight work finish inside a grace
//!   window, then cancels stragglers (they degrade, best-so-far, exactly
//!   like `^C` on the CLI).

#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::admission::{FairGate, Shed};
use crate::http::{read_request, write_response, HttpError, HttpLimits, Request, Response};
use crate::json::{self, escape};
use crate::tenants::{ReloadError, Tenant, TenantConfig, TenantStore};
use obx_core::budget::CancelToken;
use obx_core::service::{run_explain, ServiceError};
use obx_util::obs;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server knobs. Defaults are production-shaped; tests tighten them.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (see [`ServerHandle::addr`]).
    pub bind: String,
    /// Concurrent executing requests (`--max-inflight`).
    pub max_inflight: usize,
    /// Waiting requests beyond which new ones are shed (`--queue-depth`).
    pub queue_depth: usize,
    /// Per-tenant bulkhead on executing requests
    /// (`--tenant-max-inflight`); `None` = the global cap (a single
    /// tenant may then use the whole server, exactly the pre-tenancy
    /// behaviour).
    pub tenant_max_inflight: Option<usize>,
    /// Per-tenant bulkhead on waiting requests (`--tenant-queue-depth`).
    pub tenant_queue_depth: Option<usize>,
    /// Server-side wall-clock ceiling per request
    /// (`--request-timeout-ms`); a request may ask for less, never more.
    pub request_timeout_ms: Option<u64>,
    /// How long an admitted-but-queued request waits before `OBX321`.
    pub queue_wait_ms: u64,
    /// Socket read timeout — the slow-loris bound.
    pub read_timeout_ms: u64,
    /// Socket write timeout.
    pub write_timeout_ms: u64,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Drain grace: how long in-flight requests get to finish before
    /// they are cancelled (and degrade to best-so-far).
    pub grace_ms: u64,
    /// Consecutive tenant failures (panics / ceiling timeouts) that trip
    /// its circuit breaker (`--breaker-threshold`).
    pub breaker_threshold: u32,
    /// How long a tripped breaker stays open before a half-open probe
    /// (`--breaker-open-ms`).
    pub breaker_open_ms: u64,
    /// Base backoff after a failed reload; doubles per consecutive
    /// failure, capped at `reload_backoff_max_ms`.
    pub reload_backoff_ms: u64,
    /// Reload backoff ceiling.
    pub reload_backoff_max_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let tenant_defaults = TenantConfig::default();
        Self {
            bind: "127.0.0.1:0".to_owned(),
            max_inflight: 4,
            queue_depth: 16,
            tenant_max_inflight: None,
            tenant_queue_depth: None,
            request_timeout_ms: None,
            queue_wait_ms: 2_000,
            read_timeout_ms: 5_000,
            write_timeout_ms: 5_000,
            max_body_bytes: 256 * 1024,
            grace_ms: 5_000,
            breaker_threshold: tenant_defaults.breaker_threshold,
            breaker_open_ms: tenant_defaults.breaker_open_ms,
            reload_backoff_ms: tenant_defaults.reload_backoff_ms,
            reload_backoff_max_ms: tenant_defaults.reload_backoff_max_ms,
        }
    }
}

impl ServeConfig {
    fn tenant_config(&self) -> TenantConfig {
        TenantConfig {
            breaker_threshold: self.breaker_threshold.max(1),
            breaker_open_ms: self.breaker_open_ms,
            reload_backoff_ms: self.reload_backoff_ms,
            reload_backoff_max_ms: self.reload_backoff_max_ms.max(self.reload_backoff_ms),
        }
    }
}

/// Cancellation tokens of currently executing requests, so drain can
/// degrade stragglers after the grace window.
struct Inflights {
    next: AtomicU64,
    tokens: Mutex<Vec<(u64, CancelToken)>>,
}

impl Inflights {
    fn register(&self, token: CancelToken) -> u64 {
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        if let Ok(mut tokens) = self.tokens.lock() {
            tokens.push((id, token));
        }
        id
    }

    fn unregister(&self, id: u64) {
        if let Ok(mut tokens) = self.tokens.lock() {
            tokens.retain(|(t, _)| *t != id);
        }
    }

    fn cancel_all(&self) {
        if let Ok(tokens) = self.tokens.lock() {
            for (_, token) in tokens.iter() {
                token.cancel();
            }
        }
    }
}

struct Shared {
    config: ServeConfig,
    limits: HttpLimits,
    store: TenantStore,
    gate: FairGate,
    inflights: Inflights,
    /// Set once on drain: stop accepting, close keep-alive connections
    /// after their current response.
    stop: AtomicBool,
}

/// Handle to a running server. Dropping it drains and joins every
/// thread — a test that forgets `shutdown()` still cleans up.
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

/// Boots a single-tenant server over the scenario in `dir` (mounted as
/// `default`): loads the boot epoch (refusing a broken directory),
/// binds, and starts accepting. Returns once the socket is live.
pub fn start(dir: impl Into<PathBuf>, config: ServeConfig) -> Result<ServerHandle, String> {
    start_multi(vec![("default".to_owned(), dir.into())], None, config)
}

/// Boots a multi-tenant server: every explicit mount must load (boot
/// refusal on a broken one), then — when a `journal` path is given —
/// journaled mounts from a previous life are replayed, quarantining any
/// that no longer validate, and the journal is rewritten to the union.
pub fn start_multi(
    mounts: Vec<(String, PathBuf)>,
    journal: Option<PathBuf>,
    config: ServeConfig,
) -> Result<ServerHandle, String> {
    let store = TenantStore::open(&mounts, journal, config.tenant_config())?;
    if store.is_empty() {
        return Err("nothing to serve: no mount loaded and the journal was empty".to_owned());
    }
    let listener =
        TcpListener::bind(&config.bind).map_err(|e| format!("cannot bind {}: {e}", config.bind))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("cannot resolve bound address: {e}"))?;
    let limits = HttpLimits {
        max_body: config.max_body_bytes,
        ..HttpLimits::default()
    };
    let shared = Arc::new(Shared {
        gate: FairGate::with_tenant_caps(
            config.max_inflight,
            config.queue_depth,
            config.tenant_max_inflight.unwrap_or(config.max_inflight),
            config.tenant_queue_depth.unwrap_or(config.queue_depth),
        ),
        config,
        limits,
        store,
        inflights: Inflights {
            next: AtomicU64::new(0),
            tokens: Mutex::new(Vec::new()),
        },
        stop: AtomicBool::new(false),
    });
    let accept_shared = Arc::clone(&shared);
    let accept = std::thread::spawn(move || accept_loop(&accept_shared, &listener));
    Ok(ServerHandle {
        shared,
        addr,
        accept: Some(accept),
    })
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.stop.load(Ordering::Acquire) {
                    break;
                }
                continue;
            }
        };
        if shared.stop.load(Ordering::Acquire) {
            // The drain poke (or a late client); either way, no new work.
            break;
        }
        obs::counter("serve/connections").add(1);
        let conn_shared = Arc::clone(shared);
        conns.push(std::thread::spawn(move || {
            handle_connection(&conn_shared, stream);
        }));
        // Reap finished handlers so a long-lived server does not
        // accumulate one parked JoinHandle per past connection.
        conns.retain(|h| !h.is_finished());
    }
    for conn in conns {
        let _ = conn.join();
    }
}

fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let timeouts_ok = stream
        .set_read_timeout(Some(Duration::from_millis(
            shared.config.read_timeout_ms.max(1),
        )))
        .and_then(|()| {
            stream.set_write_timeout(Some(Duration::from_millis(
                shared.config.write_timeout_ms.max(1),
            )))
        })
        .is_ok();
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    if !timeouts_ok {
        return;
    }
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        match read_request(&mut reader, &shared.limits) {
            Ok(None) => break,
            Ok(Some(req)) => {
                obs::counter("serve/requests").add(1);
                let started = Instant::now();
                let resp = handle_request(shared, &req);
                obs::histogram("serve/request_us").record_duration(started.elapsed());
                let close = req.wants_close() || shared.stop.load(Ordering::Acquire);
                if write_response(&mut writer, &resp, close).is_err() || close {
                    break;
                }
            }
            Err(e) => {
                obs::counter("serve/bad_requests").add(1);
                let _ = write_response(&mut writer, &http_error_response(&e), true);
                break;
            }
        }
    }
}

fn err_json(code: &str, msg: &str) -> String {
    format!("{{\"code\":\"{code}\",\"error\":\"{}\"}}\n", escape(msg))
}

fn http_error_response(e: &HttpError) -> Response {
    Response::json(e.status, err_json(e.code, &e.msg))
}

fn retry_after_secs(d: Duration) -> String {
    d.as_secs().saturating_add(1).to_string()
}

/// The shed body mirrors the CLI's degraded-termination contract: a
/// `termination` field phrased like the `-- search stopped early` footer,
/// so clients handle "shed before execution" and "degraded mid-search"
/// through one code path.
fn shed_response(shed: Shed, tenant: &Tenant) -> Response {
    obs::counter("serve/requests_shed").add(1);
    obs::counter_dyn(&format!("serve/tenant/{}/shed", tenant.name())).add(1);
    let (code, status) = match shed {
        Shed::QueueFull => ("OBX320", 429),
        Shed::TimedOut => ("OBX321", 429),
        Shed::Draining => ("OBX322", 503),
        Shed::TenantSaturated => ("OBX324", 429),
    };
    let epoch = tenant.epoch_id();
    let body = format!(
        "{{\"code\":\"{code}\",\"error\":\"{}\",\"termination\":\"degraded (request shed before execution)\",\"epoch\":{epoch}}}\n",
        escape(&shed.to_string())
    );
    Response::json(status, body)
        .with_header("x-obx-epoch", epoch.to_string())
        .with_header("x-obx-scenario", tenant.name().to_owned())
        .with_header("retry-after", "1")
}

/// `OBX325`: the tenant's breaker is open; honest co-tenants are
/// unaffected, this tenant's clients get a bounded retry hint.
fn breaker_response(tenant: &Tenant, retry_in: Duration) -> Response {
    obs::counter("serve/requests_shed").add(1);
    obs::counter_dyn(&format!("serve/tenant/{}/breaker_shed", tenant.name())).add(1);
    let epoch = tenant.epoch_id();
    let body = format!(
        "{{\"code\":\"OBX325\",\"error\":\"scenario `{}` circuit breaker is open\",\"termination\":\"degraded (request shed before execution)\",\"epoch\":{epoch}}}\n",
        escape(tenant.name())
    );
    Response::json(503, body)
        .with_header("x-obx-epoch", epoch.to_string())
        .with_header("x-obx-scenario", tenant.name().to_owned())
        .with_header("retry-after", retry_after_secs(retry_in))
}

/// `OBX327`: the tenant is mounted but has no serveable snapshot (a
/// journal-recovered mount whose directory rotted). Listed, not served.
fn quarantined_response(tenant: &Tenant) -> Response {
    obs::counter("serve/requests_shed").add(1);
    obs::counter_dyn(&format!("serve/tenant/{}/shed", tenant.name())).add(1);
    let reason = tenant
        .quarantine_reason()
        .unwrap_or_else(|| "no serveable snapshot".to_owned());
    Response::json(
        503,
        err_json(
            "OBX327",
            &format!(
                "scenario `{}` is quarantined (reload it once repaired): {}",
                tenant.name(),
                reason
            ),
        ),
    )
    .with_header("x-obx-scenario", tenant.name().to_owned())
    .with_header("retry-after", "5")
}

fn unknown_scenario_response(msg: &str) -> Response {
    Response::json(404, err_json("OBX326", msg))
}

/// One tenant as a JSON object (shared by `/tenants` and `/readyz`).
fn tenant_json(tenant: &Tenant) -> String {
    let mut obj = format!(
        "{{\"scenario\":\"{}\",\"status\":\"{}\",\"epoch\":{},\"dir\":\"{}\"",
        escape(tenant.name()),
        tenant.status(),
        tenant.epoch_id(),
        escape(&tenant.dir().to_string_lossy())
    );
    if let Some(ms) = tenant.load_ms() {
        obj.push_str(&format!(",\"load_ms\":{ms}"));
    }
    if let Some(reason) = tenant.quarantine_reason() {
        // First line only: quarantine reasons are full validator dumps.
        let head = reason.lines().next().unwrap_or("");
        obj.push_str(&format!(",\"quarantine\":\"{}\"", escape(head)));
    }
    obj.push('}');
    obj
}

fn tenants_body(store: &TenantStore) -> String {
    let items: Vec<String> = store.list().iter().map(|t| tenant_json(t)).collect();
    format!("{{\"tenants\":[{}]}}\n", items.join(","))
}

fn handle_request(shared: &Arc<Shared>, req: &Request) -> Response {
    let draining = shared.stop.load(Ordering::Acquire);
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            if draining {
                Response::json(503, err_json("OBX322", "server is draining"))
            } else {
                Response::text(200, "ok\n")
            }
        }
        ("GET", "/readyz") => {
            // Ready = at least one tenant can answer an explain request.
            let ready = !draining && shared.store.list().iter().any(|t| t.current().is_some());
            let body = format!(
                "{{\"ready\":{ready},\"draining\":{draining},{}",
                tenants_body(&shared.store).replacen('{', "", 1)
            );
            Response::json(if ready { 200 } else { 503 }, body)
        }
        ("GET", "/tenants") => Response::json(200, tenants_body(&shared.store)),
        ("GET", "/metrics") => Response::json(200, obs::metrics_json()),
        ("POST", "/tenants") => {
            if draining {
                return Response::json(503, err_json("OBX322", "server is draining"));
            }
            let Ok(body_text) = std::str::from_utf8(&req.body) else {
                return Response::json(400, err_json("OBX307", "request body is not valid UTF-8"));
            };
            let (name, dir) = match json::mount_body(body_text) {
                Ok(parts) => parts,
                Err(e) => return Response::json(400, err_json(e.code, &e.msg)),
            };
            match shared.store.mount(&name, std::path::Path::new(&dir)) {
                Ok(tenant) => Response::json(
                    200,
                    format!(
                        "{{\"scenario\":\"{}\",\"epoch\":{}}}\n",
                        escape(tenant.name()),
                        tenant.epoch_id()
                    ),
                )
                .with_header("x-obx-scenario", tenant.name().to_owned()),
                Err(msg) if msg.contains("invalid scenario name") => {
                    Response::json(400, err_json("OBX313", &msg))
                }
                Err(msg) => Response::json(422, err_json("OBX316", &msg)),
            }
        }
        ("POST", "/reload") => {
            if draining {
                return Response::json(503, err_json("OBX322", "server is draining"));
            }
            let Ok(body_text) = std::str::from_utf8(&req.body) else {
                return Response::json(400, err_json("OBX307", "request body is not valid UTF-8"));
            };
            let scenario = match json::scenario_body(body_text) {
                Ok(s) => s,
                Err(e) => return Response::json(400, err_json(e.code, &e.msg)),
            };
            let tenant = match shared.store.resolve(scenario.as_deref()) {
                Ok(t) => t,
                Err(msg) => return unknown_scenario_response(&msg),
            };
            match tenant.reload() {
                Ok(epoch) => {
                    obs::counter("serve/reloads").add(1);
                    Response::json(
                        200,
                        format!(
                            "{{\"scenario\":\"{}\",\"epoch\":{}}}\n",
                            escape(tenant.name()),
                            epoch.id
                        ),
                    )
                    .with_header("x-obx-epoch", epoch.id.to_string())
                    .with_header("x-obx-scenario", tenant.name().to_owned())
                }
                Err(ReloadError::BackingOff(retry_in)) => Response::json(
                    429,
                    err_json(
                        "OBX328",
                        &format!(
                            "reload of `{}` is backing off after repeated failures",
                            tenant.name()
                        ),
                    ),
                )
                .with_header("retry-after", retry_after_secs(retry_in))
                .with_header("x-obx-scenario", tenant.name().to_owned()),
                Err(ReloadError::Failed { msg, .. }) => Response::json(
                    422,
                    err_json(
                        "OBX316",
                        &format!("reload failed, keeping current epoch: {msg}"),
                    ),
                )
                .with_header("x-obx-scenario", tenant.name().to_owned()),
            }
        }
        ("POST", "/validate") => {
            if draining {
                return Response::json(503, err_json("OBX322", "server is draining"));
            }
            let Ok(body_text) = std::str::from_utf8(&req.body) else {
                return Response::json(400, err_json("OBX307", "request body is not valid UTF-8"));
            };
            let scenario = match json::scenario_body(body_text) {
                Ok(s) => s,
                Err(e) => return Response::json(400, err_json(e.code, &e.msg)),
            };
            let tenant = match shared.store.resolve(scenario.as_deref()) {
                Ok(t) => t,
                Err(msg) => return unknown_scenario_response(&msg),
            };
            let Some(epoch) = tenant.current() else {
                return quarantined_response(&tenant);
            };
            Response::text(200, epoch.validate_text.clone())
                .with_header("x-obx-epoch", epoch.id.to_string())
                .with_header("x-obx-exit", epoch.validate_exit.to_string())
                .with_header("x-obx-scenario", tenant.name().to_owned())
        }
        ("POST", "/explain") => handle_explain(shared, req),
        (method, path) => Response::json(
            404,
            err_json("OBX306", &format!("no such endpoint: {method} {path}")),
        ),
    }
}

fn handle_explain(shared: &Arc<Shared>, req: &Request) -> Response {
    let Ok(body_text) = std::str::from_utf8(&req.body) else {
        return Response::json(400, err_json("OBX307", "request body is not valid UTF-8"));
    };
    let body = match json::explain_body(body_text) {
        Ok(b) => b,
        Err(e) => return Response::json(400, err_json(e.code, &e.msg)),
    };
    let tenant = match shared.store.resolve(body.scenario.as_deref()) {
        Ok(t) => t,
        Err(msg) => return unknown_scenario_response(&msg),
    };
    // Cheapest rejections first: quarantine, then breaker, then the
    // admission gate — a doomed request must cost nothing but the parse.
    if tenant.current().is_none() {
        return quarantined_response(&tenant);
    }
    let pass = match tenant.breaker_admit() {
        Ok(p) => p,
        Err(retry_in) => return breaker_response(&tenant, retry_in),
    };
    let permit = match shared.gate.admit(
        Some(tenant.name()),
        body.client.as_deref(),
        Duration::from_millis(shared.config.queue_wait_ms),
    ) {
        Ok(p) => p,
        Err(shed) => {
            // The breaker admitted but the gate did not: hand back a
            // possible probe slot so the breaker cannot wedge half-open.
            tenant.breaker_abort(pass);
            return shed_response(shed, &tenant);
        }
    };
    // Pin the epoch only now — a request that waited through a reload
    // runs on the snapshot current at execution start, and keeps it for
    // its whole lifetime regardless of later reloads.
    let Some(epoch) = tenant.current() else {
        tenant.breaker_abort(pass);
        return quarantined_response(&tenant);
    };
    let clamped = body
        .req
        .clamped(shared.config.request_timeout_ms, None, None);
    let token = CancelToken::new();
    let inflight_id = shared.inflights.register(token.clone());

    // Fault-injection hooks, compiled only for tests: `x-obx-fault:
    // cancel` fires the request's own token before the search starts
    // (the mid-request-cancellation path), `panic` detonates inside the
    // quarantine boundary, and `sleep:<ms>` holds the execution slot for
    // a deterministic interval so overload/drain tests can occupy
    // capacity without depending on scenario size.
    #[cfg(any(test, feature = "fault-injection"))]
    let fault = req.header("x-obx-fault").map(str::to_owned);
    #[cfg(not(any(test, feature = "fault-injection")))]
    let fault: Option<String> = None;
    if fault.as_deref() == Some("cancel") {
        token.cancel();
    }

    let mut budget = clamped.budget(&token);
    let recorder = if body.profile {
        let r = obs::Recorder::new();
        budget = budget.with_recorder(Arc::clone(&r));
        Some(r)
    } else {
        None
    };

    let exec_started = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(|| {
        if fault.as_deref() == Some("panic") {
            panic!("injected fault: panic requested via x-obx-fault");
        }
        if let Some(ms) = fault
            .as_deref()
            .and_then(|f| f.strip_prefix("sleep:"))
            .and_then(|ms| ms.parse::<u64>().ok())
        {
            std::thread::sleep(Duration::from_millis(ms.min(10_000)));
        }
        run_explain(
            &epoch.scenario.system,
            &epoch.scenario.labels,
            &clamped,
            budget,
        )
    }));
    shared.inflights.unregister(inflight_id);
    drop(permit);

    // Feed the breaker: a panic is always a tenant failure; a degraded
    // result that burned the *server's* full time ceiling is one too
    // (the tenant's corpus cannot answer inside the server's patience).
    // Requests that merely hit their own, tighter budget are not.
    let burned_ceiling = shared.config.request_timeout_ms.is_some_and(|ceiling| {
        exec_started.elapsed() >= Duration::from_millis(ceiling)
            && matches!(&result, Ok(Ok(outcome)) if outcome.exit_code == 2)
    });
    let failed = result.is_err() || burned_ceiling;
    tenant.breaker_record(pass, failed);

    let epoch_header = epoch.id.to_string();
    let scenario_header = tenant.name().to_owned();
    match result {
        Err(_) => {
            obs::counter("serve/quarantined").add(1);
            obs::counter_dyn(&format!("serve/tenant/{}/panics", tenant.name())).add(1);
            Response::json(
                500,
                err_json(
                    "OBX323",
                    "request quarantined: the search panicked; the server carries on",
                ),
            )
            .with_header("x-obx-epoch", epoch_header)
            .with_header("x-obx-scenario", scenario_header)
        }
        Ok(Err(e)) => {
            let (code, status) = match &e {
                ServiceError::UnknownStrategy(_) => ("OBX313", 400),
                ServiceError::Task(_) => ("OBX314", 422),
                ServiceError::Search(_) => ("OBX315", 500),
            };
            Response::json(status, err_json(code, &e.to_string()))
                .with_header("x-obx-epoch", epoch_header)
                .with_header("x-obx-scenario", scenario_header)
        }
        Ok(Ok(outcome)) => {
            let mut text = outcome.stdout;
            if let Some(r) = recorder {
                // Same trailer the profiled CLI appends.
                text.push_str("-- profile --\n");
                text.push_str(&r.profile().render_tree());
            }
            Response::text(200, text)
                .with_header("x-obx-epoch", epoch_header)
                .with_header("x-obx-exit", outcome.exit_code.to_string())
                .with_header("x-obx-scenario", scenario_header)
        }
    }
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The current epoch id of the *first* tenant (by name) — the whole
    /// story on a single-tenant server; multi-tenant callers should ask
    /// [`tenants`](Self::tenants) instead.
    pub fn epoch(&self) -> u64 {
        self.shared.store.list().first().map_or(0, |t| t.epoch_id())
    }

    /// The tenant registry (mount set, statuses, per-tenant epochs).
    pub fn tenants(&self) -> &TenantStore {
        &self.shared.store
    }

    /// Whether the server has started draining.
    pub fn draining(&self) -> bool {
        self.shared.stop.load(Ordering::Acquire)
    }

    /// Graceful drain: stop accepting, shed all queued work, give
    /// in-flight requests `grace_ms` to finish, then cancel stragglers
    /// (they respond degraded, best-so-far). Idempotent; returns when
    /// in-flight work has ended (or the second grace expired).
    pub fn drain(&self) {
        if self.shared.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        self.shared.gate.drain();
        // Poke the accept loop out of its blocking accept.
        let _ = TcpStream::connect(self.addr);
        let grace = Duration::from_millis(self.shared.config.grace_ms.max(1));
        if !self.shared.gate.wait_idle(grace) {
            self.shared.inflights.cancel_all();
            let _ = self.shared.gate.wait_idle(grace);
        }
    }

    /// Drains and joins every server thread. Connection handlers exit at
    /// the latest one socket read-timeout after the drain.
    pub fn shutdown(mut self) {
        self.drain();
        self.join_accept();
    }

    fn join_accept(&mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.drain();
        self.join_accept();
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use obx_core::scenario::write_paper_example;
    use std::io::{Read, Write};
    use std::path::PathBuf;

    fn scratch_scenario(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("obx-serve-server-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        write_paper_example(&dir).unwrap();
        dir
    }

    fn test_config() -> ServeConfig {
        ServeConfig {
            read_timeout_ms: 500,
            write_timeout_ms: 500,
            grace_ms: 2_000,
            ..ServeConfig::default()
        }
    }

    /// Minimal test client: one request, `Connection: close`, returns
    /// `(status, headers, body)`.
    fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String, String) {
        http_with_headers(addr, method, path, &[], body)
    }

    fn http_with_headers(
        addr: SocketAddr,
        method: &str,
        path: &str,
        extra: &[(&str, &str)],
        body: &str,
    ) -> (u16, String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut req = format!(
            "{method} {path} HTTP/1.1\r\nhost: t\r\nconnection: close\r\ncontent-length: {}\r\n",
            body.len()
        );
        for (name, value) in extra {
            req.push_str(&format!("{name}: {value}\r\n"));
        }
        req.push_str("\r\n");
        req.push_str(body);
        stream.write_all(req.as_bytes()).unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let (head, payload) = raw.split_once("\r\n\r\n").unwrap();
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap();
        (status, head.to_ascii_lowercase(), payload.to_owned())
    }

    #[test]
    fn serves_health_metrics_and_byte_identical_explanations() {
        let dir = scratch_scenario("basic");
        let server = start(&dir, test_config()).unwrap();
        let addr = server.addr();

        let (status, _, body) = http(addr, "GET", "/healthz", "");
        assert_eq!((status, body.as_str()), (200, "ok\n"));

        // The served body is byte-identical to the service layer's output
        // (which is the CLI's stdout) on the same snapshot.
        let (status, head, body) = http(addr, "POST", "/explain", r#"{"top": 3}"#);
        assert_eq!(status, 200, "{body}");
        assert!(head.contains("x-obx-epoch: 1"), "{head}");
        assert!(head.contains("x-obx-exit: 0"), "{head}");
        assert!(head.contains("x-obx-scenario: default"), "{head}");
        let scenario = obx_core::scenario::load_dir(&dir).unwrap();
        let req = obx_core::service::ExplainRequest {
            top: 3,
            ..Default::default()
        };
        let local = run_explain(
            &scenario.system,
            &scenario.labels,
            &req,
            req.budget(&CancelToken::new()),
        )
        .unwrap();
        assert_eq!(body, local.stdout);
        assert!(body.contains("0.8333"), "{body}");

        let (status, _, metrics) = http(addr, "GET", "/metrics", "");
        assert_eq!(status, 200);
        assert!(metrics.contains("serve/requests"), "{metrics}");

        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serves_mode_requests_and_rejects_bad_modes_with_obx330() {
        let dir = scratch_scenario("modes");
        let server = start(&dir, test_config()).unwrap();
        let addr = server.addr();

        // A sound-mode request serves byte-identically to a local run of
        // the same request through the shared service layer.
        let (status, head, body) = http(addr, "POST", "/explain", r#"{"mode": "sound", "top": 2}"#);
        assert_eq!(status, 200, "{body}");
        assert!(head.contains("x-obx-exit: 0"), "{head}");
        let scenario = obx_core::scenario::load_dir(&dir).unwrap();
        let req = obx_core::service::ExplainRequest {
            mode: obx_core::score::ExplainMode::Sound,
            top: 2,
            ..Default::default()
        };
        let local = run_explain(
            &scenario.system,
            &scenario.labels,
            &req,
            req.budget(&CancelToken::new()),
        )
        .unwrap();
        assert_eq!(body, local.stdout);

        // An invalid mode is rejected up front with the stable OBX330.
        let (status, _, body) = http(addr, "POST", "/explain", r#"{"mode": "lossless"}"#);
        assert_eq!(status, 400);
        assert!(body.contains("OBX330"), "{body}");

        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn validate_reload_and_epoch_pinning() {
        let dir = scratch_scenario("reload");
        // A wide backoff window so the retry below lands inside it even
        // on a loaded test machine.
        let config = ServeConfig {
            reload_backoff_ms: 60_000,
            ..test_config()
        };
        let server = start(&dir, config).unwrap();
        let addr = server.addr();

        let (status, head, body) = http(addr, "POST", "/validate", "");
        assert_eq!(status, 200);
        assert!(head.contains("x-obx-epoch: 1"), "{head}");
        // The paper example validates warning-only (unused source
        // relation), exit 2 — served from the snapshot's cached text.
        assert!(head.contains("x-obx-exit: 2"), "{head}");
        assert!(body.contains("0 error(s)"), "{body}");

        let (status, _, body) = http(addr, "POST", "/reload", "");
        assert_eq!(status, 200);
        assert!(body.contains("\"epoch\":2"), "{body}");
        assert_eq!(server.epoch(), 2);

        // A broken directory fails the reload and keeps epoch 2 serving.
        std::fs::write(dir.join("ontology.obx"), "role r\nr << s\n").unwrap();
        let (status, _, body) = http(addr, "POST", "/reload", "");
        assert_eq!(status, 422);
        assert!(body.contains("OBX316"), "{body}");
        assert_eq!(server.epoch(), 2);
        let (status, _, _) = http(addr, "POST", "/explain", "{}");
        assert_eq!(status, 200);

        // An immediate retry is refused with the backoff code — the
        // server does not hammer a flapping directory.
        let (status, head, body) = http(addr, "POST", "/reload", "");
        assert_eq!(status, 429, "{body}");
        assert!(body.contains("OBX328"), "{body}");
        assert!(head.contains("retry-after:"), "{head}");

        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_garbage_with_stable_codes() {
        let dir = scratch_scenario("garbage");
        let server = start(&dir, test_config()).unwrap();
        let addr = server.addr();

        let (status, _, body) = http(addr, "GET", "/nope", "");
        assert_eq!(status, 404);
        assert!(body.contains("OBX306"), "{body}");

        let (status, _, body) = http(addr, "POST", "/explain", "{not json");
        assert_eq!(status, 400);
        assert!(body.contains("OBX310"), "{body}");

        let (status, _, body) = http(addr, "POST", "/explain", r#"{"surprise": 1}"#);
        assert_eq!(status, 400);
        assert!(body.contains("OBX312"), "{body}");

        // Naming a scenario nobody mounted is a structured 404.
        let (status, _, body) = http(addr, "POST", "/explain", r#"{"scenario": "ghost"}"#);
        assert_eq!(status, 404);
        assert!(body.contains("OBX326"), "{body}");

        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_panic_is_quarantined_and_the_server_survives() {
        let dir = scratch_scenario("panic");
        let server = start(&dir, test_config()).unwrap();
        let addr = server.addr();

        let (status, _, body) =
            http_with_headers(addr, "POST", "/explain", &[("x-obx-fault", "panic")], "{}");
        assert_eq!(status, 500);
        assert!(body.contains("OBX323"), "{body}");

        // The process and its capacity survived: a normal request works.
        let (status, _, body) = http(addr, "POST", "/explain", "{}");
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("Z ="), "{body}");

        // And the quarantine is visible in the metrics.
        let (_, _, metrics) = http(addr, "GET", "/metrics", "");
        assert!(metrics.contains("serve/quarantined"), "{metrics}");

        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_cancel_degrades_with_the_cli_footer() {
        let dir = scratch_scenario("cancel");
        let server = start(&dir, test_config()).unwrap();
        let addr = server.addr();

        let (status, head, body) =
            http_with_headers(addr, "POST", "/explain", &[("x-obx-fault", "cancel")], "{}");
        assert_eq!(status, 200, "{body}");
        assert!(head.contains("x-obx-exit: 2"), "{head}");
        assert!(body.contains("search stopped early: cancelled"), "{body}");

        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn multi_tenant_routing_listing_and_runtime_mounts() {
        let a = scratch_scenario("multi-a");
        let b = scratch_scenario("multi-b");
        let server =
            start_multi(vec![("alpha".to_owned(), a.clone())], None, test_config()).unwrap();
        let addr = server.addr();

        // Single tenant: anonymous requests route to it.
        let (status, head, _) = http(addr, "POST", "/explain", "{}");
        assert_eq!(status, 200);
        assert!(head.contains("x-obx-scenario: alpha"), "{head}");

        // Mount a second tenant over the wire.
        let mount = format!(r#"{{"scenario": "beta", "dir": "{}"}}"#, b.display());
        let (status, _, body) = http(addr, "POST", "/tenants", &mount);
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"epoch\":1"), "{body}");

        // Now anonymous routing is ambiguous...
        let (status, _, body) = http(addr, "POST", "/explain", "{}");
        assert_eq!(status, 404);
        assert!(body.contains("OBX326"), "{body}");
        // ...and named routing hits the named tenant, with per-tenant
        // epochs moving independently.
        let (status, _, _) = http(addr, "POST", "/reload", r#"{"scenario": "beta"}"#);
        assert_eq!(status, 200);
        let (_, head, _) = http(addr, "POST", "/explain", r#"{"scenario": "beta"}"#);
        assert!(head.contains("x-obx-epoch: 2"), "{head}");
        let (_, head, _) = http(addr, "POST", "/explain", r#"{"scenario": "alpha"}"#);
        assert!(head.contains("x-obx-epoch: 1"), "{head}");

        // The registry endpoints see both.
        let (status, _, body) = http(addr, "GET", "/tenants", "");
        assert_eq!(status, 200);
        assert!(body.contains("\"scenario\":\"alpha\""), "{body}");
        assert!(body.contains("\"scenario\":\"beta\""), "{body}");
        // Every serving tenant reports its load-time gauge…
        assert!(body.contains("\"load_ms\":"), "{body}");
        // …and /metrics carries the cumulative per-tenant counters.
        let (status, _, body) = http(addr, "GET", "/metrics", "");
        assert_eq!(status, 200);
        assert!(
            body.contains("serve/tenant/alpha/load_ms_total")
                && body.contains("serve/tenant/beta/loads"),
            "{body}"
        );
        let (status, _, body) = http(addr, "GET", "/readyz", "");
        assert_eq!(status, 200);
        assert!(body.contains("\"ready\":true"), "{body}");

        // A broken runtime mount is rejected and NOT registered.
        let empty = std::env::temp_dir().join(format!("obx-serve-empty-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&empty);
        std::fs::create_dir_all(&empty).unwrap();
        let mount = format!(r#"{{"scenario": "broken", "dir": "{}"}}"#, empty.display());
        let (status, _, body) = http(addr, "POST", "/tenants", &mount);
        assert_eq!(status, 422, "{body}");
        assert!(body.contains("OBX316"), "{body}");
        let (_, _, body) = http(addr, "GET", "/tenants", "");
        assert!(!body.contains("broken"), "{body}");

        server.shutdown();
        let _ = std::fs::remove_dir_all(&a);
        let _ = std::fs::remove_dir_all(&b);
        let _ = std::fs::remove_dir_all(&empty);
    }

    #[test]
    fn breaker_trips_on_repeated_panics_and_co_tenant_keeps_serving() {
        let a = scratch_scenario("breaker-a");
        let b = scratch_scenario("breaker-b");
        let config = ServeConfig {
            breaker_threshold: 3,
            breaker_open_ms: 60_000, // stays open for the whole test
            ..test_config()
        };
        let server = start_multi(
            vec![
                ("bad".to_owned(), a.clone()),
                ("good".to_owned(), b.clone()),
            ],
            None,
            config,
        )
        .unwrap();
        let addr = server.addr();

        // Three panics trip `bad`'s breaker...
        for _ in 0..3 {
            let (status, _, _) = http_with_headers(
                addr,
                "POST",
                "/explain",
                &[("x-obx-fault", "panic")],
                r#"{"scenario": "bad"}"#,
            );
            assert_eq!(status, 500);
        }
        let (status, head, body) = http(addr, "POST", "/explain", r#"{"scenario": "bad"}"#);
        assert_eq!(status, 503, "{body}");
        assert!(body.contains("OBX325"), "{body}");
        assert!(head.contains("retry-after:"), "{head}");

        // ...while `good` serves normally and the registry shows both.
        let (status, _, body) = http(addr, "POST", "/explain", r#"{"scenario": "good"}"#);
        assert_eq!(status, 200, "{body}");
        let (_, _, body) = http(addr, "GET", "/tenants", "");
        assert!(body.contains("\"status\":\"breaker-open\""), "{body}");

        server.shutdown();
        let _ = std::fs::remove_dir_all(&a);
        let _ = std::fs::remove_dir_all(&b);
    }

    #[test]
    fn drain_rejects_new_work_and_shutdown_joins() {
        let dir = scratch_scenario("drain");
        let server = start(&dir, test_config()).unwrap();
        let addr = server.addr();
        server.drain();
        assert!(server.draining());
        // A connection made after drain is either refused outright or
        // answered with the draining shed.
        if let Ok(mut stream) = TcpStream::connect(addr) {
            let _ = stream.write_all(
                b"POST /explain HTTP/1.1\r\nconnection: close\r\ncontent-length: 2\r\n\r\n{}",
            );
            let mut raw = String::new();
            let _ = stream.read_to_string(&mut raw);
            if !raw.is_empty() {
                assert!(raw.contains("503") || raw.contains("OBX322"), "{raw}");
            }
        }
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
